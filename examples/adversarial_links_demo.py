#!/usr/bin/env python
"""Scenario: why fixed broadcast schedules fail in the dual graph model.

This is the paper's motivating story (Section 1, "Discussion") as a runnable
demonstration.  A receiver sits in one dense cluster with a single reliable
broadcaster next to it; a second cluster full of broadcasters is connected to
the receiver only through unreliable links.  An oblivious link scheduler that
knows Decay's fixed probability cycle can therefore:

* include every cross-cluster link exactly when Decay transmits aggressively,
  drowning the receiver in collisions, and
* remove them when Decay transmits timidly, leaving the receiver in silence.

LBAlg permutes its probability schedule with seed-agreement randomness drawn
*after* the link schedule was fixed, so the same trap cannot be laid for it.
The demo expresses each of the four (algorithm, scheduler) combinations as a
:class:`~repro.scenarios.spec.ScenarioSpec` -- same topology spec, different
``algorithm`` / ``scheduler`` entries -- and prints the receiver's per-round
reception rate for each.

Run it with:

    python examples/adversarial_links_demo.py
"""

from __future__ import annotations

from repro.baselines.decay import decay_schedule
from repro.scenarios import (
    AlgorithmSpec,
    EnvironmentSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    TopologySpec,
    materialize,
    run,
)
from repro.simulation.metrics import data_reception_rounds


CLUSTER_SIZE = 5
RECEIVER = 0
EPSILON = 0.2

TOPOLOGY = TopologySpec(
    "two_clusters", {"cluster_size": CLUSTER_SIZE, "gap": 1.5, "seed": 42}
)


def make_spec(algorithm: AlgorithmSpec, scheduler: SchedulerSpec, senders, policy: RunPolicy):
    return ScenarioSpec(
        name=f"adversarial-links-{algorithm.name}-{scheduler.name}",
        topology=TOPOLOGY,
        algorithm=algorithm,
        scheduler=scheduler,
        environment=EnvironmentSpec("saturating", {"senders": senders}),
        run=policy,
    )


def reception_rate_of(spec: ScenarioSpec) -> float:
    result = run(spec)
    trial = result.trials[0]
    return len(data_reception_rounds(trial.trace, RECEIVER)) / trial.rounds


def main() -> None:
    # Materialize the topology once (via its spec) to pick the senders: the
    # receiver's single reliable broadcaster plus the whole far cluster.
    probe = materialize(
        make_spec(
            AlgorithmSpec("decay", {"num_cycles": 8}),
            SchedulerSpec("none"),
            [],
            RunPolicy(rounds=0, rounds_unit="rounds", master_seed=0, seed_policy="fixed"),
        )
    )
    graph = probe.graph
    delta = graph.max_reliable_degree
    print(f"two-cluster network: {graph}")

    reliable_sender = min(graph.reliable_neighbors(RECEIVER))
    far_cluster = [v for v in sorted(graph.vertices) if v >= CLUSTER_SIZE]
    senders = [reliable_sender] + far_cluster
    print(
        f"receiver {RECEIVER} has one reliable broadcaster ({reliable_sender}); "
        f"{len(far_cluster)} far-cluster broadcasters reach it only over unreliable links"
    )

    benign = SchedulerSpec("iid", {"probability": 0.5, "seed": 1})
    adversary = SchedulerSpec("anti_schedule", {"victim": "decay"})
    print(f"targeted adversary built against Decay's cycle {decay_schedule(delta)}")

    decay_alg = AlgorithmSpec("decay", {"num_cycles": 8})
    lbalg = AlgorithmSpec("lbalg", {"epsilon": EPSILON})
    decay_policy = RunPolicy(rounds=1000, rounds_unit="rounds", master_seed=0, seed_policy="fixed")
    lbalg_policy = RunPolicy(rounds=5, rounds_unit="phases", master_seed=0, seed_policy="fixed")

    print()
    print(f"{'algorithm':<10} {'scheduler':<22} {'reception rate at receiver':>28}")
    results = {}
    for name, scheduler in (("benign i.i.d.", benign), ("anti-Decay adversary", adversary)):
        rate = reception_rate_of(make_spec(decay_alg, scheduler, senders, decay_policy))
        results[("decay", name)] = rate
        print(f"{'Decay':<10} {name:<22} {rate:>27.3%}")
    for name, scheduler in (("benign i.i.d.", benign), ("anti-Decay adversary", adversary)):
        rate = reception_rate_of(make_spec(lbalg, scheduler, senders, lbalg_policy))
        results[("lbalg", name)] = rate
        print(f"{'LBAlg':<10} {name:<22} {rate:>27.3%}")

    print()
    decay_hit = results[("decay", "benign i.i.d.")] / max(results[("decay", "anti-Decay adversary")], 1e-9)
    lbalg_hit = results[("lbalg", "benign i.i.d.")] / max(results[("lbalg", "anti-Decay adversary")], 1e-9)
    print(f"adversary cost to Decay : {decay_hit:.2f}x fewer receptions")
    print(f"adversary cost to LBAlg : {lbalg_hit:.2f}x fewer receptions")
    print(
        "LBAlg pays a constant overhead for seed agreement, but its schedule "
        "cannot be targeted by an oblivious link scheduler -- which is the paper's point."
    )


if __name__ == "__main__":
    main()
