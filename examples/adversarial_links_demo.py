#!/usr/bin/env python
"""Scenario: why fixed broadcast schedules fail in the dual graph model.

This is the paper's motivating story (Section 1, "Discussion") as a runnable
demonstration.  A receiver sits in one dense cluster with a single reliable
broadcaster next to it; a second cluster full of broadcasters is connected to
the receiver only through unreliable links.  An oblivious link scheduler that
knows Decay's fixed probability cycle can therefore:

* include every cross-cluster link exactly when Decay transmits aggressively,
  drowning the receiver in collisions, and
* remove them when Decay transmits timidly, leaving the receiver in silence.

LBAlg permutes its probability schedule with seed-agreement randomness drawn
*after* the link schedule was fixed, so the same trap cannot be laid for it.
The demo prints the receiver's per-round reception rate for both algorithms
under both a benign scheduler and the targeted adversary.

Run it with:

    python examples/adversarial_links_demo.py
"""

from __future__ import annotations

import random

from repro import (
    AntiScheduleAdversary,
    IIDScheduler,
    LBParams,
    SaturatingEnvironment,
    Simulator,
    make_lb_processes,
    two_clusters_network,
)
from repro.baselines import make_baseline_processes
from repro.baselines.decay import decay_schedule
from repro.simulation.metrics import data_reception_rounds


CLUSTER_SIZE = 5
RECEIVER = 0
EPSILON = 0.2


def reception_rate(trace, receiver, rounds):
    return len(data_reception_rounds(trace, receiver)) / rounds


def run_decay(graph, senders, scheduler, rounds=1000, seed=0):
    processes = make_baseline_processes(graph, "decay", random.Random(seed), num_cycles=8)
    simulator = Simulator(
        graph, processes, scheduler=scheduler,
        environment=SaturatingEnvironment(senders=senders),
    )
    return simulator.run(rounds), rounds


def run_lbalg(graph, senders, scheduler, params, phases=5, seed=0):
    processes = make_lb_processes(graph, params, random.Random(seed))
    simulator = Simulator(
        graph, processes, scheduler=scheduler,
        environment=SaturatingEnvironment(senders=senders),
    )
    rounds = phases * params.phase_length
    return simulator.run(rounds), rounds


def main() -> None:
    graph, _ = two_clusters_network(cluster_size=CLUSTER_SIZE, gap=1.5, rng=42)
    delta, delta_prime = graph.degree_bounds()
    print(f"two-cluster network: {graph}")

    reliable_sender = min(graph.reliable_neighbors(RECEIVER))
    far_cluster = [v for v in sorted(graph.vertices) if v >= CLUSTER_SIZE]
    senders = [reliable_sender] + far_cluster
    print(
        f"receiver {RECEIVER} has one reliable broadcaster ({reliable_sender}); "
        f"{len(far_cluster)} far-cluster broadcasters reach it only over unreliable links"
    )

    params = LBParams.derive(EPSILON, delta=delta, delta_prime=delta_prime, r=2.0)
    benign = IIDScheduler(graph, probability=0.5, seed=1)
    adversary = AntiScheduleAdversary(graph, decay_schedule(delta))
    print(f"targeted adversary built against Decay's cycle {decay_schedule(delta)}")

    print()
    print(f"{'algorithm':<10} {'scheduler':<22} {'reception rate at receiver':>28}")
    results = {}
    for name, scheduler in (("benign i.i.d.", benign), ("anti-Decay adversary", adversary)):
        trace, rounds = run_decay(graph, senders, scheduler)
        rate = reception_rate(trace, RECEIVER, rounds)
        results[("decay", name)] = rate
        print(f"{'Decay':<10} {name:<22} {rate:>27.3%}")
    for name, scheduler in (("benign i.i.d.", benign), ("anti-Decay adversary", adversary)):
        trace, rounds = run_lbalg(graph, senders, scheduler, params)
        rate = reception_rate(trace, RECEIVER, rounds)
        results[("lbalg", name)] = rate
        print(f"{'LBAlg':<10} {name:<22} {rate:>27.3%}")

    print()
    decay_hit = results[("decay", "benign i.i.d.")] / max(results[("decay", "anti-Decay adversary")], 1e-9)
    lbalg_hit = results[("lbalg", "benign i.i.d.")] / max(results[("lbalg", "anti-Decay adversary")], 1e-9)
    print(f"adversary cost to Decay : {decay_hit:.2f}x fewer receptions")
    print(f"adversary cost to LBAlg : {lbalg_hit:.2f}x fewer receptions")
    print(
        "LBAlg pays a constant overhead for seed agreement, but its schedule "
        "cannot be targeted by an oblivious link scheduler -- which is the paper's point."
    )


if __name__ == "__main__":
    main()
