#!/usr/bin/env python
"""Scenario: watch seed agreement tame a dense neighborhood.

Seed agreement (Section 3) is the paper's reusable primitive: every node
commits to a nearby node's random seed, and with probability 1 - ε no closed
G' neighborhood ends up with more than δ = O(r² log(1/ε)) distinct seeds.
This demo runs ``SeedAlg`` standalone on a dense random deployment -- wired
declaratively through a :class:`~repro.scenarios.spec.ScenarioSpec` (the same
experiment is checked in as ``examples/scenarios/seed_agreement.json``) --
then prints:

* who ended up owning seeds and how many followers each owner gathered,
* a histogram of distinct-owner counts per closed G' neighborhood (the
  quantity δ bounds), and
* the rounds at which nodes committed, versus the theoretical
  O(log Δ · log²(1/ε)) running time.

Run it with:

    python examples/seed_agreement_demo.py
"""

from __future__ import annotations

from collections import Counter

from repro.analysis import theory
from repro.core.seed_spec import check_seed_execution, decide_latency_rounds
from repro.scenarios import (
    AlgorithmSpec,
    EnvironmentSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    TopologySpec,
    run,
)
from repro.simulation.metrics import unique_seed_owner_counts


NUM_NODES = 30
AREA_SIDE = 3.2
EPSILON = 0.1


def ascii_histogram(counter: Counter, width: int = 40) -> str:
    lines = []
    largest = max(counter.values())
    for key in sorted(counter):
        bar = "#" * max(1, int(width * counter[key] / largest))
        lines.append(f"  {key:>3} owners | {bar} {counter[key]}")
    return "\n".join(lines)


def main() -> None:
    spec = ScenarioSpec(
        name="seed-agreement-demo",
        description="Standalone SeedAlg on a dense random deployment",
        topology=TopologySpec(
            "random_geographic",
            {"n": NUM_NODES, "side": AREA_SIDE, "r": 2.0, "seed": 19, "require_connected": True},
        ),
        algorithm=AlgorithmSpec("seed_agreement", {"epsilon": EPSILON}),
        scheduler=SchedulerSpec("iid", {"probability": 0.5, "seed": 19}),
        environment=EnvironmentSpec("null"),
        run=RunPolicy(rounds=1, rounds_unit="algorithm", master_seed=19, seed_policy="fixed"),
    )

    result = run(spec)
    trial = result.trials[0]
    graph, params, trace = trial.graph, trial.params, trial.trace

    delta = graph.max_reliable_degree
    print(f"deployment: {graph}")
    print(
        f"SeedAlg({EPSILON}): {params.num_phases} phases x {params.phase_length} rounds "
        f"= {params.total_rounds} rounds"
    )
    print(f"theoretical runtime shape O(log Δ log²(1/ε)) = {theory.seed_runtime_bound(delta, EPSILON):.0f}")
    print(f"theoretical owner bound shape O(r² log(1/ε)) = {theory.seed_delta_bound(EPSILON):.0f}")

    report = check_seed_execution(trace, graph, delta_bound=params.delta_bound)
    print()
    print(f"well-formed: {report.well_formed}, consistent: {report.consistent}")

    followers = Counter(event.owner for event in trace.decide_outputs)
    print()
    print(f"{len(followers)} seed owners emerged out of {graph.n} nodes:")
    for owner, count in followers.most_common():
        print(f"  node {owner:>3} owns the seed adopted by {count} node(s)")

    counts = unique_seed_owner_counts(trace, graph)
    print()
    print("distinct owners per closed G' neighborhood (δ bounds this):")
    print(ascii_histogram(Counter(counts.values())))
    print(f"maximum observed: {max(counts.values())}  |  derived δ bound: {params.delta_bound}")

    latencies = decide_latency_rounds(trace)
    print()
    print(
        f"commit rounds: earliest {min(latencies.values())}, "
        f"median {sorted(latencies.values())[len(latencies) // 2]}, "
        f"latest {max(latencies.values())} (algorithm budget {params.total_rounds})"
    )


if __name__ == "__main__":
    main()
