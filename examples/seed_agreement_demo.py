#!/usr/bin/env python
"""Scenario: watch seed agreement tame a dense neighborhood.

Seed agreement (Section 3) is the paper's reusable primitive: every node
commits to a nearby node's random seed, and with probability 1 - ε no closed
G' neighborhood ends up with more than δ = O(r² log(1/ε)) distinct seeds.
This demo runs ``SeedAlg`` standalone on a dense random deployment, then
prints:

* who ended up owning seeds and how many followers each owner gathered,
* a histogram of distinct-owner counts per closed G' neighborhood (the
  quantity δ bounds), and
* the rounds at which nodes committed, versus the theoretical
  O(log Δ · log²(1/ε)) running time.

Run it with:

    python examples/seed_agreement_demo.py
"""

from __future__ import annotations

import random
from collections import Counter

from repro import IIDScheduler, SeedParams, Simulator, random_geographic_network
from repro.analysis import theory
from repro.core.seed_agreement import SeedAgreementProcess
from repro.core.seed_spec import check_seed_execution, decide_latency_rounds
from repro.simulation.metrics import unique_seed_owner_counts
from repro.simulation.process import ProcessContext


NUM_NODES = 30
AREA_SIDE = 3.2
EPSILON = 0.1


def ascii_histogram(counter: Counter, width: int = 40) -> str:
    lines = []
    largest = max(counter.values())
    for key in sorted(counter):
        bar = "#" * max(1, int(width * counter[key] / largest))
        lines.append(f"  {key:>3} owners | {bar} {counter[key]}")
    return "\n".join(lines)


def main() -> None:
    graph, _ = random_geographic_network(
        NUM_NODES, side=AREA_SIDE, r=2.0, rng=19, require_connected=True
    )
    delta, delta_prime = graph.degree_bounds()
    print(f"deployment: {graph}")

    params = SeedParams.derive(EPSILON, delta=delta, r=2.0)
    print(
        f"SeedAlg({EPSILON}): {params.num_phases} phases x {params.phase_length} rounds "
        f"= {params.total_rounds} rounds"
    )
    print(f"theoretical runtime shape O(log Δ log²(1/ε)) = {theory.seed_runtime_bound(delta, EPSILON):.0f}")
    print(f"theoretical owner bound shape O(r² log(1/ε)) = {theory.seed_delta_bound(EPSILON):.0f}")

    master = random.Random(19)
    processes = {}
    for vertex in sorted(graph.vertices):
        ctx = ProcessContext(
            vertex=vertex, delta=delta, delta_prime=delta_prime, r=2.0,
            rng=random.Random(master.getrandbits(64)),
        )
        processes[vertex] = SeedAgreementProcess(ctx, params)
    simulator = Simulator(
        graph, processes, scheduler=IIDScheduler(graph, probability=0.5, seed=19)
    )
    trace = simulator.run(params.total_rounds)

    report = check_seed_execution(trace, graph, delta_bound=params.delta_bound)
    print()
    print(f"well-formed: {report.well_formed}, consistent: {report.consistent}")

    followers = Counter(event.owner for event in trace.decide_outputs)
    print()
    print(f"{len(followers)} seed owners emerged out of {graph.n} nodes:")
    for owner, count in followers.most_common():
        print(f"  node {owner:>3} owns the seed adopted by {count} node(s)")

    counts = unique_seed_owner_counts(trace, graph)
    print()
    print("distinct owners per closed G' neighborhood (δ bounds this):")
    print(ascii_histogram(Counter(counts.values())))
    print(f"maximum observed: {max(counts.values())}  |  derived δ bound: {params.delta_bound}")

    latencies = decide_latency_rounds(trace)
    print()
    print(
        f"commit rounds: earliest {min(latencies.values())}, "
        f"median {sorted(latencies.values())[len(latencies) // 2]}, "
        f"latest {max(latencies.values())} (algorithm budget {params.total_rounds})"
    )


if __name__ == "__main__":
    main()
