#!/usr/bin/env python
"""Drive the scenario service end to end from a plain HTTP client.

The service (``python -m repro serve``) turns suite execution into a
shared, deduplicated resource: submissions with the same fingerprint are
answered by one execution (or straight from the persisted report), and
progress streams live over chunked NDJSON.  This example embeds the same
server in-process (:class:`~repro.scenarios.service.ThreadedService`) so it
is fully self-contained, then talks to it exactly the way ``curl`` would:

1. submit a two-entry suite (``POST /v1/jobs``) and note the ``new``
   disposition;
2. follow the job's NDJSON progress stream (``GET /v1/jobs/<id>/events``)
   until the terminal state event;
3. fetch the persisted report (``GET /v1/jobs/<id>/report``);
4. resubmit the identical suite and observe the ``cached`` disposition --
   zero trials re-executed, byte-identical report.

Run it with:

    python examples/service_client.py

Against a standalone server the same requests work unchanged; start one
with ``python -m repro serve --store /tmp/repro-store --port 8653``.
"""

from __future__ import annotations

import json
import tempfile
import urllib.request

from repro.scenarios.service import ThreadedService


def build_suite_payload() -> dict:
    """Two small uniform-broadcast scenarios, two trials each (4 tasks)."""
    def entry(index: int) -> dict:
        return {
            "id": f"demo-e{index}",
            "scenario": {
                "name": f"demo-e{index}",
                "topology": {"name": "clique", "args": {"n": 5}},
                "algorithm": {"name": "uniform"},
                "run": {
                    "rounds": 20,
                    "rounds_unit": "rounds",
                    "trials": 2,
                    "master_seed": 40 + index,
                },
                "metrics": [{"name": "counters"}],
            },
        }

    return {"name": "service-demo", "entries": [entry(0), entry(1)]}


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return json.load(response)


def main() -> None:
    payload = {"suite": build_suite_payload()}
    with tempfile.TemporaryDirectory() as workdir:
        service = ThreadedService({"store": f"{workdir}/store", "workers": 2})
        url = service.start()
        print(f"service up at {url}")
        try:
            submitted = post_json(f"{url}/v1/jobs", payload)
            job = submitted["job"]
            print(
                f"submitted {job['id']} (disposition: {submitted['dedup']}, "
                f"{job['suite']['tasks']} tasks)"
            )

            print("progress stream:")
            with urllib.request.urlopen(f"{url}/v1/jobs/{job['id']}/events") as stream:
                for line in stream:
                    event = json.loads(line)
                    kind = event["event"]
                    if kind == "task":
                        print(f"  task {event['done']}/{event['total']} done")
                    elif kind == "state":
                        print(f"  state -> {event['state']}")
                    else:
                        print(f"  {kind}")

            with urllib.request.urlopen(f"{url}/v1/jobs/{job['id']}/report") as response:
                report_bytes = response.read()
            report = json.loads(report_bytes)
            groups = ", ".join(sorted(report["groups"]))
            print(f"report: {len(report_bytes)} bytes, groups: {groups}")

            resubmitted = post_json(f"{url}/v1/jobs", payload)
            with urllib.request.urlopen(
                f"{url}/v1/jobs/{resubmitted['job']['id']}/report"
            ) as response:
                cached_bytes = response.read()
            print(
                f"resubmission disposition: {resubmitted['dedup']} "
                f"(byte-identical report: {cached_bytes == report_bytes})"
            )

            with urllib.request.urlopen(f"{url}/stats") as response:
                counters = json.load(response)["counters"]
            print(
                "service round trip complete: "
                f"{counters['completed']} execution(s) served "
                f"{counters['submitted']} submission(s) "
                f"({counters['dedup_cached']} from the report cache)"
            )
        finally:
            service.stop()


if __name__ == "__main__":
    main()
