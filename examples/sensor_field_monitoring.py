#!/usr/bin/env python
"""Scenario: a dense sensor field reporting periodic measurements.

The paper motivates true locality with Internet-of-Things-style deployments:
a massive field of devices, each of which only cares about communicating with
its immediate neighborhood.  This example models a 60-node sensor field in
which a handful of aggregation points periodically broadcast fresh summaries
to their reliable neighbors, while the link scheduler keeps toggling the
grey-zone links (multipath fading, interference, ...).

The whole workload is one declarative
:class:`~repro.scenarios.spec.ScenarioSpec`: a bursty environment over the
``degree_top`` sender selection (the aggregation points), a staggered
periodic link scheduler, and three acknowledgment periods of LBAlg.

It reports, per aggregator, the acknowledgment latency of every summary and
the fraction of reliable neighbors that got each one -- the two quantities the
LB specification bounds -- and shows they do not depend on the total field
size (only on the local degree bounds that the processes were configured
with).

Run it with:

    python examples/sensor_field_monitoring.py
"""

from __future__ import annotations

from repro.scenarios import (
    AlgorithmSpec,
    EnvironmentSpec,
    MetricSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    TopologySpec,
    resolve_params,
    run,
)
from repro.simulation.metrics import ack_delays, delivery_report


FIELD_SIZE = 60
AREA_SIDE = 5.5
NUM_AGGREGATORS = 4
EPSILON = 0.2
REPORT_PERIOD_PHASES = 2  # a fresh summary every other protocol phase


def main() -> None:
    spec = ScenarioSpec(
        name="sensor-field-monitoring",
        description="Periodic summaries from aggregation points under fading links",
        topology=TopologySpec(
            "random_geographic",
            {"n": FIELD_SIZE, "side": AREA_SIDE, "r": 2.0, "seed": 11, "require_connected": True},
        ),
        algorithm=AlgorithmSpec("lbalg", {"epsilon": EPSILON}),
        # Links fade on a coarse timescale: every unreliable edge is up for 40
        # rounds, then down for 40, staggered per edge.
        scheduler=SchedulerSpec(
            "periodic", {"on_rounds": 40, "off_rounds": 40, "stagger": True, "seed": 3}
        ),
        # Well-spread aggregation points: the highest-degree vertices.
        environment=EnvironmentSpec(
            "bursty",
            {"senders": {"select": "degree_top", "count": NUM_AGGREGATORS}},
        ),
        run=RunPolicy(rounds=3, rounds_unit="tack", master_seed=11, seed_policy="fixed"),
        metrics=(MetricSpec("ack_delay"), MetricSpec("delivery")),
    )

    # The burst period depends on the derived phase length, which depends on
    # the sampled graph.  The params-only resolution mode derives it without
    # materializing a throwaway process population, then the finished spec
    # runs once.
    params = resolve_params(spec).params
    spec = spec.with_overrides(
        {"environment.args.period": REPORT_PERIOD_PHASES * params.phase_length}
    )

    result = run(spec)
    trial = result.trials[0]
    graph, trace = trial.graph, trial.trace
    print(f"sensor field: {graph}")
    print(
        f"service parameters: phase length {params.phase_length} rounds, "
        f"t_ack {params.tack_rounds} rounds, target error {EPSILON}"
    )
    by_degree = sorted(
        graph.vertices, key=lambda v: len(graph.reliable_neighbors(v)), reverse=True
    )
    print(f"aggregation points: {sorted(by_degree[:NUM_AGGREGATORS])}")
    print(f"simulating {3 * params.tack_rounds} rounds ...")

    print()
    print("per-summary outcomes:")
    for ack, delivery in zip(ack_delays(trace), delivery_report(trace, graph)):
        if ack.delay is None:
            status = "still in flight"
        else:
            status = f"acked after {ack.delay} rounds"
        print(
            f"  aggregator {ack.vertex}: {ack.message.payload!r} -> {status}, "
            f"{len(delivery.delivered_before_ack)}/{len(delivery.reliable_neighbors)} "
            "reliable neighbors reached before the ack"
        )

    # The declared metrics already aggregated this: stats-backed summaries of
    # the ack_delay / delivery columns live on the RunResult.
    delay = result.metric_summaries.get("ack_delay.delay_mean", {})
    fraction = result.metric_summaries.get("delivery.fraction_mean", {})
    if delay.get("value") is not None:
        print()
        print("acknowledgment latency (from the ack_delay metric):")
        print(f"  mean: {delay['value']:.1f} rounds over {int(delay['denominator'])} acked summaries")
        print(f"  max : {result.metrics['ack_delay.delay_max']:.0f} rounds")
    if fraction.get("value") is not None:
        print(
            f"mean delivery fraction before ack: {fraction['value']:.2%} "
            f"(target >= {1 - EPSILON:.0%})"
        )


if __name__ == "__main__":
    main()
