#!/usr/bin/env python
"""Scenario: neighbor discovery for an ad hoc deployment.

Neighbor discovery was one of the first algorithms written against the
abstract MAC layer (Cornejo et al.): every node hands the layer a single
announcement carrying its identity, and the layer's delivery guarantee does
the rest.  Because LBAlg implements the layer for the dual graph model, the
same three-line client works in a network full of unreliable links.

The demo deploys a modest ad hoc network, runs discovery for one
acknowledgment period, and prints each node's discovered neighbor table next
to its true reliable neighborhood.

Run it with:

    python examples/neighbor_discovery_demo.py
"""

from __future__ import annotations

import random

from repro import IIDScheduler, LBParams, random_geographic_network
from repro.mac.applications.neighbor_discovery import run_neighbor_discovery


NUM_NODES = 14
AREA_SIDE = 3.2
EPSILON = 0.2


def main() -> None:
    graph, _ = random_geographic_network(
        NUM_NODES, side=AREA_SIDE, r=2.0, rng=23, require_connected=True
    )
    delta, delta_prime = graph.degree_bounds()
    print(f"ad hoc deployment: {graph}")

    params = LBParams.derive(
        EPSILON,
        delta=delta,
        delta_prime=delta_prime,
        r=2.0,
        # Announcements are tiny and contention is the whole neighborhood, so a
        # couple of sending phases per announcement keeps the demo short while
        # still exercising the full machinery.
        tack_phases_override=max(3, delta),
    )
    print(
        f"running discovery for {(params.tack_phases + 2)} phases "
        f"({(params.tack_phases + 2) * params.phase_length} rounds) ..."
    )

    result = run_neighbor_discovery(
        graph,
        params,
        scheduler=IIDScheduler(graph, probability=0.5, seed=23),
        rng=random.Random(23),
    )

    print()
    print("discovered reliable neighbors (discovered/actual):")
    for vertex in sorted(graph.vertices):
        actual = sorted(graph.reliable_neighbors(vertex))
        discovered = sorted(
            v for v in result.discovered[vertex] if v in graph.reliable_neighbors(vertex)
        )
        extra_gprime = sorted(
            v
            for v in result.discovered[vertex]
            if v not in graph.reliable_neighbors(vertex)
        )
        line = f"  node {vertex:>2}: {len(discovered)}/{len(actual)} {discovered}"
        if extra_gprime:
            line += f"  (+ grey-zone neighbors heard: {extra_gprime})"
        print(line)

    print()
    print(f"mean discovery fraction over reliable neighborhoods: {result.mean_discovery_fraction:.2%}")
    print(f"false positives (non-G' vertices discovered): {result.false_positives(graph) or 'none'}")
    last = result.last_discovery_round
    if last is not None:
        print(f"last discovery happened at round {last} (of {result.rounds_run} simulated)")


if __name__ == "__main__":
    main()
