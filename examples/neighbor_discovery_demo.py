#!/usr/bin/env python
"""Scenario: neighbor discovery for an ad hoc deployment.

Neighbor discovery was one of the first algorithms written against the
abstract MAC layer (Cornejo et al.): every node hands the layer a single
announcement carrying its identity, and the layer's delivery guarantee does
the rest.  Because LBAlg implements the layer for the dual graph model, the
same three-line client works in a network full of unreliable links.

The demo deploys a modest ad hoc network, runs discovery for one
acknowledgment period, and prints each node's discovered neighbor table next
to its true reliable neighborhood.  The deployment and the link schedule are
declared as scenario components
(:class:`~repro.scenarios.spec.TopologySpec` /
:class:`~repro.scenarios.spec.SchedulerSpec`); the discovery driver builds
its own layered simulator -- the supported low-level escape hatch.

Run it with:

    python examples/neighbor_discovery_demo.py
"""

from __future__ import annotations

import random

from repro import LBParams
from repro.mac.applications.neighbor_discovery import run_neighbor_discovery
from repro.scenarios import SchedulerSpec, TopologySpec
from repro.scenarios.registry import SCHEDULERS, TOPOLOGIES


NUM_NODES = 14
AREA_SIDE = 3.2
EPSILON = 0.2
MASTER_SEED = 23


def main() -> None:
    topology = TopologySpec(
        "random_geographic",
        {"n": NUM_NODES, "side": AREA_SIDE, "r": 2.0, "seed": MASTER_SEED, "require_connected": True},
    )
    scheduler_spec = SchedulerSpec("iid", {"probability": 0.5, "seed": MASTER_SEED})
    graph, _ = TOPOLOGIES.get(topology.name)(MASTER_SEED, **topology.args)
    delta, delta_prime = graph.degree_bounds()
    print(f"ad hoc deployment: {graph}")

    params = LBParams.derive(
        EPSILON,
        delta=delta,
        delta_prime=delta_prime,
        r=2.0,
        # Announcements are tiny and contention is the whole neighborhood, so a
        # couple of sending phases per announcement keeps the demo short while
        # still exercising the full machinery.
        tack_phases_override=max(3, delta),
    )
    print(
        f"running discovery for {(params.tack_phases + 2)} phases "
        f"({(params.tack_phases + 2) * params.phase_length} rounds) ..."
    )

    result = run_neighbor_discovery(
        graph,
        params,
        scheduler=SCHEDULERS.get(scheduler_spec.name)(graph, MASTER_SEED, **scheduler_spec.args),
        rng=random.Random(MASTER_SEED),
    )

    print()
    print("discovered reliable neighbors (discovered/actual):")
    for vertex in sorted(graph.vertices):
        actual = sorted(graph.reliable_neighbors(vertex))
        discovered = sorted(
            v for v in result.discovered[vertex] if v in graph.reliable_neighbors(vertex)
        )
        extra_gprime = sorted(
            v
            for v in result.discovered[vertex]
            if v not in graph.reliable_neighbors(vertex)
        )
        line = f"  node {vertex:>2}: {len(discovered)}/{len(actual)} {discovered}"
        if extra_gprime:
            line += f"  (+ grey-zone neighbors heard: {extra_gprime})"
        print(line)

    print()
    print(f"mean discovery fraction over reliable neighborhoods: {result.mean_discovery_fraction:.2%}")
    print(f"false positives (non-G' vertices discovered): {result.false_positives(graph) or 'none'}")
    last = result.last_discovery_round
    if last is not None:
        print(f"last discovery happened at round {last} (of {result.rounds_run} simulated)")


if __name__ == "__main__":
    main()
