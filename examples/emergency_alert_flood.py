#!/usr/bin/env python
"""Scenario: multi-hop emergency alert dissemination over the abstract MAC layer.

The abstract MAC layer interpretation of the local broadcast service lets
higher-level algorithms ignore rounds, collisions, and link schedules
entirely.  This example uses the canonical such algorithm -- flooding -- to
push an alert from one corner of a multi-hop corridor deployment to every
node, with all grey-zone links left to an unreliable-link scheduler.

It prints how the alert spreads hop by hop and compares the completion time
with the ``diameter x f_ack`` envelope the layer's guarantees predict.

The network and scheduler come from the scenario component registries
(:mod:`repro.scenarios`); the flood driver itself
(`src/repro/mac/applications/flood.py:run_flood`) builds its own simulator --
the supported low-level escape hatch for layered protocols that a flat
scenario spec does not express.

Run it with:

    python examples/emergency_alert_flood.py
"""

from __future__ import annotations

import random

from repro import LBParams
from repro.mac.applications.flood import run_flood
from repro.mac.spec import MacLayerGuarantees
from repro.scenarios import SchedulerSpec, TopologySpec
from repro.scenarios.registry import SCHEDULERS, TOPOLOGIES


CORRIDOR_LENGTH = 6
EPSILON = 0.2
MASTER_SEED = 5


def main() -> None:
    # A corridor of 6 relay stations 0.9 distance units apart: consecutive
    # stations share reliable links, stations two hops apart only grey-zone
    # (unreliable) links.  Both components are declared as specs and resolved
    # through the registries.
    topology = TopologySpec("line", {"n": CORRIDOR_LENGTH, "spacing": 0.9, "r": 2.0})
    scheduler_spec = SchedulerSpec("iid", {"probability": 0.5, "seed": MASTER_SEED})
    graph, _ = TOPOLOGIES.get(topology.name)(MASTER_SEED, **topology.args)
    delta, delta_prime = graph.degree_bounds()
    print(f"corridor deployment: {graph}")

    params = LBParams.derive(
        EPSILON,
        delta=delta,
        delta_prime=delta_prime,
        r=2.0,
        # Relaying needs each hop to reach only its immediate neighbors, so a
        # compact sending period keeps the demonstration quick.
        tack_phases_override=max(2, delta_prime),
    )
    guarantees = MacLayerGuarantees.from_lb_params(params)
    print(
        f"abstract MAC layer guarantees: f_prog={guarantees.f_prog} rounds, "
        f"f_ack={guarantees.f_ack} rounds, error {guarantees.epsilon}"
    )

    source = 0
    scheduler = SCHEDULERS.get(scheduler_spec.name)(
        graph, MASTER_SEED, **scheduler_spec.args
    )
    print(f"flooding an alert from station {source} ...")
    result = run_flood(
        graph, params, source=source, scheduler=scheduler, rng=random.Random(MASTER_SEED)
    )

    print()
    print("alert arrival by station:")
    for vertex in sorted(graph.vertices):
        round_number = result.receive_rounds[vertex]
        hops = result.receive_hops[vertex]
        if round_number is None:
            print(f"  station {vertex}: NOT REACHED within {result.rounds_run} rounds")
        elif vertex == source:
            print(f"  station {vertex}: origin")
        else:
            print(f"  station {vertex}: round {round_number} (after {hops} relay hops)")

    print()
    diameter = graph.reliable_eccentricity(source)
    print(f"coverage: {result.coverage:.0%} of stations")
    if result.complete:
        envelope = diameter * guarantees.f_ack
        print(
            f"completion round {result.completion_round} vs the "
            f"diameter x f_ack envelope of {envelope} rounds "
            f"({result.completion_round / envelope:.2f} of the envelope)"
        )


if __name__ == "__main__":
    main()
