#!/usr/bin/env python
"""Quickstart: run the local broadcast service from a declarative scenario.

This example walks through the whole pipeline in one file -- now expressed as
a :class:`~repro.scenarios.spec.ScenarioSpec` (the JSON checked in next to it
at ``examples/scenarios/quickstart.json`` is the same experiment as data):

1. an r-geographic dual graph network (reliable links within distance 1,
   possibly-unreliable links in the grey zone up to distance r = 2),
2. LBAlg parameters derived from the local degree bounds and a target ε,
3. an i.i.d. oblivious link scheduler with one node broadcasting a message,
4. a check of the execution against the LB(t_ack, t_prog, ε) specification --
   declared on the spec itself as metrics (``counters`` / ``ack_delay`` /
   ``delivery`` / ``lb_spec``), so the verdicts come back on the
   :class:`~repro.scenarios.runtime.RunResult` instead of being hand-wired.

Run it with:

    python examples/quickstart.py

or run the identical scenario straight from its JSON:

    python -m repro run examples/scenarios/quickstart.json
"""

from __future__ import annotations

import os

from repro.scenarios import ScenarioSpec, run

SCENARIO_PATH = os.path.join(os.path.dirname(__file__), "scenarios", "quickstart.json")


def main() -> None:
    # 1. + 2. + 3. The whole experiment is data: a 20-node network in a
    #    3.5 x 3.5 area, derived parameters for a 20% per-event error budget
    #    (local quantities only -- the network size n never appears), an
    #    oblivious i.i.d. schedule over the grey-zone links -- and the metrics
    #    to reduce the execution with, declared right on the spec.
    spec = ScenarioSpec.load(SCENARIO_PATH)
    print(f"scenario: {spec.name}  (fingerprint {spec.fingerprint()})")
    print(f"metrics : {', '.join(metric.name for metric in spec.metrics)}")

    result = run(spec)
    trial = result.trials[0]
    graph, params, trace = trial.graph, trial.params, trial.trace

    delta, delta_prime = graph.degree_bounds()
    print(f"network: {graph}")
    print(f"degree bounds known to every process: Delta={delta}, Delta'={delta_prime}")
    print(
        f"derived schedule: Ts={params.ts} preamble rounds, Tprog={params.tprog} body rounds, "
        f"Tack={params.tack_phases} sending phases"
    )
    print(f"t_prog = {params.tprog_rounds} rounds, t_ack = {params.tack_rounds} rounds")

    # 4. What happened?  Every declared metric produced namespaced columns on
    #    the trial's metric row (and stats-backed aggregates on the result).
    row = trial.metric_row
    print()
    print("specification check (the lb_spec metric):")
    print(f"  timely acknowledgment ok: {row['lb_spec.timely_ack_violations'] == 0}")
    print(f"  validity ok:              {row['lb_spec.validity_violations'] == 0}")
    print(f"  reliability failures:     {row['lb_spec.reliability_failures']}")
    print(
        f"  acknowledged {row['ack_delay.acked']}/{row['ack_delay.broadcasts']} broadcasts, "
        f"worst delay {row['ack_delay.delay_max']} rounds (bound: {row['ack_delay.bound']}, "
        f"violations: {row['ack_delay.bound_violations']})"
    )
    print(
        f"  full reliable-neighborhood deliveries before the ack: "
        f"{row['delivery.full_deliveries']}/{row['delivery.broadcasts']}"
    )

    recvs_by_vertex = {}
    for recv in trace.recv_outputs:
        recvs_by_vertex.setdefault(recv.vertex, recv.round_number)
    print(f"  first-delivery rounds per receiver: {dict(sorted(recvs_by_vertex.items()))}")


if __name__ == "__main__":
    main()
