#!/usr/bin/env python
"""Quickstart: run the local broadcast service on a small dual graph network.

This example walks through the whole pipeline in one file:

1. sample an r-geographic dual graph network (reliable links within distance
   1, possibly-unreliable links in the grey zone up to distance r = 2),
2. derive LBAlg parameters from the local degree bounds and a target error ε,
3. run the service under an i.i.d. oblivious link scheduler with one node
   broadcasting a message,
4. check the execution against the LB(t_ack, t_prog, ε) specification and
   print what happened.

Run it with:

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro import (
    IIDScheduler,
    LBParams,
    Simulator,
    SingleShotEnvironment,
    ack_delays,
    check_lb_execution,
    delivery_report,
    make_lb_processes,
    random_geographic_network,
)


def main() -> None:
    # 1. A 20-node network in a 3.5 x 3.5 area; grey-zone pairs get unreliable
    #    links that the adversary may toggle every round.
    graph, embedding = random_geographic_network(
        20, side=3.5, r=2.0, rng=7, require_connected=True
    )
    delta, delta_prime = graph.degree_bounds()
    print(f"network: {graph}")
    print(f"degree bounds known to every process: Delta={delta}, Delta'={delta_prime}")

    # 2. Parameters for a 20% per-event error budget.  Everything is derived
    #    from local quantities only -- the network size n never appears.
    params = LBParams.derive(epsilon=0.2, delta=delta, delta_prime=delta_prime, r=2.0)
    print(
        f"derived schedule: Ts={params.ts} preamble rounds, Tprog={params.tprog} body rounds, "
        f"Tack={params.tack_phases} sending phases"
    )
    print(f"t_prog = {params.tprog_rounds} rounds, t_ack = {params.tack_rounds} rounds")

    # 3. Run: vertex 0 broadcasts one message; every unreliable edge appears
    #    independently with probability 1/2 each round (an oblivious schedule).
    sender = 0
    rng = random.Random(7)
    simulator = Simulator(
        graph,
        make_lb_processes(graph, params, rng),
        scheduler=IIDScheduler(graph, probability=0.5, seed=7),
        environment=SingleShotEnvironment(senders=[sender]),
    )
    trace = simulator.run(params.tack_rounds)

    # 4. What happened?
    report = check_lb_execution(trace, graph, params.tack_rounds, params.tprog_rounds)
    print()
    print("specification check:")
    print(f"  timely acknowledgment ok: {report.timely_ack_ok}")
    print(f"  validity ok:              {report.validity_ok}")
    print(f"  reliability failures:     {len(report.reliability_failures)}")

    for record in ack_delays(trace):
        print(
            f"  message {record.message.payload!r} acknowledged after {record.delay} rounds "
            f"(bound: {params.tack_rounds})"
        )
    for record in delivery_report(trace, graph):
        reached = len(record.delivered_before_ack)
        total = len(record.reliable_neighbors)
        print(
            f"  reliable neighbors of vertex {record.sender} reached before the ack: "
            f"{reached}/{total}"
        )

    recvs_by_vertex = {}
    for recv in trace.recv_outputs:
        recvs_by_vertex.setdefault(recv.vertex, recv.round_number)
    print(f"  first-delivery rounds per receiver: {dict(sorted(recvs_by_vertex.items()))}")


if __name__ == "__main__":
    main()
