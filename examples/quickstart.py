#!/usr/bin/env python
"""Quickstart: run the local broadcast service from a declarative scenario.

This example walks through the whole pipeline in one file -- now expressed as
a :class:`~repro.scenarios.spec.ScenarioSpec` (the JSON checked in next to it
at ``examples/scenarios/quickstart.json`` is the same experiment as data):

1. an r-geographic dual graph network (reliable links within distance 1,
   possibly-unreliable links in the grey zone up to distance r = 2),
2. LBAlg parameters derived from the local degree bounds and a target ε,
3. an i.i.d. oblivious link scheduler with one node broadcasting a message,
4. a check of the execution against the LB(t_ack, t_prog, ε) specification.

Run it with:

    python examples/quickstart.py

or run the identical scenario straight from its JSON:

    python -m repro run examples/scenarios/quickstart.json
"""

from __future__ import annotations

import os

from repro import check_lb_execution
from repro.scenarios import ScenarioSpec, run
from repro.simulation.metrics import ack_delays, delivery_report

SCENARIO_PATH = os.path.join(os.path.dirname(__file__), "scenarios", "quickstart.json")


def main() -> None:
    # 1. + 2. + 3. The whole experiment is data: a 20-node network in a
    #    3.5 x 3.5 area, derived parameters for a 20% per-event error budget
    #    (local quantities only -- the network size n never appears), and an
    #    oblivious i.i.d. schedule over the grey-zone links.
    spec = ScenarioSpec.load(SCENARIO_PATH)
    print(f"scenario: {spec.name}  (fingerprint {spec.fingerprint()})")

    result = run(spec)
    trial = result.trials[0]
    graph, params, trace = trial.graph, trial.params, trial.trace

    delta, delta_prime = graph.degree_bounds()
    print(f"network: {graph}")
    print(f"degree bounds known to every process: Delta={delta}, Delta'={delta_prime}")
    print(
        f"derived schedule: Ts={params.ts} preamble rounds, Tprog={params.tprog} body rounds, "
        f"Tack={params.tack_phases} sending phases"
    )
    print(f"t_prog = {params.tprog_rounds} rounds, t_ack = {params.tack_rounds} rounds")

    # 4. What happened?
    report = check_lb_execution(trace, graph, params.tack_rounds, params.tprog_rounds)
    print()
    print("specification check:")
    print(f"  timely acknowledgment ok: {report.timely_ack_ok}")
    print(f"  validity ok:              {report.validity_ok}")
    print(f"  reliability failures:     {len(report.reliability_failures)}")

    for record in ack_delays(trace):
        print(
            f"  message {record.message.payload!r} acknowledged after {record.delay} rounds "
            f"(bound: {params.tack_rounds})"
        )
    for record in delivery_report(trace, graph):
        reached = len(record.delivered_before_ack)
        total = len(record.reliable_neighbors)
        print(
            f"  reliable neighbors of vertex {record.sender} reached before the ack: "
            f"{reached}/{total}"
        )

    recvs_by_vertex = {}
    for recv in trace.recv_outputs:
        recvs_by_vertex.setdefault(recv.vertex, recv.round_number)
    print(f"  first-delivery rounds per receiver: {dict(sorted(recvs_by_vertex.items()))}")


if __name__ == "__main__":
    main()
