"""Smoke tests: every example script must run to completion.

The examples are part of the public deliverable; these tests execute each one
in a subprocess (exactly as a user would) and check it exits cleanly and
prints the expected kind of report.  They are the slowest tests in the suite
(a few seconds total) but they keep the examples from silently rotting.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

EXAMPLES = [
    ("quickstart.py", "specification check"),
    ("seed_agreement_demo.py", "seed owners emerged"),
    ("adversarial_links_demo.py", "adversary cost"),
    ("sensor_field_monitoring.py", "per-summary outcomes"),
    ("emergency_alert_flood.py", "alert arrival by station"),
    ("neighbor_discovery_demo.py", "mean discovery fraction"),
    ("service_client.py", "service round trip complete"),
]


def run_example(name: str) -> subprocess.CompletedProcess:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    return subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )


@pytest.mark.parametrize("name, expected_phrase", EXAMPLES)
def test_example_runs_and_reports(name, expected_phrase):
    result = run_example(name)
    assert result.returncode == 0, (
        f"{name} exited with {result.returncode}; stderr:\n{result.stderr[-2000:]}"
    )
    assert expected_phrase in result.stdout, (
        f"{name} ran but its report is missing {expected_phrase!r}"
    )


def test_every_example_file_is_covered():
    on_disk = {
        entry for entry in os.listdir(EXAMPLES_DIR)
        if entry.endswith(".py") and not entry.startswith("_")
    }
    covered = {name for name, _ in EXAMPLES}
    assert on_disk == covered, (
        "examples/ and the smoke-test list are out of sync: "
        f"missing {sorted(on_disk - covered)}, stale {sorted(covered - on_disk)}"
    )
