"""Unit tests for the Decay, uniform, and round robin baselines."""

import random

import pytest

from repro.baselines import (
    DecayProcess,
    RoundRobinProcess,
    UniformProcess,
    make_baseline_processes,
)
from repro.baselines.decay import decay_schedule
from repro.core.events import AckOutput, RecvOutput
from repro.core.local_broadcast import DataFrame
from repro.core.messages import Message
from repro.dualgraph.generators import clique_network
from repro.simulation.process import ProcessContext


def ctx(vertex=0, delta=8, delta_prime=16, seed=0):
    return ProcessContext(vertex=vertex, delta=delta, delta_prime=delta_prime,
                          rng=random.Random(seed))


def drive(process, rounds, frames=None):
    frames = frames or {}
    transmitted = {}
    for round_number in range(1, rounds + 1):
        frame = process.transmit(round_number)
        if frame is not None:
            transmitted[round_number] = frame
        process.on_receive(round_number, frames.get(round_number))
    return transmitted


class TestDecaySchedule:
    def test_schedule_values(self):
        assert decay_schedule(8) == [0.5, 0.25, 0.125]
        assert decay_schedule(2) == [0.5]
        assert decay_schedule(1) == [0.5]

    def test_schedule_length_is_log_delta(self):
        assert len(decay_schedule(16)) == 4
        assert len(decay_schedule(17)) == 5

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            decay_schedule(0)


class TestDecayProcess:
    def test_cycles_through_probabilities(self):
        process = DecayProcess(ctx(delta=8), num_cycles=2)
        assert process.schedule == [0.5, 0.25, 0.125]
        assert process.cycle_length == 3
        assert process.transmission_probability(1) == 0.5
        assert process.transmission_probability(3) == 0.125
        assert process.transmission_probability(4) == 0.5  # wraps around

    def test_active_rounds_is_cycles_times_cycle_length(self):
        process = DecayProcess(ctx(delta=8), num_cycles=4)
        assert process.active_rounds == 12

    def test_idle_process_never_transmits(self):
        process = DecayProcess(ctx(), num_cycles=2)
        assert drive(process, 10) == {}

    def test_active_process_acks_after_its_cycles(self):
        process = DecayProcess(ctx(delta=8, seed=1), num_cycles=2)
        message = Message(origin=0, sequence=0)
        process.on_input(1, message)
        drive(process, process.active_rounds + 1)
        acks = [e for e in process.drain_outputs() if isinstance(e, AckOutput)]
        assert len(acks) == 1
        assert acks[0].message.message_id == message.message_id
        assert not process.is_active

    def test_transmits_its_own_message(self):
        process = DecayProcess(ctx(delta=8, seed=2), num_cycles=8)
        message = Message(origin=0, sequence=0)
        process.on_input(1, message)
        transmitted = drive(process, process.active_rounds)
        assert transmitted, "with probability >= 1/8 per round over 24 rounds a transmission is near-certain"
        assert all(f.message.message_id == message.message_id for f in transmitted.values())

    def test_num_cycles_validation(self):
        with pytest.raises(ValueError):
            DecayProcess(ctx(), num_cycles=0)


class TestUniformProcess:
    def test_default_probability_is_one_over_delta(self):
        process = UniformProcess(ctx(delta=8))
        assert process.probability == pytest.approx(1.0 / 8.0)

    def test_explicit_probability_and_duration(self):
        process = UniformProcess(ctx(), probability=1.0, active_rounds=3)
        message = Message(origin=0, sequence=0)
        process.on_input(1, message)
        transmitted = drive(process, 4)
        assert set(transmitted) == {1, 2, 3}
        acks = [e for e in process.drain_outputs() if isinstance(e, AckOutput)]
        assert len(acks) == 1

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            UniformProcess(ctx(), probability=0.0)
        with pytest.raises(ValueError):
            UniformProcess(ctx(), probability=1.5)

    def test_default_active_rounds_scale_with_delta(self):
        assert UniformProcess(ctx(delta=4)).active_rounds == 16
        assert UniformProcess(ctx(delta=16, delta_prime=16)).active_rounds == 64


class TestRoundRobinProcess:
    def test_slot_is_stable_and_within_frame(self):
        process = RoundRobinProcess(ctx(vertex=3), frame_size=10, num_frames=2)
        assert 0 <= process.slot < 10
        other = RoundRobinProcess(ctx(vertex=3), frame_size=10, num_frames=2)
        assert other.slot == process.slot

    def test_transmits_exactly_once_per_frame(self):
        process = RoundRobinProcess(ctx(vertex=5), frame_size=6, num_frames=3)
        process.on_input(1, Message(origin=5, sequence=0))
        transmitted = drive(process, process.active_rounds)
        assert len(transmitted) == 3
        rounds = sorted(transmitted)
        assert rounds[1] - rounds[0] == 6
        assert rounds[2] - rounds[1] == 6

    def test_default_frame_size_is_delta_prime(self):
        process = RoundRobinProcess(ctx(delta=4, delta_prime=12))
        assert process.frame_size == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            RoundRobinProcess(ctx(), frame_size=0)
        with pytest.raises(ValueError):
            RoundRobinProcess(ctx(), num_frames=0)


class TestBaselineSharedBehavior:
    @pytest.mark.parametrize("factory", [
        lambda: DecayProcess(ctx(seed=3), num_cycles=2),
        lambda: UniformProcess(ctx(seed=3), probability=0.3, active_rounds=6),
        lambda: RoundRobinProcess(ctx(seed=3), frame_size=4, num_frames=2),
    ])
    def test_recv_outputs_for_new_messages_only(self, factory):
        process = factory()
        other = Message(origin=7, sequence=0)
        frames = {2: DataFrame(message=other), 4: DataFrame(message=other)}
        drive(process, 5, frames=frames)
        recvs = [e for e in process.drain_outputs() if isinstance(e, RecvOutput)]
        assert len(recvs) == 1
        assert recvs[0].message.message_id == other.message_id

    @pytest.mark.parametrize("factory", [
        lambda: DecayProcess(ctx(seed=3), num_cycles=2),
        lambda: UniformProcess(ctx(seed=3), probability=0.3, active_rounds=6),
        lambda: RoundRobinProcess(ctx(seed=3), frame_size=4, num_frames=2),
    ])
    def test_rejects_input_while_busy(self, factory):
        process = factory()
        process.on_input(1, Message(origin=0, sequence=0))
        with pytest.raises(RuntimeError):
            process.on_input(2, Message(origin=0, sequence=1))

    def test_rejects_non_message_input(self):
        process = DecayProcess(ctx(), num_cycles=1)
        with pytest.raises(TypeError):
            process.on_input(1, "nope")


class TestFactory:
    def test_builds_processes_for_all_vertices(self):
        graph, _ = clique_network(5)
        processes = make_baseline_processes(graph, "decay", random.Random(0), num_cycles=2)
        assert set(processes) == set(graph.vertices)
        assert all(isinstance(p, DecayProcess) for p in processes.values())

    def test_kind_selection(self):
        graph, _ = clique_network(4)
        uniform = make_baseline_processes(graph, "uniform", random.Random(0))
        rr = make_baseline_processes(graph, "round_robin", random.Random(0))
        assert all(isinstance(p, UniformProcess) for p in uniform.values())
        assert all(isinstance(p, RoundRobinProcess) for p in rr.values())

    def test_unknown_kind_rejected(self):
        graph, _ = clique_network(3)
        with pytest.raises(ValueError):
            make_baseline_processes(graph, "aloha", random.Random(0))

    def test_kwargs_are_forwarded(self):
        graph, _ = clique_network(3)
        processes = make_baseline_processes(
            graph, "uniform", random.Random(0), probability=0.9, active_rounds=5
        )
        assert all(p.probability == 0.9 and p.active_rounds == 5 for p in processes.values())
