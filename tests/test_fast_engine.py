"""Determinism regression tests for the fast-path round engine.

The engine has two reception resolvers -- the generic edge-set path (the seed
implementation, kept for adaptive schedulers) and the indexed transmitter-
centric fast path.  These tests pin the contract that made the optimization
safe to ship: for any fixed seed the two paths, and every :class:`TraceMode`,
observe exactly the same execution; and the parallel sweep runner produces
exactly the serial sweep's rows.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    AntiScheduleAdversary,
    CollisionAdaptiveAdversary,
    DualGraph,
    FullInclusionScheduler,
    IIDScheduler,
    LBParams,
    NoUnreliableScheduler,
    PeriodicScheduler,
    Simulator,
    TraceMode,
    TraceScheduler,
    make_lb_processes,
    random_geographic_network,
)
from repro.analysis.sweep import ParallelSweepRunner, derive_point_seed, sweep
from repro.simulation.environment import SaturatingEnvironment, SingleShotEnvironment

SCHEDULER_FACTORIES = {
    "none": lambda g: NoUnreliableScheduler(g),
    "full": lambda g: FullInclusionScheduler(g),
    "iid": lambda g: IIDScheduler(g, probability=0.4, seed=13),
    "periodic": lambda g: PeriodicScheduler(g, on_rounds=3, off_rounds=2, stagger=True, seed=5),
    "anti": lambda g: AntiScheduleAdversary(g, [0.5, 0.02, 0.25]),
}


def _make_network():
    graph, _ = random_geographic_network(22, side=3.2, rng=41, require_connected=True)
    return graph


def _build_simulator(graph, fast_path, scheduler_key, trace_mode=TraceMode.FULL):
    params = LBParams.small_for_testing(
        delta=graph.max_reliable_degree, delta_prime=graph.max_potential_degree
    )
    rng = random.Random(99)
    senders = sorted(graph.vertices)[:3]
    simulator = Simulator(
        graph,
        make_lb_processes(graph, params, rng),
        scheduler=SCHEDULER_FACTORIES[scheduler_key](graph),
        environment=SingleShotEnvironment(senders=senders),
        trace_mode=trace_mode,
        fast_path=fast_path,
    )
    return simulator, params


class TestFastPathMatchesLegacy:
    @pytest.mark.parametrize("scheduler_key", sorted(SCHEDULER_FACTORIES))
    def test_identical_traces_for_fixed_seed(self, scheduler_key):
        graph = _make_network()
        fast_sim, params = _build_simulator(graph, True, scheduler_key)
        legacy_sim, _ = _build_simulator(graph, False, scheduler_key)
        assert fast_sim.uses_fast_path
        assert not legacy_sim.uses_fast_path

        rounds = 2 * params.phase_length
        fast_trace = fast_sim.run(rounds)
        legacy_trace = legacy_sim.run(rounds)

        assert fast_trace.events == legacy_trace.events
        for round_number in range(1, rounds + 1):
            assert fast_trace.transmissions_in_round(
                round_number
            ) == legacy_trace.transmissions_in_round(round_number)
            assert fast_trace.receptions_in_round(
                round_number
            ) == legacy_trace.receptions_in_round(round_number)

    def test_adaptive_scheduler_falls_back_to_generic_path(self):
        graph = _make_network()
        params = LBParams.small_for_testing(
            delta=graph.max_reliable_degree, delta_prime=graph.max_potential_degree
        )
        simulator = Simulator(
            graph,
            make_lb_processes(graph, params, random.Random(1)),
            scheduler=CollisionAdaptiveAdversary(graph),
        )
        assert not simulator.uses_fast_path
        simulator.run(params.phase_length)  # runs without error

    def test_graph_mutation_between_runs_rebinds_index(self):
        graph = DualGraph([0, 1, 2, 3], reliable_edges=[(0, 1), (1, 2)])
        params = LBParams.small_for_testing(delta=4, delta_prime=4)
        simulator = Simulator(
            graph,
            make_lb_processes(graph, params, random.Random(5)),
            scheduler=FullInclusionScheduler(graph),
            environment=SaturatingEnvironment(senders=[0]),
        )
        simulator.run(3)
        graph.add_unreliable_edge(2, 3)
        simulator.run(3)  # must pick up the new edge without error
        assert simulator.trace.num_rounds == 6

    def test_graph_mutation_mid_run_stays_identical_to_generic(self):
        class MutatingEnvironment(SaturatingEnvironment):
            """Adds an unreliable edge partway through a single run() call."""

            def __init__(self, graph, senders):
                super().__init__(senders=senders)
                self._graph_ref = graph

            def inputs_for_round(self, round_number):
                if round_number == 5:
                    self._graph_ref.add_unreliable_edge(0, 3)
                return super().inputs_for_round(round_number)

        def run_one(fast_path):
            graph = DualGraph(
                [0, 1, 2, 3],
                reliable_edges=[(0, 1), (1, 2)],
                unreliable_edges=[(2, 3)],
            )
            params = LBParams.small_for_testing(delta=4, delta_prime=4)
            simulator = Simulator(
                graph,
                make_lb_processes(graph, params, random.Random(17)),
                scheduler=IIDScheduler(graph, probability=0.6, seed=3),
                environment=MutatingEnvironment(graph, senders=[0, 2]),
                fast_path=fast_path,
            )
            return simulator.run(2 * params.phase_length)

        fast_trace = run_one(True)
        legacy_trace = run_one(False)
        assert fast_trace.events == legacy_trace.events
        for round_number in range(1, fast_trace.num_rounds + 1):
            assert fast_trace.receptions_in_round(
                round_number
            ) == legacy_trace.receptions_in_round(round_number)


class TestTraceModes:
    def _run(self, trace_mode, fast_path=True):
        graph = _make_network()
        simulator, params = _build_simulator(graph, fast_path, "iid", trace_mode)
        trace = simulator.run(2 * params.phase_length)
        return trace

    def test_events_mode_keeps_events_drops_frames(self):
        full = self._run(TraceMode.FULL)
        events_only = self._run(TraceMode.EVENTS)
        assert events_only.events == full.events
        assert events_only.transmissions_in_round(1) == {}
        assert events_only.num_transmissions == full.num_transmissions
        assert events_only.num_receptions == full.num_receptions

    def test_counters_mode_keeps_only_counters(self):
        full = self._run(TraceMode.FULL)
        counters = self._run(TraceMode.COUNTERS)
        assert counters.events == ()
        assert counters.event_counts == full.event_counts
        assert counters.num_transmissions == full.num_transmissions
        assert counters.num_receptions == full.num_receptions
        assert counters.num_rounds == full.num_rounds

    def test_counters_agree_between_paths(self):
        fast = self._run(TraceMode.COUNTERS, fast_path=True)
        legacy = self._run(TraceMode.COUNTERS, fast_path=False)
        assert fast.event_counts == legacy.event_counts
        assert fast.num_transmissions == legacy.num_transmissions
        assert fast.num_receptions == legacy.num_receptions

    def test_legacy_record_frames_flag_maps_to_events_mode(self):
        graph = _make_network()
        params = LBParams.small_for_testing(
            delta=graph.max_reliable_degree, delta_prime=graph.max_potential_degree
        )
        simulator = Simulator(
            graph,
            make_lb_processes(graph, params, random.Random(3)),
            record_frames=False,
        )
        assert simulator.trace.mode is TraceMode.EVENTS


class TestSchedulerDeltaInterface:
    @pytest.mark.parametrize("scheduler_key", sorted(SCHEDULER_FACTORIES))
    def test_edge_ids_match_edge_sets(self, scheduler_key):
        graph = _make_network()
        scheduler = SCHEDULER_FACTORIES[scheduler_key](graph)
        index = graph.topology_index()
        for round_number in range(1, 25):
            ids = scheduler.unreliable_edge_ids_for_round(round_number)
            via_ids = frozenset(index.unreliable_edge_list[eid] for eid in ids)
            reference = (
                scheduler.unreliable_edges_for_round(round_number) & graph.unreliable_edges
            )
            assert via_ids == reference
            for eid in range(index.num_unreliable_edges):
                assert scheduler.unreliable_edge_included(eid, round_number) == (
                    eid in set(ids)
                )

    def test_trace_scheduler_ids(self):
        graph = DualGraph(
            [0, 1, 2, 3],
            reliable_edges=[(0, 1)],
            unreliable_edges=[(1, 2), (2, 3)],
        )
        scheduler = TraceScheduler(graph, [[(1, 2)], []], cycle=True)
        index = graph.topology_index()
        assert [
            frozenset(index.unreliable_edge_list[eid] for eid in scheduler.unreliable_edge_ids_for_round(t))
            for t in (1, 2, 3)
        ] == [
            scheduler.unreliable_edges_for_round(t) for t in (1, 2, 3)
        ]

    def test_memoization_tracks_graph_mutation(self):
        graph = DualGraph([0, 1, 2], reliable_edges=[(0, 1)], unreliable_edges=[(1, 2)])
        scheduler = FullInclusionScheduler(graph)
        assert len(scheduler.unreliable_edge_ids_for_round(1)) == 1
        graph.add_unreliable_edge(0, 2)
        assert len(scheduler.unreliable_edge_ids_for_round(1)) == 2


class TestTopologyIndex:
    def test_csr_matches_adjacency(self):
        graph = _make_network()
        index = graph.topology_index()
        assert index.n == graph.n
        for i, vertex in enumerate(index.vertices):
            assert index.index_of[vertex] == i
            row = index.g_indices[index.g_indptr[i] : index.g_indptr[i + 1]]
            assert tuple(row) == index.g_neighbors[i]
            neighbors = frozenset(index.vertices[j] for j in row)
            assert neighbors == graph.reliable_neighbors(vertex)
        seen = set()
        for eid, edge in enumerate(index.unreliable_edge_list):
            assert index.unreliable_id_of[edge] == eid
            endpoints = frozenset(
                (index.vertices[index.unreliable_u[eid]], index.vertices[index.unreliable_v[eid]])
            )
            assert frozenset(endpoints) == edge
            seen.add(edge)
        assert seen == set(graph.unreliable_edges)

    def test_index_is_cached_and_invalidated(self):
        graph = DualGraph([0, 1, 2], reliable_edges=[(0, 1)])
        first = graph.topology_index()
        assert graph.topology_index() is first
        graph.add_reliable_edge(1, 2)
        second = graph.topology_index()
        assert second is not first
        assert second.g_neighbors[1] != first.g_neighbors[1]


# ----------------------------------------------------------------------
# parallel sweep determinism
# ----------------------------------------------------------------------
def _sweep_point(alpha: int, beta: str) -> dict:
    """Module-level so it is picklable by the process pool."""
    return {"product": alpha * len(beta), "tag": f"{alpha}-{beta}"}


def _seeded_point(alpha: int, seed: int = 0) -> dict:
    return {"value": random.Random(seed).randint(0, 10**9), "alpha2": alpha * 2}


GRID = {"alpha": [1, 2, 3], "beta": ["x", "yy"]}


class TestParallelSweep:
    def test_parallel_rows_equal_serial_rows(self):
        serial = sweep(GRID, _sweep_point)
        parallel = ParallelSweepRunner(jobs=2).run(GRID, _sweep_point)
        assert parallel.rows == serial.rows

    def test_jobs_one_equals_serial(self):
        serial = sweep(GRID, _sweep_point)
        inline = ParallelSweepRunner(jobs=1).run(GRID, _sweep_point)
        assert inline.rows == serial.rows

    def test_derived_seeds_are_stable_and_distinct(self):
        seeds = [derive_point_seed(123, i) for i in range(50)]
        assert seeds == [derive_point_seed(123, i) for i in range(50)]
        assert len(set(seeds)) == 50
        assert derive_point_seed(124, 0) != derive_point_seed(123, 1)

    def test_seed_injection_identical_serial_and_parallel(self):
        grid = {"alpha": [4, 5, 6, 7]}
        serial = ParallelSweepRunner(jobs=1, base_seed=7).run(grid, _seeded_point)
        parallel = ParallelSweepRunner(jobs=2, base_seed=7).run(grid, _seeded_point)
        assert serial.rows == parallel.rows
        # Different base seeds must give different per-point draws.
        other = ParallelSweepRunner(jobs=1, base_seed=8).run(grid, _seeded_point)
        assert [r["value"] for r in other.rows] != [r["value"] for r in serial.rows]
