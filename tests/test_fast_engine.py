"""Determinism regression tests for the fast-path round engine.

The engine has two reception resolvers -- the generic edge-set path (the seed
implementation, kept for adaptive schedulers) and the indexed transmitter-
centric fast path -- and two process stepping modes -- per-process and
batched cohort drivers.  These tests pin the contract that made the
optimizations safe to ship: for any fixed seed every resolver/stepping
combination, and every :class:`TraceMode`, observes exactly the same
execution; and the parallel sweep runner produces exactly the serial sweep's
rows.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    AntiScheduleAdversary,
    CollisionAdaptiveAdversary,
    DualGraph,
    FullInclusionScheduler,
    IIDScheduler,
    LBParams,
    NoUnreliableScheduler,
    PeriodicScheduler,
    Simulator,
    TraceMode,
    TraceScheduler,
    cluster_network,
    make_lb_processes,
    random_geographic_network,
)
from repro.analysis.sweep import ParallelSweepRunner, derive_point_seed, sweep
from repro.core.local_broadcast import LocalBroadcastProcess
from repro.simulation.environment import SaturatingEnvironment, SingleShotEnvironment
from repro.simulation.process import ProcessContext, SilentProcess

SCHEDULER_FACTORIES = {
    "none": lambda g: NoUnreliableScheduler(g),
    "full": lambda g: FullInclusionScheduler(g),
    "iid": lambda g: IIDScheduler(g, probability=0.4, seed=13),
    "periodic": lambda g: PeriodicScheduler(g, on_rounds=3, off_rounds=2, stagger=True, seed=5),
    "anti": lambda g: AntiScheduleAdversary(g, [0.5, 0.02, 0.25]),
}


def _make_network():
    graph, _ = random_geographic_network(22, side=3.2, rng=41, require_connected=True)
    return graph


def _build_simulator(
    graph, fast_path, scheduler_key, trace_mode=TraceMode.FULL, vector_path=False
):
    params = LBParams.small_for_testing(
        delta=graph.max_reliable_degree, delta_prime=graph.max_potential_degree
    )
    rng = random.Random(99)
    senders = sorted(graph.vertices)[:3]
    simulator = Simulator(
        graph,
        make_lb_processes(graph, params, rng),
        scheduler=SCHEDULER_FACTORIES[scheduler_key](graph),
        environment=SingleShotEnvironment(senders=senders),
        trace_mode=trace_mode,
        fast_path=fast_path,
        vector_path=vector_path,
    )
    return simulator, params


class TestFastPathMatchesLegacy:
    @pytest.mark.parametrize("resolver", ["point", "vector"])
    @pytest.mark.parametrize("scheduler_key", sorted(SCHEDULER_FACTORIES))
    def test_identical_traces_for_fixed_seed(self, scheduler_key, resolver):
        graph = _make_network()
        fast_sim, params = _build_simulator(
            graph, True, scheduler_key, vector_path=(resolver == "vector")
        )
        legacy_sim, _ = _build_simulator(graph, False, scheduler_key)
        assert fast_sim.uses_fast_path
        assert fast_sim.uses_vector_path == (resolver == "vector")
        assert not legacy_sim.uses_fast_path

        rounds = 2 * params.phase_length
        fast_trace = fast_sim.run(rounds)
        legacy_trace = legacy_sim.run(rounds)

        assert fast_trace.events == legacy_trace.events
        for round_number in range(1, rounds + 1):
            assert fast_trace.transmissions_in_round(
                round_number
            ) == legacy_trace.transmissions_in_round(round_number)
            assert fast_trace.receptions_in_round(
                round_number
            ) == legacy_trace.receptions_in_round(round_number)

    def test_adaptive_scheduler_falls_back_to_generic_path(self):
        graph = _make_network()
        params = LBParams.small_for_testing(
            delta=graph.max_reliable_degree, delta_prime=graph.max_potential_degree
        )
        simulator = Simulator(
            graph,
            make_lb_processes(graph, params, random.Random(1)),
            scheduler=CollisionAdaptiveAdversary(graph),
        )
        # vector_path defaults to True, but an adaptive scheduler disables the
        # whole fast path, vectorized resolution included.
        assert not simulator.uses_fast_path
        assert not simulator.uses_vector_path
        simulator.run(params.phase_length)  # runs without error

    def test_vector_resolver_matches_generic_under_adaptive_fallback(self):
        """Requesting the vector path against an adaptive adversary must not
        change the execution: both engines land on the generic resolver."""

        def run_one(vector_path):
            graph = _make_network()
            params = LBParams.small_for_testing(
                delta=graph.max_reliable_degree,
                delta_prime=graph.max_potential_degree,
            )
            simulator = Simulator(
                graph,
                make_lb_processes(graph, params, random.Random(12)),
                scheduler=CollisionAdaptiveAdversary(graph),
                environment=SingleShotEnvironment(senders=sorted(graph.vertices)[:3]),
                fast_path=True,
                vector_path=vector_path,
            )
            assert not simulator.uses_vector_path
            return simulator.run(2 * params.phase_length)

        requested = run_one(True)
        reference = run_one(False)
        assert requested.events == reference.events
        for round_number in range(1, requested.num_rounds + 1):
            assert requested.receptions_in_round(
                round_number
            ) == reference.receptions_in_round(round_number)

    def test_graph_mutation_between_runs_rebinds_index(self):
        graph = DualGraph([0, 1, 2, 3], reliable_edges=[(0, 1), (1, 2)])
        params = LBParams.small_for_testing(delta=4, delta_prime=4)
        simulator = Simulator(
            graph,
            make_lb_processes(graph, params, random.Random(5)),
            scheduler=FullInclusionScheduler(graph),
            environment=SaturatingEnvironment(senders=[0]),
        )
        simulator.run(3)
        graph.add_unreliable_edge(2, 3)
        simulator.run(3)  # must pick up the new edge without error
        assert simulator.trace.num_rounds == 6

    def test_graph_mutation_mid_run_stays_identical_to_generic(self):
        class MutatingEnvironment(SaturatingEnvironment):
            """Adds an unreliable edge partway through a single run() call."""

            def __init__(self, graph, senders):
                super().__init__(senders=senders)
                self._graph_ref = graph

            def inputs_for_round(self, round_number):
                if round_number == 5:
                    self._graph_ref.add_unreliable_edge(0, 3)
                return super().inputs_for_round(round_number)

        def run_one(fast_path, vector_path=False):
            graph = DualGraph(
                [0, 1, 2, 3],
                reliable_edges=[(0, 1), (1, 2)],
                unreliable_edges=[(2, 3)],
            )
            params = LBParams.small_for_testing(delta=4, delta_prime=4)
            simulator = Simulator(
                graph,
                make_lb_processes(graph, params, random.Random(17)),
                scheduler=IIDScheduler(graph, probability=0.6, seed=3),
                environment=MutatingEnvironment(graph, senders=[0, 2]),
                fast_path=fast_path,
                vector_path=vector_path,
            )
            return simulator.run(2 * params.phase_length)

        fast_trace = run_one(True)
        vector_trace = run_one(True, vector_path=True)
        legacy_trace = run_one(False)
        assert fast_trace.events == legacy_trace.events
        assert vector_trace.events == legacy_trace.events
        for round_number in range(1, fast_trace.num_rounds + 1):
            assert fast_trace.receptions_in_round(
                round_number
            ) == legacy_trace.receptions_in_round(round_number)
            assert vector_trace.receptions_in_round(
                round_number
            ) == legacy_trace.receptions_in_round(round_number)


class TestTraceModes:
    def _run(self, trace_mode, fast_path=True):
        graph = _make_network()
        simulator, params = _build_simulator(graph, fast_path, "iid", trace_mode)
        trace = simulator.run(2 * params.phase_length)
        return trace

    def test_events_mode_keeps_events_drops_frames(self):
        full = self._run(TraceMode.FULL)
        events_only = self._run(TraceMode.EVENTS)
        assert events_only.events == full.events
        assert events_only.transmissions_in_round(1) == {}
        assert events_only.num_transmissions == full.num_transmissions
        assert events_only.num_receptions == full.num_receptions

    def test_counters_mode_keeps_only_counters(self):
        full = self._run(TraceMode.FULL)
        counters = self._run(TraceMode.COUNTERS)
        assert counters.events == ()
        assert counters.event_counts == full.event_counts
        assert counters.num_transmissions == full.num_transmissions
        assert counters.num_receptions == full.num_receptions
        assert counters.num_rounds == full.num_rounds

    def test_counters_agree_between_paths(self):
        fast = self._run(TraceMode.COUNTERS, fast_path=True)
        legacy = self._run(TraceMode.COUNTERS, fast_path=False)
        assert fast.event_counts == legacy.event_counts
        assert fast.num_transmissions == legacy.num_transmissions
        assert fast.num_receptions == legacy.num_receptions

    def test_legacy_record_frames_flag_maps_to_events_mode_and_warns(self):
        graph = _make_network()
        params = LBParams.small_for_testing(
            delta=graph.max_reliable_degree, delta_prime=graph.max_potential_degree
        )
        with pytest.warns(DeprecationWarning, match="record_frames"):
            simulator = Simulator(
                graph,
                make_lb_processes(graph, params, random.Random(3)),
                record_frames=False,
            )
        assert simulator.trace.mode is TraceMode.EVENTS
        with pytest.warns(DeprecationWarning, match="record_frames"):
            simulator = Simulator(
                graph,
                make_lb_processes(graph, params, random.Random(3)),
                record_frames=True,
            )
        assert simulator.trace.mode is TraceMode.FULL


class TestSchedulerDeltaInterface:
    @pytest.mark.parametrize("scheduler_key", sorted(SCHEDULER_FACTORIES))
    def test_edge_ids_match_edge_sets(self, scheduler_key):
        graph = _make_network()
        scheduler = SCHEDULER_FACTORIES[scheduler_key](graph)
        index = graph.topology_index()
        for round_number in range(1, 25):
            ids = scheduler.unreliable_edge_ids_for_round(round_number)
            via_ids = frozenset(index.unreliable_edge_list[eid] for eid in ids)
            reference = (
                scheduler.unreliable_edges_for_round(round_number) & graph.unreliable_edges
            )
            assert via_ids == reference
            for eid in range(index.num_unreliable_edges):
                assert scheduler.unreliable_edge_included(eid, round_number) == (
                    eid in set(ids)
                )

    def test_trace_scheduler_ids(self):
        graph = DualGraph(
            [0, 1, 2, 3],
            reliable_edges=[(0, 1)],
            unreliable_edges=[(1, 2), (2, 3)],
        )
        scheduler = TraceScheduler(graph, [[(1, 2)], []], cycle=True)
        index = graph.topology_index()
        assert [
            frozenset(index.unreliable_edge_list[eid] for eid in scheduler.unreliable_edge_ids_for_round(t))
            for t in (1, 2, 3)
        ] == [
            scheduler.unreliable_edges_for_round(t) for t in (1, 2, 3)
        ]

    def test_memoization_tracks_graph_mutation(self):
        graph = DualGraph([0, 1, 2], reliable_edges=[(0, 1)], unreliable_edges=[(1, 2)])
        scheduler = FullInclusionScheduler(graph)
        assert len(scheduler.unreliable_edge_ids_for_round(1)) == 1
        graph.add_unreliable_edge(0, 2)
        assert len(scheduler.unreliable_edge_ids_for_round(1)) == 2

    @pytest.mark.parametrize("scheduler_key", sorted(SCHEDULER_FACTORIES))
    def test_id_set_view_matches_id_tuple(self, scheduler_key):
        graph = _make_network()
        scheduler = SCHEDULER_FACTORIES[scheduler_key](graph)
        for round_number in (1, 2, 7, 19):
            assert scheduler.unreliable_edge_id_set_for_round(round_number) == frozenset(
                scheduler.unreliable_edge_ids_for_round(round_number)
            )


def _cache_probe_graph():
    """A fixed small dual graph, rebuilt per call (distinct objects, equal
    structure -- exactly the cross-trial sharing scenario)."""
    return DualGraph(
        [0, 1, 2, 3, 4],
        reliable_edges=[(0, 1), (1, 2), (3, 4)],
        unreliable_edges=[(0, 2), (1, 3), (2, 4), (0, 4)],
    )


def _delta_cache_probe_point(alpha: int) -> dict:
    """Module-level so it is picklable; reports whether the process cache was
    preloaded with the parent's delta for round ``alpha``."""
    from repro.dualgraph.adversary import process_delta_cache

    scheduler = IIDScheduler(_cache_probe_graph(), probability=0.4, seed=21)
    cache = process_delta_cache()
    hits_before = cache.hits
    ids = scheduler.unreliable_edge_ids_for_round(alpha)
    return {"ids": list(ids), "preloaded": cache.hits > hits_before}


class TestSchedulerDeltaCache:
    def _schedulers(self):
        return (
            IIDScheduler(_cache_probe_graph(), probability=0.4, seed=21),
            IIDScheduler(_cache_probe_graph(), probability=0.4, seed=21),
        )

    def test_structurally_equal_trials_share_deltas(self):
        from repro import SchedulerDeltaCache

        first, second = self._schedulers()
        cache = SchedulerDeltaCache()
        first.attach_delta_cache(cache)
        second.attach_delta_cache(cache)
        for round_number in range(1, 11):
            ids = first.unreliable_edge_ids_for_round(round_number)
            assert second.unreliable_edge_ids_for_round(round_number) is ids
        assert cache.hits == 10 and cache.misses == 10

    def test_set_views_are_shared_too(self):
        from repro import SchedulerDeltaCache

        first, second = self._schedulers()
        cache = SchedulerDeltaCache()
        first.attach_delta_cache(cache)
        second.attach_delta_cache(cache)
        view = first.unreliable_edge_id_set_for_round(5)
        assert second.unreliable_edge_id_set_for_round(5) is view

    def test_cache_keys_distinguish_configurations(self):
        graph = _cache_probe_graph()
        base = IIDScheduler(graph, probability=0.4, seed=21)
        assert base.delta_cache_key() is not None
        assert base.delta_cache_key() == IIDScheduler(
            _cache_probe_graph(), probability=0.4, seed=21
        ).delta_cache_key()
        for other in (
            IIDScheduler(graph, probability=0.4, seed=22),
            IIDScheduler(graph, probability=0.5, seed=21),
            PeriodicScheduler(graph, on_rounds=3, off_rounds=2),
        ):
            assert other.delta_cache_key() != base.delta_cache_key()
        # A structurally different topology must not share keys either.
        mutated = _cache_probe_graph()
        mutated.add_unreliable_edge(3, 0)
        assert (
            IIDScheduler(mutated, probability=0.4, seed=21).delta_cache_key()
            != base.delta_cache_key()
        )

    def test_adaptive_and_unknown_schedulers_are_not_cacheable(self):
        graph = _cache_probe_graph()
        assert CollisionAdaptiveAdversary(graph).delta_cache_key() is None
        assert TraceScheduler(graph, [[(0, 2)]]).delta_cache_key() is None
        with pytest.raises(ValueError):
            from repro.dualgraph import prebuild_scheduler_deltas

            prebuild_scheduler_deltas(CollisionAdaptiveAdversary(graph), 5)

    def test_cache_key_tracks_graph_mutation(self):
        graph = _cache_probe_graph()
        scheduler = IIDScheduler(graph, probability=0.4, seed=21)
        before = scheduler.delta_cache_key()
        graph.add_unreliable_edge(3, 0)
        after = scheduler.delta_cache_key()
        assert before != after

    def test_fifo_bound_evicts_but_stays_correct(self):
        from repro import SchedulerDeltaCache

        scheduler, _ = self._schedulers()
        cache = SchedulerDeltaCache(maxsize=4)
        scheduler.attach_delta_cache(cache)
        reference = {
            t: scheduler.unreliable_edge_ids_for_round(t) for t in range(1, 13)
        }
        assert len(cache) <= 4
        # Evicted rounds are recomputed, not wrong.
        fresh = IIDScheduler(_cache_probe_graph(), probability=0.4, seed=21)
        fresh.attach_delta_cache(cache)
        for t, ids in reference.items():
            assert fresh.unreliable_edge_ids_for_round(t) == ids

    def test_detached_cache_disables_sharing(self):
        from repro import SchedulerDeltaCache

        first, second = self._schedulers()
        cache = SchedulerDeltaCache()
        first.attach_delta_cache(cache)
        second.attach_delta_cache(None)
        ids = first.unreliable_edge_ids_for_round(3)
        assert second.unreliable_edge_ids_for_round(3) == ids
        assert cache.hits == 0  # second never consulted the cache

    def test_prebuilt_table_roundtrip(self):
        from repro import SchedulerDeltaCache
        from repro.dualgraph import prebuild_scheduler_deltas

        scheduler, fresh = self._schedulers()
        scheduler.attach_delta_cache(None)
        table = prebuild_scheduler_deltas(scheduler, 8)
        assert len(table) == 8
        fresh.attach_delta_cache(SchedulerDeltaCache(table))
        for t in range(1, 9):
            assert fresh.unreliable_edge_ids_for_round(t) == table[
                (scheduler.delta_cache_key(), t)
            ]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_sweep_workers_consume_prebuilt_delta_table(self, jobs):
        from repro.dualgraph import prebuild_scheduler_deltas

        scheduler = IIDScheduler(_cache_probe_graph(), probability=0.4, seed=21)
        scheduler.attach_delta_cache(None)
        table = prebuild_scheduler_deltas(scheduler, 3)
        result = ParallelSweepRunner(jobs=jobs).run(
            {"alpha": [1, 2, 3]},
            _delta_cache_probe_point,
            common={"scheduler_delta_table": table},
        )
        index = scheduler.graph.topology_index()
        for row in result.rows:
            # The reserved kwarg never reaches the run callable as an
            # argument; instead the worker's process cache answered the
            # scheduler's very first delta query.
            assert row["preloaded"], row
            expected = scheduler._compute_unreliable_edge_ids(row["alpha"], index)
            assert tuple(row["ids"]) == expected


class TestTopologyIndex:
    def test_csr_matches_adjacency(self):
        graph = _make_network()
        index = graph.topology_index()
        assert index.n == graph.n
        for i, vertex in enumerate(index.vertices):
            assert index.index_of[vertex] == i
            row = index.g_indices[index.g_indptr[i] : index.g_indptr[i + 1]]
            assert tuple(row) == index.g_neighbors[i]
            neighbors = frozenset(index.vertices[j] for j in row)
            assert neighbors == graph.reliable_neighbors(vertex)
        seen = set()
        for eid, edge in enumerate(index.unreliable_edge_list):
            assert index.unreliable_id_of[edge] == eid
            endpoints = frozenset(
                (index.vertices[index.unreliable_u[eid]], index.vertices[index.unreliable_v[eid]])
            )
            assert frozenset(endpoints) == edge
            seen.add(edge)
        assert seen == set(graph.unreliable_edges)

    def test_index_is_cached_and_invalidated(self):
        graph = DualGraph([0, 1, 2], reliable_edges=[(0, 1)])
        first = graph.topology_index()
        assert graph.topology_index() is first
        graph.add_reliable_edge(1, 2)
        second = graph.topology_index()
        assert second is not first
        assert second.g_neighbors[1] != first.g_neighbors[1]


# ----------------------------------------------------------------------
# batched cohort stepping
# ----------------------------------------------------------------------
def _assert_identical_traces(trace_a, trace_b, rounds):
    assert trace_a.events == trace_b.events
    for round_number in range(1, rounds + 1):
        assert trace_a.transmissions_in_round(
            round_number
        ) == trace_b.transmissions_in_round(round_number)
        assert trace_a.receptions_in_round(round_number) == trace_b.receptions_in_round(
            round_number
        )


GRAPH_FACTORIES = {
    "geometric": lambda: random_geographic_network(
        26, side=3.4, rng=23, require_connected=True
    )[0],
    "regions": lambda: cluster_network(
        clusters=3, cluster_size=7, cluster_spacing=1.4, rng=31
    )[0],
}


class TestBatchedStepping:
    def _build(self, graph, batch_path, reuse=1, fast_path=None, vector_path=False):
        params = LBParams.small_for_testing(
            delta=graph.max_reliable_degree, delta_prime=graph.max_potential_degree
        )
        simulator = Simulator(
            graph,
            make_lb_processes(
                graph, params, random.Random(71), seed_reuse_phases=reuse
            ),
            scheduler=IIDScheduler(graph, probability=0.5, seed=7),
            environment=SaturatingEnvironment(senders=sorted(graph.vertices)[:5]),
            fast_path=batch_path if fast_path is None else fast_path,
            vector_path=vector_path,
            batch_path=batch_path,
        )
        return simulator, params

    @pytest.mark.parametrize("graph_kind", sorted(GRAPH_FACTORIES))
    @pytest.mark.parametrize("reuse", [1, 2, 3])
    def test_batched_identical_to_generic_path(self, graph_kind, reuse):
        """Batched engine vs the seed engine, incl. seed_reuse_phases > 1."""
        graph = GRAPH_FACTORIES[graph_kind]()
        batched_sim, params = self._build(graph, True, reuse=reuse)
        generic_sim, _ = self._build(graph, False, reuse=reuse)
        assert batched_sim.uses_batch_stepping
        assert not generic_sim.uses_batch_stepping and not generic_sim.uses_fast_path

        rounds = 3 * params.phase_length
        _assert_identical_traces(
            batched_sim.run(rounds), generic_sim.run(rounds), rounds
        )

    @pytest.mark.parametrize("graph_kind", sorted(GRAPH_FACTORIES))
    @pytest.mark.parametrize("reuse", [1, 2, 3])
    def test_vectorized_identical_to_generic_path(self, graph_kind, reuse):
        """The full production stack (vector resolver + batched stepping) vs
        the seed engine, over geometric and region graphs and every seed
        reuse factor."""
        graph = GRAPH_FACTORIES[graph_kind]()
        vector_sim, params = self._build(graph, True, reuse=reuse, vector_path=True)
        generic_sim, _ = self._build(graph, False, reuse=reuse)
        assert vector_sim.uses_vector_path and vector_sim.uses_batch_stepping

        rounds = 3 * params.phase_length
        _assert_identical_traces(
            vector_sim.run(rounds), generic_sim.run(rounds), rounds
        )

    @pytest.mark.parametrize("graph_kind", sorted(GRAPH_FACTORIES))
    def test_vectorized_identical_to_point_query_resolver(self, graph_kind):
        """Vector resolver vs the PR-2 point-query resolver, batched stepping
        on both sides, so the only difference is reception resolution."""
        graph = GRAPH_FACTORIES[graph_kind]()
        vector_sim, params = self._build(graph, True, vector_path=True)
        point_sim, _ = self._build(graph, True, vector_path=False)
        assert vector_sim.uses_vector_path
        assert point_sim.uses_fast_path and not point_sim.uses_vector_path

        rounds = 3 * params.phase_length
        _assert_identical_traces(vector_sim.run(rounds), point_sim.run(rounds), rounds)

    def test_batched_identical_to_per_process_fast_path(self):
        graph = GRAPH_FACTORIES["geometric"]()
        batched_sim, params = self._build(graph, True)
        fast_sim, _ = self._build(graph, False, fast_path=True)
        assert fast_sim.uses_fast_path and not fast_sim.uses_batch_stepping

        rounds = 3 * params.phase_length
        _assert_identical_traces(batched_sim.run(rounds), fast_sim.run(rounds), rounds)

    def test_cohort_decisions_are_shared(self):
        graph = GRAPH_FACTORIES["geometric"]()
        simulator, params = self._build(graph, True)
        simulator.run(3 * params.phase_length)
        (driver,) = simulator.batch_drivers
        tracker = driver.tracker
        assert tracker.computed_decisions > 0
        # Saturating senders on a connected network commit overlapping seeds,
        # so at least some body-round decisions must have been cohort-shared.
        assert tracker.shared_decisions > 0

    def test_mixed_population_batches_only_groupable_processes(self):
        graph = GRAPH_FACTORIES["geometric"]()
        params = LBParams.small_for_testing(
            delta=graph.max_reliable_degree, delta_prime=graph.max_potential_degree
        )

        def build(batch_path):
            rng = random.Random(5)
            processes = {}
            silent = sorted(graph.vertices)[-3:]
            for vertex in sorted(graph.vertices, key=repr):
                ctx = ProcessContext(
                    vertex=vertex,
                    delta=max(graph.max_reliable_degree, params.delta),
                    delta_prime=max(graph.max_potential_degree, params.delta_prime),
                    rng=random.Random(rng.getrandbits(64)),
                )
                if vertex in silent:
                    processes[vertex] = SilentProcess(ctx)
                else:
                    processes[vertex] = LocalBroadcastProcess(ctx, params)
            return Simulator(
                graph,
                processes,
                scheduler=IIDScheduler(graph, probability=0.5, seed=11),
                environment=SingleShotEnvironment(senders=sorted(graph.vertices)[:3]),
                batch_path=batch_path,
                fast_path=batch_path,
            )

        batched_sim = build(True)
        generic_sim = build(False)
        assert batched_sim.uses_batch_stepping
        (driver,) = batched_sim.batch_drivers
        assert len(driver.members) == graph.n - 3

        rounds = 3 * params.phase_length
        _assert_identical_traces(
            batched_sim.run(rounds), generic_sim.run(rounds), rounds
        )

    def test_subclasses_are_never_batched(self):
        class TweakedLB(LocalBroadcastProcess):
            pass

        ctx = ProcessContext(vertex=0, delta=4, delta_prime=4)
        params = LBParams.small_for_testing(delta=4, delta_prime=4)
        assert TweakedLB(ctx, params).batch_group_key() is None
        assert LocalBroadcastProcess(ctx.child(), params).batch_group_key() is not None

    @pytest.mark.parametrize("trace_mode", list(TraceMode))
    def test_trace_modes_under_batching(self, trace_mode):
        graph = GRAPH_FACTORIES["geometric"]()
        params = LBParams.small_for_testing(
            delta=graph.max_reliable_degree, delta_prime=graph.max_potential_degree
        )

        def build(batch_path, mode):
            return Simulator(
                graph,
                make_lb_processes(graph, params, random.Random(9)),
                scheduler=IIDScheduler(graph, probability=0.4, seed=9),
                environment=SaturatingEnvironment(senders=sorted(graph.vertices)[:4]),
                trace_mode=mode,
                batch_path=batch_path,
            )

        rounds = 2 * params.phase_length
        batched = build(True, trace_mode).run(rounds)
        reference = build(False, TraceMode.FULL).run(rounds)
        assert batched.event_counts == reference.event_counts
        assert batched.num_transmissions == reference.num_transmissions
        assert batched.num_receptions == reference.num_receptions


def _have_numpy() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


KERNEL_BACKENDS = [
    "python",
    pytest.param(
        "numpy", marks=pytest.mark.skipif(not _have_numpy(), reason="numpy not installed")
    ),
]


class TestKernelLane:
    """PR-6 array-kernel lanes: byte-identity, backend selection, fallback,
    and the counters-only fast lane."""

    def _build(
        self,
        graph,
        kernel,
        reuse=1,
        trace_mode=TraceMode.FULL,
        fast_path=True,
        vector_path=True,
        scheduler=None,
    ):
        params = LBParams.small_for_testing(
            delta=graph.max_reliable_degree, delta_prime=graph.max_potential_degree
        )
        simulator = Simulator(
            graph,
            make_lb_processes(
                graph, params, random.Random(71), seed_reuse_phases=reuse
            ),
            scheduler=(
                IIDScheduler(graph, probability=0.5, seed=7)
                if scheduler is None
                else scheduler
            ),
            environment=SaturatingEnvironment(senders=sorted(graph.vertices)[:5]),
            trace_mode=trace_mode,
            fast_path=fast_path,
            vector_path=vector_path,
            batch_path=fast_path,
            kernel=kernel,
        )
        return simulator, params

    @pytest.mark.parametrize("graph_kind", sorted(GRAPH_FACTORIES))
    @pytest.mark.parametrize("reuse", [1, 2, 3])
    @pytest.mark.parametrize("backend", KERNEL_BACKENDS)
    def test_kernel_identical_to_vector_path(self, graph_kind, reuse, backend):
        """Each kernel backend vs the pinned vector path, geometric and
        region topologies, every seed reuse factor."""
        graph = GRAPH_FACTORIES[graph_kind]()
        kernel_sim, params = self._build(graph, backend, reuse=reuse)
        vector_sim, _ = self._build(graph, "off", reuse=reuse)
        assert kernel_sim.uses_kernel and kernel_sim.kernel_backend == backend
        assert vector_sim.uses_vector_path and not vector_sim.uses_kernel

        rounds = 3 * params.phase_length
        _assert_identical_traces(kernel_sim.run(rounds), vector_sim.run(rounds), rounds)

    @pytest.mark.parametrize("graph_kind", sorted(GRAPH_FACTORIES))
    def test_kernel_identical_to_generic_seed_engine(self, graph_kind):
        """kernel="auto" (the production default) vs the seed engine."""
        graph = GRAPH_FACTORIES[graph_kind]()
        kernel_sim, params = self._build(graph, "auto")
        generic_sim, _ = self._build(
            graph, "off", fast_path=False, vector_path=False
        )
        assert kernel_sim.uses_kernel
        assert kernel_sim.kernel_backend in ("python", "numpy")
        assert not generic_sim.uses_fast_path

        rounds = 3 * params.phase_length
        _assert_identical_traces(
            kernel_sim.run(rounds), generic_sim.run(rounds), rounds
        )

    def test_auto_backend_matches_availability(self):
        graph = GRAPH_FACTORIES["geometric"]()
        simulator, _ = self._build(graph, "auto")
        expected = "numpy" if _have_numpy() else "python"
        assert simulator.kernel_backend == expected

    def test_adaptive_scheduler_disengages_kernel(self):
        """An adaptive adversary disables the fast path and with it every
        kernel lane; the requested backend must be silently ignored and the
        execution must equal the generic engine's."""
        graph = GRAPH_FACTORIES["geometric"]()
        kernel_sim, params = self._build(
            graph, "auto", scheduler=CollisionAdaptiveAdversary(graph)
        )
        generic_sim, _ = self._build(
            graph,
            "off",
            fast_path=False,
            vector_path=False,
            scheduler=CollisionAdaptiveAdversary(graph),
        )
        assert not kernel_sim.uses_kernel
        assert kernel_sim.kernel_backend is None
        assert not kernel_sim.uses_counters_lane

        rounds = 2 * params.phase_length
        _assert_identical_traces(
            kernel_sim.run(rounds), generic_sim.run(rounds), rounds
        )

    def test_counters_lane_engages_and_matches_full_reduction(self):
        """The counters-only lane must produce exactly the counters a full
        event trace reduces to (same event kinds, transmissions, receptions)."""
        graph = GRAPH_FACTORIES["geometric"]()
        counters_sim, params = self._build(
            graph, "auto", trace_mode=TraceMode.COUNTERS
        )
        full_sim, _ = self._build(graph, "off", trace_mode=TraceMode.FULL)
        assert counters_sim.uses_counters_lane

        rounds = 3 * params.phase_length
        counters_trace = counters_sim.run(rounds)
        full_trace = full_sim.run(rounds)
        assert counters_trace.num_rounds == full_trace.num_rounds
        assert counters_trace.event_counts == full_trace.event_counts
        assert counters_trace.num_transmissions == full_trace.num_transmissions
        assert counters_trace.num_receptions == full_trace.num_receptions

    def test_full_trace_mode_keeps_counters_lane_off(self):
        graph = GRAPH_FACTORIES["geometric"]()
        simulator, _ = self._build(graph, "auto", trace_mode=TraceMode.FULL)
        assert simulator.uses_kernel
        assert not simulator.uses_counters_lane

    def test_chunked_runs_resume_identically(self):
        """Kernel state (cohort buffers, deferred skips) must flush at run()
        boundaries so split runs equal one continuous run."""
        graph = GRAPH_FACTORIES["geometric"]()
        whole_sim, params = self._build(graph, "auto")
        split_sim, _ = self._build(graph, "auto")
        rounds = 3 * params.phase_length
        whole_trace = whole_sim.run(rounds)
        chunk = params.phase_length // 2
        done = 0
        while done < rounds:
            step = min(chunk, rounds - done)
            split_trace = split_sim.run(step)
            done += step
        _assert_identical_traces(whole_trace, split_trace, rounds)


class TestRoundHookSkipping:
    class HookCountingProcess(SilentProcess):
        def __init__(self, ctx):
            super().__init__(ctx)
            self.starts = 0
            self.ends = 0

        def on_round_start(self, round_number):
            self.starts += 1

        def on_round_end(self, round_number):
            self.ends += 1

    def _simulator(self, with_hooks):
        graph = DualGraph([0, 1], reliable_edges=[(0, 1)])
        cls = self.HookCountingProcess if with_hooks else SilentProcess
        processes = {
            v: cls(ProcessContext(vertex=v, delta=2, delta_prime=2)) for v in (0, 1)
        }
        return Simulator(graph, processes), processes

    def test_overriding_processes_still_get_hooks(self):
        simulator, processes = self._simulator(with_hooks=True)
        simulator.run(7)
        assert all(p.starts == 7 and p.ends == 7 for p in processes.values())

    def test_hookless_population_skips_the_loops(self):
        simulator, _ = self._simulator(with_hooks=False)
        assert simulator._round_start_hooks == []
        assert simulator._round_end_hooks == []
        simulator.run(3)  # runs without error
        assert simulator.trace.num_rounds == 3


# ----------------------------------------------------------------------
# parallel sweep determinism
# ----------------------------------------------------------------------
def _sweep_point(alpha: int, beta: str) -> dict:
    """Module-level so it is picklable by the process pool."""
    return {"product": alpha * len(beta), "tag": f"{alpha}-{beta}"}


def _seeded_point(alpha: int, seed: int = 0) -> dict:
    return {"value": random.Random(seed).randint(0, 10**9), "alpha2": alpha * 2}


def _configured_point(alpha: int, scale: int = 1) -> dict:
    return {"scaled": alpha * scale}


GRID = {"alpha": [1, 2, 3], "beta": ["x", "yy"]}


class TestParallelSweep:
    def test_parallel_rows_equal_serial_rows(self):
        serial = sweep(GRID, _sweep_point)
        parallel = ParallelSweepRunner(jobs=2).run(GRID, _sweep_point)
        assert parallel.rows == serial.rows

    def test_jobs_one_equals_serial(self):
        serial = sweep(GRID, _sweep_point)
        inline = ParallelSweepRunner(jobs=1).run(GRID, _sweep_point)
        assert inline.rows == serial.rows

    def test_derived_seeds_are_stable_and_distinct(self):
        seeds = [derive_point_seed(123, i) for i in range(50)]
        assert seeds == [derive_point_seed(123, i) for i in range(50)]
        assert len(set(seeds)) == 50
        assert derive_point_seed(124, 0) != derive_point_seed(123, 1)

    def test_seed_injection_identical_serial_and_parallel(self):
        grid = {"alpha": [4, 5, 6, 7]}
        serial = ParallelSweepRunner(jobs=1, base_seed=7).run(grid, _seeded_point)
        parallel = ParallelSweepRunner(jobs=2, base_seed=7).run(grid, _seeded_point)
        assert serial.rows == parallel.rows
        # Different base seeds must give different per-point draws.
        other = ParallelSweepRunner(jobs=1, base_seed=8).run(grid, _seeded_point)
        assert [r["value"] for r in other.rows] != [r["value"] for r in serial.rows]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_common_kwargs_reach_every_point_but_stay_out_of_rows(self, jobs):
        grid = {"alpha": [1, 2, 3]}
        result = ParallelSweepRunner(jobs=jobs).run(
            grid, _configured_point, common={"scale": 10}
        )
        assert [r["scaled"] for r in result.rows] == [10, 20, 30]
        assert all("scale" not in row for row in result.rows)
