"""Shared fixtures and helpers for the test suite.

The fixtures build small, deterministic networks and parameter sets so that
individual tests stay fast; integration tests that need statistical power run
their own (still modest) trial loops.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    DualGraph,
    IIDScheduler,
    LBParams,
    SeedParams,
    Simulator,
    SingleShotEnvironment,
    line_network,
    make_lb_processes,
    random_geographic_network,
    star_network,
)
from repro.core.seed_agreement import SeedAgreementProcess
from repro.simulation.process import ProcessContext


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "service: scenario-service (python -m repro serve) integration tests",
    )
    config.addinivalue_line(
        "markers",
        "fault_injection: service tests that crash/kill workers mid-suite "
        "(run in CI via `-m fault_injection`)",
    )


# ----------------------------------------------------------------------
# graphs
# ----------------------------------------------------------------------
@pytest.fixture
def triangle_graph() -> DualGraph:
    """Three mutually reliable vertices plus one unreliable edge to a fourth."""
    graph = DualGraph(
        vertices=[0, 1, 2, 3],
        reliable_edges=[(0, 1), (1, 2), (0, 2)],
        unreliable_edges=[(2, 3)],
    )
    return graph


@pytest.fixture
def small_random_network():
    """A connected 16-node random geographic network with grey-zone links."""
    graph, embedding = random_geographic_network(
        16, side=3.5, r=2.0, rng=3, require_connected=True
    )
    return graph, embedding


@pytest.fixture
def small_line_network():
    """A 6-node path; consecutive vertices are reliable neighbors."""
    return line_network(6, spacing=0.9)


@pytest.fixture
def small_star_network():
    """A receiver (vertex 0) with 6 reliable-neighbor broadcasters."""
    return star_network(6)


# ----------------------------------------------------------------------
# parameters
# ----------------------------------------------------------------------
@pytest.fixture
def tiny_lb_params() -> LBParams:
    """Small but structurally faithful LBAlg parameters for fast tests."""
    return LBParams.small_for_testing(delta=8, delta_prime=16)


@pytest.fixture
def tiny_seed_params() -> SeedParams:
    """SeedAlg parameters with a short phase length for fast tests."""
    return SeedParams.derive(epsilon=0.2, delta=8, phase_length_override=6)


# Shared non-fixture helpers (process builders, scenario runners) live in
# tests/helpers.py so both fixtures and test modules can import them.
