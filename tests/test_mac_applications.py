"""Tests for the additional abstract MAC layer applications.

Neighbor discovery and multi-message broadcast are the other two algorithm
families the paper's related-work section expects to port to the dual graph
model through the layer; these tests exercise their client logic in isolation
and their end-to-end behavior over the LBAlg-backed layer.
"""

import random

import pytest

from repro.core.params import LBParams
from repro.dualgraph.adversary import IIDScheduler
from repro.dualgraph.generators import clique_network, line_network, star_network
from repro.mac.applications.multi_message import (
    MultiMessageClient,
    MultiMessageResult,
    Token,
    run_multi_message_broadcast,
)
from repro.mac.applications.neighbor_discovery import (
    Announcement,
    NeighborDiscoveryClient,
    NeighborDiscoveryResult,
    run_neighbor_discovery,
)


@pytest.fixture
def params():
    return LBParams.small_for_testing(delta=6, delta_prime=12, tprog=100, tack_phases=2,
                                      seed_phase_length=4)


class FakeApi:
    def __init__(self, vertex=0):
        self.vertex = vertex
        self.submitted = []

    def mac_bcast(self, payload):
        self.submitted.append(payload)
        return True


class TestNeighborDiscoveryClient:
    def test_announces_itself_at_start(self):
        client = NeighborDiscoveryClient(vertex=3)
        api = FakeApi(vertex=3)
        client.on_mac_start(api)
        assert api.submitted == [Announcement(vertex=3)]

    def test_records_first_hearing_round(self):
        client = NeighborDiscoveryClient(vertex=3)
        client.on_mac_start(FakeApi(vertex=3))
        client.on_mac_recv(Announcement(vertex=7), round_number=12)
        client.on_mac_recv(Announcement(vertex=7), round_number=30)
        assert client.discovered == {7: 12}

    def test_ignores_foreign_payloads(self):
        client = NeighborDiscoveryClient(vertex=3)
        client.on_mac_start(FakeApi(vertex=3))
        client.on_mac_recv("not an announcement", round_number=5)
        assert client.discovered == {}

    def test_records_its_own_ack(self):
        client = NeighborDiscoveryClient(vertex=3)
        client.on_mac_start(FakeApi(vertex=3))
        client.on_mac_ack(Announcement(vertex=3), round_number=44)
        assert client.announced_round == 44


class TestNeighborDiscoveryEndToEnd:
    def test_discovery_on_a_clique(self, params):
        graph, _ = clique_network(4)
        result = run_neighbor_discovery(graph, params, rng=random.Random(1))
        assert isinstance(result, NeighborDiscoveryResult)
        # Everyone should discover a solid majority of its reliable neighbors
        # (each of the 4 announcements contends with the other 3).
        assert result.mean_discovery_fraction >= 0.5
        assert result.false_positives(graph) == {}

    def test_discovery_respects_gprime(self, params):
        graph, _ = star_network(4)
        result = run_neighbor_discovery(
            graph, params, scheduler=IIDScheduler(graph, probability=0.5, seed=2),
            rng=random.Random(2),
        )
        # Nothing can be discovered that is not a G' neighbor.
        assert result.false_positives(graph) == {}
        # The hub hears at least one of its leaves.
        assert result.discovery_fraction(0) > 0.0

    def test_discovery_fraction_of_isolated_vertex_is_one(self, params):
        from repro.dualgraph.graph import DualGraph

        graph = DualGraph(vertices=[0, 1], reliable_edges=[(0, 1)])
        result = run_neighbor_discovery(graph, params, rng=random.Random(3), phases=3)
        # With no neighbors there is nothing to discover: vacuous success.
        lonely = NeighborDiscoveryResult(rounds_run=1,
                                         discovered={9: {}},
                                         reliable_neighbors={9: frozenset()})
        assert lonely.discovery_fraction(9) == 1.0
        assert result.rounds_run == 3 * params.phase_length


class TestMultiMessageClient:
    def test_sources_submit_their_tokens_at_start(self):
        token = Token(token_id="token-1", source=1)
        client = MultiMessageClient(vertex=1, own_tokens=[token])
        api = FakeApi(vertex=1)
        client.on_mac_start(api)
        assert api.submitted == [token]
        assert client.received_round["token-1"] == 0

    def test_relays_each_new_token_once(self):
        client = MultiMessageClient(vertex=2)
        api = FakeApi(vertex=2)
        client.on_mac_start(api)
        token = Token(token_id="token-1", source=1)
        client.on_mac_recv(token, round_number=10)
        client.on_mac_recv(token, round_number=20)
        assert api.submitted == [token]
        assert client.received_round["token-1"] == 10

    def test_distinct_tokens_are_relayed_separately(self):
        client = MultiMessageClient(vertex=2)
        api = FakeApi(vertex=2)
        client.on_mac_start(api)
        a = Token(token_id="token-a", source=0)
        b = Token(token_id="token-b", source=1)
        client.on_mac_recv(a, round_number=5)
        client.on_mac_recv(b, round_number=9)
        assert api.submitted == [a, b]


class TestMultiMessageEndToEnd:
    def test_two_tokens_cover_a_short_line(self, params):
        graph, _ = line_network(3, spacing=0.9)
        result = run_multi_message_broadcast(
            graph, params, sources=[0, 2], rng=random.Random(4)
        )
        assert isinstance(result, MultiMessageResult)
        assert result.mean_coverage == 1.0
        assert result.complete
        assert result.overall_completion_round is not None
        assert result.overall_completion_round <= result.rounds_run

    def test_validation(self, params):
        graph, _ = line_network(3)
        with pytest.raises(ValueError):
            run_multi_message_broadcast(graph, params, sources=[])
        with pytest.raises(KeyError):
            run_multi_message_broadcast(graph, params, sources=[99])

    def test_result_accessors_with_missing_deliveries(self):
        token = Token(token_id="t", source=0)
        result = MultiMessageResult(tokens=[token], rounds_run=10)
        result.receive_rounds["t"] = {0: 0, 1: None}
        assert result.coverage("t") == 0.5
        assert not result.complete
        assert result.completion_round("t") is None
        assert result.overall_completion_round is None
