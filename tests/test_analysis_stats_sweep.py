"""Unit tests for the statistics helpers and the sweep driver."""

import pytest

from repro.analysis.stats import (
    empirical_error_rate,
    mean,
    quantile,
    ratio_of_means,
    std,
    summarize,
    wilson_interval,
)
from repro.analysis.sweep import SweepResult, format_table, sweep


class TestBasicStatistics:
    def test_mean_and_std(self):
        assert mean([1, 2, 3, 4]) == 2.5
        assert std([2, 2, 2]) == 0.0
        assert std([0, 2]) == 1.0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            mean([])
        with pytest.raises(ValueError):
            std([])
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_quantile(self):
        values = [1, 2, 3, 4, 5]
        assert quantile(values, 0.0) == 1
        assert quantile(values, 0.5) == 3
        assert quantile(values, 1.0) == 5
        assert quantile(values, 0.25) == 2
        assert quantile([7], 0.9) == 7

    def test_quantile_interpolates(self):
        assert quantile([0, 10], 0.25) == pytest.approx(2.5)

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            quantile([1, 2], 1.5)

    def test_summarize_keys_and_consistency(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary["count"] == 5
        assert summary["mean"] == 3
        assert summary["min"] == 1
        assert summary["max"] == 5
        assert summary["median"] == 3
        assert summary["min"] <= summary["p90"] <= summary["max"]

    def test_summarize_empty_raises_clear_value_error(self):
        with pytest.raises(ValueError, match="summarize"):
            summarize([])
        # generators drain too: the empty check happens after materializing
        with pytest.raises(ValueError, match="summarize"):
            summarize(v for v in ())

    def test_quantile_empty_raises_clear_value_error(self):
        with pytest.raises(ValueError, match="quantile of no values"):
            quantile([], 0.0)
        with pytest.raises(ValueError, match="quantile of no values"):
            quantile((), 1.0)


class TestErrorRates:
    def test_empirical_error_rate(self):
        assert empirical_error_rate(0, 10) == 0.0
        assert empirical_error_rate(3, 10) == 0.3

    def test_empirical_error_rate_validation(self):
        with pytest.raises(ValueError):
            empirical_error_rate(1, 0)
        with pytest.raises(ValueError):
            empirical_error_rate(5, 3)

    def test_wilson_interval_contains_point_estimate(self):
        low, high = wilson_interval(2, 20)
        assert low <= 0.1 <= high
        assert 0.0 <= low <= high <= 1.0

    def test_wilson_interval_zero_failures_has_positive_width(self):
        low, high = wilson_interval(0, 30)
        assert low == 0.0
        assert high > 0.0

    def test_wilson_interval_narrows_with_more_trials(self):
        _, high_small = wilson_interval(0, 10)
        _, high_large = wilson_interval(0, 1000)
        assert high_large < high_small

    def test_wilson_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)

    def test_wilson_zero_trials_raises_value_error_not_zero_division(self):
        with pytest.raises(ValueError, match="at least one trial"):
            wilson_interval(0, 0)

    def test_wilson_non_positive_z_rejected(self):
        with pytest.raises(ValueError, match="z must be positive"):
            wilson_interval(1, 10, z=0.0)
        with pytest.raises(ValueError, match="z must be positive"):
            wilson_interval(1, 10, z=-1.96)

    def test_ratio_of_means(self):
        assert ratio_of_means([10, 20], [5, 5]) == 3.0
        with pytest.raises(ValueError):
            ratio_of_means([1], [0])


class TestSweep:
    def test_sweep_covers_the_grid(self):
        result = sweep(
            {"a": [1, 2], "b": ["x", "y"]},
            run=lambda a, b: {"value": f"{a}{b}"},
        )
        assert len(result) == 4
        assert set(result.column("value")) == {"1x", "1y", "2x", "2y"}

    def test_grid_point_is_merged_into_each_row(self):
        result = sweep({"a": [3]}, run=lambda a: {"double": 2 * a})
        assert result.rows[0] == {"a": 3, "double": 6}

    def test_where_filters_rows(self):
        result = sweep({"a": [1, 2], "b": [10]}, run=lambda a, b: {"s": a + b})
        filtered = result.where(a=2)
        assert len(filtered) == 1
        assert filtered.rows[0]["s"] == 12

    def test_iteration(self):
        result = SweepResult(rows=[{"x": 1}, {"x": 2}])
        assert [row["x"] for row in result] == [1, 2]


class TestFormatTable:
    def test_contains_headers_and_values(self):
        text = format_table([{"delta": 8, "rate": 0.03125}], title="Example")
        assert "Example" in text
        assert "delta" in text and "rate" in text
        assert "8" in text and "0.03125" in text

    def test_column_selection_and_order(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_missing_column_rendered_empty(self):
        text = format_table([{"a": 1}], columns=["a", "missing"])
        assert "missing" in text

    def test_float_formatting(self):
        text = format_table([{"v": 0.123456789}], float_format="{:.2f}")
        assert "0.12" in text
