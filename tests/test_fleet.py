"""Fleet executor tests (repro.scenarios.fleet).

The headline invariants from the PR-10 issue:

* the merged fleet report is **byte-identical** to ``run_suite``'s under
  :func:`deterministic_report_dict`, no matter how many workers ran, which
  worker executed which task, or how work was stolen;
* the result store is the crash-safe checkpoint -- a warm rerun executes
  nothing, and a fleet whose worker is SIGKILLed mid-task still converges to
  the clean serial report because survivors reclaim the expired lease;
* the service integration (JobManager fleet dispatch + queue-depth
  backpressure) preserves report identity and surfaces its decisions in
  ``/stats``.

The SIGKILL test rides the ``fault_injection`` marker next to the
``tests/service`` fault suite; everything else is plain tier-1.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal

import pytest

from repro.scenarios import (
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    MetricSpec,
    ResultStore,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    SuiteEntry,
    SuiteSpec,
    TopologySpec,
    deterministic_report_dict,
    run_suite,
    run_suite_fleet,
)
from repro.scenarios.cli import main as cli_main
from repro.scenarios.fleet import default_task_runner
from repro.scenarios.jobs import JobManager, parse_submission


def fleet_scenario(name: str, seed: int, trials: int = 1) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        topology=TopologySpec("line", {"n": 5}),
        algorithm=AlgorithmSpec("lbalg", {"preset": "small"}),
        scheduler=SchedulerSpec("iid", {"probability": 0.5, "seed": seed}),
        environment=EnvironmentSpec("single_shot", {"senders": [0]}),
        engine=EngineConfig(trace_mode="auto"),
        run=RunPolicy(
            rounds=1,
            rounds_unit="tack",
            trials=trials,
            master_seed=seed,
            # Derived per-trial seeds: under "fixed" every trial of an entry
            # shares one store key (they are genuinely the same experiment),
            # which would collapse this fixture to one task per entry.
            seed_policy="derived",
        ),
        metrics=(MetricSpec("counters"), MetricSpec("ack_delay")),
    )


def fleet_suite(entry_count: int = 2, trials: int = 3) -> SuiteSpec:
    return SuiteSpec(
        name="fleet-suite",
        description="fleet executor identity fixture",
        entries=tuple(
            SuiteEntry(
                id=f"e{i}",
                scenario=fleet_scenario(f"e{i}", seed=3 + i, trials=trials),
                group="g",
            )
            for i in range(entry_count)
        ),
    )


def det(report) -> dict:
    return deterministic_report_dict(report.to_dict())


# ----------------------------------------------------------------------
# report identity
# ----------------------------------------------------------------------
def test_fleet_report_identical_to_serial(tmp_path):
    suite = fleet_suite()
    serial = det(run_suite(suite, jobs=1, prebuild=False))
    fleet = run_suite_fleet(
        suite, workers=3, store=str(tmp_path / "store"), chunk_size=1, prebuild=False
    )
    assert det(fleet) == serial
    assert fleet.store_stats["workers"] == 3
    assert fleet.store_stats["tasks"] == 6
    assert fleet.store_stats["misses"] == 6


def test_fleet_single_worker_matches_serial(tmp_path):
    suite = fleet_suite(entry_count=1, trials=2)
    serial = det(run_suite(suite, jobs=1, prebuild=False))
    fleet = run_suite_fleet(suite, workers=1, store=str(tmp_path / "store"))
    assert det(fleet) == serial


def test_fleet_private_store_when_none_given():
    suite = fleet_suite(entry_count=1, trials=2)
    serial = det(run_suite(suite, jobs=1, prebuild=False))
    assert det(run_suite_fleet(suite, workers=2, chunk_size=1)) == serial


def test_fleet_rejects_zero_workers():
    with pytest.raises(ValueError, match="workers >= 1"):
        run_suite_fleet(fleet_suite(), workers=0)


# ----------------------------------------------------------------------
# the store as checkpoint
# ----------------------------------------------------------------------
def test_fleet_warm_rerun_executes_nothing(tmp_path):
    suite = fleet_suite()
    store = str(tmp_path / "store")
    cold = det(run_suite_fleet(suite, workers=2, store=store))

    def poisoned(spec, trial_index):
        raise AssertionError(f"warm rerun executed {spec.name}[{trial_index}]")

    warm = run_suite_fleet(suite, workers=2, store=store, task_runner=poisoned)
    assert det(warm) == cold
    assert warm.store_stats["hits"] == warm.store_stats["tasks"]
    assert warm.store_stats["misses"] == 0


def test_fleet_resumes_from_partially_filled_store(tmp_path):
    suite = fleet_suite()
    store_dir = str(tmp_path / "store")
    serial = det(run_suite(suite, jobs=1, prebuild=False))
    # Pre-execute half the tasks straight into the store, as a killed fleet
    # would have left them.
    store = ResultStore(store_dir)
    spec = suite.entries[0].scenario
    for trial_index in range(3):
        store.put(spec, trial_index, default_task_runner(spec, trial_index))

    # Workers are forked, so executions are observed through the filesystem,
    # not a shared list.
    executed_dir = tmp_path / "executed"
    executed_dir.mkdir()

    def counting(spec, trial_index):
        (executed_dir / f"{spec.name}-{trial_index}").touch()
        return default_task_runner(spec, trial_index)

    report = run_suite_fleet(
        suite, workers=2, store=store_dir, chunk_size=1, task_runner=counting
    )
    assert det(report) == serial
    assert report.store_stats["hits"] == 3
    # Only the other entry's trials were executed.
    assert sorted(p.name for p in executed_dir.iterdir()) == ["e1-0", "e1-1", "e1-2"]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_suite_fleet_matches_serial(tmp_path, capsys):
    suite = fleet_suite(entry_count=2, trials=2)
    manifest = tmp_path / "fleet.json"
    manifest.write_text(suite.to_json())
    out_path = tmp_path / "report.json"
    code = cli_main(
        [
            "suite",
            str(manifest),
            "--fleet",
            "2",
            "--store",
            str(tmp_path / "store"),
            "--json",
            str(out_path),
        ]
    )
    assert code == 0
    assert "fleet      : 2 worker process(es)" in capsys.readouterr().out
    serial = det(run_suite(suite, jobs=1, prebuild=False))
    assert deterministic_report_dict(json.loads(out_path.read_text())) == serial


def test_cli_fleet_excludes_shard_flags(tmp_path):
    manifest = tmp_path / "fleet.json"
    manifest.write_text(fleet_suite().to_json())
    with pytest.raises(SystemExit, match="--fleet replaces"):
        cli_main(
            [
                "suite",
                str(manifest),
                "--fleet",
                "2",
                "--store",
                str(tmp_path / "store"),
                "--shard",
                "1/2",
            ]
        )


# ----------------------------------------------------------------------
# fault tolerance: a SIGKILLed worker's lease is reclaimed by survivors
# ----------------------------------------------------------------------
@pytest.mark.fault_injection
def test_fleet_worker_sigkill_is_recovered(tmp_path):
    suite = fleet_suite(entry_count=2, trials=3)
    serial = det(run_suite(suite, jobs=1, prebuild=False))
    sentinel = str(tmp_path / "killed-once")

    def killing(spec, trial_index):
        # The first worker to pick up e0[1] dies *inside* the task, before
        # its record reaches the store -- exactly the crash window where the
        # lease heartbeat goes stale and a survivor must steal the chunk.
        if spec.name == "e0" and trial_index == 1:
            try:
                fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass  # already died here once; run normally this time
            else:
                os.close(fd)
                os.kill(os.getpid(), signal.SIGKILL)
        return default_task_runner(spec, trial_index)

    report = run_suite_fleet(
        suite,
        workers=2,
        store=str(tmp_path / "store"),
        chunk_size=1,
        lease_ttl_s=0.5,
        poll_s=0.02,
        task_runner=killing,
    )
    assert os.path.exists(sentinel), "the kill window was never reached"
    assert det(report) == serial
    assert report.store_stats["steals"] >= 1


# ----------------------------------------------------------------------
# service integration: fleet dispatch + queue-depth backpressure
# ----------------------------------------------------------------------
@pytest.mark.service
def test_jobmanager_fleet_dispatch_preserves_report(tmp_path):
    suite = fleet_suite(entry_count=2, trials=2)
    serial = det(run_suite(suite, jobs=1, prebuild=False))

    async def main():
        manager = JobManager(
            store=str(tmp_path / "store"),
            workers=1,
            backoff_s=0.01,
            fleet_workers=2,
            fleet_threshold=2,
        )
        await manager.start()
        job, disposition = manager.submit(*parse_submission({"suite": suite.to_dict()}))
        assert disposition == "new"
        queue = manager.subscribe(job)
        try:
            while not job.terminal:
                await asyncio.wait_for(queue.get(), timeout=60)
        finally:
            manager.unsubscribe(job, queue)
        stats = manager.stats()
        report_path = manager.report_path(job.fingerprint)
        await manager.shutdown()
        return job, stats, report_path

    job, stats, report_path = asyncio.run(main())
    assert job.state == "done"
    assert stats["fleet"]["dispatched"] == 1
    assert stats["fleet"]["workers"] == 2
    with open(report_path, encoding="utf-8") as handle:
        assert deterministic_report_dict(json.load(handle)) == serial


@pytest.mark.service
def test_jobmanager_backpressure_rejects_over_bound(tmp_path):
    suite = fleet_suite(entry_count=2, trials=3)  # 6 tasks

    async def main():
        manager = JobManager(
            store=str(tmp_path / "store"),
            workers=1,
            backoff_s=0.01,
            max_pending_tasks=4,
        )
        await manager.start()
        job, disposition = manager.submit(*parse_submission({"suite": suite.to_dict()}))
        stats = manager.stats()
        await manager.shutdown()
        return job, disposition, stats

    job, disposition, stats = asyncio.run(main())
    assert disposition == "rejected"
    assert job.state == "rejected"
    assert job.terminal
    assert "max_pending_tasks" in (job.error or "")
    assert stats["counters"]["rejected"] == 1
