"""Unit tests for the round engine and its radio collision rules."""

from typing import Optional

import pytest

from repro.core.messages import Message
from repro.dualgraph.adversary import NoUnreliableScheduler, TraceScheduler
from repro.dualgraph.graph import DualGraph
from repro.simulation.engine import Simulator
from repro.simulation.environment import NullEnvironment, SingleShotEnvironment
from repro.simulation.process import Process, ProcessContext, SilentProcess


class AlwaysTransmit(Process):
    """Transmits a fixed frame every round; used to stage collisions."""

    def __init__(self, ctx, frame="beep"):
        super().__init__(ctx)
        self.frame = frame
        self.received = []

    def transmit(self, round_number: int):
        return self.frame

    def on_receive(self, round_number: int, frame):
        self.received.append((round_number, frame))


class Listener(Process):
    """Never transmits; records everything it hears."""

    def __init__(self, ctx):
        super().__init__(ctx)
        self.received = []

    def transmit(self, round_number: int):
        return None

    def on_receive(self, round_number: int, frame):
        self.received.append((round_number, frame))


def _ctx(vertex):
    return ProcessContext(vertex=vertex, delta=8, delta_prime=8)


def build(graph, processes, scheduler=None, environment=None):
    return Simulator(graph, processes, scheduler=scheduler, environment=environment)


class TestConstruction:
    def test_missing_process_rejected(self):
        graph = DualGraph(vertices=[0, 1], reliable_edges=[(0, 1)])
        with pytest.raises(ValueError):
            Simulator(graph, {0: SilentProcess(_ctx(0))})

    def test_extra_process_rejected(self):
        graph = DualGraph(vertices=[0], reliable_edges=[])
        with pytest.raises(ValueError):
            Simulator(graph, {0: SilentProcess(_ctx(0)), 1: SilentProcess(_ctx(1))})

    def test_negative_rounds_rejected(self):
        graph = DualGraph(vertices=[0])
        sim = Simulator(graph, {0: SilentProcess(_ctx(0))})
        with pytest.raises(ValueError):
            sim.run(-1)


class TestCollisionRules:
    def test_single_transmitter_is_heard_by_reliable_neighbor(self):
        graph = DualGraph(vertices=[0, 1], reliable_edges=[(0, 1)])
        sender = AlwaysTransmit(_ctx(0))
        listener = Listener(_ctx(1))
        sim = build(graph, {0: sender, 1: listener})
        sim.run(3)
        assert listener.received == [(1, "beep"), (2, "beep"), (3, "beep")]

    def test_two_transmitting_neighbors_collide(self):
        graph = DualGraph(vertices=[0, 1, 2], reliable_edges=[(0, 2), (1, 2)])
        a = AlwaysTransmit(_ctx(0), frame="A")
        b = AlwaysTransmit(_ctx(1), frame="B")
        listener = Listener(_ctx(2))
        sim = build(graph, {0: a, 1: b, 2: listener})
        sim.run(2)
        # Both neighbors transmit every round: the listener hears nothing.
        assert listener.received == [(1, None), (2, None)]

    def test_no_collision_detection_silence_equals_collision(self):
        graph = DualGraph(vertices=[0, 1], reliable_edges=[(0, 1)])
        listener = Listener(_ctx(1))
        silent = SilentProcess(_ctx(0))
        sim = build(graph, {0: silent, 1: listener})
        sim.run(1)
        assert listener.received == [(1, None)]

    def test_transmitter_does_not_hear_anything(self):
        graph = DualGraph(vertices=[0, 1], reliable_edges=[(0, 1)])
        a = AlwaysTransmit(_ctx(0), frame="A")
        b = AlwaysTransmit(_ctx(1), frame="B")
        sim = build(graph, {0: a, 1: b})
        sim.run(1)
        assert a.received == [(1, None)]
        assert b.received == [(1, None)]

    def test_non_neighbor_transmissions_are_not_heard(self):
        graph = DualGraph(vertices=[0, 1, 2], reliable_edges=[(0, 1)])
        sender = AlwaysTransmit(_ctx(0))
        near = Listener(_ctx(1))
        far = Listener(_ctx(2))
        sim = build(graph, {0: sender, 1: near, 2: far})
        sim.run(1)
        assert near.received == [(1, "beep")]
        assert far.received == [(1, None)]

    def test_unreliable_edge_only_delivers_when_scheduled(self):
        graph = DualGraph(vertices=[0, 1], unreliable_edges=[(0, 1)])
        sender = AlwaysTransmit(_ctx(0))
        listener = Listener(_ctx(1))
        scheduler = TraceScheduler(graph, schedule=[[(0, 1)], []], cycle=True)
        sim = build(graph, {0: sender, 1: listener}, scheduler=scheduler)
        sim.run(4)
        assert listener.received == [(1, "beep"), (2, None), (3, "beep"), (4, None)]

    def test_unreliable_edge_can_cause_collisions(self):
        # Vertex 2 reliably hears 0; when the scheduler adds edge (1,2), the
        # second transmitter collides with the first.
        graph = DualGraph(
            vertices=[0, 1, 2], reliable_edges=[(0, 2)], unreliable_edges=[(1, 2)]
        )
        a = AlwaysTransmit(_ctx(0), frame="A")
        b = AlwaysTransmit(_ctx(1), frame="B")
        listener = Listener(_ctx(2))
        scheduler = TraceScheduler(graph, schedule=[[], [(1, 2)]], cycle=True)
        sim = build(graph, {0: a, 1: b, 2: listener}, scheduler=scheduler)
        sim.run(4)
        assert listener.received == [(1, "A"), (2, None), (3, "A"), (4, None)]


class TestEngineBookkeeping:
    def test_trace_records_transmissions_and_receptions(self):
        graph = DualGraph(vertices=[0, 1], reliable_edges=[(0, 1)])
        sim = build(graph, {0: AlwaysTransmit(_ctx(0)), 1: Listener(_ctx(1))})
        trace = sim.run(2)
        assert trace.transmissions_in_round(1) == {0: "beep"}
        assert trace.receptions_in_round(1) == {1: "beep"}
        assert trace.num_rounds == 2

    def test_current_round_advances(self):
        graph = DualGraph(vertices=[0])
        sim = build(graph, {0: SilentProcess(_ctx(0))})
        assert sim.current_round == 0
        sim.run(3)
        assert sim.current_round == 3
        sim.run(2)
        assert sim.current_round == 5

    def test_on_start_called_once(self):
        calls = []

        class Starter(SilentProcess):
            def on_start(self):
                calls.append("start")

        graph = DualGraph(vertices=[0])
        sim = build(graph, {0: Starter(_ctx(0))})
        sim.run(2)
        sim.run(2)
        assert calls == ["start"]

    def test_environment_inputs_reach_processes_and_trace(self):
        received_inputs = []

        class Recorder(SilentProcess):
            def on_input(self, round_number, inp):
                received_inputs.append((round_number, inp))

        graph = DualGraph(vertices=[0, 1], reliable_edges=[(0, 1)])
        env = SingleShotEnvironment(senders=[0])
        sim = build(graph, {0: Recorder(_ctx(0)), 1: SilentProcess(_ctx(1))}, environment=env)
        trace = sim.run(1)
        assert len(received_inputs) == 1
        assert isinstance(received_inputs[0][1], Message)
        assert len(trace.bcast_inputs) == 1

    def test_invalid_environment_input_type_raises(self):
        class BadEnvironment(NullEnvironment):
            def inputs_for_round(self, round_number):
                return {0: ["not a message"]}

        graph = DualGraph(vertices=[0])
        sim = build(graph, {0: SilentProcess(_ctx(0))}, environment=BadEnvironment())
        with pytest.raises(TypeError):
            sim.run(1)

    def test_run_until_stops_at_predicate(self):
        graph = DualGraph(vertices=[0, 1], reliable_edges=[(0, 1)])
        listener = Listener(_ctx(1))
        sim = build(graph, {0: AlwaysTransmit(_ctx(0)), 1: listener})
        sim.run_until(lambda trace: trace.num_rounds >= 5, max_rounds=50, check_every=1)
        assert sim.current_round == 5

    def test_run_until_respects_max_rounds(self):
        graph = DualGraph(vertices=[0])
        sim = build(graph, {0: SilentProcess(_ctx(0))})
        sim.run_until(lambda trace: False, max_rounds=7, check_every=3)
        assert sim.current_round == 7

    def test_outputs_are_recorded_in_trace(self):
        from repro.core.events import RecvOutput
        from repro.core.messages import make_message

        class Emitter(SilentProcess):
            def on_round_end(self, round_number):
                if round_number == 2:
                    self.emit(RecvOutput(vertex=self.vertex, message=make_message(9), round_number=2))

        graph = DualGraph(vertices=[0])
        sim = build(graph, {0: Emitter(_ctx(0))})
        trace = sim.run(3)
        assert len(trace.recv_outputs) == 1
        assert trace.recv_outputs[0].round_number == 2
