"""Unit tests for the multi-trial executor."""

import random

import pytest

from repro.dualgraph.graph import DualGraph
from repro.simulation.engine import Simulator
from repro.simulation.executor import empirical_failure_rate, run_trials
from repro.simulation.process import ProcessContext, SilentProcess


def simple_factory(rng: random.Random) -> Simulator:
    graph = DualGraph(vertices=[0, 1], reliable_edges=[(0, 1)])
    processes = {
        v: SilentProcess(ProcessContext(vertex=v, delta=2, delta_prime=2, rng=rng))
        for v in graph.vertices
    }
    return Simulator(graph, processes)


class TestRunTrials:
    def test_runs_requested_number_of_trials(self):
        results = run_trials(simple_factory, rounds=3, num_trials=4)
        assert len(results) == 4
        assert [r.trial_index for r in results] == [0, 1, 2, 3]

    def test_seeds_are_derived_from_base_seed(self):
        results = run_trials(simple_factory, rounds=1, num_trials=3, base_seed=10)
        assert [r.seed for r in results] == [10, 11, 12]

    def test_each_trial_runs_the_requested_rounds(self):
        results = run_trials(simple_factory, rounds=5, num_trials=2)
        assert all(r.trace.num_rounds == 5 for r in results)

    def test_evaluator_is_applied(self):
        results = run_trials(
            simple_factory,
            rounds=2,
            num_trials=3,
            evaluator=lambda sim, trace: trace.num_rounds * 10,
        )
        assert [r.evaluation for r in results] == [20, 20, 20]

    def test_keep_traces_false_drops_traces(self):
        results = run_trials(
            simple_factory,
            rounds=2,
            num_trials=2,
            evaluator=lambda sim, trace: "ok",
            keep_traces=False,
        )
        assert all(r.trace is None and r.simulator is None for r in results)
        assert all(r.evaluation == "ok" for r in results)

    def test_keep_traces_false_requires_evaluator(self):
        with pytest.raises(ValueError):
            run_trials(simple_factory, rounds=1, num_trials=1, keep_traces=False)

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            run_trials(simple_factory, rounds=-1, num_trials=1)
        with pytest.raises(ValueError):
            run_trials(simple_factory, rounds=1, num_trials=0)

    def test_factory_rng_differs_across_trials(self):
        drawn = []

        def factory(rng: random.Random) -> Simulator:
            drawn.append(rng.random())
            return simple_factory(rng)

        run_trials(factory, rounds=1, num_trials=3, base_seed=0)
        assert len(set(drawn)) == 3

    def test_reproducibility_from_base_seed(self):
        drawn_a, drawn_b = [], []

        def factory_a(rng):
            drawn_a.append(rng.random())
            return simple_factory(rng)

        def factory_b(rng):
            drawn_b.append(rng.random())
            return simple_factory(rng)

        run_trials(factory_a, rounds=1, num_trials=3, base_seed=42)
        run_trials(factory_b, rounds=1, num_trials=3, base_seed=42)
        assert drawn_a == drawn_b


class TestEmpiricalFailureRate:
    def test_rate_computation(self):
        results = run_trials(simple_factory, rounds=1, num_trials=4)
        rate = empirical_failure_rate(results, failed=lambda r: r.trial_index % 2 == 0)
        assert rate == 0.5

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            empirical_failure_rate([], failed=lambda r: True)
