"""Unit tests for the process automaton interface."""

import random

import pytest

from repro.core.events import RecvOutput
from repro.core.messages import make_message
from repro.simulation.process import Process, ProcessContext, SilentProcess


class TestProcessContext:
    def test_process_id_defaults_to_vertex(self):
        ctx = ProcessContext(vertex=7, delta=3, delta_prime=5)
        assert ctx.process_id == 7

    def test_explicit_process_id(self):
        ctx = ProcessContext(vertex=7, delta=3, delta_prime=5, process_id="p7")
        assert ctx.process_id == "p7"

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            ProcessContext(vertex=0, delta=0, delta_prime=2)

    def test_rejects_delta_prime_below_delta(self):
        with pytest.raises(ValueError):
            ProcessContext(vertex=0, delta=4, delta_prime=3)

    def test_rejects_r_below_one(self):
        with pytest.raises(ValueError):
            ProcessContext(vertex=0, delta=2, delta_prime=2, r=0.5)

    def test_rng_is_usable(self):
        ctx = ProcessContext(vertex=0, delta=2, delta_prime=2, rng=random.Random(1))
        assert 0.0 <= ctx.rng.random() < 1.0


class TestProcessBase:
    def test_silent_process_never_transmits(self):
        ctx = ProcessContext(vertex=0, delta=2, delta_prime=2)
        process = SilentProcess(ctx)
        for round_number in range(1, 10):
            assert process.transmit(round_number) is None

    def test_emit_and_drain_outputs(self):
        ctx = ProcessContext(vertex=0, delta=2, delta_prime=2)
        process = SilentProcess(ctx)
        event = RecvOutput(vertex=0, message=make_message(1), round_number=3)
        process.emit(event)
        assert process.drain_outputs() == [event]
        # Draining clears the buffer.
        assert process.drain_outputs() == []

    def test_convenience_properties(self):
        ctx = ProcessContext(vertex="v", delta=2, delta_prime=2, process_id="pid")
        process = SilentProcess(ctx)
        assert process.vertex == "v"
        assert process.process_id == "pid"
        assert process.rng is ctx.rng

    def test_default_hooks_are_noops(self):
        ctx = ProcessContext(vertex=0, delta=2, delta_prime=2)
        process = SilentProcess(ctx)
        process.on_start()
        process.on_round_start(1)
        process.on_input(1, make_message(0))
        process.on_receive(1, None)
        process.on_round_end(1)
        assert process.drain_outputs() == []

    def test_abstract_base_cannot_be_instantiated(self):
        ctx = ProcessContext(vertex=0, delta=2, delta_prime=2)
        with pytest.raises(TypeError):
            Process(ctx)

    def test_repr_mentions_vertex(self):
        ctx = ProcessContext(vertex=42, delta=2, delta_prime=2)
        assert "42" in repr(SilentProcess(ctx))
