"""Tests of the public package surface.

A downstream user's first contact with the library is ``import repro`` and the
names re-exported there; these tests pin that surface (so refactors cannot
silently drop public names), check that public modules document themselves,
and cross-check the derived parameters against the closed-form theory module.
"""

import importlib
import inspect

import pytest

import repro
from repro.analysis import theory
from repro.core.params import LBParams, SeedParams

PUBLIC_MODULES = [
    "repro",
    "repro.dualgraph",
    "repro.dualgraph.graph",
    "repro.dualgraph.geometric",
    "repro.dualgraph.generators",
    "repro.dualgraph.regions",
    "repro.dualgraph.adversary",
    "repro.simulation",
    "repro.simulation.engine",
    "repro.simulation.process",
    "repro.simulation.environment",
    "repro.simulation.trace",
    "repro.simulation.metrics",
    "repro.simulation.executor",
    "repro.core",
    "repro.core.constants",
    "repro.core.params",
    "repro.core.seedbits",
    "repro.core.seed_agreement",
    "repro.core.seed_spec",
    "repro.core.local_broadcast",
    "repro.core.lb_spec",
    "repro.baselines",
    "repro.mac",
    "repro.mac.spec",
    "repro.mac.adapter",
    "repro.mac.applications",
    "repro.mac.applications.flood",
    "repro.mac.applications.multi_message",
    "repro.mac.applications.neighbor_discovery",
    "repro.analysis",
    "repro.analysis.theory",
    "repro.analysis.stats",
    "repro.analysis.sweep",
    "repro.scenarios",
    "repro.scenarios.spec",
    "repro.scenarios.registry",
    "repro.scenarios.components",
    "repro.scenarios.runtime",
    "repro.scenarios.cli",
]


class TestPackageSurface:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists {name} but it is missing"

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_public_modules_import_and_are_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), f"{module_name} has no docstring"

    def test_key_entry_points_are_exported(self):
        for name in (
            "DualGraph",
            "random_geographic_network",
            "Simulator",
            "LBParams",
            "SeedParams",
            "LocalBroadcastProcess",
            "SeedAgreementProcess",
            "check_lb_execution",
            "check_seed_execution",
            "make_lb_processes",
            "run_flood",
            "DecayProcess",
            "IIDScheduler",
            "AntiScheduleAdversary",
            "ScenarioSpec",
            "register_topology",
        ):
            assert name in repro.__all__

    def test_public_classes_have_docstrings(self):
        for name in ("DualGraph", "Simulator", "LocalBroadcastProcess",
                     "SeedAgreementProcess", "LBParams", "SeedParams"):
            obj = getattr(repro, name)
            assert inspect.getdoc(obj), f"{name} has no docstring"
            public_methods = [
                m for n, m in inspect.getmembers(obj, predicate=inspect.isfunction)
                if not n.startswith("_")
            ]
            for method in public_methods:
                assert inspect.getdoc(method), (
                    f"{name}.{method.__name__} has no docstring"
                )


class TestTheoryConsistency:
    """The derived simulation parameters must track the closed-form shapes."""

    def test_tprog_tracks_theory_in_delta(self):
        ratios = []
        for delta in (8, 32, 128):
            derived = LBParams.derive(0.1, delta=delta, delta_prime=delta).tprog
            predicted = theory.tprog_bound(delta, 0.1)
            ratios.append(derived / predicted)
        # Constant-factor agreement: the ratio varies by < 3x across the sweep.
        assert max(ratios) / min(ratios) < 3.0

    def test_tack_tracks_theory_in_delta(self):
        ratios = []
        for delta in (8, 32, 128):
            derived = LBParams.derive(0.1, delta=delta, delta_prime=delta).tack_rounds
            predicted = theory.tack_bound(delta, 0.1)
            ratios.append(derived / predicted)
        assert max(ratios) / min(ratios) < 4.0

    def test_seed_runtime_tracks_theory_in_epsilon(self):
        ratios = []
        for epsilon in (0.2, 0.05, 0.01):
            derived = SeedParams.derive(epsilon, delta=16).total_rounds
            predicted = theory.seed_runtime_bound(16, epsilon)
            ratios.append(derived / predicted)
        assert max(ratios) / min(ratios) < 4.0

    def test_upper_bounds_exceed_lower_bounds_for_derived_params(self):
        for delta in (4, 16, 64):
            params = LBParams.derive(0.1, delta=delta, delta_prime=delta)
            assert params.tack_rounds >= theory.ack_lower_bound(delta)
            assert params.tprog_rounds >= theory.progress_lower_bound(delta)
