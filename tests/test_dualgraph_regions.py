"""Unit tests for the region partition machinery (Appendix A.1)."""

import math

import pytest

from repro.dualgraph.generators import random_geographic_network
from repro.dualgraph.geometric import Embedding
from repro.dualgraph.regions import GridRegionPartition, RegionGraph


class TestGridRegionPartition:
    def test_default_side_is_half(self):
        assert GridRegionPartition().side == 0.5

    def test_rejects_sides_that_break_the_diameter_bound(self):
        with pytest.raises(ValueError):
            GridRegionPartition(side=0.8)
        with pytest.raises(ValueError):
            GridRegionPartition(side=0.0)

    def test_region_diameter_at_most_one(self):
        partition = GridRegionPartition()
        assert partition.max_region_diameter() <= 1.0 + 1e-12

    def test_region_of_point_half_open_convention(self):
        partition = GridRegionPartition(side=0.5)
        assert partition.region_of_point((0.0, 0.0)) == (0, 0)
        assert partition.region_of_point((0.49, 0.49)) == (0, 0)
        assert partition.region_of_point((0.5, 0.0)) == (1, 0)
        assert partition.region_of_point((-0.01, 0.0)) == (-1, 0)

    def test_each_point_belongs_to_exactly_one_region(self):
        partition = GridRegionPartition()
        # Points on boundaries map to a single region (the half-open one).
        for point in [(0.5, 0.5), (1.0, 0.0), (0.0, 1.0)]:
            region = partition.region_of_point(point)
            assert isinstance(region, tuple) and len(region) == 2

    def test_assign_vertices_groups_by_region(self):
        partition = GridRegionPartition()
        emb = Embedding({0: (0.1, 0.1), 1: (0.2, 0.3), 2: (1.6, 1.6)})
        buckets = partition.assign_vertices(emb)
        assert buckets[(0, 0)] == frozenset({0, 1})
        assert buckets[(3, 3)] == frozenset({2})

    def test_min_distance_between_adjacent_and_far_regions(self):
        partition = GridRegionPartition(side=0.5)
        assert partition.min_distance_between((0, 0), (1, 0)) == pytest.approx(0.0)
        assert partition.min_distance_between((0, 0), (4, 0)) == pytest.approx(1.5)
        assert partition.min_distance_between((0, 0), (3, 4)) == pytest.approx(
            math.hypot(1.0, 1.5)
        )

    def test_neighboring_regions_within_r(self):
        partition = GridRegionPartition(side=0.5)
        neighbors = partition.neighboring_regions((0, 0), r=1.0)
        assert (1, 0) in neighbors
        assert (0, 0) not in neighbors
        # A region 3 squares away starts at distance 1.0, so it is included...
        assert (3, 0) in neighbors
        # ...but 4 squares away starts at 1.5 > 1.0.
        assert (4, 0) not in neighbors

    def test_region_center(self):
        partition = GridRegionPartition(side=0.5)
        assert partition.region_center((0, 0)) == (0.25, 0.25)
        assert partition.region_center((-1, 2)) == (-0.25, 1.25)

    def test_f_bound_constant_positive(self):
        partition = GridRegionPartition()
        assert partition.f_bound_constant(2.0) > 0


class TestRegionGraph:
    @pytest.fixture
    def embedded_network(self):
        graph, emb = random_geographic_network(20, side=3.0, r=2.0, rng=8)
        return graph, emb

    def test_regions_cover_all_vertices(self, embedded_network):
        graph, emb = embedded_network
        region_graph = RegionGraph(GridRegionPartition(), emb, r=2.0)
        covered = set()
        for region in region_graph.regions:
            covered |= set(region_graph.members(region))
        assert covered == set(graph.vertices)

    def test_region_of_matches_membership(self, embedded_network):
        graph, emb = embedded_network
        region_graph = RegionGraph(GridRegionPartition(), emb, r=2.0)
        for vertex in graph.vertices:
            region = region_graph.region_of(vertex)
            assert vertex in region_graph.members(region)

    def test_neighbors_are_symmetric(self, embedded_network):
        _, emb = embedded_network
        region_graph = RegionGraph(GridRegionPartition(), emb, r=2.0)
        for region in region_graph.regions:
            for other in region_graph.neighbors(region):
                assert region in region_graph.neighbors(other)

    def test_regions_within_zero_hops_is_self(self, embedded_network):
        _, emb = embedded_network
        region_graph = RegionGraph(GridRegionPartition(), emb, r=2.0)
        some_region = next(iter(region_graph.regions))
        assert region_graph.regions_within_hops(some_region, 0) == {some_region}

    def test_regions_within_hops_is_monotone(self, embedded_network):
        _, emb = embedded_network
        region_graph = RegionGraph(GridRegionPartition(), emb, r=2.0)
        some_region = next(iter(region_graph.regions))
        previous = set()
        for hops in range(4):
            current = region_graph.regions_within_hops(some_region, hops)
            assert previous <= current
            previous = set(current)

    def test_unknown_region_raises(self, embedded_network):
        _, emb = embedded_network
        region_graph = RegionGraph(GridRegionPartition(), emb, r=2.0)
        with pytest.raises(KeyError):
            region_graph.regions_within_hops((999, 999), 1)

    def test_f_boundedness_with_lemma_constant(self, embedded_network):
        """Lemma A.2: occupied regions within h hops are at most c_r h^2."""
        _, emb = embedded_network
        partition = GridRegionPartition()
        region_graph = RegionGraph(partition, emb, r=2.0)
        c1 = partition.f_bound_constant(2.0)
        assert region_graph.check_f_bounded(c1, max_hops=3)

    def test_co_region_vertices_are_reliable_neighbors(self, embedded_network):
        """Lemma A.3's premise: all vertices in one region are G-neighbors."""
        graph, emb = embedded_network
        region_graph = RegionGraph(GridRegionPartition(), emb, r=2.0)
        for region in region_graph.regions:
            members = sorted(region_graph.members(region), key=repr)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    assert graph.has_reliable_edge(u, v)

    def test_max_vertices_per_region_at_most_delta(self, embedded_network):
        """Lemma A.3: |region| <= Delta for r-geographic dual graphs."""
        graph, emb = embedded_network
        region_graph = RegionGraph(GridRegionPartition(), emb, r=2.0)
        assert region_graph.max_vertices_per_region() <= graph.max_reliable_degree

    def test_delta_prime_bounded_by_cr_delta(self, embedded_network):
        """Lemma A.3: Delta' <= c_r * Delta with the explicit grid constant."""
        graph, emb = embedded_network
        partition = GridRegionPartition()
        c_r = partition.f_bound_constant(2.0) * 2.0 * 2.0
        assert graph.max_potential_degree <= c_r * graph.max_reliable_degree

    def test_vertices_within_hops(self, embedded_network):
        graph, emb = embedded_network
        region_graph = RegionGraph(GridRegionPartition(), emb, r=2.0)
        some_region = next(iter(region_graph.regions))
        zero_hop = region_graph.vertices_within_hops(some_region, 0)
        assert zero_hop == region_graph.members(some_region)
        all_hops = region_graph.vertices_within_hops(some_region, 50)
        assert zero_hop <= all_hops

    def test_invalid_r_rejected(self, embedded_network):
        _, emb = embedded_network
        with pytest.raises(ValueError):
            RegionGraph(GridRegionPartition(), emb, r=0.5)
