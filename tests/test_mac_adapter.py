"""Unit tests for the abstract MAC layer interface and adapter."""

import random

import pytest

from repro.core.events import AckOutput, BcastInput, RecvOutput
from repro.core.params import LBParams
from repro.dualgraph.generators import line_network
from repro.mac.adapter import AbstractMacNode, make_mac_nodes
from repro.mac.spec import MacClient, MacLayerGuarantees
from repro.simulation.engine import Simulator
from repro.simulation.process import ProcessContext


@pytest.fixture
def params():
    return LBParams.small_for_testing(delta=4, delta_prime=8, tprog=10, tack_phases=2,
                                      seed_phase_length=4)


class RecordingClient(MacClient):
    """A MAC client that records every callback it receives."""

    def __init__(self):
        self.started_with = None
        self.recvs = []
        self.acks = []

    def on_mac_start(self, api):
        self.started_with = api

    def on_mac_recv(self, payload, round_number):
        self.recvs.append((payload, round_number))

    def on_mac_ack(self, payload, round_number):
        self.acks.append((payload, round_number))


class EagerClient(RecordingClient):
    """Submits one payload at start-up."""

    def __init__(self, payload="hello"):
        super().__init__()
        self.payload = payload

    def on_mac_start(self, api):
        super().on_mac_start(api)
        api.mac_bcast(self.payload)


class TestMacLayerGuarantees:
    def test_from_lb_params(self, params):
        guarantees = MacLayerGuarantees.from_lb_params(params)
        assert guarantees.f_prog == params.tprog_rounds
        assert guarantees.f_ack == params.tack_rounds
        assert guarantees.epsilon == params.epsilon

    def test_validation(self):
        with pytest.raises(ValueError):
            MacLayerGuarantees(f_ack=5, f_prog=10, epsilon=0.1)
        with pytest.raises(ValueError):
            MacLayerGuarantees(f_ack=10, f_prog=5, epsilon=0.0)


class TestMacClientDefaults:
    def test_default_hooks_are_noops(self):
        client = MacClient()
        client.on_mac_start(api=None)
        client.on_mac_recv("payload", 1)
        client.on_mac_ack("payload", 1)


def build_network(params, clients):
    graph, _ = line_network(len(clients), spacing=0.9)
    rng = random.Random(0)
    nodes = make_mac_nodes(graph, params, lambda v: clients[v], rng)
    return graph, Simulator(graph, nodes)


class TestAdapter:
    def test_clients_get_started_with_their_api(self, params):
        clients = {0: RecordingClient(), 1: RecordingClient()}
        _, sim = build_network(params, clients)
        sim.run(1)
        for vertex, client in clients.items():
            assert isinstance(client.started_with, AbstractMacNode)
            assert client.started_with.vertex == vertex

    def test_submission_becomes_a_bcast_event(self, params):
        clients = {0: EagerClient(), 1: RecordingClient()}
        _, sim = build_network(params, clients)
        trace = sim.run(1)
        assert len(trace.bcast_inputs) == 1
        assert trace.bcast_inputs[0].vertex == 0
        assert trace.bcast_inputs[0].message.payload == "hello"

    def test_ack_callback_fires_after_tack_phases(self, params):
        clients = {0: EagerClient(), 1: RecordingClient()}
        _, sim = build_network(params, clients)
        sim.run(params.tack_phases * params.phase_length + params.phase_length)
        assert clients[0].acks, "the submitting client must eventually see its ack"
        payload, _ = clients[0].acks[0]
        assert payload == "hello"

    def test_recv_callback_fires_at_neighbors(self, params):
        clients = {0: EagerClient(), 1: RecordingClient()}
        _, sim = build_network(params, clients)
        sim.run(params.tack_phases * params.phase_length + params.phase_length)
        assert clients[1].recvs, "the reliable neighbor should hear the payload"
        assert clients[1].recvs[0][0] == "hello"

    def test_queueing_while_busy(self, params):
        class DoubleSubmit(RecordingClient):
            def on_mac_start(self, api):
                super().on_mac_start(api)
                assert api.mac_bcast("first") is True
                assert api.mac_bcast("second") is False  # queued

        clients = {0: DoubleSubmit(), 1: RecordingClient()}
        _, sim = build_network(params, clients)
        node = sim.process_at(0)
        sim.run(1)
        assert node.outstanding_payload == "first"
        assert node.queued_payloads == 1
        # After enough rounds the first is acked and the second goes out.
        sim.run(2 * (params.tack_phases + 1) * params.phase_length)
        payloads = [p for p, _ in clients[0].acks]
        assert payloads[:2] == ["first", "second"]

    def test_mac_trace_is_checkable_by_lb_spec(self, params):
        from repro.core.lb_spec import check_lb_execution

        clients = {0: EagerClient(), 1: RecordingClient(), 2: RecordingClient()}
        graph, sim = build_network(params, clients)
        trace = sim.run((params.tack_phases + 1) * params.phase_length)
        report = check_lb_execution(trace, graph, params.tack_rounds, params.tprog_rounds,
                                    check_progress=False)
        assert report.deterministic_ok

    def test_environment_inputs_are_treated_as_submissions(self, params):
        from repro.core.messages import Message

        ctx = ProcessContext(vertex=0, delta=4, delta_prime=8, rng=random.Random(0))
        from repro.core.local_broadcast import LocalBroadcastProcess

        node = AbstractMacNode(ctx, LocalBroadcastProcess(ctx, params), RecordingClient())
        node.on_input(1, Message(origin=0, sequence=0, payload="via-env"))
        assert node.queued_payloads == 1


class TestMakeMacNodes:
    def test_one_node_per_vertex(self, params):
        graph, _ = line_network(4)
        nodes = make_mac_nodes(graph, params, lambda v: RecordingClient(), random.Random(0))
        assert set(nodes) == set(graph.vertices)
        assert all(isinstance(n, AbstractMacNode) for n in nodes.values())

    def test_custom_inner_factory(self, params):
        from repro.baselines.decay import DecayProcess

        graph, _ = line_network(3)
        nodes = make_mac_nodes(
            graph,
            params,
            lambda v: RecordingClient(),
            random.Random(0),
            inner_factory=lambda ctx: DecayProcess(ctx, num_cycles=2),
        )
        assert all(isinstance(n.inner, DecayProcess) for n in nodes.values())
