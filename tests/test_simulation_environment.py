"""Unit tests for the deterministic environments (Section 4.1 restrictions)."""

import pytest

from repro.core.events import AckOutput, RecvOutput
from repro.core.messages import Message, make_message
from repro.simulation.environment import (
    BurstyEnvironment,
    NullEnvironment,
    SaturatingEnvironment,
    ScriptedEnvironment,
    SingleShotEnvironment,
)


def ack_for(env, vertex, round_number):
    """Feed the environment the ack for the vertex's outstanding message."""
    message = env.outstanding_message(vertex)
    assert message is not None
    env.observe_outputs(
        round_number, [AckOutput(vertex=vertex, message=message, round_number=round_number)]
    )
    return message


class TestNullEnvironment:
    def test_never_submits(self):
        env = NullEnvironment()
        for round_number in range(1, 10):
            assert env.inputs_for_round(round_number) == {}
        assert env.submitted_messages == []


class TestSingleShotEnvironment:
    def test_submits_once_at_start_round(self):
        env = SingleShotEnvironment(senders=[1, 2], start_round=3)
        assert env.inputs_for_round(1) == {}
        assert env.inputs_for_round(2) == {}
        inputs = env.inputs_for_round(3)
        assert set(inputs) == {1, 2}
        assert env.inputs_for_round(4) == {}

    def test_messages_are_unique_and_tagged_by_origin(self):
        env = SingleShotEnvironment(senders=[1, 2])
        inputs = env.inputs_for_round(1)
        m1, m2 = inputs[1][0], inputs[2][0]
        assert m1.origin == 1 and m2.origin == 2
        assert m1.message_id != m2.message_id

    def test_busy_until_ack(self):
        env = SingleShotEnvironment(senders=[5])
        env.inputs_for_round(1)
        assert env.is_busy(5)
        ack_for(env, 5, 10)
        assert not env.is_busy(5)


class TestSaturatingEnvironment:
    def test_initial_submission_for_all_senders(self):
        env = SaturatingEnvironment(senders=[0, 1])
        inputs = env.inputs_for_round(1)
        assert set(inputs) == {0, 1}

    def test_no_resubmission_while_busy(self):
        env = SaturatingEnvironment(senders=[0])
        env.inputs_for_round(1)
        assert env.inputs_for_round(2) == {}
        assert env.inputs_for_round(3) == {}

    def test_resubmits_after_ack(self):
        env = SaturatingEnvironment(senders=[0])
        first = env.inputs_for_round(1)[0][0]
        ack_for(env, 0, 5)
        second = env.inputs_for_round(6)[0][0]
        assert second.message_id != first.message_id
        assert second.origin == 0

    def test_respects_start_round(self):
        env = SaturatingEnvironment(senders=[0], start_round=4)
        assert env.inputs_for_round(3) == {}
        assert set(env.inputs_for_round(4)) == {0}

    def test_never_violates_well_formedness(self):
        env = SaturatingEnvironment(senders=[0])
        outstanding = 0
        for round_number in range(1, 30):
            inputs = env.inputs_for_round(round_number)
            outstanding += sum(len(v) for v in inputs.values())
            assert outstanding <= 1
            if round_number % 7 == 0 and env.is_busy(0):
                ack_for(env, 0, round_number)
                outstanding -= 1


class TestScriptedEnvironment:
    def test_follows_the_script(self):
        env = ScriptedEnvironment({1: {0: "a"}, 3: {1: "b"}})
        assert set(env.inputs_for_round(1)) == {0}
        assert env.inputs_for_round(2) == {}
        assert set(env.inputs_for_round(3)) == {1}

    def test_payloads_are_preserved(self):
        env = ScriptedEnvironment({1: {0: {"key": "value"}}})
        message = env.inputs_for_round(1)[0][0]
        assert message.payload == {"key": "value"}

    def test_queues_submissions_while_busy(self):
        env = ScriptedEnvironment({1: {0: "first"}, 2: {0: "second"}})
        env.inputs_for_round(1)
        # Round 2's submission must wait: vertex 0 is still busy.
        assert env.inputs_for_round(2) == {}
        assert env.pending == [(0, "second")]
        ack_for(env, 0, 3)
        inputs = env.inputs_for_round(4)
        assert inputs[0][0].payload == "second"
        assert env.pending == []

    def test_two_vertices_are_independent(self):
        env = ScriptedEnvironment({1: {0: "a", 1: "b"}})
        inputs = env.inputs_for_round(1)
        assert set(inputs) == {0, 1}


class TestBurstyEnvironment:
    def test_period_validation(self):
        with pytest.raises(ValueError):
            BurstyEnvironment(senders=[0], period=0)

    def test_submits_every_period(self):
        env = BurstyEnvironment(senders=[0], period=3, start_round=1)
        submitted_rounds = []
        for round_number in range(1, 10):
            if env.inputs_for_round(round_number):
                submitted_rounds.append(round_number)
            if env.is_busy(0):
                ack_for(env, 0, round_number)
        assert submitted_rounds == [1, 4, 7]

    def test_drops_attempts_while_busy(self):
        env = BurstyEnvironment(senders=[0], period=2, start_round=1)
        env.inputs_for_round(1)
        # Still busy at round 3: the attempt is dropped, not queued.
        assert env.inputs_for_round(3) == {}
        ack_for(env, 0, 4)
        # Round 5 is the next on-period round and the node is free again.
        assert set(env.inputs_for_round(5)) == {0}

    def test_all_submitted_messages_are_unique(self):
        env = BurstyEnvironment(senders=[0, 1], period=1)
        for round_number in range(1, 20):
            env.inputs_for_round(round_number)
            for vertex in (0, 1):
                if env.is_busy(vertex):
                    ack_for(env, vertex, round_number)
        ids = [m.message_id for m in env.submitted_messages]
        assert len(ids) == len(set(ids))


class TestEnvironmentObservation:
    def test_recv_outputs_are_ignored_gracefully(self):
        env = SingleShotEnvironment(senders=[0])
        env.inputs_for_round(1)
        env.observe_outputs(
            2, [RecvOutput(vertex=1, message=make_message(0), round_number=2)]
        )
        assert env.is_busy(0)

    def test_ack_for_unknown_message_does_not_unblock(self):
        env = SingleShotEnvironment(senders=[0])
        env.inputs_for_round(1)
        other = Message(origin=0, sequence=999, payload=None)
        env.observe_outputs(2, [AckOutput(vertex=0, message=other, round_number=2)])
        assert env.is_busy(0)
