"""Edge-case and robustness tests across the stack.

Degenerate networks (a single vertex, no neighbors, Δ = 1), boundary values of
the geographic and error parameters, and misbehaving inputs should all either
work trivially or fail loudly -- never corrupt an execution silently.
"""

import random

import pytest

from repro import (
    DualGraph,
    LBParams,
    SeedParams,
    Simulator,
    SingleShotEnvironment,
    check_lb_execution,
    check_seed_execution,
    geographic_dual_graph,
    make_lb_processes,
)
from repro.core.seed_agreement import SeedAgreementProcess
from repro.simulation.metrics import ack_delays, delivery_report, progress_report
from repro.simulation.process import ProcessContext
from repro.simulation.trace import ExecutionTrace


class TestDegenerateNetworks:
    def test_lbalg_on_a_single_isolated_vertex(self):
        """A sender with no neighbors still acknowledges; reliability is vacuous."""
        graph = DualGraph(vertices=[0])
        params = LBParams.small_for_testing(delta=1, delta_prime=1, tprog=8,
                                            tack_phases=1, seed_phase_length=3)
        simulator = Simulator(
            graph,
            make_lb_processes(graph, params, random.Random(0)),
            environment=SingleShotEnvironment(senders=[0]),
        )
        trace = simulator.run(params.tack_rounds)
        report = check_lb_execution(trace, graph, params.tack_rounds, params.tprog_rounds)
        assert report.deterministic_ok
        assert report.reliability_failure_rate == 0.0
        records = ack_delays(trace)
        assert len(records) == 1 and records[0].delay is not None

    def test_lbalg_on_two_vertices_with_one_reliable_edge(self):
        graph = DualGraph(vertices=[0, 1], reliable_edges=[(0, 1)])
        params = LBParams.small_for_testing(delta=2, delta_prime=2, tprog=60,
                                            tack_phases=2, seed_phase_length=4)
        simulator = Simulator(
            graph,
            make_lb_processes(graph, params, random.Random(1)),
            environment=SingleShotEnvironment(senders=[0]),
        )
        trace = simulator.run(params.tack_rounds)
        report = check_lb_execution(trace, graph, params.tack_rounds, params.tprog_rounds,
                                    check_progress=False)
        assert report.deterministic_ok
        # The single reliable neighbor is reached before the ack.
        deliveries = delivery_report(trace, graph)
        assert deliveries[0].fully_delivered

    def test_seedalg_on_a_single_vertex_defaults_to_itself(self):
        graph = DualGraph(vertices=[0])
        params = SeedParams.derive(0.2, delta=1, phase_length_override=3)
        ctx = ProcessContext(vertex=0, delta=1, delta_prime=1, rng=random.Random(0))
        simulator = Simulator(graph, {0: SeedAgreementProcess(ctx, params)})
        trace = simulator.run(params.total_rounds)
        report = check_seed_execution(trace, graph, delta_bound=1)
        assert report.ok
        assert trace.decide_outputs[0].owner == 0

    def test_delta_one_params_are_valid(self):
        params = LBParams.derive(0.2, delta=1, delta_prime=1)
        assert params.log_delta == 1
        assert params.tack_rounds >= params.tprog_rounds

    def test_vertices_with_non_integer_identifiers(self):
        graph, _ = geographic_dual_graph(
            {"alpha": (0.0, 0.0), "beta": (0.5, 0.0), ("tuple", 1): (0.2, 0.4)}, r=2.0
        )
        assert graph.has_reliable_edge("alpha", "beta")
        params = LBParams.small_for_testing(delta=3, delta_prime=3, tprog=10,
                                            tack_phases=1, seed_phase_length=3)
        simulator = Simulator(
            graph,
            make_lb_processes(graph, params, random.Random(2)),
            environment=SingleShotEnvironment(senders=["alpha"]),
        )
        trace = simulator.run(params.tack_rounds)
        assert check_lb_execution(
            trace, graph, params.tack_rounds, params.tprog_rounds, check_progress=False
        ).deterministic_ok


class TestBoundaryParameters:
    def test_r_exactly_one_is_allowed(self):
        graph, emb = geographic_dual_graph({0: (0, 0), 1: (0.8, 0)}, r=1.0)
        assert graph.has_reliable_edge(0, 1)
        params = LBParams.derive(0.2, delta=2, delta_prime=2, r=1.0)
        assert params.tprog >= 1

    def test_extremely_small_epsilon_still_derives(self):
        params = LBParams.derive(1e-6, delta=8, delta_prime=8)
        assert params.tprog > LBParams.derive(0.2, delta=8, delta_prime=8).tprog
        assert 0 < params.participant_probability <= 0.5

    def test_epsilon_bounds_rejected(self):
        for bad in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                LBParams.derive(bad, delta=8)
            with pytest.raises(ValueError):
                SeedParams.derive(bad, delta=8)

    def test_large_delta_derivation_is_finite_and_fast(self):
        params = LBParams.derive(0.1, delta=4096, delta_prime=8192)
        assert params.tprog < 10 ** 5
        assert params.kappa < 10 ** 7


class TestEmptyAndPartialTraces:
    def test_metrics_on_an_empty_trace(self):
        graph = DualGraph(vertices=[0, 1], reliable_edges=[(0, 1)])
        trace = ExecutionTrace()
        assert ack_delays(trace) == []
        assert delivery_report(trace, graph) == []
        report = progress_report(trace, graph, window=5)
        assert report.num_applicable == 0

    def test_spec_checkers_on_an_empty_trace(self):
        graph = DualGraph(vertices=[0, 1], reliable_edges=[(0, 1)])
        trace = ExecutionTrace()
        lb = check_lb_execution(trace, graph, tack=10, tprog=5)
        assert lb.deterministic_ok
        seed = check_seed_execution(trace, graph, delta_bound=3)
        assert not seed.well_formed  # nobody decided
        assert seed.consistent

    def test_run_zero_rounds(self):
        graph = DualGraph(vertices=[0])
        params = LBParams.small_for_testing(delta=1, delta_prime=1, tprog=8,
                                            tack_phases=1, seed_phase_length=3)
        simulator = Simulator(graph, make_lb_processes(graph, params, random.Random(0)))
        trace = simulator.run(0)
        assert trace.num_rounds == 0
