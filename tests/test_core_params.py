"""Unit tests for the SeedAlg / LBAlg parameter derivation."""

import math

import pytest

from repro.core.constants import ParamMode, SeedConstants
from repro.core.params import (
    LBParams,
    SeedParams,
    derive_epsilon2,
    theoretical_seed_error,
)


class TestSeedParamsDerivation:
    def test_num_phases_is_log_delta(self):
        assert SeedParams.derive(0.1, delta=8).num_phases == 3
        assert SeedParams.derive(0.1, delta=16).num_phases == 4
        assert SeedParams.derive(0.1, delta=1).num_phases == 1

    def test_phase_length_grows_as_epsilon_shrinks(self):
        long_run = SeedParams.derive(0.01, delta=8)
        short_run = SeedParams.derive(0.25, delta=8)
        assert long_run.phase_length > short_run.phase_length

    def test_phase_length_override(self):
        params = SeedParams.derive(0.1, delta=8, phase_length_override=5)
        assert params.phase_length == 5

    def test_total_rounds(self):
        params = SeedParams.derive(0.1, delta=16, phase_length_override=7)
        assert params.total_rounds == 4 * 7

    def test_leader_broadcast_probability(self):
        params = SeedParams.derive(0.25, delta=8)
        # 1 / log2(1/0.25) = 1/2.
        assert params.leader_broadcast_probability == pytest.approx(0.5)

    def test_leader_broadcast_probability_clamped_to_one(self):
        params = SeedParams.derive(0.6, delta=8)
        assert params.leader_broadcast_probability <= 1.0

    def test_leader_election_probabilities_double_per_phase(self):
        params = SeedParams.derive(0.1, delta=16)
        probabilities = [
            params.leader_election_probability(h) for h in range(1, params.num_phases + 1)
        ]
        assert probabilities[-1] == pytest.approx(0.5)
        for earlier, later in zip(probabilities, probabilities[1:]):
            assert later == pytest.approx(2 * earlier)
        # Phase 1 probability is 1/2^{log Delta} = 1/Delta for a power of two.
        assert probabilities[0] == pytest.approx(1.0 / 16.0)

    def test_leader_election_probability_bounds_checked(self):
        params = SeedParams.derive(0.1, delta=8)
        with pytest.raises(ValueError):
            params.leader_election_probability(0)
        with pytest.raises(ValueError):
            params.leader_election_probability(params.num_phases + 1)

    def test_phase_of_round(self):
        params = SeedParams.derive(0.1, delta=8, phase_length_override=4)
        assert params.phase_of_round(1) == (1, 1)
        assert params.phase_of_round(4) == (1, 4)
        assert params.phase_of_round(5) == (2, 1)
        assert params.phase_of_round(12) == (3, 4)
        # Past the end: virtual phase num_phases + 1.
        assert params.phase_of_round(13) == (4, 1)
        with pytest.raises(ValueError):
            params.phase_of_round(0)

    def test_delta_bound_grows_with_r_and_shrinking_epsilon(self):
        base = SeedParams.derive(0.1, delta=8, r=1.0)
        bigger_r = SeedParams.derive(0.1, delta=8, r=2.0)
        smaller_eps = SeedParams.derive(0.01, delta=8, r=1.0)
        assert bigger_r.delta_bound > base.delta_bound
        assert smaller_eps.delta_bound >= base.delta_bound

    def test_validation(self):
        with pytest.raises(ValueError):
            SeedParams.derive(0.0, delta=8)
        with pytest.raises(ValueError):
            SeedParams.derive(0.1, delta=0)
        with pytest.raises(ValueError):
            SeedParams.derive(0.1, delta=8, r=0.5)

    def test_with_seed_domain_bits(self):
        params = SeedParams.derive(0.1, delta=8)
        wider = params.with_seed_domain_bits(256)
        assert wider.seed_domain_bits == 256
        assert wider.num_phases == params.num_phases

    def test_direct_construction_validation(self):
        with pytest.raises(ValueError):
            SeedParams(
                epsilon=0.1,
                delta=8,
                r=2.0,
                num_phases=0,
                phase_length=4,
                leader_broadcast_probability=0.5,
            )

    def test_paper_mode_is_larger_than_simulation_mode(self):
        paper = SeedParams.derive(0.1, delta=8, mode=ParamMode.PAPER)
        simulation = SeedParams.derive(0.1, delta=8, mode=ParamMode.SIMULATION)
        assert paper.phase_length > simulation.phase_length


class TestTheoreticalSeedError:
    def test_error_decreases_with_epsilon(self):
        assert theoretical_seed_error(0.001, 16, 1.0) <= theoretical_seed_error(0.1, 16, 1.0)

    def test_error_grows_with_delta(self):
        constants = SeedConstants.simulation()
        assert theoretical_seed_error(0.1, 64, 1.0, constants) >= theoretical_seed_error(
            0.1, 8, 1.0, constants
        )

    def test_error_non_negative(self):
        assert theoretical_seed_error(0.1, 8, 2.0) >= 0.0


class TestDeriveEpsilon2:
    def test_simulation_mode_passes_epsilon_through(self):
        assert derive_epsilon2(0.2, 16, 2.0, ParamMode.SIMULATION) == 0.2

    def test_paper_mode_never_exceeds_epsilon1(self):
        assert derive_epsilon2(0.2, 16, 2.0, ParamMode.PAPER) <= 0.2

    def test_paper_mode_positive(self):
        assert derive_epsilon2(0.2, 16, 2.0, ParamMode.PAPER) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            derive_epsilon2(0.0, 16, 2.0, ParamMode.PAPER)


class TestLBParamsDerivation:
    def test_structure_of_derived_params(self):
        params = LBParams.derive(0.2, delta=8, delta_prime=16)
        assert params.phase_length == params.ts + params.tprog
        assert params.tprog_rounds == params.phase_length
        assert params.tack_rounds == (params.tack_phases + 1) * params.phase_length
        assert params.kappa >= params.tprog * (
            params.participant_bits + params.b_selection_bits
        )

    def test_ts_matches_seed_subroutine_length(self):
        params = LBParams.derive(0.2, delta=8, delta_prime=16)
        assert params.ts == params.seed_params.total_rounds

    def test_seed_subroutine_domain_is_kappa(self):
        params = LBParams.derive(0.2, delta=8, delta_prime=16)
        assert params.seed_params.seed_domain_bits == params.kappa

    def test_tprog_grows_with_delta(self):
        small = LBParams.derive(0.2, delta=8, delta_prime=8)
        large = LBParams.derive(0.2, delta=64, delta_prime=64)
        assert large.tprog > small.tprog

    def test_tprog_grows_as_epsilon_shrinks(self):
        loose = LBParams.derive(0.25, delta=16, delta_prime=16)
        tight = LBParams.derive(0.05, delta=16, delta_prime=16)
        assert tight.tprog > loose.tprog

    def test_tack_phases_grow_with_delta_prime(self):
        small = LBParams.derive(0.2, delta=8, delta_prime=8)
        large = LBParams.derive(0.2, delta=8, delta_prime=32)
        assert large.tack_phases > small.tack_phases

    def test_default_delta_prime_is_delta(self):
        params = LBParams.derive(0.2, delta=8)
        assert params.delta_prime == 8

    def test_delta_prime_below_delta_rejected(self):
        with pytest.raises(ValueError):
            LBParams.derive(0.2, delta=8, delta_prime=4)

    def test_overrides(self):
        params = LBParams.derive(
            0.2,
            delta=8,
            delta_prime=16,
            tprog_override=10,
            tack_phases_override=2,
            seed_phase_length_override=3,
        )
        assert params.tprog == 10
        assert params.tack_phases == 2
        assert params.seed_params.phase_length == 3

    def test_participant_probability_is_power_of_two(self):
        params = LBParams.derive(0.2, delta=8, delta_prime=16)
        assert params.participant_probability == 2.0 ** (-params.participant_bits)
        assert 0.0 < params.participant_probability <= 0.5

    def test_log_delta(self):
        assert LBParams.derive(0.2, delta=8).log_delta == 3
        assert LBParams.derive(0.2, delta=9).log_delta == 4

    def test_phase_position(self):
        params = LBParams.small_for_testing(delta=8, tprog=10, seed_phase_length=4)
        assert params.phase_position(1) == (1, 1)
        assert params.phase_position(params.phase_length) == (1, params.phase_length)
        assert params.phase_position(params.phase_length + 1) == (2, 1)
        with pytest.raises(ValueError):
            params.phase_position(0)

    def test_preamble_and_body_offsets(self):
        params = LBParams.small_for_testing(delta=8, tprog=10, seed_phase_length=4)
        assert params.is_preamble(1)
        assert params.is_preamble(params.ts)
        assert not params.is_preamble(params.ts + 1)
        assert params.is_body(params.ts + 1)
        assert params.is_body(params.phase_length)
        assert not params.is_body(params.ts)

    def test_kappa_validation_on_direct_construction(self):
        good = LBParams.derive(0.2, delta=8, delta_prime=16)
        with pytest.raises(ValueError):
            LBParams(
                epsilon=good.epsilon,
                delta=good.delta,
                delta_prime=good.delta_prime,
                r=good.r,
                seed_params=good.seed_params,
                ts=good.ts,
                tprog=good.tprog,
                tack_phases=good.tack_phases,
                participant_bits=good.participant_bits,
                b_selection_bits=good.b_selection_bits,
                kappa=1,  # far too small
            )

    def test_small_for_testing_is_fast_but_valid(self):
        params = LBParams.small_for_testing()
        assert params.phase_length < 200
        assert params.tack_phases <= 5
