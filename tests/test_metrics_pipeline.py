"""Tests for the declarative metrics pipeline (repro.scenarios.metrics).

Covers the metric registry metadata, trace-mode auto-selection, reducer
behavior under all three trace modes, stats-backed aggregation (pooled
ratios / Wilson rates), the params-only resolution mode, and the
byte-identity of metric rows between serial and parallel execution.
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import wilson_interval
from repro.scenarios import (
    ALGORITHMS,
    METRICS,
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    MetricSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    TopologySpec,
    aggregate_metric_rows,
    required_trace_mode,
    resolve_params,
    resolve_trace_mode,
    run,
)
from repro.scenarios.metrics import MetricRegistry
from repro.scenarios.runtime import materialize, prebuild_delta_table
from repro.simulation.trace import TraceMode


def lb_spec_with(metrics=(), trace_mode="auto", trials=1, rounds_unit="tack", rounds=1):
    return ScenarioSpec(
        name="metrics-test",
        topology=TopologySpec("line", {"n": 5}),
        algorithm=AlgorithmSpec("lbalg", {"preset": "small"}),
        scheduler=SchedulerSpec("iid", {"probability": 0.5, "seed": 3}),
        environment=EnvironmentSpec("single_shot", {"senders": [0]}),
        engine=EngineConfig(trace_mode=trace_mode),
        run=RunPolicy(
            rounds=rounds,
            rounds_unit=rounds_unit,
            trials=trials,
            master_seed=5,
            seed_policy="sequential",
        ),
        metrics=tuple(MetricSpec(name) for name in metrics),
    )


def seed_spec_with(metrics=()):
    return ScenarioSpec(
        name="seed-metrics-test",
        topology=TopologySpec("clique", {"n": 5}),
        algorithm=AlgorithmSpec("seed_agreement", {"epsilon": 0.2}),
        scheduler=SchedulerSpec("none"),
        engine=EngineConfig(trace_mode="auto"),
        run=RunPolicy(rounds=1, rounds_unit="algorithm", master_seed=9, seed_policy="fixed"),
        metrics=tuple(MetricSpec(name) for name in metrics),
    )


class TestMetricRegistry:
    def test_builtins_are_registered_with_trace_modes(self):
        assert METRICS.min_trace_mode("counters") is TraceMode.COUNTERS
        assert METRICS.min_trace_mode("ack_delay") is TraceMode.EVENTS
        assert METRICS.min_trace_mode("progress") is TraceMode.FULL
        assert METRICS.min_trace_mode("lb_spec") is TraceMode.FULL
        assert METRICS.min_trace_mode("seed_spec") is TraceMode.EVENTS

    def test_duplicate_registration_raises(self):
        registry = MetricRegistry()

        @registry.register("dup", trace_mode=TraceMode.COUNTERS)
        def _one(ctx):
            return {}

        with pytest.raises(ValueError, match="duplicate"):

            @registry.register("dup", trace_mode=TraceMode.COUNTERS)
            def _two(ctx):
                return {}

    def test_unknown_metric_name_raises_with_known_names(self):
        with pytest.raises(KeyError, match="ack_delay"):
            METRICS.min_trace_mode("no-such-metric")

    def test_scenario_rejects_duplicate_metric_names(self):
        with pytest.raises(ValueError, match="duplicate metric"):
            lb_spec_with(metrics=("counters", "counters"))


class TestTraceModeSelection:
    def test_required_trace_mode_is_max_over_metrics(self):
        assert required_trace_mode(()) is TraceMode.FULL
        assert required_trace_mode((MetricSpec("counters"),)) is TraceMode.COUNTERS
        assert (
            required_trace_mode((MetricSpec("counters"), MetricSpec("ack_delay")))
            is TraceMode.EVENTS
        )
        assert (
            required_trace_mode((MetricSpec("ack_delay"), MetricSpec("progress")))
            is TraceMode.FULL
        )

    def test_auto_mode_resolves_and_materializes(self):
        spec = lb_spec_with(metrics=("counters",))
        assert resolve_trace_mode(spec) is TraceMode.COUNTERS
        built = materialize(spec)
        assert built.simulator.trace.mode is TraceMode.COUNTERS
        events_spec = lb_spec_with(metrics=("ack_delay",))
        assert resolve_trace_mode(events_spec) is TraceMode.EVENTS
        full_spec = lb_spec_with(metrics=("progress",))
        assert resolve_trace_mode(full_spec) is TraceMode.FULL

    def test_auto_without_metrics_falls_back_to_full(self):
        spec = lb_spec_with(metrics=())
        assert resolve_trace_mode(spec) is TraceMode.FULL

    def test_explicit_mode_poorer_than_metric_raises(self):
        spec = lb_spec_with(metrics=("ack_delay",), trace_mode="counters")
        with pytest.raises(ValueError, match="ack_delay.*counters"):
            run(spec, keep=False)

    def test_trace_mode_enum_rejects_auto(self):
        with pytest.raises(ValueError, match="auto"):
            EngineConfig(trace_mode="auto").trace_mode_enum


class TestReducersAcrossModes:
    """Metric values must agree wherever two trace modes can both run them."""

    def test_counters_metric_identical_in_all_three_modes(self):
        rows = {}
        for mode in ("full", "events", "counters"):
            spec = lb_spec_with(metrics=("counters",), trace_mode=mode)
            rows[mode] = run(spec, keep=False).trials[0].metric_row
        assert rows["full"] == rows["events"] == rows["counters"]
        assert rows["full"]["counters.transmissions"] > 0

    def test_events_metrics_identical_under_full_and_events(self):
        rows = {}
        for mode in ("full", "events"):
            spec = lb_spec_with(
                metrics=("params", "ack_delay", "delivery"), trace_mode=mode
            )
            rows[mode] = run(spec, keep=False).trials[0].metric_row
        assert rows["full"] == rows["events"]
        assert rows["full"]["ack_delay.acked"] == 1
        assert rows["full"]["ack_delay.bound_violations"] == 0

    def test_full_only_metrics_run_under_auto(self):
        spec = lb_spec_with(metrics=("progress", "lb_spec", "mac_guarantees", "receive_rate"))
        row = run(spec, keep=False).trials[0].metric_row
        assert row["progress.window"] > 0
        assert row["progress.total_windows"] >= row["progress.windows"]
        assert row["lb_spec.timely_ack_violations"] == 0
        assert row["lb_spec.validity_violations"] == 0
        assert row["mac_guarantees.ack_ok"] == 1
        assert row["receive_rate.vertices"] == 5

    def test_seed_metrics_on_seed_agreement(self):
        spec = seed_spec_with(metrics=("params", "seed_owners", "seed_spec"))
        assert resolve_trace_mode(spec) is TraceMode.EVENTS
        result = run(spec, keep=False)
        row = result.trials[0].metric_row
        assert row["seed_spec.well_formedness_violations"] == 0
        assert row["seed_spec.consistency_violations"] == 0
        assert row["seed_owners.vertices"] == 5
        assert row["seed_owners.owners_max"] >= 1
        # delta_bound defaulted from the derived SeedParams
        assert row["seed_spec.delta_bound"] == row["params.delta_bound"]


class TestAggregation:
    def test_pooled_ratio_equals_flat_mean(self):
        spec = lb_spec_with(metrics=("ack_delay",), trials=3)
        result = run(spec, keep=False)
        rows = result.metric_rows
        flat_sum = sum(r["ack_delay.delay_sum"] for r in rows)
        flat_count = sum(r["ack_delay.acked"] for r in rows)
        entry = result.metric_summaries["ack_delay.delay_mean"]
        assert entry["value"] == flat_sum / flat_count
        assert entry["numerator"] == flat_sum
        assert entry["denominator"] == flat_count
        # the flat aggregate row carries the pooled value
        assert result.metrics["ack_delay.delay_mean"] == entry["value"]

    def test_rate_columns_carry_wilson_intervals(self):
        spec = lb_spec_with(metrics=("progress",), trials=2)
        result = run(spec, keep=False)
        entry = result.metric_summaries["progress.failure_rate"]
        failures = int(entry["successes"])
        windows = int(entry["trials"])
        low, high = wilson_interval(failures, max(windows, 1))
        assert entry["wilson_low"] == low
        assert entry["wilson_high"] == high
        assert 0.0 <= entry["value"] <= 1.0

    def test_plain_columns_get_summary_statistics(self):
        rows = [{"m.x": 1}, {"m.x": 2}, {"m.x": 3}]
        aggregates = aggregate_metric_rows((MetricSpec("counters"),), rows)
        entry = aggregates["m.x"]
        assert entry["mean"] == 2.0
        assert entry["min"] == 1.0
        assert entry["max"] == 3.0
        assert entry["median"] == 2.0
        assert entry["sum"] == 6.0
        assert entry["count"] == 3.0

    def test_zero_denominator_ratio_and_rate_report_none_not_perfect(self):
        """No observations must not masquerade as a perfect score."""
        rows = [{"progress.failures": 0, "progress.windows": 0}]
        aggregates = aggregate_metric_rows((MetricSpec("progress"),), rows)
        rate = aggregates["progress.failure_rate"]
        assert rate["value"] is None
        assert rate["wilson_low"] is None and rate["wilson_high"] is None
        ack_rows = [{"ack_delay.delay_sum": 0, "ack_delay.acked": 0}]
        ratio = aggregate_metric_rows((MetricSpec("ack_delay"),), ack_rows)
        assert ratio["ack_delay.delay_mean"]["value"] is None

    def test_mac_guarantees_rejects_partial_explicit_promise(self):
        spec = lb_spec_with()
        spec = spec.with_metrics(MetricSpec("mac_guarantees", {"f_ack": 100}))
        with pytest.raises(ValueError, match="all of f_ack"):
            run(spec, keep=False)


class TestSerialParallelIdentity:
    def test_metric_rows_identical_serial_vs_trial_pool(self):
        spec = lb_spec_with(metrics=("params", "ack_delay", "delivery"), trials=3)
        serial = run(spec, keep=False)
        parallel = run(spec, keep=False, jobs=2)
        assert serial.metric_rows == parallel.metric_rows
        assert [t.seed for t in serial.trials] == [t.seed for t in parallel.trials]
        assert serial.metric_summaries == parallel.metric_summaries


class TestParamsOnlyResolution:
    def test_support_is_detected_from_signature(self):
        assert ALGORITHMS.supports_params_only("lbalg")
        assert ALGORITHMS.supports_params_only("seed_agreement")
        assert not ALGORITHMS.supports_params_only("decay")

    def test_resolve_params_matches_full_build_without_processes(self):
        spec = lb_spec_with()
        params_build = resolve_params(spec)
        full_build = materialize(spec)
        assert params_build.processes == {}
        assert params_build.params == full_build.params
        assert params_build.phase_length == full_build.algorithm_build.phase_length
        assert params_build.tack_rounds == full_build.algorithm_build.tack_rounds

    def test_seed_agreement_params_only(self):
        spec = seed_spec_with()
        build = resolve_params(spec)
        assert build.processes == {}
        assert build.natural_rounds == build.params.total_rounds

    def test_prebuild_never_builds_processes(self, monkeypatch):
        """The delta-table prebuild resolves derived round budgets without a
        throwaway process population (the ROADMAP params-only open item)."""
        import repro.scenarios.components as components

        def explode(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("prebuild constructed a process population")

        monkeypatch.setattr(components, "make_lb_processes", explode)
        spec = lb_spec_with(rounds_unit="tack")
        table = prebuild_delta_table(spec)
        assert table  # iid scheduler is cacheable, so a table must come back


class TestCountersLaneParity:
    """PR-6: the counters-only kernel lane must feed metric reducers exactly
    the rows the event-materializing paths produce."""

    def test_counters_lane_metric_rows_match_vector_path(self):
        spec = lb_spec_with(metrics=("counters",), trials=2, rounds=2)
        # A counters-only metric set resolves trace_mode="auto" to COUNTERS,
        # and the default kernel="auto" then engages the counters lane.
        assert resolve_trace_mode(spec) is TraceMode.COUNTERS
        assert materialize(spec).simulator.uses_counters_lane

        lane_rows = run(spec, keep=False).metric_rows
        vector_spec = spec.with_overrides({"engine.kernel": "off"})
        assert not materialize(vector_spec).simulator.uses_counters_lane
        vector_rows = run(vector_spec, keep=False).metric_rows
        assert lane_rows == vector_rows

    def test_event_metrics_keep_the_lane_off_and_still_agree(self):
        spec = lb_spec_with(metrics=("counters", "ack_delay"), trials=1, rounds=2)
        assert resolve_trace_mode(spec) is TraceMode.EVENTS
        assert not materialize(spec).simulator.uses_counters_lane
        lane_off = run(spec.with_overrides({"engine.kernel": "off"}), keep=False)
        lane_requested = run(spec, keep=False)
        assert lane_requested.metric_rows == lane_off.metric_rows
