"""Unit tests for the shared seed bit streams."""

import pytest

from repro.core.seedbits import SeedBitStream


class TestConstruction:
    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError):
            SeedBitStream(-1, kappa=8)

    def test_rejects_zero_kappa(self):
        with pytest.raises(ValueError):
            SeedBitStream(0, kappa=0)

    def test_rejects_seed_wider_than_kappa(self):
        with pytest.raises(ValueError):
            SeedBitStream(seed=0b10000, kappa=4)

    def test_accepts_seed_exactly_kappa_bits(self):
        stream = SeedBitStream(seed=0b1111, kappa=4)
        assert stream.consume_bits(4) == [1, 1, 1, 1]


class TestConsumption:
    def test_initial_bits_are_the_seed_msb_first(self):
        stream = SeedBitStream(seed=0b1011, kappa=4)
        assert stream.consume_bits(4) == [1, 0, 1, 1]

    def test_leading_zeros_are_preserved(self):
        stream = SeedBitStream(seed=0b0011, kappa=6)
        assert stream.consume_bits(6) == [0, 0, 0, 0, 1, 1]

    def test_consume_int(self):
        stream = SeedBitStream(seed=0b101101, kappa=6)
        assert stream.consume_int(3) == 0b101
        assert stream.consume_int(3) == 0b101

    def test_consume_all_zero(self):
        stream = SeedBitStream(seed=0b000111, kappa=6)
        assert stream.consume_all_zero(3) is True
        assert stream.consume_all_zero(3) is False

    def test_consume_zero_bits(self):
        stream = SeedBitStream(seed=5, kappa=8)
        assert stream.consume_bits(0) == []
        assert stream.consume_int(0) == 0
        assert stream.bits_consumed == 0

    def test_negative_count_rejected(self):
        stream = SeedBitStream(seed=5, kappa=8)
        with pytest.raises(ValueError):
            stream.consume_bits(-1)

    def test_bits_consumed_tracks_cursor(self):
        stream = SeedBitStream(seed=0, kappa=16)
        stream.consume_bits(3)
        stream.consume_int(5)
        assert stream.bits_consumed == 8

    def test_consume_uniform_index_in_range(self):
        stream = SeedBitStream(seed=0b111111111111, kappa=12)
        for _ in range(4):
            value = stream.consume_uniform_index(modulus=3, width=3)
            assert 0 <= value < 3

    def test_consume_uniform_index_validation(self):
        stream = SeedBitStream(seed=0, kappa=8)
        with pytest.raises(ValueError):
            stream.consume_uniform_index(modulus=0, width=3)


class TestSharedDeterminism:
    def test_equal_seeds_give_identical_streams(self):
        a = SeedBitStream(seed=0xDEADBEEF, kappa=32)
        b = SeedBitStream(seed=0xDEADBEEF, kappa=32)
        for width in (1, 3, 7, 13, 32):
            assert a.consume_int(width) == b.consume_int(width)

    def test_different_seeds_eventually_differ(self):
        a = SeedBitStream(seed=1, kappa=32)
        b = SeedBitStream(seed=2, kappa=32)
        assert a.consume_bits(32) != b.consume_bits(32)

    def test_interleaved_consumption_patterns_agree(self):
        """Two nodes sharing a seed may consume in different call granularity
        but must still see the same bit sequence overall."""
        a = SeedBitStream(seed=0b1011001110001111, kappa=16)
        b = SeedBitStream(seed=0b1011001110001111, kappa=16)
        bits_a = a.consume_bits(6) + a.consume_bits(10)
        bits_b = []
        for _ in range(16):
            bits_b.extend(b.consume_bits(1))
        assert bits_a == bits_b


class TestExtension:
    def test_extension_is_deterministic(self):
        a = SeedBitStream(seed=7, kappa=8)
        b = SeedBitStream(seed=7, kappa=8)
        assert a.consume_bits(100) == b.consume_bits(100)
        assert a.exhausted_initial_seed
        assert a.extension_blocks_used >= 1

    def test_no_extension_within_kappa(self):
        stream = SeedBitStream(seed=7, kappa=64)
        stream.consume_bits(64)
        assert not stream.exhausted_initial_seed
        assert stream.extension_blocks_used == 0

    def test_extension_differs_across_seeds(self):
        a = SeedBitStream(seed=1, kappa=4)
        b = SeedBitStream(seed=2, kappa=4)
        a.consume_bits(4)
        b.consume_bits(4)
        assert a.consume_bits(64) != b.consume_bits(64)

    def test_repr(self):
        stream = SeedBitStream(seed=7, kappa=8)
        stream.consume_bits(3)
        text = repr(stream)
        assert "kappa=8" in text and "consumed=3" in text


class TestStatisticalSanity:
    def test_extension_bits_are_roughly_balanced(self):
        """Hash-extension bits should be close to 50/50 zeros and ones."""
        stream = SeedBitStream(seed=12345, kappa=16)
        stream.consume_bits(16)  # exhaust the initial seed
        bits = stream.consume_bits(4096)
        ones = sum(bits)
        assert 1800 < ones < 2300
