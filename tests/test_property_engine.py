"""Property-based tests (hypothesis) for the round engine's collision rules."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dualgraph.adversary import IIDScheduler
from repro.dualgraph.generators import random_geographic_network
from repro.simulation.engine import Simulator
from repro.simulation.process import Process, ProcessContext


class CoinFlipTransmitter(Process):
    """Transmits its own vertex id with a per-round probability."""

    def __init__(self, ctx, probability):
        super().__init__(ctx)
        self.probability = probability
        self.heard = {}

    def transmit(self, round_number):
        if self.rng.random() < self.probability:
            return ("frame", self.vertex, round_number)
        return None

    def on_receive(self, round_number, frame):
        self.heard[round_number] = frame


def build_simulation(n, seed, probability, scheduler_probability):
    graph, _ = random_geographic_network(n, side=3.0, rng=seed)
    master = random.Random(seed)
    delta, delta_prime = graph.degree_bounds()
    processes = {
        v: CoinFlipTransmitter(
            ProcessContext(vertex=v, delta=delta, delta_prime=delta_prime,
                           rng=random.Random(master.getrandbits(64))),
            probability,
        )
        for v in graph.vertices
    }
    scheduler = IIDScheduler(graph, probability=scheduler_probability, seed=seed)
    return graph, scheduler, Simulator(graph, processes, scheduler=scheduler)


class TestCollisionRuleProperties:
    @given(
        st.integers(min_value=3, max_value=12),
        st.integers(min_value=0, max_value=10 ** 6),
        st.floats(min_value=0.05, max_value=0.9),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_every_reception_is_explained_by_a_unique_transmitting_neighbor(
        self, n, seed, probability, scheduler_probability
    ):
        """The fundamental soundness property of the engine: a frame is heard
        iff exactly one topology neighbor transmitted it, and transmitters
        never hear anything."""
        graph, scheduler, simulator = build_simulation(
            n, seed, probability, scheduler_probability
        )
        rounds = 12
        trace = simulator.run(rounds)
        for round_number in range(1, rounds + 1):
            transmissions = trace.transmissions_in_round(round_number)
            receptions = trace.receptions_in_round(round_number)
            topology = scheduler.topology_edges_for_round(round_number)

            def topology_neighbors(u):
                result = set()
                for edge in topology:
                    a, b = tuple(edge)
                    if a == u:
                        result.add(b)
                    elif b == u:
                        result.add(a)
                return result

            for vertex in graph.vertices:
                transmitting_neighbors = [
                    v for v in topology_neighbors(vertex) if v in transmissions
                ]
                if vertex in transmissions:
                    assert vertex not in receptions
                elif len(transmitting_neighbors) == 1:
                    assert receptions.get(vertex) == transmissions[transmitting_neighbors[0]]
                else:
                    assert vertex not in receptions

    @given(
        st.integers(min_value=3, max_value=10),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    @settings(max_examples=15, deadline=None)
    def test_simulation_is_reproducible_from_seeds(self, n, seed):
        """Identical seeds produce identical traces (bit-for-bit determinism)."""
        _, _, sim_a = build_simulation(n, seed, probability=0.4, scheduler_probability=0.5)
        _, _, sim_b = build_simulation(n, seed, probability=0.4, scheduler_probability=0.5)
        trace_a = sim_a.run(10)
        trace_b = sim_b.run(10)
        for round_number in range(1, 11):
            assert trace_a.transmissions_in_round(round_number) == trace_b.transmissions_in_round(round_number)
            assert trace_a.receptions_in_round(round_number) == trace_b.receptions_in_round(round_number)

    @given(
        st.integers(min_value=3, max_value=10),
        st.integers(min_value=0, max_value=10 ** 6),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_receptions_only_travel_along_gprime_edges(self, n, seed, scheduler_probability):
        graph, _, simulator = build_simulation(n, seed, 0.5, scheduler_probability)
        rounds = 8
        trace = simulator.run(rounds)
        for round_number in range(1, rounds + 1):
            transmissions = trace.transmissions_in_round(round_number)
            for receiver, frame in trace.receptions_in_round(round_number).items():
                sender = frame[1]
                assert sender in graph.potential_neighbors(receiver)
                assert sender in transmissions
