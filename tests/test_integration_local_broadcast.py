"""Integration tests: LBAlg executions checked against the LB spec.

These tests run the full local broadcast service on dual graph networks under
several link schedulers and workloads and verify the deterministic conditions
on every execution plus the probabilistic conditions statistically.
"""

import random

import pytest

from repro.core.lb_spec import check_lb_execution
from repro.core.local_broadcast import make_lb_processes
from repro.core.params import LBParams
from repro.dualgraph.adversary import (
    AntiScheduleAdversary,
    FullInclusionScheduler,
    IIDScheduler,
    NoUnreliableScheduler,
)
from repro.dualgraph.generators import (
    random_geographic_network,
    star_network,
    two_clusters_network,
)
from repro.simulation.engine import Simulator
from repro.simulation.environment import (
    SaturatingEnvironment,
    SingleShotEnvironment,
)
from repro.simulation.metrics import ack_delays, delivery_report, progress_report


def build_simulator(graph, params, environment, scheduler=None, master_seed=0):
    rng = random.Random(master_seed)
    return Simulator(
        graph,
        make_lb_processes(graph, params, rng),
        scheduler=scheduler,
        environment=environment,
    )


@pytest.fixture
def network_and_params():
    graph, _ = random_geographic_network(16, side=3.5, rng=3, require_connected=True)
    delta, delta_prime = graph.degree_bounds()
    params = LBParams.small_for_testing(
        delta=delta, delta_prime=delta_prime, tprog=60, tack_phases=4, seed_phase_length=6
    )
    return graph, params


class TestDeterministicConditions:
    @pytest.mark.parametrize("scheduler_factory", [
        lambda g: NoUnreliableScheduler(g),
        lambda g: FullInclusionScheduler(g),
        lambda g: IIDScheduler(g, probability=0.5, seed=2),
    ])
    def test_timely_ack_and_validity_on_every_execution(
        self, network_and_params, scheduler_factory
    ):
        graph, params = network_and_params
        senders = sorted(graph.vertices, key=repr)[:3]
        simulator = build_simulator(
            graph, params, SingleShotEnvironment(senders=senders),
            scheduler=scheduler_factory(graph),
        )
        trace = simulator.run(params.tack_rounds)
        report = check_lb_execution(trace, graph, params.tack_rounds, params.tprog_rounds,
                                    check_progress=False)
        assert report.timely_ack_ok, report.timely_ack_violations
        assert report.validity_ok, report.validity_violations

    def test_every_submitted_message_is_acknowledged_exactly_once(self, network_and_params):
        graph, params = network_and_params
        senders = sorted(graph.vertices, key=repr)[:4]
        simulator = build_simulator(graph, params, SaturatingEnvironment(senders=senders))
        trace = simulator.run(params.tack_rounds + 2 * params.phase_length)
        acked = {a.message.message_id for a in trace.ack_outputs}
        # Each ack corresponds to a bcast.
        submitted = {b.message.message_id for b in trace.bcast_inputs}
        assert acked <= submitted
        # No duplicate acks.
        assert len(acked) == len(trace.ack_outputs)

    def test_ack_delay_is_never_more_than_tack(self, network_and_params):
        graph, params = network_and_params
        senders = sorted(graph.vertices, key=repr)[:2]
        simulator = build_simulator(graph, params, SingleShotEnvironment(senders=senders))
        trace = simulator.run(params.tack_rounds)
        for record in ack_delays(trace):
            assert record.delay is not None
            assert record.delay <= params.tack_rounds

    def test_recv_messages_were_really_sent(self, network_and_params):
        """Every recv corresponds to a message some G' neighbor was broadcasting."""
        graph, params = network_and_params
        senders = sorted(graph.vertices, key=repr)[:3]
        simulator = build_simulator(
            graph, params, SingleShotEnvironment(senders=senders),
            scheduler=IIDScheduler(graph, probability=0.7, seed=5),
        )
        trace = simulator.run(params.tack_rounds)
        submitted_ids = {b.message.message_id for b in trace.bcast_inputs}
        for recv in trace.recv_outputs:
            assert recv.message.message_id in submitted_ids
            assert recv.vertex != recv.message.origin


class TestReliability:
    def test_single_sender_reaches_all_reliable_neighbors(self):
        """With no contention, reliability should hold in (almost) every trial."""
        graph, _ = random_geographic_network(14, side=3.0, rng=4, require_connected=True)
        delta, delta_prime = graph.degree_bounds()
        params = LBParams.derive(0.2, delta=delta, delta_prime=delta_prime)
        failures = 0
        trials = 5
        for trial in range(trials):
            simulator = build_simulator(
                graph, params, SingleShotEnvironment(senders=[0]),
                scheduler=IIDScheduler(graph, probability=0.5, seed=trial),
                master_seed=trial,
            )
            trace = simulator.run(params.tack_rounds)
            records = delivery_report(trace, graph)
            assert len(records) == 1
            if not records[0].fully_delivered:
                failures += 1
        assert failures <= 1, f"reliability failed in {failures}/{trials} low-contention trials"

    def test_star_topology_under_full_contention_still_acks_in_time(self):
        """The Δ-broadcasters-one-receiver worst case from the introduction."""
        graph, _ = star_network(6)
        delta, delta_prime = graph.degree_bounds()
        params = LBParams.small_for_testing(
            delta=delta, delta_prime=delta_prime, tprog=80, tack_phases=6, seed_phase_length=6
        )
        senders = list(range(1, 7))
        simulator = build_simulator(graph, params, SingleShotEnvironment(senders=senders))
        trace = simulator.run(params.tack_rounds)
        report = check_lb_execution(trace, graph, params.tack_rounds, params.tprog_rounds,
                                    check_progress=False)
        assert report.timely_ack_ok
        # The central receiver should have heard most of the broadcasters.
        received_at_center = {
            r.message.origin for r in trace.recv_outputs if r.vertex == 0
        }
        assert len(received_at_center) >= 3


class TestProgress:
    def test_progress_holds_with_saturating_senders(self):
        graph, _ = random_geographic_network(16, side=3.5, rng=6, require_connected=True)
        delta, delta_prime = graph.degree_bounds()
        params = LBParams.derive(0.2, delta=delta, delta_prime=delta_prime)
        simulator = build_simulator(
            graph, params, SaturatingEnvironment(senders=[0, 5]),
            scheduler=IIDScheduler(graph, probability=0.5, seed=8),
        )
        trace = simulator.run(6 * params.phase_length)
        report = progress_report(trace, graph, window=params.tprog_rounds)
        assert report.num_applicable > 0
        assert report.failure_rate <= params.epsilon + 0.15

    def test_progress_holds_under_targeted_adversary(self):
        """The seed-permuted schedule should survive the anti-Decay adversary."""
        from repro.baselines.decay import decay_schedule

        graph, _ = two_clusters_network(cluster_size=5, gap=1.5, rng=4)
        delta, delta_prime = graph.degree_bounds()
        params = LBParams.derive(0.2, delta=delta, delta_prime=delta_prime)
        adversary = AntiScheduleAdversary(graph, decay_schedule(delta))
        simulator = build_simulator(
            graph, params, SaturatingEnvironment(senders=[0]),
            scheduler=adversary,
        )
        trace = simulator.run(6 * params.phase_length)
        report = progress_report(trace, graph, window=params.tprog_rounds)
        assert report.num_applicable > 0
        assert report.failure_rate <= params.epsilon + 0.15


class TestTrueLocality:
    def test_local_behavior_is_insensitive_to_network_size(self):
        """Growing n with local density fixed must not change the schedule lengths
        (the parameters depend only on Δ, Δ', r, ε) nor break local delivery."""
        params_by_n = {}
        for n, side in ((12, 3.0), (48, 4.5)):
            graph, _ = random_geographic_network(
                n, side=side, rng=21, require_connected=True
            )
            delta, delta_prime = graph.degree_bounds()
            params_by_n[n] = LBParams.derive(0.2, delta=min(delta, 12),
                                             delta_prime=min(delta_prime, 24))
        small, large = params_by_n[12], params_by_n[48]
        # Same local bounds -> same derived schedule, regardless of n.
        assert abs(small.tprog - large.tprog) <= small.tprog  # same order
        assert small.phase_length > 0 and large.phase_length > 0

    def test_delivery_happens_in_a_large_network_with_small_degree(self):
        graph, _ = random_geographic_network(40, side=4.5, rng=23, require_connected=True)
        delta, delta_prime = graph.degree_bounds()
        params = LBParams.small_for_testing(
            delta=delta, delta_prime=delta_prime, tprog=80, tack_phases=4, seed_phase_length=6
        )
        sender = sorted(graph.vertices)[0]
        simulator = build_simulator(
            graph, params, SingleShotEnvironment(senders=[sender]),
            scheduler=IIDScheduler(graph, probability=0.5, seed=2),
        )
        trace = simulator.run(params.tack_rounds)
        records = delivery_report(trace, graph)
        assert records[0].delivery_fraction >= 0.5
