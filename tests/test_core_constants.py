"""Unit tests for the Appendix B.1 / C.1 constant calculus."""

import math

import pytest

from repro.core.constants import (
    LBConstants,
    ParamMode,
    SeedConstants,
    ceil_log2,
    log2_inverse,
)


class TestLogHelpers:
    def test_log2_inverse(self):
        assert log2_inverse(0.5) == pytest.approx(1.0)
        assert log2_inverse(0.25) == pytest.approx(2.0)

    def test_log2_inverse_rejects_bad_epsilon(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                log2_inverse(bad)

    def test_ceil_log2(self):
        assert ceil_log2(1) == 1
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(8) == 3
        assert ceil_log2(9) == 4

    def test_ceil_log2_floor_of_one(self):
        assert ceil_log2(0.5) == 1


class TestSeedConstants:
    def test_factories_set_mode(self):
        assert SeedConstants.paper().mode is ParamMode.PAPER
        assert SeedConstants.simulation().mode is ParamMode.SIMULATION
        assert SeedConstants.for_mode(ParamMode.PAPER).mode is ParamMode.PAPER

    def test_paper_c2_at_least_four(self):
        assert SeedConstants.paper().c2 >= 4.0

    def test_c3_is_five_quarters_of_c2(self):
        constants = SeedConstants.paper()
        assert constants.c3 == pytest.approx(1.25 * constants.c2)

    def test_cr_scales_with_r_squared(self):
        constants = SeedConstants.simulation()
        assert constants.cr(2.0) == pytest.approx(4.0 * constants.cr(1.0))

    def test_paper_c4_honors_lower_bound(self):
        constants = SeedConstants.paper()
        # c4 >= 2 * 4^{c_r c3}; for r = 1 the bound is already astronomically
        # large, so the effective constant must exceed the stored base value.
        assert constants.c4_for_r(1.0) >= constants.c4
        assert constants.c4_for_r(1.0) > 1e6

    def test_simulation_c4_is_used_as_is(self):
        constants = SeedConstants.simulation()
        assert constants.c4_for_r(1.0) == constants.c4
        assert constants.c4_for_r(3.0) == constants.c4

    def test_c6_is_small_and_positive_or_zero(self):
        constants = SeedConstants.simulation()
        assert 0.0 <= constants.c6() < 1.0

    def test_epsilon2_decreases_with_epsilon1(self):
        constants = SeedConstants.paper()
        assert constants.epsilon2(0.01) < constants.epsilon2(0.1)

    def test_epsilon2_below_one_for_small_epsilon(self):
        constants = SeedConstants.paper()
        assert constants.epsilon2(1e-6) < 1.0

    def test_epsilon3_monotone_in_epsilon1(self):
        constants = SeedConstants.simulation()
        assert constants.epsilon3(0.01, 1.0) <= constants.epsilon3(0.2, 1.0)

    def test_epsilon4_combines_components(self):
        constants = SeedConstants.simulation()
        eps1, r = 0.1, 1.0
        expected = constants.cr(r) * constants.epsilon2(eps1) + constants.epsilon3(eps1, r)
        assert constants.epsilon4(eps1, r) == pytest.approx(expected)

    def test_epsilon_chain_never_negative(self):
        constants = SeedConstants.paper()
        for eps in (0.25, 0.1, 0.01):
            for r in (1.0, 2.0, 3.0):
                assert constants.epsilon2(eps) >= 0.0
                assert constants.epsilon3(eps, r) >= 0.0
                assert constants.epsilon4(eps, r) >= 0.0


class TestLBConstants:
    def test_factories_set_mode(self):
        assert LBConstants.paper().mode is ParamMode.PAPER
        assert LBConstants.simulation().mode is ParamMode.SIMULATION
        assert LBConstants.for_mode(ParamMode.SIMULATION).mode is ParamMode.SIMULATION

    def test_paper_ack_scale_matches_appendix_factor(self):
        assert LBConstants.paper().ack_scale == pytest.approx(12.0)

    def test_simulation_constants_positive(self):
        constants = LBConstants.simulation()
        assert constants.phase_c1 > 0
        assert constants.recv_c2 > 0
        assert constants.ack_scale > 0

    def test_constants_are_frozen(self):
        constants = LBConstants.simulation()
        with pytest.raises(AttributeError):
            constants.phase_c1 = 99.0
