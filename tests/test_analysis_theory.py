"""Unit tests for the closed-form theoretical bounds."""

import pytest

from repro.analysis import theory


class TestSeedBounds:
    def test_delta_bound_grows_with_r(self):
        assert theory.seed_delta_bound(0.1, r=2.0) > theory.seed_delta_bound(0.1, r=1.0)

    def test_delta_bound_grows_as_epsilon_shrinks(self):
        assert theory.seed_delta_bound(0.01) > theory.seed_delta_bound(0.2)

    def test_runtime_grows_with_delta_and_epsilon(self):
        assert theory.seed_runtime_bound(64, 0.1) > theory.seed_runtime_bound(8, 0.1)
        assert theory.seed_runtime_bound(8, 0.01) > theory.seed_runtime_bound(8, 0.1)

    def test_runtime_is_logarithmic_in_delta(self):
        # Doubling Delta adds a constant, it does not multiply.
        small = theory.seed_runtime_bound(16, 0.1)
        large = theory.seed_runtime_bound(32, 0.1)
        assert large - small < small

    def test_error_bound_non_negative(self):
        assert theory.seed_error_bound(0.1, 16) >= 0.0

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(ValueError):
            theory.seed_delta_bound(0.0)


class TestLocalBroadcastBounds:
    def test_tprog_grows_logarithmically_with_delta(self):
        t8 = theory.tprog_bound(8, 0.1)
        t64 = theory.tprog_bound(64, 0.1)
        t4096 = theory.tprog_bound(4096, 0.1)
        assert t8 < t64 < t4096
        # Log-like growth: the multiplicative jump shrinks as Delta grows.
        assert (t4096 / t64) < (t64 / t8) * 2

    def test_tack_grows_roughly_linearly_with_delta(self):
        t8 = theory.tack_bound(8, 0.1)
        t16 = theory.tack_bound(16, 0.1)
        assert 1.5 < t16 / t8 < 4.0

    def test_tack_at_least_tprog(self):
        for delta in (4, 16, 64):
            assert theory.tack_bound(delta, 0.1) >= theory.tprog_bound(delta, 0.1)

    def test_bounds_grow_as_epsilon_shrinks(self):
        assert theory.tprog_bound(16, 0.01) > theory.tprog_bound(16, 0.2)
        assert theory.tack_bound(16, 0.01) > theory.tack_bound(16, 0.2)

    def test_bounds_grow_with_r(self):
        assert theory.tprog_bound(16, 0.1, r=3.0) > theory.tprog_bound(16, 0.1, r=1.0)


class TestLemma42:
    def test_receive_probability_in_unit_interval(self):
        p = theory.lemma42_receive_probability(16, 0.1)
        assert 0.0 < p < 1.0

    def test_receive_probability_shrinks_with_delta(self):
        assert theory.lemma42_receive_probability(64, 0.1) < theory.lemma42_receive_probability(8, 0.1)

    def test_pairwise_probability_divides_by_delta_prime(self):
        pu = theory.lemma42_receive_probability(16, 0.1)
        puv = theory.lemma42_pairwise_probability(16, 32, 0.1)
        assert puv == pytest.approx(pu / 32)

    def test_pairwise_validation(self):
        with pytest.raises(ValueError):
            theory.lemma42_pairwise_probability(16, 0, 0.1)


class TestLowerBoundContext:
    def test_progress_lower_bound_is_logarithmic(self):
        assert theory.progress_lower_bound(1024) == pytest.approx(10.0)

    def test_ack_lower_bound_is_linear(self):
        assert theory.ack_lower_bound(37) == 37.0

    def test_upper_bounds_dominate_lower_bounds(self):
        for delta in (8, 32, 128):
            assert theory.tprog_bound(delta, 0.1) >= theory.progress_lower_bound(delta)
            assert theory.tack_bound(delta, 0.1) >= theory.ack_lower_bound(delta)


class TestDecayReference:
    def test_cycle_length(self):
        assert theory.decay_cycle_length(8) == 3
        assert theory.decay_cycle_length(9) == 4

    def test_expected_rounds_grow_with_both_parameters(self):
        assert theory.decay_expected_rounds(64, 0.1) > theory.decay_expected_rounds(8, 0.1)
        assert theory.decay_expected_rounds(8, 0.01) > theory.decay_expected_rounds(8, 0.1)
