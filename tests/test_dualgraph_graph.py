"""Unit tests for the DualGraph structure (Section 2 model definitions)."""

import pytest

from repro.dualgraph.graph import DualGraph, normalize_edge


class TestNormalizeEdge:
    def test_is_order_insensitive(self):
        assert normalize_edge(1, 2) == normalize_edge(2, 1)

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            normalize_edge(3, 3)

    def test_is_a_two_element_frozenset(self):
        edge = normalize_edge("a", "b")
        assert isinstance(edge, frozenset)
        assert edge == {"a", "b"}


class TestConstruction:
    def test_requires_at_least_one_vertex(self):
        with pytest.raises(ValueError):
            DualGraph(vertices=[])

    def test_single_vertex_graph(self):
        graph = DualGraph(vertices=[0])
        assert graph.n == 1
        assert graph.max_reliable_degree == 1
        assert graph.max_potential_degree == 1

    def test_edges_to_unknown_vertices_are_rejected(self):
        with pytest.raises(KeyError):
            DualGraph(vertices=[0, 1], reliable_edges=[(0, 2)])

    def test_reliable_edge_is_also_in_g_prime(self, triangle_graph):
        assert triangle_graph.has_reliable_edge(0, 1)
        assert triangle_graph.has_any_edge(0, 1)
        assert not triangle_graph.has_unreliable_edge(0, 1)

    def test_unreliable_edge_is_only_in_g_prime(self, triangle_graph):
        assert not triangle_graph.has_reliable_edge(2, 3)
        assert triangle_graph.has_unreliable_edge(2, 3)
        assert triangle_graph.has_any_edge(2, 3)

    def test_duplicate_unreliable_edge_of_reliable_edge_is_ignored(self):
        graph = DualGraph(
            vertices=[0, 1],
            reliable_edges=[(0, 1)],
            unreliable_edges=[(0, 1)],
        )
        assert graph.has_reliable_edge(0, 1)
        assert not graph.has_unreliable_edge(0, 1)
        assert len(graph.unreliable_edges) == 0

    def test_promoting_an_unreliable_edge_to_reliable(self):
        graph = DualGraph(vertices=[0, 1], unreliable_edges=[(0, 1)])
        assert graph.has_unreliable_edge(0, 1)
        graph.add_reliable_edge(0, 1)
        assert graph.has_reliable_edge(0, 1)
        assert not graph.has_unreliable_edge(0, 1)
        graph.validate()

    def test_malformed_edge_tuples_are_rejected(self):
        with pytest.raises(ValueError):
            DualGraph(vertices=[0, 1, 2], reliable_edges=[(0, 1, 2)])


class TestNeighborhoods:
    def test_reliable_neighbors_exclude_self(self, triangle_graph):
        assert triangle_graph.reliable_neighbors(0) == {1, 2}

    def test_potential_neighbors_include_unreliable(self, triangle_graph):
        assert triangle_graph.potential_neighbors(2) == {0, 1, 3}
        assert triangle_graph.potential_neighbors(3) == {2}

    def test_closed_neighborhoods_include_self(self, triangle_graph):
        assert 0 in triangle_graph.closed_reliable_neighborhood(0)
        assert 3 in triangle_graph.closed_potential_neighborhood(3)

    def test_neighbors_of_set(self, triangle_graph):
        assert triangle_graph.reliable_neighbors_of_set([0]) == {1, 2}
        assert triangle_graph.reliable_neighbors_of_set([0, 1]) == {0, 1, 2}

    def test_unknown_vertex_raises(self, triangle_graph):
        with pytest.raises(KeyError):
            triangle_graph.reliable_neighbors(99)


class TestDegreeBounds:
    def test_degree_bounds_on_triangle(self, triangle_graph):
        # Every triangle vertex has 2 reliable neighbors plus itself = 3.
        assert triangle_graph.max_reliable_degree == 3
        # Vertex 2 additionally sees vertex 3 in G'.
        assert triangle_graph.max_potential_degree == 4
        assert triangle_graph.degree_bounds() == (3, 4)

    def test_delta_prime_at_least_delta(self, small_random_network):
        graph, _ = small_random_network
        delta, delta_prime = graph.degree_bounds()
        assert delta_prime >= delta >= 1

    def test_isolated_vertex_has_degree_one(self):
        graph = DualGraph(vertices=[0, 1], reliable_edges=[])
        assert graph.max_reliable_degree == 1


class TestStructuralQueries:
    def test_hop_distance_on_a_path(self):
        graph = DualGraph(vertices=range(5), reliable_edges=[(i, i + 1) for i in range(4)])
        assert graph.reliable_hop_distance(0, 0) == 0
        assert graph.reliable_hop_distance(0, 1) == 1
        assert graph.reliable_hop_distance(0, 4) == 4

    def test_hop_distance_disconnected_is_none(self):
        graph = DualGraph(vertices=[0, 1, 2], reliable_edges=[(0, 1)])
        assert graph.reliable_hop_distance(0, 2) is None

    def test_unreliable_edges_do_not_count_for_hop_distance(self, triangle_graph):
        assert triangle_graph.reliable_hop_distance(0, 3) is None

    def test_eccentricity_on_a_path(self):
        graph = DualGraph(vertices=range(5), reliable_edges=[(i, i + 1) for i in range(4)])
        assert graph.reliable_eccentricity(0) == 4
        assert graph.reliable_eccentricity(2) == 2

    def test_connectivity(self, triangle_graph):
        # Vertex 3 is connected only by an unreliable edge, so G is disconnected.
        assert not triangle_graph.is_reliably_connected()
        graph = DualGraph(vertices=[0, 1], reliable_edges=[(0, 1)])
        assert graph.is_reliably_connected()

    def test_validate_passes_on_consistent_graph(self, triangle_graph):
        triangle_graph.validate()

    def test_contains_and_len(self, triangle_graph):
        assert 0 in triangle_graph
        assert 99 not in triangle_graph
        assert len(triangle_graph) == 4

    def test_repr_mentions_counts(self, triangle_graph):
        text = repr(triangle_graph)
        assert "n=4" in text
        assert "Delta=3" in text
