"""Unit tests for trace metrics (acks, deliveries, progress, seed owners)."""

import pytest

from repro.core.events import AckOutput, BcastInput, DecideOutput, RecvOutput
from repro.core.local_broadcast import DataFrame
from repro.core.messages import Message
from repro.dualgraph.graph import DualGraph
from repro.simulation.metrics import (
    ack_delays,
    data_reception_rounds,
    delivery_report,
    progress_report,
    receive_rate_per_round,
    unique_seed_owner_counts,
)
from repro.simulation.trace import ExecutionTrace


@pytest.fixture
def star():
    """Vertex 0 with reliable neighbors 1, 2 and a potential neighbor 3."""
    return DualGraph(
        vertices=[0, 1, 2, 3],
        reliable_edges=[(0, 1), (0, 2)],
        unreliable_edges=[(0, 3)],
    )


def make_trace(num_rounds=20):
    trace = ExecutionTrace()
    trace.note_round(num_rounds)
    return trace


class TestAckDelays:
    def test_delay_computation(self):
        trace = make_trace()
        m = Message(origin=0, sequence=0)
        trace.record_event(BcastInput(vertex=0, message=m, round_number=3))
        trace.record_event(AckOutput(vertex=0, message=m, round_number=10))
        records = ack_delays(trace)
        assert len(records) == 1
        assert records[0].delay == 7

    def test_unacknowledged_message_has_no_delay(self):
        trace = make_trace()
        m = Message(origin=0, sequence=0)
        trace.record_event(BcastInput(vertex=0, message=m, round_number=3))
        records = ack_delays(trace)
        assert records[0].ack_round is None
        assert records[0].delay is None


class TestDeliveryReport:
    def test_full_delivery_before_ack(self, star):
        trace = make_trace()
        m = Message(origin=0, sequence=0)
        trace.record_event(BcastInput(vertex=0, message=m, round_number=1))
        trace.record_event(RecvOutput(vertex=1, message=m, round_number=4))
        trace.record_event(RecvOutput(vertex=2, message=m, round_number=6))
        trace.record_event(AckOutput(vertex=0, message=m, round_number=9))
        records = delivery_report(trace, star)
        assert len(records) == 1
        record = records[0]
        assert record.fully_delivered
        assert record.delivery_fraction == 1.0
        assert set(record.reliable_neighbors) == {1, 2}

    def test_late_delivery_does_not_count(self, star):
        trace = make_trace()
        m = Message(origin=0, sequence=0)
        trace.record_event(BcastInput(vertex=0, message=m, round_number=1))
        trace.record_event(RecvOutput(vertex=1, message=m, round_number=4))
        trace.record_event(AckOutput(vertex=0, message=m, round_number=9))
        trace.record_event(RecvOutput(vertex=2, message=m, round_number=12))
        record = delivery_report(trace, star)[0]
        assert not record.fully_delivered
        assert record.delivery_fraction == 0.5
        assert set(record.delivered_ever) == {1, 2}

    def test_non_neighbor_receptions_are_ignored(self, star):
        trace = make_trace()
        m = Message(origin=0, sequence=0)
        trace.record_event(BcastInput(vertex=0, message=m, round_number=1))
        trace.record_event(RecvOutput(vertex=3, message=m, round_number=4))
        trace.record_event(AckOutput(vertex=0, message=m, round_number=9))
        record = delivery_report(trace, star)[0]
        assert record.delivered_before_ack == ()

    def test_sender_with_no_neighbors_is_trivially_delivered(self):
        graph = DualGraph(vertices=[0])
        trace = make_trace()
        m = Message(origin=0, sequence=0)
        trace.record_event(BcastInput(vertex=0, message=m, round_number=1))
        trace.record_event(AckOutput(vertex=0, message=m, round_number=5))
        record = delivery_report(trace, graph)[0]
        assert record.fully_delivered
        assert record.delivery_fraction == 1.0


class TestProgressReport:
    def _active_sender_trace(self, num_rounds=20, bcast_round=1, ack_round=None):
        trace = make_trace(num_rounds)
        m = Message(origin=1, sequence=0)
        trace.record_event(BcastInput(vertex=1, message=m, round_number=bcast_round))
        if ack_round is not None:
            trace.record_event(AckOutput(vertex=1, message=m, round_number=ack_round))
        return trace, m

    def test_window_applies_when_neighbor_active_throughout(self, star):
        trace, m = self._active_sender_trace(num_rounds=20)
        # Vertex 0 hears a data frame in round 12 (window 2: rounds 11-20).
        trace.record_receptions(12, {0: DataFrame(message=m)})
        report = progress_report(trace, star, window=10, receivers=[0])
        assert len(report.windows) == 2
        first, second = report.windows
        assert first.had_active_neighbor and second.had_active_neighbor
        assert not first.received_something and second.received_something
        assert report.failure_rate == 0.5

    def test_window_does_not_apply_without_active_neighbor(self, star):
        trace = make_trace(10)
        report = progress_report(trace, star, window=5, receivers=[0])
        assert report.num_applicable == 0
        assert report.failure_rate == 0.0

    def test_partially_active_window_does_not_apply(self, star):
        # Sender becomes active at round 6: the first 10-round window is not
        # fully covered, the second is.
        trace, _ = self._active_sender_trace(num_rounds=20, bcast_round=6)
        report = progress_report(trace, star, window=10, receivers=[0])
        assert [w.had_active_neighbor for w in report.windows] == [False, True]

    def test_ack_mid_window_ends_applicability(self, star):
        trace, _ = self._active_sender_trace(num_rounds=20, bcast_round=1, ack_round=15)
        report = progress_report(trace, star, window=10, receivers=[0])
        assert [w.had_active_neighbor for w in report.windows] == [True, False]

    def test_back_to_back_messages_keep_neighbor_active(self, star):
        trace = make_trace(20)
        m1 = Message(origin=1, sequence=0)
        m2 = Message(origin=1, sequence=1)
        trace.record_event(BcastInput(vertex=1, message=m1, round_number=1))
        trace.record_event(AckOutput(vertex=1, message=m1, round_number=8))
        trace.record_event(BcastInput(vertex=1, message=m2, round_number=9))
        report = progress_report(trace, star, window=10, receivers=[0])
        assert report.windows[0].had_active_neighbor

    def test_seed_frames_do_not_count_as_progress(self, star):
        from repro.core.seed_agreement import SeedFrame

        trace, _ = self._active_sender_trace(num_rounds=10)
        trace.record_receptions(3, {0: SeedFrame(owner=1, seed=5)})
        report = progress_report(trace, star, window=10, receivers=[0])
        assert report.windows[0].progress_satisfied is False

    def test_use_frames_false_falls_back_to_recv_outputs(self, star):
        trace, m = self._active_sender_trace(num_rounds=10)
        trace.record_event(RecvOutput(vertex=0, message=m, round_number=4))
        report = progress_report(trace, star, window=10, receivers=[0], use_frames=False)
        assert report.windows[0].progress_satisfied is True

    def test_invalid_window_rejected(self, star):
        trace = make_trace(10)
        with pytest.raises(ValueError):
            progress_report(trace, star, window=0)


class TestSeedOwnerCounts:
    def test_counts_distinct_owners_in_closed_gprime_neighborhood(self, star):
        trace = make_trace(5)
        trace.record_event(DecideOutput(vertex=0, owner=0, seed=1, round_number=2))
        trace.record_event(DecideOutput(vertex=1, owner=0, seed=1, round_number=2))
        trace.record_event(DecideOutput(vertex=2, owner=2, seed=9, round_number=3))
        trace.record_event(DecideOutput(vertex=3, owner=3, seed=4, round_number=3))
        counts = unique_seed_owner_counts(trace, star)
        # Vertex 0 sees owners {0, 2, 3} (its G' neighborhood is everyone).
        assert counts[0] == 3
        # Vertex 1's closed neighborhood is {0, 1}: owners {0}.
        assert counts[1] == 1
        # Vertex 3's closed neighborhood is {0, 3}: owners {0, 3}.
        assert counts[3] == 2

    def test_vertices_without_decides_count_zero(self):
        graph = DualGraph(vertices=[0, 1], reliable_edges=[(0, 1)])
        trace = make_trace(5)
        counts = unique_seed_owner_counts(trace, graph)
        assert counts == {0: 0, 1: 0}


class TestReceptionHelpers:
    def test_data_reception_rounds_filters_control_frames(self):
        from repro.core.seed_agreement import SeedFrame

        trace = make_trace(6)
        m = Message(origin=0, sequence=0)
        trace.record_receptions(2, {1: DataFrame(message=m)})
        trace.record_receptions(4, {1: SeedFrame(owner=0, seed=3)})
        trace.record_receptions(5, {1: DataFrame(message=m)})
        assert data_reception_rounds(trace, 1) == [2, 5]

    def test_receive_rate_per_round(self):
        trace = make_trace(10)
        m = Message(origin=0, sequence=0)
        for rnd in (2, 4, 6):
            trace.record_receptions(rnd, {1: DataFrame(message=m)})
        assert receive_rate_per_round(trace, 1, 1, 10) == pytest.approx(0.3)
        with pytest.raises(ValueError):
            receive_rate_per_round(trace, 1, 5, 4)
