"""Unit tests for the SeedAlg process mechanics (Section 3.2)."""

import random

import pytest

from repro.core.events import DecideOutput
from repro.core.params import SeedParams
from repro.core.seed_agreement import (
    STATUS_ACTIVE,
    STATUS_INACTIVE,
    STATUS_LEADER,
    SeedAgreementProcess,
    SeedFrame,
)
from repro.simulation.process import ProcessContext


def make_process(seed=0, params=None, emit=True, initial_seed=None, delta=8):
    if params is None:
        params = SeedParams.derive(0.2, delta=delta, phase_length_override=4)
    ctx = ProcessContext(vertex=1, delta=delta, delta_prime=delta * 2, rng=random.Random(seed))
    return SeedAgreementProcess(ctx, params, emit_decides=emit, initial_seed=initial_seed), params


class ForcedLeader(SeedAgreementProcess):
    """A SeedAlg process whose leader coin always comes up heads."""

    def _begin_phase(self, phase, global_round):
        self._current_phase = phase
        self._leader_this_phase = False
        if self.status != STATUS_ACTIVE:
            return
        self._status = STATUS_LEADER
        self._leader_this_phase = True
        self._commit(self.process_id, self.initial_seed, global_round)


class NeverLeader(SeedAgreementProcess):
    """A SeedAlg process whose leader coin never comes up heads."""

    def _begin_phase(self, phase, global_round):
        self._current_phase = phase
        self._leader_this_phase = False


class TestInitialState:
    def test_starts_active_and_uncommitted(self):
        process, _ = make_process()
        assert process.status == STATUS_ACTIVE
        assert not process.has_committed
        assert process.committed_owner is None
        assert process.committed_seed is None

    def test_initial_seed_within_domain(self):
        process, params = make_process(seed=3)
        assert 0 <= process.initial_seed < 2 ** params.seed_domain_bits

    def test_explicit_initial_seed(self):
        process, _ = make_process(initial_seed=42)
        assert process.initial_seed == 42

    def test_initial_seed_is_reproducible_from_rng(self):
        a, _ = make_process(seed=5)
        b, _ = make_process(seed=5)
        assert a.initial_seed == b.initial_seed


class TestLeaderPath:
    def test_leader_decides_its_own_seed_immediately(self):
        params = SeedParams.derive(0.2, delta=8, phase_length_override=4)
        ctx = ProcessContext(vertex=1, delta=8, delta_prime=16, rng=random.Random(0))
        process = ForcedLeader(ctx, params, initial_seed=99)
        process.step_transmit(1)
        assert process.has_committed
        assert process.committed_owner == 1
        assert process.committed_seed == 99
        events = process.drain_outputs()
        assert len(events) == 1
        assert isinstance(events[0], DecideOutput)
        assert events[0].owner == 1 and events[0].seed == 99

    def test_leader_broadcasts_seed_frames_during_its_phase(self):
        params = SeedParams(
            epsilon=0.4,  # log2(1/0.4) ~ 1.3 -> broadcast probability ~ 0.76
            delta=8,
            r=2.0,
            num_phases=3,
            phase_length=20,
            leader_broadcast_probability=1.0,
            seed_domain_bits=16,
        )
        ctx = ProcessContext(vertex=1, delta=8, delta_prime=16, rng=random.Random(0))
        process = ForcedLeader(ctx, params, initial_seed=7)
        frames = []
        for round_number in range(1, params.phase_length + 1):
            frame = process.step_transmit(round_number)
            process.step_receive(round_number, None)
            if frame is not None:
                frames.append(frame)
        assert frames, "a leader with broadcast probability 1 must transmit"
        assert all(isinstance(f, SeedFrame) for f in frames)
        assert all(f.owner == 1 and f.seed == 7 for f in frames)

    def test_leader_becomes_inactive_after_its_phase(self):
        params = SeedParams.derive(0.2, delta=8, phase_length_override=3)
        ctx = ProcessContext(vertex=1, delta=8, delta_prime=16, rng=random.Random(0))
        process = ForcedLeader(ctx, params)
        for round_number in range(1, params.phase_length + 1):
            process.step_transmit(round_number)
            process.step_receive(round_number, None)
        assert process.status == STATUS_INACTIVE

    def test_leader_never_changes_its_decision(self):
        params = SeedParams.derive(0.2, delta=8, phase_length_override=3)
        ctx = ProcessContext(vertex=1, delta=8, delta_prime=16, rng=random.Random(0))
        process = ForcedLeader(ctx, params, initial_seed=5)
        for round_number in range(1, params.total_rounds + 1):
            process.step_transmit(round_number)
            process.step_receive(round_number, SeedFrame(owner=9, seed=123))
        assert process.committed_owner == 1
        assert process.committed_seed == 5


class TestListenerPath:
    def test_listener_adopts_received_seed(self):
        process, params = make_process()
        # Use a non-leader by construction: phase-1 election probability is
        # 1/8, so seed the RNG such that the first draw misses.
        ctx = ProcessContext(vertex=2, delta=8, delta_prime=16, rng=random.Random(1))
        listener = NeverLeader(ctx, params)
        listener.step_transmit(1)
        listener.step_receive(1, SeedFrame(owner=7, seed=1234))
        assert listener.has_committed
        assert listener.committed_owner == 7
        assert listener.committed_seed == 1234
        assert listener.status == STATUS_INACTIVE

    def test_listener_ignores_second_seed(self):
        _, params = make_process()
        ctx = ProcessContext(vertex=2, delta=8, delta_prime=16, rng=random.Random(1))
        listener = NeverLeader(ctx, params)
        listener.step_transmit(1)
        listener.step_receive(1, SeedFrame(owner=7, seed=1234))
        listener.step_transmit(2)
        listener.step_receive(2, SeedFrame(owner=8, seed=999))
        assert listener.committed_owner == 7

    def test_listener_emits_exactly_one_decide(self):
        _, params = make_process()
        ctx = ProcessContext(vertex=2, delta=8, delta_prime=16, rng=random.Random(1))
        listener = NeverLeader(ctx, params)
        for round_number in range(1, params.total_rounds + 1):
            listener.step_transmit(round_number)
            frame = SeedFrame(owner=7, seed=1) if round_number == 2 else None
            listener.step_receive(round_number, frame)
        decides = [e for e in listener.drain_outputs() if isinstance(e, DecideOutput)]
        assert len(decides) == 1

    def test_non_seed_frames_are_ignored(self):
        _, params = make_process()
        ctx = ProcessContext(vertex=2, delta=8, delta_prime=16, rng=random.Random(1))
        listener = NeverLeader(ctx, params)
        listener.step_transmit(1)
        listener.step_receive(1, "garbage frame")
        assert not listener.has_committed


class TestDefaultDecision:
    def test_never_leader_never_hearing_defaults_to_own_seed(self):
        _, params = make_process()
        ctx = ProcessContext(vertex=3, delta=8, delta_prime=16, rng=random.Random(2))
        process = NeverLeader(ctx, params, initial_seed=77)
        for round_number in range(1, params.total_rounds + 1):
            process.step_transmit(round_number)
            process.step_receive(round_number, None)
        assert process.is_complete
        assert process.has_committed
        assert process.committed_owner == 3
        assert process.committed_seed == 77
        assert process.status == STATUS_INACTIVE

    def test_stepping_past_the_end_is_harmless(self):
        _, params = make_process()
        ctx = ProcessContext(vertex=3, delta=8, delta_prime=16, rng=random.Random(2))
        process = NeverLeader(ctx, params)
        for round_number in range(1, params.total_rounds + 5):
            assert process.step_transmit(round_number) is None or round_number <= params.total_rounds
            process.step_receive(round_number, None)
        assert process.has_committed


class TestEmissionControl:
    def test_emit_decides_false_suppresses_events(self):
        params = SeedParams.derive(0.2, delta=8, phase_length_override=3)
        ctx = ProcessContext(vertex=1, delta=8, delta_prime=16, rng=random.Random(0))
        process = ForcedLeader(ctx, params, emit_decides=False)
        process.step_transmit(1)
        assert process.has_committed
        assert process.drain_outputs() == []


class TestStandaloneProcessInterface:
    def test_transmit_and_on_receive_delegate_to_steps(self):
        process, params = make_process(seed=4)
        for round_number in range(1, params.total_rounds + 1):
            process.transmit(round_number)
            process.on_receive(round_number, None)
        assert process.is_complete
        assert process.has_committed

    def test_local_round_counter(self):
        process, _ = make_process()
        process.transmit(100)  # global round number is irrelevant
        assert process.local_round == 1

    def test_repr(self):
        process, _ = make_process()
        assert "SeedAgreementProcess" in repr(process)
