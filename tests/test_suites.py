"""Tests for scenario suites (repro.scenarios.suite) and the migrated benches.

Covers manifest round-trips and load-time sugar (paths, defaults, suite
metrics), serial-vs-parallel identity of suite execution, group pooling, the
``python -m repro suite`` CLI, and the headline acceptance: the checked-in
``examples/suites/bench_{ack,progress,round_probability,scheduler_models}.json``
manifests reproduce the pre-suite benchmark harnesses' numbers (same seeds;
identical metric values, modulo one-ulp float summation-order differences
noted on the pinned tables).
"""

from __future__ import annotations

import json
import os
import warnings

import pytest

from benchmarks.bench_ablation_seed_reuse import SUITE_PATH as SEED_REUSE_SUITE_PATH
from benchmarks.bench_ablation_seed_reuse import (
    build_seed_reuse_suite,
    seed_reuse_rows_from_report,
)
from benchmarks.bench_abstract_mac import SUITE_PATH as ABSTRACT_MAC_SUITE_PATH
from benchmarks.bench_abstract_mac import (
    abstract_mac_rows_from_report,
    build_abstract_mac_suite,
)
from benchmarks.bench_ack import SUITE_PATH as ACK_SUITE_PATH
from benchmarks.bench_ack import ack_rows_from_report, build_ack_suite
from benchmarks.bench_adversary_resilience import SUITE_PATH as ADVERSARY_SUITE_PATH
from benchmarks.bench_adversary_resilience import (
    adversary_rows_from_report,
    build_adversary_suite,
)
from benchmarks.bench_locality import SUITE_PATH as LOCALITY_SUITE_PATH
from benchmarks.bench_locality import build_locality_suite, locality_rows_from_report
from benchmarks.bench_lower_bound_context import (
    SUITE_PATH as LOWER_BOUND_SUITE_PATH,
)
from benchmarks.bench_lower_bound_context import (
    build_lower_bound_suite,
    lower_bound_rows_from_report,
)
from benchmarks.bench_seed_agreement import SUITE_PATH as SEED_AGREEMENT_SUITE_PATH
from benchmarks.bench_seed_agreement import (
    build_seed_agreement_suite,
    seed_agreement_rows_from_report,
)
from benchmarks.bench_progress import SUITE_PATH as PROGRESS_SUITE_PATH
from benchmarks.bench_progress import build_progress_suite, progress_rows_from_report
from benchmarks.bench_round_probability import SUITE_PATH as ROUND_PROBABILITY_SUITE_PATH
from benchmarks.bench_round_probability import (
    build_round_probability_suite,
    round_probability_rows_from_report,
)
from benchmarks.bench_scheduler_models import SUITE_PATH as SCHEDULER_MODELS_SUITE_PATH
from benchmarks.bench_scheduler_models import (
    build_scheduler_models_suite,
    scheduler_models_rows_from_report,
)
from benchmarks.bench_traffic import SUITE_PATH as TRAFFIC_SUITE_PATH
from benchmarks.bench_traffic import build_traffic_suite, traffic_rows_from_report
from repro.scenarios import (
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    MetricSpec,
    ResultStore,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    SuiteCancelled,
    SuiteEntry,
    SuiteShard,
    SuiteSpec,
    TopologySpec,
    deterministic_report_dict,
    merge_reports,
    parse_shard,
    run,
    run_suite,
    run_suite_shard,
    shard_tasks,
)
from repro.scenarios.cli import main as cli_main


def small_scenario(name="small", seed=3, trials=1, metrics=("counters", "ack_delay")):
    return ScenarioSpec(
        name=name,
        topology=TopologySpec("line", {"n": 5}),
        algorithm=AlgorithmSpec("lbalg", {"preset": "small"}),
        scheduler=SchedulerSpec("iid", {"probability": 0.5, "seed": seed}),
        environment=EnvironmentSpec("single_shot", {"senders": [0]}),
        engine=EngineConfig(trace_mode="auto"),
        run=RunPolicy(
            rounds=1, rounds_unit="tack", trials=trials, master_seed=seed, seed_policy="fixed"
        ),
        metrics=tuple(MetricSpec(m) for m in metrics),
    )


def small_suite(trials=1):
    return SuiteSpec(
        name="small-suite",
        description="two entries, one group",
        entries=(
            SuiteEntry(id="a", scenario=small_scenario("a", seed=3, trials=trials), group="g"),
            SuiteEntry(id="b", scenario=small_scenario("b", seed=4, trials=trials), group="g"),
        ),
    )


class TestSuiteSpec:
    def test_round_trip_preserves_suite_and_fingerprint(self):
        suite = small_suite()
        restored = SuiteSpec.from_json(suite.to_json())
        assert restored == suite
        assert restored.fingerprint() == suite.fingerprint()

    def test_duplicate_entry_ids_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            SuiteSpec(
                name="dup",
                entries=(
                    SuiteEntry(id="x", scenario=small_scenario("a")),
                    SuiteEntry(id="x", scenario=small_scenario("b")),
                ),
            )

    def test_unknown_manifest_keys_rejected(self):
        data = small_suite().to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            SuiteSpec.from_dict(data)

    def test_load_resolves_paths_defaults_and_suite_metrics(self, tmp_path):
        scenario = small_scenario("from-file", metrics=())
        scenario_path = tmp_path / "scenario.json"
        scenario.save(str(scenario_path))
        manifest = {
            "version": 1,
            "name": "sugar",
            "defaults": {"run.rounds": 2},
            "metrics": [{"name": "counters", "args": {}}],
            "entries": [
                {"id": "file-entry", "path": "scenario.json"},
                {
                    "id": "inline-entry",
                    "scenario": small_scenario("inline", seed=5).to_dict(),
                    "overrides": {"run.master_seed": 17},
                },
            ],
        }
        manifest_path = tmp_path / "suite.json"
        manifest_path.write_text(json.dumps(manifest))
        suite = SuiteSpec.load(str(manifest_path))
        by_id = {entry.id: entry for entry in suite.entries}
        # defaults applied everywhere
        assert by_id["file-entry"].scenario.run.rounds == 2
        assert by_id["inline-entry"].scenario.run.rounds == 2
        # per-entry overrides stack on defaults
        assert by_id["inline-entry"].scenario.run.master_seed == 17
        # suite metrics only fill metric-free scenarios
        assert [m.name for m in by_id["file-entry"].scenario.metrics] == ["counters"]
        assert [m.name for m in by_id["inline-entry"].scenario.metrics] == [
            "counters",
            "ack_delay",
        ]
        # the resolved form is fully inline: it round-trips without base_dir
        assert SuiteSpec.from_json(suite.to_json()) == suite

    def test_mixed_metric_groups_rejected(self):
        with pytest.raises(ValueError, match="mixes metric declarations"):
            SuiteSpec(
                name="mixed",
                entries=(
                    SuiteEntry(
                        id="a", scenario=small_scenario("a", metrics=("counters",)), group="g"
                    ),
                    SuiteEntry(
                        id="b", scenario=small_scenario("b", metrics=("ack_delay",)), group="g"
                    ),
                ),
            )
        # distinct groups may declare whatever they like
        SuiteSpec(
            name="ok",
            entries=(
                SuiteEntry(id="a", scenario=small_scenario("a", metrics=("counters",))),
                SuiteEntry(id="b", scenario=small_scenario("b", metrics=("ack_delay",))),
            ),
        )

    def test_path_entries_require_base_dir(self):
        manifest = {"name": "x", "entries": [{"id": "a", "path": "missing.json"}]}
        with pytest.raises(ValueError, match="base directory"):
            SuiteSpec.from_dict(manifest)


class TestRunSuite:
    def test_serial_and_parallel_rows_identical(self):
        suite = small_suite(trials=2)
        serial = run_suite(suite, jobs=1)
        parallel = run_suite(suite, jobs=2)
        rows_serial = [t.metric_row for e in serial.entries for t in e.result.trials]
        rows_parallel = [t.metric_row for e in parallel.entries for t in e.result.trials]
        assert rows_serial == rows_parallel
        assert serial.group_summaries == parallel.group_summaries

    def test_suite_rows_match_serial_run(self):
        """A suite trial's metric row is byte-identical to run()'s."""
        suite = small_suite(trials=2)
        report = run_suite(suite, jobs=1)
        for entry_result in report.entries:
            direct = run(entry_result.entry.scenario, keep=False)
            assert direct.metric_rows == entry_result.result.metric_rows

    def test_group_pooling_is_pooled_not_mean_of_means(self):
        suite = small_suite(trials=2)
        report = run_suite(suite, jobs=1)
        rows = [
            t.metric_row
            for e in report.entries
            for t in e.result.trials
        ]
        pooled_sum = sum(r["ack_delay.delay_sum"] for r in rows)
        pooled_count = sum(r["ack_delay.acked"] for r in rows)
        entry = report.group_summaries["g"]["ack_delay.delay_mean"]
        assert entry["value"] == pooled_sum / pooled_count
        flat = report.group_rows()[0]
        assert flat["group"] == "g"
        assert flat["trials"] == 4
        assert flat["ack_delay.delay_mean"] == entry["value"]

    def test_prebuild_auto_skips_sparse_single_shot_entries(self):
        """prebuild=True warns on single-shot entries and skips their tables,
        without changing any result row."""
        suite = small_suite(trials=1)  # single_shot environment throughout
        with pytest.warns(RuntimeWarning, match="single-shot"):
            warned = run_suite(suite, jobs=1, prebuild=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # prebuild=False stays silent
            silent = run_suite(suite, jobs=1, prebuild=False)
        rows_warned = [t.metric_row for e in warned.entries for t in e.result.trials]
        rows_silent = [t.metric_row for e in silent.entries for t in e.result.trials]
        assert rows_warned == rows_silent
        assert warned.group_summaries == silent.group_summaries

    def test_profile_perf_stats_survive_suite_workers(self):
        suite = SuiteSpec(
            name="profiled",
            entries=(
                SuiteEntry(
                    id="p",
                    scenario=small_scenario("p").with_overrides({"engine.profile": True}),
                ),
            ),
        )
        report = run_suite(suite, jobs=1)
        assert report.entries[0].result.perf_stats  # sections accumulated

    def test_report_renders_table_markdown_and_json(self):
        report = run_suite(small_suite(), jobs=1)
        table = report.format_table(columns=["group", "trials", "ack_delay.delay_mean"])
        assert "ack_delay.delay_mean" in table
        markdown = report.to_markdown()
        assert markdown.startswith("## Suite `small-suite`")
        assert "| group |" in markdown
        payload = json.dumps(report.to_dict(), sort_keys=True, default=str)
        assert "group_summaries" not in payload  # serialized under "groups"
        assert json.loads(payload)["groups"]["g"]


def det(report) -> dict:
    return deterministic_report_dict(report.to_dict())


class TestSharding:
    def test_parse_shard(self):
        assert parse_shard("2/4") == (2, 4)
        assert parse_shard("1/1") == (1, 1)
        for bad in ("0/2", "3/2", "2", "x/y", "1/0"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_shard_tasks_partition_exactly(self):
        indices = [shard_tasks(10, k, 3) for k in (1, 2, 3)]
        assert sorted(i for part in indices for i in part) == list(range(10))
        assert indices[0] == [0, 3, 6, 9]  # round-robin over canonical order
        with pytest.raises(ValueError, match="out of range"):
            shard_tasks(10, 4, 3)

    def test_shard_merge_equals_unsharded(self):
        suite = small_suite(trials=2)
        full = run_suite(suite, jobs=1)
        shards = [run_suite_shard(suite, k, 2, jobs=1) for k in (1, 2)]
        merged = merge_reports(suite, shards)
        assert det(merged) == det(full)
        assert merged.store_stats["tasks"] == 4

    def test_shard_save_load_round_trip(self, tmp_path):
        suite = small_suite(trials=2)
        shard = run_suite_shard(suite, 2, 2, jobs=1)
        path = str(tmp_path / "shard-2-of-2.json")
        shard.save(path)
        assert SuiteShard.load(path) == shard

    def test_merge_validates_the_shard_set(self, tmp_path):
        suite = small_suite(trials=2)
        shard1 = run_suite_shard(suite, 1, 2, jobs=1)
        shard2 = run_suite_shard(suite, 2, 2, jobs=1)
        with pytest.raises(ValueError, match="incomplete shard set"):
            merge_reports(suite, [shard1])
        with pytest.raises(ValueError, match="duplicate shard"):
            merge_reports(suite, [shard1, shard1])
        imposter = SuiteShard(
            suite_fingerprint="0" * 16,
            shard_index=2,
            shard_count=2,
            task_count=shard2.task_count,
            records=shard2.records,
        )
        with pytest.raises(ValueError, match="was produced from"):
            merge_reports(suite, [shard1, imposter])


class TestSuiteStore:
    def test_warm_rerun_serves_every_task_from_the_store(self, tmp_path):
        suite = small_suite(trials=2)
        root = str(tmp_path / "store")
        cold = run_suite(suite, jobs=1, store=root)
        assert cold.store_stats == {"tasks": 4, "resumed": 0, "hits": 0, "misses": 4}
        warm = run_suite(suite, jobs=1, store=root)
        assert warm.store_stats == {"tasks": 4, "resumed": 0, "hits": 4, "misses": 0}
        assert det(warm) == det(cold)

    def test_sharded_run_shares_the_store(self, tmp_path):
        """Shard 2 re-runs nothing that shard 1 already stored -- and a
        second pass over either shard is pure cache."""
        suite = small_suite(trials=2)
        root = str(tmp_path / "store")
        run_suite_shard(suite, 1, 2, jobs=1, store=root)
        again = run_suite_shard(suite, 1, 2, jobs=1, store=root)
        assert again.stats == {"tasks": 2, "resumed": 0, "hits": 2, "misses": 0}

    def test_store_path_and_instance_are_equivalent(self, tmp_path):
        suite = small_suite()
        root = str(tmp_path / "store")
        run_suite(suite, jobs=1, store=root)
        store = ResultStore(root)
        warm = run_suite(suite, jobs=1, store=store)
        assert warm.store_stats["misses"] == 0


class TestCheckpointResume:
    def _checkpoint_lines(self, suite, records, tasks=None):
        header = {
            "checkpoint": 1,
            "suite": suite.fingerprint(),
            "shard": [1, 1],
            "tasks": 4,
        }
        lines = [json.dumps(header, sort_keys=True, separators=(",", ":"))]
        for index in tasks if tasks is not None else sorted(records):
            payload = {"task": index, "record": records[index]}
            lines.append(json.dumps(payload, sort_keys=True, separators=(",", ":")))
        return "\n".join(lines) + "\n"

    def test_resume_trusts_the_checkpoint_and_finishes_the_rest(self, tmp_path):
        suite = small_suite(trials=2)
        full = run_suite(suite, jobs=1)
        records = run_suite_shard(suite, 1, 1, jobs=1).records
        checkpoint = str(tmp_path / "run.checkpoint.jsonl")
        with open(checkpoint, "w") as handle:  # as if killed after 2 of 4 tasks
            handle.write(self._checkpoint_lines(suite, records, tasks=[0, 1]))
        resumed = run_suite(suite, jobs=1, checkpoint=checkpoint, resume=True)
        assert resumed.store_stats == {"tasks": 4, "resumed": 2, "hits": 0, "misses": 2}
        assert det(resumed) == det(full)
        assert not os.path.exists(checkpoint)  # deleted once the run completes

    def test_resume_skips_a_torn_trailing_line(self, tmp_path):
        suite = small_suite(trials=2)
        records = run_suite_shard(suite, 1, 1, jobs=1).records
        checkpoint = str(tmp_path / "run.checkpoint.jsonl")
        with open(checkpoint, "w") as handle:
            handle.write(self._checkpoint_lines(suite, records, tasks=[0]))
            handle.write('{"task": 1, "record"')  # the kill mid-append
        with pytest.warns(RuntimeWarning, match="unreadable line"):
            resumed = run_suite(suite, jobs=1, checkpoint=checkpoint, resume=True)
        assert resumed.store_stats["resumed"] == 1
        assert resumed.store_stats["misses"] == 3  # the torn task re-executed

    def test_resume_rejects_a_foreign_checkpoint(self, tmp_path):
        suite = small_suite(trials=2)
        other = small_suite(trials=1)
        records = run_suite_shard(other, 1, 1, jobs=1).records
        checkpoint = str(tmp_path / "run.checkpoint.jsonl")
        header = {
            "checkpoint": 1,
            "suite": other.fingerprint(),
            "shard": [1, 1],
            "tasks": 2,
        }
        with open(checkpoint, "w") as handle:
            handle.write(json.dumps(header, sort_keys=True, separators=(",", ":")) + "\n")
            handle.write(
                json.dumps({"task": 0, "record": records[0]}, sort_keys=True) + "\n"
            )
        with pytest.raises(ValueError, match="belongs to a different run"):
            run_suite(suite, jobs=1, checkpoint=checkpoint, resume=True)


class TestProgressAndCancellation:
    """The PR-8 service hooks: ``on_progress`` events and ``should_stop``."""

    def test_on_progress_event_sequence(self):
        suite = small_suite(trials=2)  # 4 tasks
        events = []
        run_suite(suite, on_progress=events.append)
        assert events[0] == {"event": "plan", "tasks": 4, "resumed": 0, "hits": 0, "misses": 4}
        task_events = events[1:]
        assert [e["event"] for e in task_events] == ["task"] * 4
        assert [e["done"] for e in task_events] == [1, 2, 3, 4]
        assert all(e["total"] == 4 for e in task_events)
        # Tasks complete in canonical (entry, trial) order, serial or pooled.
        assert [(e["entry"], e["trial"]) for e in task_events] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]

    def test_on_progress_counts_store_hits_in_the_plan(self, tmp_path):
        suite = small_suite(trials=1)
        store = str(tmp_path / "store")
        run_suite(suite, store=store)
        events = []
        run_suite(suite, store=store, on_progress=events.append)
        assert events == [
            {"event": "plan", "tasks": 2, "resumed": 0, "hits": 2, "misses": 0}
        ]

    def test_should_stop_cancels_and_leaves_the_checkpoint(self, tmp_path):
        suite = small_suite(trials=2)
        checkpoint = str(tmp_path / "run.checkpoint.jsonl")
        completed = []

        def stop_after_first():
            return len(completed) >= 1

        with pytest.raises(SuiteCancelled, match="checkpointed"):
            run_suite(
                suite,
                checkpoint=checkpoint,
                resume=True,
                on_progress=lambda e: completed.append(e) if e["event"] == "task" else None,
                should_stop=stop_after_first,
            )
        assert len(completed) == 1
        assert os.path.exists(checkpoint)  # cancellation preserves it

        # A resumed run trusts the checkpointed prefix and matches a clean run.
        resumed = run_suite(suite, checkpoint=checkpoint, resume=True)
        assert resumed.store_stats["resumed"] == 1
        assert resumed.store_stats["misses"] == 3
        assert det(resumed) == det(run_suite(suite))
        assert not os.path.exists(checkpoint)  # consumed by the completed run

    def test_should_stop_before_any_task(self):
        with pytest.raises(SuiteCancelled, match="cancelled before execution"):
            run_suite(small_suite(), should_stop=lambda: True)

    def test_hooks_thread_through_shards(self):
        suite = small_suite(trials=2)
        events = []
        run_suite_shard(suite, 1, 2, on_progress=events.append)
        assert events[0]["event"] == "plan" and events[0]["tasks"] == 2
        assert [e["done"] for e in events[1:]] == [1, 2]


class TestSuiteCLI:
    def test_suite_subcommand_runs_manifest(self, tmp_path, capsys):
        manifest_path = tmp_path / "suite.json"
        small_suite().save(str(manifest_path))
        json_path = tmp_path / "report.json"
        markdown_path = tmp_path / "report.md"
        code = cli_main(
            [
                "suite",
                str(manifest_path),
                "--json",
                str(json_path),
                "--markdown",
                str(markdown_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "suite      : small-suite" in out
        report = json.loads(json_path.read_text())
        assert report["suite"]["name"] == "small-suite"
        assert report["groups"]["g"]
        assert markdown_path.read_text().startswith("## Suite")

    def test_list_includes_metric_registry(self, capsys):
        assert cli_main(["list", "--kind", "metric"]) == 0
        out = capsys.readouterr().out
        assert "ack_delay" in out and "lb_spec" in out

    def test_shard_flags_require_store(self, tmp_path):
        manifest_path = str(tmp_path / "suite.json")
        small_suite().save(manifest_path)
        with pytest.raises(SystemExit, match="--store"):
            cli_main(["suite", manifest_path, "--shard", "1/2"])

    def test_cli_shard_merge_matches_unsharded(self, tmp_path, capsys):
        """The full CLI workflow: two shard invocations over a shared store,
        then --merge; the merged report's deterministic content equals an
        unsharded run_suite."""
        suite = small_suite(trials=2)
        manifest_path = str(tmp_path / "suite.json")
        suite.save(manifest_path)
        store_dir = str(tmp_path / "store")
        for shard in ("1/2", "2/2"):
            assert cli_main(
                ["suite", manifest_path, "--store", store_dir, "--shard", shard, "-q"]
            ) == 0
        json_path = str(tmp_path / "merged.json")
        assert cli_main(
            ["suite", manifest_path, "--store", store_dir, "--merge",
             "--json", json_path, "-q"]
        ) == 0
        capsys.readouterr()
        merged = json.loads(open(json_path).read())
        expected = run_suite(suite, jobs=1)
        assert deterministic_report_dict(merged) == det(expected)

    def test_cli_warm_rerun_reports_store_hits(self, tmp_path, capsys):
        manifest_path = str(tmp_path / "suite.json")
        small_suite().save(manifest_path)
        store_dir = str(tmp_path / "store")
        assert cli_main(["suite", manifest_path, "--store", store_dir, "-q"]) == 0
        json_path = str(tmp_path / "warm.json")
        assert cli_main(
            ["suite", manifest_path, "--store", store_dir, "--json", json_path]
        ) == 0
        out = capsys.readouterr().out
        assert "2 of 2 task(s) from the store" in out
        assert json.loads(open(json_path).read())["store"]["misses"] == 0

    def test_cli_store_stats_and_gc(self, tmp_path, capsys):
        manifest_path = str(tmp_path / "suite.json")
        small_suite().save(manifest_path)
        store_dir = str(tmp_path / "store")
        assert cli_main(["suite", manifest_path, "--store", store_dir, "-q"]) == 0
        assert cli_main(["store", "stats", store_dir, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 2
        assert cli_main(["store", "gc", store_dir]) == 0
        assert "kept 2" in capsys.readouterr().out


class TestBenchmarkReproduction:
    """The acceptance pin: checked-in manifests reproduce the pre-suite
    benchmark numbers (same seeds -> identical metric values)."""

    #: The E4 table as produced by the pre-metrics-pipeline bench_ack.py
    #: (hand-wired ack_delays/delivery_report plumbing), pinned verbatim.
    ACK_ROWS = [
        {
            "target_delta": 8,
            "measured_delta": 7,
            "tack_rounds_bound": 7752,
            "mean_ack_delay": 6763.0,
            "max_ack_delay": 7523,
            "broadcasts": 9,
            "reliability_success_rate": 1.0,
            "mean_delivery_fraction": 1.0,
            "target_epsilon": 0.2,
        },
        {
            "target_delta": 16,
            "measured_delta": 14,
            "tack_rounds_bound": 29562,
            "mean_ack_delay": 23866.666666666668,
            "max_ack_delay": 29182,
            "broadcasts": 9,
            "reliability_success_rate": 1.0,
            "mean_delivery_fraction": 1.0,
            "target_epsilon": 0.2,
        },
    ]

    #: The E3 table from the pre-metrics-pipeline bench_progress.py.
    PROGRESS_ROWS = [
        {"target_delta": 8, "epsilon": 0.2, "measured_delta": 7, "tprog_rounds": 228,
         "windows": 60, "failures": 0, "failure_rate": 0.0,
         "failure_rate_ci95_high": 0.06017393047793289},
        {"target_delta": 8, "epsilon": 0.1, "measured_delta": 7, "tprog_rounds": 467,
         "windows": 60, "failures": 0, "failure_rate": 0.0,
         "failure_rate_ci95_high": 0.06017393047793289},
        {"target_delta": 16, "epsilon": 0.2, "measured_delta": 14, "tprog_rounds": 303,
         "windows": 276, "failures": 0, "failure_rate": 0.0,
         "failure_rate_ci95_high": 0.013727765993333372},
        {"target_delta": 16, "epsilon": 0.1, "measured_delta": 14, "tprog_rounds": 622,
         "windows": 276, "failures": 0, "failure_rate": 0.0,
         "failure_rate_ci95_high": 0.013727765993333372},
        {"target_delta": 24, "epsilon": 0.2, "measured_delta": 21, "tprog_rounds": 379,
         "windows": 452, "failures": 0, "failure_rate": 0.0,
         "failure_rate_ci95_high": 0.008427488847002994},
        {"target_delta": 24, "epsilon": 0.1, "measured_delta": 21, "tprog_rounds": 778,
         "windows": 452, "failures": 0, "failure_rate": 0.0,
         "failure_rate_ci95_high": 0.008427488847002994},
    ]

    #: The E5 table from the pre-suite bench_round_probability.py.  The float
    #: columns are pinned to the suite pipeline's values, which agree with the
    #: historical hand-wired harness to within one ulp (the pooled rate_mean
    #: sums per-receiver rates per trial before pooling, so the float
    #: summation order differs; every integer column is exact).
    ROUND_PROBABILITY_ROWS = [
        {
            "target_delta": 8,
            "measured_delta": 5,
            "measured_delta_prime": 9,
            "receivers_sampled": 19,
            "measured_pu": 0.02869995501574449,
            "theory_pu_bound": 0.04637057441848618,
            "measured_over_theory": 0.6189260188310911,
            "theory_puv_bound": 0.005152286046498465,
        },
        {
            "target_delta": 16,
            "measured_delta": 15,
            "measured_delta_prime": 30,
            "receivers_sampled": 68,
            "measured_pu": 0.02864459931453395,
            "theory_pu_bound": 0.027558780284088872,
            "measured_over_theory": 1.0394001120242604,
            "theory_puv_bound": 0.000918626009469629,
        },
    ]

    #: The E12 table as produced by the pre-suite bench_scheduler_models.py,
    #: pinned verbatim (totals over totals -- exact under pooling).
    SCHEDULER_MODELS_ROWS = [
        {"scheduler": "none", "data_receptions": 1594,
         "receptions_per_round": 0.4383938393839384,
         "unreliable_edge_receptions": 0, "unreliable_fraction": 0.0},
        {"scheduler": "iid", "data_receptions": 2428,
         "receptions_per_round": 0.6677667766776678,
         "unreliable_edge_receptions": 1058,
         "unreliable_fraction": 0.4357495881383855},
        {"scheduler": "full", "data_receptions": 2318,
         "receptions_per_round": 0.6375137513751375,
         "unreliable_edge_receptions": 1458,
         "unreliable_fraction": 0.6289905090595341},
        {"scheduler": "adaptive", "data_receptions": 1484,
         "receptions_per_round": 0.4081408140814081,
         "unreliable_edge_receptions": 0, "unreliable_fraction": 0.0},
    ]

    #: The E9 table as produced by the pre-suite bench_locality.py
    #: (hand-wired probe plumbing), pinned verbatim.
    LOCALITY_ROWS = [
        {"size_index": 0, "n": 18, "side": 3.0, "mean_measured_delta": 8.5,
         "tprog_rounds": 303, "tack_rounds": 29997,
         "probe_progress_failure_rate": 0.0,
         "probe_reception_rate": 0.0176017601760176},
        {"size_index": 1, "n": 32, "side": 4.0, "mean_measured_delta": 8.5,
         "tprog_rounds": 303, "tack_rounds": 29997,
         "probe_progress_failure_rate": 0.0,
         "probe_reception_rate": 0.0242024202420242},
        {"size_index": 2, "n": 50, "side": 5.0, "mean_measured_delta": 10.0,
         "tprog_rounds": 303, "tack_rounds": 29997,
         "probe_progress_failure_rate": 0.0,
         "probe_reception_rate": 0.02035203520352035},
        {"size_index": 3, "n": 72, "side": 6.0, "mean_measured_delta": 11.5,
         "tprog_rounds": 303, "tack_rounds": 29997,
         "probe_progress_failure_rate": 0.0,
         "probe_reception_rate": 0.01595159515951595},
    ]

    #: The E1/E2 table as produced by the pre-suite bench_seed_agreement.py
    #: (per-trial loop with inline spec assertions), pinned verbatim.
    SEED_AGREEMENT_ROWS = [
        {"target_delta": 8, "epsilon": 0.2, "measured_delta": 10, "delta_bound": 38,
         "max_owners": 7, "mean_owners": 3.1015625, "violation_rate": 0.0,
         "rounds_used": 44, "theory_rounds_shape": 17.909677292907524,
         "theory_delta_shape": 9.287712379549449, "mean_commit_round": 6.15625},
        {"target_delta": 8, "epsilon": 0.1, "measured_delta": 10, "delta_bound": 54,
         "max_owners": 7, "mean_owners": 3.171875, "violation_rate": 0.0,
         "rounds_used": 92, "theory_rounds_shape": 36.65816173322413,
         "theory_delta_shape": 13.287712379549449, "mean_commit_round": 11.484375},
        {"target_delta": 16, "epsilon": 0.2, "measured_delta": 15, "delta_bound": 38,
         "max_owners": 10, "mean_owners": 3.6625000000000005, "violation_rate": 0.0,
         "rounds_used": 44, "theory_rounds_shape": 21.06341491669656,
         "theory_delta_shape": 9.287712379549449,
         "mean_commit_round": 6.441666666666666},
        {"target_delta": 16, "epsilon": 0.1, "measured_delta": 15, "delta_bound": 54,
         "max_owners": 8, "mean_owners": 3.2916666666666665, "violation_rate": 0.0,
         "rounds_used": 92, "theory_rounds_shape": 43.113343587494356,
         "theory_delta_shape": 13.287712379549449,
         "mean_commit_round": 9.970833333333333},
        {"target_delta": 32, "epsilon": 0.2, "measured_delta": 34, "delta_bound": 38,
         "max_owners": 7, "mean_owners": 3.642857142857143, "violation_rate": 0.0,
         "rounds_used": 66, "theory_rounds_shape": 27.42829318511828,
         "theory_delta_shape": 9.287712379549449,
         "mean_commit_round": 9.127232142857142},
        {"target_delta": 32, "epsilon": 0.1, "measured_delta": 34, "delta_bound": 54,
         "max_owners": 6, "mean_owners": 3.263392857142857, "violation_rate": 0.0,
         "rounds_used": 138, "theory_rounds_shape": 56.14120183195792,
         "theory_delta_shape": 13.287712379549449,
         "mean_commit_round": 14.444196428571429},
    ]

    #: The E6 table as produced by the pre-suite bench_adversary_resilience.py
    #: (hand-wired two-cluster trap loop), pinned verbatim.
    ADVERSARY_ROWS = [
        {"algorithm": "decay", "scheduler": "iid", "rounds_per_trial": 1000,
         "mean_reception_rate": 0.3398, "min_reception_rate": 0.316},
        {"algorithm": "decay", "scheduler": "anti_decay", "rounds_per_trial": 1000,
         "mean_reception_rate": 0.2142, "min_reception_rate": 0.189},
        {"algorithm": "uniform", "scheduler": "iid", "rounds_per_trial": 1000,
         "mean_reception_rate": 0.37220000000000003, "min_reception_rate": 0.335},
        {"algorithm": "uniform", "scheduler": "anti_decay", "rounds_per_trial": 1000,
         "mean_reception_rate": 0.3358, "min_reception_rate": 0.321},
        {"algorithm": "lbalg", "scheduler": "iid", "rounds_per_trial": 1140,
         "mean_reception_rate": 0.02526315789473684,
         "min_reception_rate": 0.018421052631578946},
        {"algorithm": "lbalg", "scheduler": "anti_decay", "rounds_per_trial": 1140,
         "mean_reception_rate": 0.02, "min_reception_rate": 0.016666666666666666},
    ]

    #: The E11 table as produced by the pre-suite bench_ablation_seed_reuse.py
    #: (inline Simulator loop), pinned verbatim.
    SEED_REUSE_ROWS = [
        {"seed_reuse_phases": 1, "ts": 55, "phase_length": 379,
         "preamble_airtime_fraction": 0.14511873350923482,
         "progress_windows": 438, "progress_failures": 0,
         "progress_failure_rate": 0.0, "target_epsilon": 0.2},
        {"seed_reuse_phases": 2, "ts": 55, "phase_length": 379,
         "preamble_airtime_fraction": 0.07255936675461741,
         "progress_windows": 438, "progress_failures": 6,
         "progress_failure_rate": 0.0136986301369863, "target_epsilon": 0.2},
        {"seed_reuse_phases": 4, "ts": 55, "phase_length": 379,
         "preamble_airtime_fraction": 0.048372911169744945,
         "progress_windows": 438, "progress_failures": 2,
         "progress_failure_rate": 0.0045662100456621, "target_epsilon": 0.2},
    ]

    #: The E13 table (queue-backed traffic under rising load) pinned at its
    #: introduction -- including the acceptance comparison: TASA beats i.i.d.
    #: on pooled delivery latency at the high-load grid point (rate 0.05).
    TRAFFIC_ROWS = [
        {"rate": 0.005, "scheduler": "iid", "delivered": 54,
         "delivery_latency": 140.77777777777777,
         "delivery_rate": 0.2583732057416268, "backlog_p90": 7.8,
         "throughput": 0.04895833333333333},
        {"rate": 0.005, "scheduler": "tasa", "delivered": 74,
         "delivery_latency": 131.54054054054055,
         "delivery_rate": 0.35406698564593303, "backlog_p90": 7.8,
         "throughput": 0.04895833333333333},
        {"rate": 0.005, "scheduler": "longest_queue", "delivered": 88,
         "delivery_latency": 138.27272727272728,
         "delivery_rate": 0.42105263157894735, "backlog_p90": 7.8,
         "throughput": 0.04895833333333333},
        {"rate": 0.02, "scheduler": "iid", "delivered": 63,
         "delivery_latency": 238.15873015873015,
         "delivery_rate": 0.07142857142857142, "backlog_p90": 102.0,
         "throughput": 0.08125},
        {"rate": 0.02, "scheduler": "tasa", "delivered": 96,
         "delivery_latency": 224.80208333333334,
         "delivery_rate": 0.10884353741496598, "backlog_p90": 102.0,
         "throughput": 0.08125},
        {"rate": 0.02, "scheduler": "longest_queue", "delivered": 108,
         "delivery_latency": 232.33333333333334,
         "delivery_rate": 0.12244897959183673, "backlog_p90": 102.0,
         "throughput": 0.08125},
        {"rate": 0.05, "scheduler": "iid", "delivered": 77,
         "delivery_latency": 276.68831168831167,
         "delivery_rate": 0.0337275514673675, "backlog_p90": 349.5,
         "throughput": 0.08472222222222223},
        {"rate": 0.05, "scheduler": "tasa", "delivered": 102,
         "delivery_latency": 270.77450980392155,
         "delivery_rate": 0.04467805519053877, "backlog_p90": 349.5,
         "throughput": 0.08472222222222223},
        {"rate": 0.05, "scheduler": "longest_queue", "delivered": 89,
         "delivery_latency": 251.13483146067415,
         "delivery_rate": 0.03898379325448971, "backlog_p90": 349.5,
         "throughput": 0.08472222222222223},
    ]

    #: The E8 table as produced by the pre-suite bench_abstract_mac.py
    #: (hand-wired FloodClient/adapter loop), pinned verbatim.
    ABSTRACT_MAC_ROWS = [
        {"line_length": 3, "diameter": 2, "phase_length": 152, "tack_rounds": 608,
         "mean_completion_round": 43.5, "mean_coverage": 1.0,
         "completion_over_diameter_tack": 0.03577302631578947},
        {"line_length": 5, "diameter": 4, "phase_length": 152, "tack_rounds": 912,
         "mean_completion_round": 190.0, "mean_coverage": 1.0,
         "completion_over_diameter_tack": 0.052083333333333336},
        {"line_length": 7, "diameter": 6, "phase_length": 152, "tack_rounds": 912,
         "mean_completion_round": 383.5, "mean_coverage": 1.0,
         "completion_over_diameter_tack": 0.07008406432748537},
    ]

    #: The E7 table as produced by the pre-suite bench_lower_bound_context.py
    #: (hand-wired saturating-star loop), pinned verbatim.
    LOWER_BOUND_ROWS = [
        {"leaves": 4, "algorithm": "lbalg", "delta": 5,
         "first_reception_round": 80.33333333333333,
         "progress_lower_bound": 2.321928094887362,
         "all_senders_heard_round": 236.0, "ack_lower_bound": 4.0,
         "incomplete_trials": 0},
        {"leaves": 4, "algorithm": "decay", "delta": 5,
         "first_reception_round": 1.3333333333333333,
         "progress_lower_bound": 2.321928094887362,
         "all_senders_heard_round": 27.333333333333332, "ack_lower_bound": 4.0,
         "incomplete_trials": 0},
        {"leaves": 8, "algorithm": "lbalg", "delta": 9,
         "first_reception_round": 73.0,
         "progress_lower_bound": 3.169925001442312,
         "all_senders_heard_round": 560.6666666666666, "ack_lower_bound": 8.0,
         "incomplete_trials": 0},
        {"leaves": 8, "algorithm": "decay", "delta": 9,
         "first_reception_round": 3.6666666666666665,
         "progress_lower_bound": 3.169925001442312,
         "all_senders_heard_round": 63.333333333333336, "ack_lower_bound": 8.0,
         "incomplete_trials": 0},
        {"leaves": 16, "algorithm": "lbalg", "delta": 17,
         "first_reception_round": 57.333333333333336,
         "progress_lower_bound": 4.087462841250339,
         "all_senders_heard_round": 829.6666666666666, "ack_lower_bound": 16.0,
         "incomplete_trials": 0},
        {"leaves": 16, "algorithm": "decay", "delta": 17,
         "first_reception_round": 7.0,
         "progress_lower_bound": 4.087462841250339,
         "all_senders_heard_round": 273.6666666666667, "ack_lower_bound": 16.0,
         "incomplete_trials": 0},
    ]

    def test_checked_in_manifests_match_programmatic_suites(self):
        for path, build in (
            (ACK_SUITE_PATH, build_ack_suite),
            (PROGRESS_SUITE_PATH, build_progress_suite),
            (ROUND_PROBABILITY_SUITE_PATH, build_round_probability_suite),
            (SCHEDULER_MODELS_SUITE_PATH, build_scheduler_models_suite),
            (LOCALITY_SUITE_PATH, build_locality_suite),
            (SEED_AGREEMENT_SUITE_PATH, build_seed_agreement_suite),
            (ADVERSARY_SUITE_PATH, build_adversary_suite),
            (SEED_REUSE_SUITE_PATH, build_seed_reuse_suite),
            (TRAFFIC_SUITE_PATH, build_traffic_suite),
            (ABSTRACT_MAC_SUITE_PATH, build_abstract_mac_suite),
            (LOWER_BOUND_SUITE_PATH, build_lower_bound_suite),
        ):
            assert os.path.exists(path)
            assert SuiteSpec.load(path).fingerprint() == build().fingerprint()

    def test_ack_manifest_reproduces_pre_suite_numbers(self):
        report = run_suite(SuiteSpec.load(ACK_SUITE_PATH), jobs=1, prebuild=False)
        rows = ack_rows_from_report(report).rows
        assert len(rows) == len(self.ACK_ROWS)
        for expected, actual in zip(self.ACK_ROWS, rows):
            for key, value in expected.items():
                assert actual[key] == value, (key, value, actual[key])

    def test_progress_manifest_reproduces_pre_suite_numbers(self):
        report = run_suite(SuiteSpec.load(PROGRESS_SUITE_PATH), jobs=1, prebuild=False)
        rows = progress_rows_from_report(report).rows
        assert len(rows) == len(self.PROGRESS_ROWS)
        for expected, actual in zip(self.PROGRESS_ROWS, rows):
            for key, value in expected.items():
                assert actual[key] == value, (key, value, actual[key])

    def test_round_probability_manifest_reproduces_pre_suite_numbers(self):
        report = run_suite(SuiteSpec.load(ROUND_PROBABILITY_SUITE_PATH), jobs=1)
        rows = round_probability_rows_from_report(report).rows
        assert len(rows) == len(self.ROUND_PROBABILITY_ROWS)
        for expected, actual in zip(self.ROUND_PROBABILITY_ROWS, rows):
            for key, value in expected.items():
                assert actual[key] == value, (key, value, actual[key])

    def test_scheduler_models_manifest_reproduces_pre_suite_numbers(self):
        report = run_suite(SuiteSpec.load(SCHEDULER_MODELS_SUITE_PATH), jobs=1)
        rows = scheduler_models_rows_from_report(report).rows
        assert len(rows) == len(self.SCHEDULER_MODELS_ROWS)
        for expected, actual in zip(self.SCHEDULER_MODELS_ROWS, rows):
            for key, value in expected.items():
                assert actual[key] == value, (key, value, actual[key])

    def test_locality_manifest_reproduces_pre_suite_numbers(self):
        report = run_suite(SuiteSpec.load(LOCALITY_SUITE_PATH), jobs=1)
        rows = locality_rows_from_report(report).rows
        assert len(rows) == len(self.LOCALITY_ROWS)
        for expected, actual in zip(self.LOCALITY_ROWS, rows):
            for key, value in expected.items():
                assert actual[key] == value, (key, value, actual[key])

    def test_seed_agreement_manifest_reproduces_pre_suite_numbers(self):
        report = run_suite(SuiteSpec.load(SEED_AGREEMENT_SUITE_PATH), jobs=1)
        rows = seed_agreement_rows_from_report(report).rows
        assert len(rows) == len(self.SEED_AGREEMENT_ROWS)
        for expected, actual in zip(self.SEED_AGREEMENT_ROWS, rows):
            for key, value in expected.items():
                assert actual[key] == value, (key, value, actual[key])

    def test_adversary_manifest_reproduces_pre_suite_numbers(self):
        report = run_suite(SuiteSpec.load(ADVERSARY_SUITE_PATH), jobs=1)
        rows = adversary_rows_from_report(report).rows
        assert len(rows) == len(self.ADVERSARY_ROWS)
        for expected, actual in zip(self.ADVERSARY_ROWS, rows):
            for key, value in expected.items():
                assert actual[key] == value, (key, value, actual[key])

    def test_seed_reuse_manifest_reproduces_pre_suite_numbers(self):
        report = run_suite(SuiteSpec.load(SEED_REUSE_SUITE_PATH), jobs=1)
        rows = seed_reuse_rows_from_report(report).rows
        assert len(rows) == len(self.SEED_REUSE_ROWS)
        for expected, actual in zip(self.SEED_REUSE_ROWS, rows):
            for key, value in expected.items():
                assert actual[key] == value, (key, value, actual[key])

    def test_abstract_mac_manifest_reproduces_pre_suite_numbers(self):
        report = run_suite(SuiteSpec.load(ABSTRACT_MAC_SUITE_PATH), jobs=1)
        rows = abstract_mac_rows_from_report(report).rows
        assert len(rows) == len(self.ABSTRACT_MAC_ROWS)
        for expected, actual in zip(self.ABSTRACT_MAC_ROWS, rows):
            for key, value in expected.items():
                assert actual[key] == value, (key, value, actual[key])

    def test_lower_bound_manifest_reproduces_pre_suite_numbers(self):
        report = run_suite(SuiteSpec.load(LOWER_BOUND_SUITE_PATH), jobs=1)
        rows = lower_bound_rows_from_report(report).rows
        assert len(rows) == len(self.LOWER_BOUND_ROWS)
        for expected, actual in zip(self.LOWER_BOUND_ROWS, rows):
            for key, value in expected.items():
                assert actual[key] == value, (key, value, actual[key])

    def test_traffic_manifest_reproduces_pinned_numbers(self):
        report = run_suite(SuiteSpec.load(TRAFFIC_SUITE_PATH), jobs=1)
        rows = traffic_rows_from_report(report).rows
        assert len(rows) == len(self.TRAFFIC_ROWS)
        for expected, actual in zip(self.TRAFFIC_ROWS, rows):
            for key, value in expected.items():
                assert actual[key] == value, (key, value, actual[key])
        # The acceptance comparison: the TASA-style traffic-aware schedule
        # beats the i.i.d. baseline on pooled delivery latency (and delivers
        # strictly more messages) at the high-load grid point.
        by_key = {(r["rate"], r["scheduler"]): r for r in rows}
        high = max(r["rate"] for r in rows)
        assert (
            by_key[(high, "tasa")]["delivery_latency"]
            < by_key[(high, "iid")]["delivery_latency"]
        )
        assert by_key[(high, "tasa")]["delivered"] > by_key[(high, "iid")]["delivered"]
