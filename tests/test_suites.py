"""Tests for scenario suites (repro.scenarios.suite) and the migrated benches.

Covers manifest round-trips and load-time sugar (paths, defaults, suite
metrics), serial-vs-parallel identity of suite execution, group pooling, the
``python -m repro suite`` CLI, and the headline acceptance: the checked-in
``examples/suites/bench_{ack,progress,round_probability,scheduler_models}.json``
manifests reproduce the pre-suite benchmark harnesses' numbers (same seeds;
identical metric values, modulo one-ulp float summation-order differences
noted on the pinned tables).
"""

from __future__ import annotations

import json
import os
import warnings

import pytest

from benchmarks.bench_ack import SUITE_PATH as ACK_SUITE_PATH
from benchmarks.bench_ack import ack_rows_from_report, build_ack_suite
from benchmarks.bench_progress import SUITE_PATH as PROGRESS_SUITE_PATH
from benchmarks.bench_progress import build_progress_suite, progress_rows_from_report
from benchmarks.bench_round_probability import SUITE_PATH as ROUND_PROBABILITY_SUITE_PATH
from benchmarks.bench_round_probability import (
    build_round_probability_suite,
    round_probability_rows_from_report,
)
from benchmarks.bench_scheduler_models import SUITE_PATH as SCHEDULER_MODELS_SUITE_PATH
from benchmarks.bench_scheduler_models import (
    build_scheduler_models_suite,
    scheduler_models_rows_from_report,
)
from repro.scenarios import (
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    MetricSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    SuiteEntry,
    SuiteSpec,
    TopologySpec,
    run,
    run_suite,
)
from repro.scenarios.cli import main as cli_main


def small_scenario(name="small", seed=3, trials=1, metrics=("counters", "ack_delay")):
    return ScenarioSpec(
        name=name,
        topology=TopologySpec("line", {"n": 5}),
        algorithm=AlgorithmSpec("lbalg", {"preset": "small"}),
        scheduler=SchedulerSpec("iid", {"probability": 0.5, "seed": seed}),
        environment=EnvironmentSpec("single_shot", {"senders": [0]}),
        engine=EngineConfig(trace_mode="auto"),
        run=RunPolicy(
            rounds=1, rounds_unit="tack", trials=trials, master_seed=seed, seed_policy="fixed"
        ),
        metrics=tuple(MetricSpec(m) for m in metrics),
    )


def small_suite(trials=1):
    return SuiteSpec(
        name="small-suite",
        description="two entries, one group",
        entries=(
            SuiteEntry(id="a", scenario=small_scenario("a", seed=3, trials=trials), group="g"),
            SuiteEntry(id="b", scenario=small_scenario("b", seed=4, trials=trials), group="g"),
        ),
    )


class TestSuiteSpec:
    def test_round_trip_preserves_suite_and_fingerprint(self):
        suite = small_suite()
        restored = SuiteSpec.from_json(suite.to_json())
        assert restored == suite
        assert restored.fingerprint() == suite.fingerprint()

    def test_duplicate_entry_ids_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            SuiteSpec(
                name="dup",
                entries=(
                    SuiteEntry(id="x", scenario=small_scenario("a")),
                    SuiteEntry(id="x", scenario=small_scenario("b")),
                ),
            )

    def test_unknown_manifest_keys_rejected(self):
        data = small_suite().to_dict()
        data["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            SuiteSpec.from_dict(data)

    def test_load_resolves_paths_defaults_and_suite_metrics(self, tmp_path):
        scenario = small_scenario("from-file", metrics=())
        scenario_path = tmp_path / "scenario.json"
        scenario.save(str(scenario_path))
        manifest = {
            "version": 1,
            "name": "sugar",
            "defaults": {"run.rounds": 2},
            "metrics": [{"name": "counters", "args": {}}],
            "entries": [
                {"id": "file-entry", "path": "scenario.json"},
                {
                    "id": "inline-entry",
                    "scenario": small_scenario("inline", seed=5).to_dict(),
                    "overrides": {"run.master_seed": 17},
                },
            ],
        }
        manifest_path = tmp_path / "suite.json"
        manifest_path.write_text(json.dumps(manifest))
        suite = SuiteSpec.load(str(manifest_path))
        by_id = {entry.id: entry for entry in suite.entries}
        # defaults applied everywhere
        assert by_id["file-entry"].scenario.run.rounds == 2
        assert by_id["inline-entry"].scenario.run.rounds == 2
        # per-entry overrides stack on defaults
        assert by_id["inline-entry"].scenario.run.master_seed == 17
        # suite metrics only fill metric-free scenarios
        assert [m.name for m in by_id["file-entry"].scenario.metrics] == ["counters"]
        assert [m.name for m in by_id["inline-entry"].scenario.metrics] == [
            "counters",
            "ack_delay",
        ]
        # the resolved form is fully inline: it round-trips without base_dir
        assert SuiteSpec.from_json(suite.to_json()) == suite

    def test_mixed_metric_groups_rejected(self):
        with pytest.raises(ValueError, match="mixes metric declarations"):
            SuiteSpec(
                name="mixed",
                entries=(
                    SuiteEntry(
                        id="a", scenario=small_scenario("a", metrics=("counters",)), group="g"
                    ),
                    SuiteEntry(
                        id="b", scenario=small_scenario("b", metrics=("ack_delay",)), group="g"
                    ),
                ),
            )
        # distinct groups may declare whatever they like
        SuiteSpec(
            name="ok",
            entries=(
                SuiteEntry(id="a", scenario=small_scenario("a", metrics=("counters",))),
                SuiteEntry(id="b", scenario=small_scenario("b", metrics=("ack_delay",))),
            ),
        )

    def test_path_entries_require_base_dir(self):
        manifest = {"name": "x", "entries": [{"id": "a", "path": "missing.json"}]}
        with pytest.raises(ValueError, match="base directory"):
            SuiteSpec.from_dict(manifest)


class TestRunSuite:
    def test_serial_and_parallel_rows_identical(self):
        suite = small_suite(trials=2)
        serial = run_suite(suite, jobs=1)
        parallel = run_suite(suite, jobs=2)
        rows_serial = [t.metric_row for e in serial.entries for t in e.result.trials]
        rows_parallel = [t.metric_row for e in parallel.entries for t in e.result.trials]
        assert rows_serial == rows_parallel
        assert serial.group_summaries == parallel.group_summaries

    def test_suite_rows_match_serial_run(self):
        """A suite trial's metric row is byte-identical to run()'s."""
        suite = small_suite(trials=2)
        report = run_suite(suite, jobs=1)
        for entry_result in report.entries:
            direct = run(entry_result.entry.scenario, keep=False)
            assert direct.metric_rows == entry_result.result.metric_rows

    def test_group_pooling_is_pooled_not_mean_of_means(self):
        suite = small_suite(trials=2)
        report = run_suite(suite, jobs=1)
        rows = [
            t.metric_row
            for e in report.entries
            for t in e.result.trials
        ]
        pooled_sum = sum(r["ack_delay.delay_sum"] for r in rows)
        pooled_count = sum(r["ack_delay.acked"] for r in rows)
        entry = report.group_summaries["g"]["ack_delay.delay_mean"]
        assert entry["value"] == pooled_sum / pooled_count
        flat = report.group_rows()[0]
        assert flat["group"] == "g"
        assert flat["trials"] == 4
        assert flat["ack_delay.delay_mean"] == entry["value"]

    def test_prebuild_auto_skips_sparse_single_shot_entries(self):
        """prebuild=True warns on single-shot entries and skips their tables,
        without changing any result row."""
        suite = small_suite(trials=1)  # single_shot environment throughout
        with pytest.warns(RuntimeWarning, match="single-shot"):
            warned = run_suite(suite, jobs=1, prebuild=True)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # prebuild=False stays silent
            silent = run_suite(suite, jobs=1, prebuild=False)
        rows_warned = [t.metric_row for e in warned.entries for t in e.result.trials]
        rows_silent = [t.metric_row for e in silent.entries for t in e.result.trials]
        assert rows_warned == rows_silent
        assert warned.group_summaries == silent.group_summaries

    def test_profile_perf_stats_survive_suite_workers(self):
        suite = SuiteSpec(
            name="profiled",
            entries=(
                SuiteEntry(
                    id="p",
                    scenario=small_scenario("p").with_overrides({"engine.profile": True}),
                ),
            ),
        )
        report = run_suite(suite, jobs=1)
        assert report.entries[0].result.perf_stats  # sections accumulated

    def test_report_renders_table_markdown_and_json(self):
        report = run_suite(small_suite(), jobs=1)
        table = report.format_table(columns=["group", "trials", "ack_delay.delay_mean"])
        assert "ack_delay.delay_mean" in table
        markdown = report.to_markdown()
        assert markdown.startswith("## Suite `small-suite`")
        assert "| group |" in markdown
        payload = json.dumps(report.to_dict(), sort_keys=True, default=str)
        assert "group_summaries" not in payload  # serialized under "groups"
        assert json.loads(payload)["groups"]["g"]


class TestSuiteCLI:
    def test_suite_subcommand_runs_manifest(self, tmp_path, capsys):
        manifest_path = tmp_path / "suite.json"
        small_suite().save(str(manifest_path))
        json_path = tmp_path / "report.json"
        markdown_path = tmp_path / "report.md"
        code = cli_main(
            [
                "suite",
                str(manifest_path),
                "--json",
                str(json_path),
                "--markdown",
                str(markdown_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "suite      : small-suite" in out
        report = json.loads(json_path.read_text())
        assert report["suite"]["name"] == "small-suite"
        assert report["groups"]["g"]
        assert markdown_path.read_text().startswith("## Suite")

    def test_list_includes_metric_registry(self, capsys):
        assert cli_main(["list", "--kind", "metric"]) == 0
        out = capsys.readouterr().out
        assert "ack_delay" in out and "lb_spec" in out


class TestBenchmarkReproduction:
    """The acceptance pin: checked-in manifests reproduce the pre-suite
    benchmark numbers (same seeds -> identical metric values)."""

    #: The E4 table as produced by the pre-metrics-pipeline bench_ack.py
    #: (hand-wired ack_delays/delivery_report plumbing), pinned verbatim.
    ACK_ROWS = [
        {
            "target_delta": 8,
            "measured_delta": 7,
            "tack_rounds_bound": 7752,
            "mean_ack_delay": 6763.0,
            "max_ack_delay": 7523,
            "broadcasts": 9,
            "reliability_success_rate": 1.0,
            "mean_delivery_fraction": 1.0,
            "target_epsilon": 0.2,
        },
        {
            "target_delta": 16,
            "measured_delta": 14,
            "tack_rounds_bound": 29562,
            "mean_ack_delay": 23866.666666666668,
            "max_ack_delay": 29182,
            "broadcasts": 9,
            "reliability_success_rate": 1.0,
            "mean_delivery_fraction": 1.0,
            "target_epsilon": 0.2,
        },
    ]

    #: The E3 table from the pre-metrics-pipeline bench_progress.py.
    PROGRESS_ROWS = [
        {"target_delta": 8, "epsilon": 0.2, "measured_delta": 7, "tprog_rounds": 228,
         "windows": 60, "failures": 0, "failure_rate": 0.0,
         "failure_rate_ci95_high": 0.06017393047793289},
        {"target_delta": 8, "epsilon": 0.1, "measured_delta": 7, "tprog_rounds": 467,
         "windows": 60, "failures": 0, "failure_rate": 0.0,
         "failure_rate_ci95_high": 0.06017393047793289},
        {"target_delta": 16, "epsilon": 0.2, "measured_delta": 14, "tprog_rounds": 303,
         "windows": 276, "failures": 0, "failure_rate": 0.0,
         "failure_rate_ci95_high": 0.013727765993333372},
        {"target_delta": 16, "epsilon": 0.1, "measured_delta": 14, "tprog_rounds": 622,
         "windows": 276, "failures": 0, "failure_rate": 0.0,
         "failure_rate_ci95_high": 0.013727765993333372},
        {"target_delta": 24, "epsilon": 0.2, "measured_delta": 21, "tprog_rounds": 379,
         "windows": 452, "failures": 0, "failure_rate": 0.0,
         "failure_rate_ci95_high": 0.008427488847002994},
        {"target_delta": 24, "epsilon": 0.1, "measured_delta": 21, "tprog_rounds": 778,
         "windows": 452, "failures": 0, "failure_rate": 0.0,
         "failure_rate_ci95_high": 0.008427488847002994},
    ]

    #: The E5 table from the pre-suite bench_round_probability.py.  The float
    #: columns are pinned to the suite pipeline's values, which agree with the
    #: historical hand-wired harness to within one ulp (the pooled rate_mean
    #: sums per-receiver rates per trial before pooling, so the float
    #: summation order differs; every integer column is exact).
    ROUND_PROBABILITY_ROWS = [
        {
            "target_delta": 8,
            "measured_delta": 5,
            "measured_delta_prime": 9,
            "receivers_sampled": 19,
            "measured_pu": 0.02869995501574449,
            "theory_pu_bound": 0.04637057441848618,
            "measured_over_theory": 0.6189260188310911,
            "theory_puv_bound": 0.005152286046498465,
        },
        {
            "target_delta": 16,
            "measured_delta": 15,
            "measured_delta_prime": 30,
            "receivers_sampled": 68,
            "measured_pu": 0.02864459931453395,
            "theory_pu_bound": 0.027558780284088872,
            "measured_over_theory": 1.0394001120242604,
            "theory_puv_bound": 0.000918626009469629,
        },
    ]

    #: The E12 table as produced by the pre-suite bench_scheduler_models.py,
    #: pinned verbatim (totals over totals -- exact under pooling).
    SCHEDULER_MODELS_ROWS = [
        {"scheduler": "none", "data_receptions": 1594,
         "receptions_per_round": 0.4383938393839384,
         "unreliable_edge_receptions": 0, "unreliable_fraction": 0.0},
        {"scheduler": "iid", "data_receptions": 2428,
         "receptions_per_round": 0.6677667766776678,
         "unreliable_edge_receptions": 1058,
         "unreliable_fraction": 0.4357495881383855},
        {"scheduler": "full", "data_receptions": 2318,
         "receptions_per_round": 0.6375137513751375,
         "unreliable_edge_receptions": 1458,
         "unreliable_fraction": 0.6289905090595341},
        {"scheduler": "adaptive", "data_receptions": 1484,
         "receptions_per_round": 0.4081408140814081,
         "unreliable_edge_receptions": 0, "unreliable_fraction": 0.0},
    ]

    def test_checked_in_manifests_match_programmatic_suites(self):
        for path, build in (
            (ACK_SUITE_PATH, build_ack_suite),
            (PROGRESS_SUITE_PATH, build_progress_suite),
            (ROUND_PROBABILITY_SUITE_PATH, build_round_probability_suite),
            (SCHEDULER_MODELS_SUITE_PATH, build_scheduler_models_suite),
        ):
            assert os.path.exists(path)
            assert SuiteSpec.load(path).fingerprint() == build().fingerprint()

    def test_ack_manifest_reproduces_pre_suite_numbers(self):
        report = run_suite(SuiteSpec.load(ACK_SUITE_PATH), jobs=1, prebuild=False)
        rows = ack_rows_from_report(report).rows
        assert len(rows) == len(self.ACK_ROWS)
        for expected, actual in zip(self.ACK_ROWS, rows):
            for key, value in expected.items():
                assert actual[key] == value, (key, value, actual[key])

    def test_progress_manifest_reproduces_pre_suite_numbers(self):
        report = run_suite(SuiteSpec.load(PROGRESS_SUITE_PATH), jobs=1, prebuild=False)
        rows = progress_rows_from_report(report).rows
        assert len(rows) == len(self.PROGRESS_ROWS)
        for expected, actual in zip(self.PROGRESS_ROWS, rows):
            for key, value in expected.items():
                assert actual[key] == value, (key, value, actual[key])

    def test_round_probability_manifest_reproduces_pre_suite_numbers(self):
        report = run_suite(SuiteSpec.load(ROUND_PROBABILITY_SUITE_PATH), jobs=1)
        rows = round_probability_rows_from_report(report).rows
        assert len(rows) == len(self.ROUND_PROBABILITY_ROWS)
        for expected, actual in zip(self.ROUND_PROBABILITY_ROWS, rows):
            for key, value in expected.items():
                assert actual[key] == value, (key, value, actual[key])

    def test_scheduler_models_manifest_reproduces_pre_suite_numbers(self):
        report = run_suite(SuiteSpec.load(SCHEDULER_MODELS_SUITE_PATH), jobs=1)
        rows = scheduler_models_rows_from_report(report).rows
        assert len(rows) == len(self.SCHEDULER_MODELS_ROWS)
        for expected, actual in zip(self.SCHEDULER_MODELS_ROWS, rows):
            for key, value in expected.items():
                assert actual[key] == value, (key, value, actual[key])
