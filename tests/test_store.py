"""Tests for the content-addressed result store (repro.scenarios.store).

Covers the keying contract (what invalidates a cached trial and what
deliberately does not), the on-disk robustness guarantees (corrupt lines
skipped with a warning, concurrent writers never lose rows, ``gc``
compaction), cache-hit byte identity across every trace mode, the
``run(store=...)`` integration, and the single shared per-trial seed helper
(:func:`repro.analysis.sweep.derive_trial_seed`).
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os

import pytest

from repro.analysis.sweep import TRIAL_SEED_POLICIES, derive_point_seed, derive_trial_seed
from repro.scenarios import (
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    MetricSpec,
    ResultStore,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    TopologySpec,
    metrics_signature,
    run,
    trial_key,
)


def store_scenario(
    name="stored",
    seed=7,
    trials=1,
    trace_mode="auto",
    metrics=("counters",),
    rounds=40,
    seed_policy="fixed",
    master_seed=None,
    **engine_kwargs,
):
    return ScenarioSpec(
        name=name,
        topology=TopologySpec("line", {"n": 5}),
        algorithm=AlgorithmSpec("lbalg", {"preset": "small"}),
        scheduler=SchedulerSpec("iid", {"probability": 0.5, "seed": seed}),
        environment=EnvironmentSpec("saturating", {"senders": [0]}),
        engine=EngineConfig(trace_mode=trace_mode, **engine_kwargs),
        run=RunPolicy(
            rounds=rounds,
            rounds_unit="rounds",
            trials=trials,
            master_seed=seed if master_seed is None else master_seed,
            seed_policy=seed_policy,
        ),
        metrics=tuple(MetricSpec(m) for m in metrics),
    )


class TestKeying:
    def test_key_ignores_labels_and_engine_lanes(self):
        """The key addresses *content*: renaming a spec or switching engine
        lanes (which are trace-identical by contract) must hit the same
        record."""
        base = store_scenario(name="a")
        renamed = dataclasses.replace(base, name="b", description="relabeled")
        lane = dataclasses.replace(
            base, engine=EngineConfig(fast_path=False, batch_path=False, trace_mode="auto")
        )
        assert trial_key(base, 0) == trial_key(renamed, 0)
        assert trial_key(base, 0) == trial_key(lane, 0)

    def test_key_changes_with_metrics_trace_mode_seed_and_rounds(self):
        base = store_scenario()
        assert trial_key(base, 0) != trial_key(
            dataclasses.replace(base, metrics=(MetricSpec("counters"), MetricSpec("ack_delay"))), 0
        )
        assert trial_key(store_scenario(trace_mode="full"), 0) != trial_key(
            store_scenario(trace_mode="counters"), 0
        )
        assert trial_key(base, 0) != trial_key(store_scenario(seed=8), 0)
        assert trial_key(base, 0) != trial_key(store_scenario(rounds=41), 0)

    def test_key_tracks_the_resolved_trial_seed_not_the_index(self):
        """Trial bookkeeping matters only through the resolved seed: trial i
        of a sequential-seed spec equals trial 0 of the spec pinned at that
        seed, so the two share one stored record."""
        sequential = store_scenario(seed=7, trials=4, seed_policy="sequential")
        pinned = store_scenario(seed=7, trials=1, seed_policy="fixed", master_seed=9)
        assert trial_key(sequential, 2) == trial_key(pinned, 0)
        # fixed policy: every trial is the same content
        fixed = store_scenario(seed=7, trials=4, seed_policy="fixed")
        assert trial_key(fixed, 0) == trial_key(fixed, 3)

    def test_metrics_signature_resolves_auto_trace_mode(self):
        """auto that resolves to COUNTERS signs like an explicit counters
        spec -- the signature covers what was *recorded*, not the spelling."""
        auto = store_scenario(trace_mode="auto", metrics=("counters",))
        explicit = store_scenario(trace_mode="counters", metrics=("counters",))
        assert metrics_signature(auto) == metrics_signature(explicit)


class TestRoundTrip:
    def test_put_get_round_trips_and_patches_trial_index(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        spec = store_scenario(seed=7, trials=4, seed_policy="sequential")
        record = {"trial_index": 2, "metric_row": {"counters.rounds": 40}, "counters": {}}
        store.put(spec, 2, record)
        # same content, different bookkeeping: trial 0 of the pinned spec
        pinned = store_scenario(seed=7, trials=1, seed_policy="fixed", master_seed=9)
        hit = store.get(pinned, 0)
        assert hit is not None
        assert hit["trial_index"] == 0  # patched to the requested index
        assert hit["metric_row"] == record["metric_row"]
        assert store.get(store_scenario(seed=100), 0) is None
        assert (store.hits, store.misses) == (1, 1)

    def test_coerce_accepts_none_path_and_instance(self, tmp_path):
        assert ResultStore.coerce(None) is None
        store = ResultStore.coerce(str(tmp_path))
        assert isinstance(store, ResultStore)
        assert ResultStore.coerce(store) is store
        with pytest.raises(TypeError, match="store must be"):
            ResultStore.coerce(42)


def _bucket_writer(args):
    """Top-level worker: append records into one shared store root."""
    root, worker, count = args
    store = ResultStore(root)
    for i in range(count):
        # identical first-2-hex prefix forces every write into one bucket
        store.put_entry(f"aa{worker:02d}{i:04d}", {"worker": worker, "i": i})
    return worker


class TestRobustness:
    def test_corrupt_lines_skipped_with_warning_and_gc_compacts(self, tmp_path):
        root = str(tmp_path / "store")
        store = ResultStore(root)
        store.put_entry("aa" + "0" * 30, {"v": 1})
        store.put_entry("aa" + "1" * 30, {"v": 2})
        store.put_entry("aa" + "0" * 30, {"v": 3})  # supersedes the first
        bucket = os.path.join(root, "objects", "aa.jsonl")
        with open(bucket, "a", encoding="utf-8") as handle:
            handle.write('{"key": "aa' + "2" * 30 + '", "record": {"v":')  # truncated
        fresh = ResultStore(root)
        with pytest.warns(RuntimeWarning, match="corrupted/truncated"):
            entry = fresh.get_entry("aa" + "0" * 30)
        assert entry["record"] == {"v": 3}  # last write wins, corruption skipped
        stats = fresh.stats()
        assert stats["entries"] == 2 and stats["corrupt_lines_seen"] == 1

        summary = ResultStore(root).gc()
        assert summary == {
            "kept": 2,
            "dropped_corrupt": 1,
            "dropped_superseded": 1,
            "dropped_evicted": 0,
        }
        compacted = ResultStore(root)
        assert compacted.get_entry("aa" + "0" * 30)["record"] == {"v": 3}
        assert compacted.stats()["lines"] == 2

    def test_gc_dry_run_reports_without_rewriting(self, tmp_path):
        root = str(tmp_path / "store")
        store = ResultStore(root)
        store.put_entry("aa" + "0" * 30, {"v": 1})
        store.put_entry("aa" + "0" * 30, {"v": 2})
        before = ResultStore(root).stats()["lines"]
        summary = ResultStore(root).gc(dry_run=True)
        assert summary["dropped_superseded"] == 1
        assert ResultStore(root).stats()["lines"] == before  # untouched

    def test_gc_drop_fingerprint_evicts_records(self, tmp_path):
        store = ResultStore(str(tmp_path / "store"))
        spec_a, spec_b = store_scenario(seed=7), store_scenario(seed=8)
        record = {"trial_index": 0, "metric_row": {}, "counters": {}}
        store.put(spec_a, 0, record)
        store.put(spec_b, 0, record)
        summary = store.gc(drop_fingerprints=(spec_a.fingerprint(),))
        assert summary["dropped_evicted"] == 1 and summary["kept"] == 1
        fresh = ResultStore(store.root)
        assert fresh.get(spec_a, 0) is None
        assert fresh.get(spec_b, 0) is not None

    def test_concurrent_writers_lose_no_rows(self, tmp_path):
        """Four processes appending into the *same* bucket file: O_APPEND
        line-granular writes mean every row survives."""
        root = str(tmp_path / "store")
        workers, per_worker = 4, 25
        with multiprocessing.Pool(workers) as pool:
            pool.map(_bucket_writer, [(root, w, per_worker) for w in range(workers)])
        store = ResultStore(root)
        assert store.stats()["entries"] == workers * per_worker
        for worker in range(workers):
            for i in range(per_worker):
                entry = store.get_entry(f"aa{worker:02d}{i:04d}")
                assert entry["record"] == {"worker": worker, "i": i}

    def test_stats_and_gc_race_concurrent_writer(self, tmp_path):
        """Regression: ``stats()``/``gc()`` looping against a live appender.

        Before the bucket file locks, ``gc``'s read-then-``os.replace`` could
        drop a row appended between the read and the replace, and ``stats``
        could observe (and miscount) a half-written line.  Now the writer
        blocks on the exclusive bucket lock and re-opens when it finds its
        handle pointing at a replaced inode, so every row survives an
        arbitrary interleaving.
        """
        import threading

        root = str(tmp_path / "store")
        store = ResultStore(root)
        total = 300
        failures: list = []

        def writer():
            try:
                for i in range(total):
                    # One shared bucket (same 2-hex prefix) maximizes contention.
                    store.put_entry(f"ab{i:06d}", {"i": i})
            except Exception as exc:  # pragma: no cover - the regression itself
                failures.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        scans = 0
        while thread.is_alive():
            reader = ResultStore(root)
            stats = reader.stats()
            assert stats["corrupt_lines"] == 0, "scan saw a torn line"
            summary = reader.gc()
            assert summary["dropped_corrupt"] == 0
            scans += 1
        thread.join(timeout=60)
        assert not failures
        assert scans > 0

        final = ResultStore(root)
        assert final.stats()["entries"] == total
        for i in range(total):
            assert final.get_entry(f"ab{i:06d}")["record"] == {"i": i}


class TestWarmIdentity:
    @pytest.mark.parametrize("trace_mode", ["full", "events", "counters"])
    def test_cache_hit_round_trips_byte_identically(self, tmp_path, trace_mode):
        """A warm run serves records verbatim: the trial results -- metric
        rows, counters, even per-trial timings -- serialize byte-identically
        to the cold run's, in every trace mode."""
        root = str(tmp_path / "store")
        spec = store_scenario(trace_mode=trace_mode, trials=2, seed_policy="sequential")
        cold_store = ResultStore(root)
        cold = run(spec, keep=False, store=cold_store)
        warm_store = ResultStore(root)
        warm = run(spec, keep=False, store=warm_store)
        assert warm_store.misses == 0 and warm_store.hits == 2
        blob = lambda result: json.dumps(  # noqa: E731
            [t.to_dict() for t in result.trials], sort_keys=True
        )
        assert blob(cold) == blob(warm)
        assert cold.metric_rows == warm.metric_rows

    def test_pooled_run_shares_the_store(self, tmp_path):
        root = str(tmp_path / "store")
        spec = store_scenario(trials=3, seed_policy="sequential")
        serial = run(spec, keep=False, store=root)
        warm_store = ResultStore(root)
        pooled = run(spec, keep=False, jobs=2, store=warm_store)
        assert warm_store.misses == 0  # the pool path consulted the cache too
        assert serial.metric_rows == pooled.metric_rows


class TestTrialSeedHelper:
    def test_policies_match_run_policy_delegation(self):
        for policy in TRIAL_SEED_POLICIES:
            run_policy = RunPolicy(
                rounds=1, trials=4, master_seed=7, seed_policy=policy
            )
            for trial in range(4):
                assert run_policy.trial_seed(trial) == derive_trial_seed(7, trial, policy)

    def test_policy_semantics(self):
        assert derive_trial_seed(7, 3, "fixed") == 7
        assert derive_trial_seed(7, 3, "sequential") == 10
        assert derive_trial_seed(7, 3, "derived") == derive_point_seed(7, 3)

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="seed_policy"):
            derive_trial_seed(7, 0, "chaotic")
