"""Unit tests for the flooding application on the abstract MAC layer."""

import random

import pytest

from repro.core.params import LBParams
from repro.dualgraph.adversary import IIDScheduler
from repro.dualgraph.generators import line_network
from repro.mac.applications.flood import FloodClient, FloodResult, FloodToken, run_flood


@pytest.fixture
def params():
    # Generous body length so a hop-by-hop relay across a short line is
    # near-certain to complete within the run_flood default phase budget.
    return LBParams.small_for_testing(delta=4, delta_prime=8, tprog=120, tack_phases=2,
                                      seed_phase_length=4)


class FakeApi:
    def __init__(self, vertex=0):
        self.vertex = vertex
        self.submitted = []

    def mac_bcast(self, payload):
        self.submitted.append(payload)
        return True


class TestFloodClient:
    def test_source_submits_at_start(self):
        client = FloodClient(vertex=0, is_source=True)
        api = FakeApi()
        client.on_mac_start(api)
        assert client.received_round == 0
        assert client.relayed
        assert len(api.submitted) == 1
        assert api.submitted[0].hops == 0

    def test_non_source_waits_for_the_token(self):
        client = FloodClient(vertex=1, is_source=False)
        api = FakeApi(vertex=1)
        client.on_mac_start(api)
        assert client.received_round is None
        assert api.submitted == []

    def test_first_reception_triggers_relay(self):
        client = FloodClient(vertex=1, is_source=False)
        api = FakeApi(vertex=1)
        client.on_mac_start(api)
        client.on_mac_recv(FloodToken(flood_id="flood", hops=2), round_number=17)
        assert client.received_round == 17
        assert client.received_hops == 2
        assert len(api.submitted) == 1
        assert api.submitted[0].hops == 3

    def test_second_reception_does_not_relay_again(self):
        client = FloodClient(vertex=1, is_source=False)
        api = FakeApi(vertex=1)
        client.on_mac_start(api)
        client.on_mac_recv(FloodToken(flood_id="flood", hops=1), round_number=5)
        client.on_mac_recv(FloodToken(flood_id="flood", hops=4), round_number=9)
        assert len(api.submitted) == 1
        assert client.received_round == 5

    def test_foreign_payloads_are_ignored(self):
        client = FloodClient(vertex=1, is_source=False)
        api = FakeApi(vertex=1)
        client.on_mac_start(api)
        client.on_mac_recv("unrelated payload", round_number=3)
        client.on_mac_recv(FloodToken(flood_id="other", hops=0), round_number=4)
        assert client.received_round is None
        assert api.submitted == []

    def test_ack_is_recorded(self):
        client = FloodClient(vertex=0, is_source=True)
        api = FakeApi()
        client.on_mac_start(api)
        client.on_mac_ack(FloodToken(flood_id="flood", hops=0), round_number=40)
        assert client.relay_ack_round == 40


class TestFloodResult:
    def test_coverage_and_completion(self):
        result = FloodResult(source=0, rounds_run=100,
                             receive_rounds={0: 0, 1: 30, 2: 60},
                             receive_hops={0: 0, 1: 1, 2: 2})
        assert result.covered == 3
        assert result.coverage == 1.0
        assert result.complete
        assert result.completion_round == 60

    def test_incomplete_flood(self):
        result = FloodResult(source=0, rounds_run=100,
                             receive_rounds={0: 0, 1: 30, 2: None})
        assert result.covered == 2
        assert result.coverage == pytest.approx(2 / 3)
        assert not result.complete
        assert result.completion_round is None


class TestRunFlood:
    def test_flood_covers_a_short_line(self, params):
        graph, _ = line_network(3, spacing=0.9)
        result = run_flood(graph, params, source=0, rng=random.Random(1))
        assert result.complete
        assert result.receive_rounds[0] == 0
        assert result.receive_rounds[2] is not None
        # The far end needs at least one relay, so it is reached strictly
        # later than the middle vertex.
        assert result.receive_rounds[2] >= result.receive_rounds[1]

    def test_flood_with_unreliable_links(self, params):
        graph, _ = line_network(3, spacing=0.9)
        scheduler = IIDScheduler(graph, probability=0.5, seed=2)
        result = run_flood(graph, params, source=0, scheduler=scheduler, rng=random.Random(3))
        assert result.coverage == 1.0

    def test_hop_counts_grow_along_the_line(self, params):
        graph, _ = line_network(4, spacing=0.9)
        result = run_flood(graph, params, source=0, rng=random.Random(5))
        assert result.complete
        assert result.receive_hops[0] == 0
        assert result.receive_hops[3] >= 1

    def test_unknown_source_rejected(self, params):
        graph, _ = line_network(3)
        with pytest.raises(KeyError):
            run_flood(graph, params, source=99)

    def test_max_phase_cap_limits_the_run(self, params):
        graph, _ = line_network(5, spacing=0.9)
        result = run_flood(graph, params, source=0, rng=random.Random(7), max_phases=1)
        assert result.rounds_run <= params.phase_length
