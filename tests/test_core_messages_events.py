"""Unit tests for the message and event vocabulary."""

import pytest

from repro.core.events import AckOutput, BcastInput, DecideOutput, RecvOutput
from repro.core.messages import Message, fresh_counter, make_message


class TestMessage:
    def test_message_id_combines_origin_and_sequence(self):
        m = Message(origin=3, sequence=7, payload="x")
        assert m.message_id == (3, 7)

    def test_messages_are_hashable_and_comparable(self):
        a = Message(origin=1, sequence=0)
        b = Message(origin=1, sequence=0)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_payload_does_not_affect_identity_semantics(self):
        a = Message(origin=1, sequence=0, payload="x")
        b = Message(origin=1, sequence=1, payload="x")
        assert a.message_id != b.message_id

    def test_repr(self):
        assert "origin=2" in repr(Message(origin=2, sequence=5))


class TestMakeMessage:
    def test_sequence_numbers_increase_per_origin(self):
        counter = fresh_counter()
        first = make_message(0, counter=counter)
        second = make_message(0, counter=counter)
        other = make_message(1, counter=counter)
        assert first.sequence == 0
        assert second.sequence == 1
        assert other.sequence == 0

    def test_private_counters_are_independent(self):
        c1, c2 = fresh_counter(), fresh_counter()
        assert make_message(0, counter=c1).sequence == 0
        assert make_message(0, counter=c2).sequence == 0

    def test_global_counter_produces_unique_ids(self):
        a = make_message("global-test-origin")
        b = make_message("global-test-origin")
        assert a.message_id != b.message_id

    def test_payload_is_carried(self):
        counter = fresh_counter()
        assert make_message(0, payload={"k": 1}, counter=counter).payload == {"k": 1}


class TestEvents:
    def test_event_kinds(self):
        m = Message(origin=0, sequence=0)
        assert BcastInput(vertex=0, message=m, round_number=1).kind == "bcast"
        assert AckOutput(vertex=0, message=m, round_number=1).kind == "ack"
        assert RecvOutput(vertex=0, message=m, round_number=1).kind == "recv"
        assert DecideOutput(vertex=0, owner=1, seed=3, round_number=1).kind == "decide"

    def test_events_are_frozen(self):
        m = Message(origin=0, sequence=0)
        event = RecvOutput(vertex=0, message=m, round_number=1)
        with pytest.raises(AttributeError):
            event.round_number = 2

    def test_decide_output_fields(self):
        event = DecideOutput(vertex=5, owner=9, seed=12345, round_number=7)
        assert event.vertex == 5
        assert event.owner == 9
        assert event.seed == 12345
        assert event.round_number == 7
