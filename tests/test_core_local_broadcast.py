"""Unit tests for the LBAlg process state machine (Section 4.2)."""

import random

import pytest

from repro.core.events import AckOutput, RecvOutput
from repro.core.local_broadcast import (
    STATE_RECEIVING,
    STATE_SENDING,
    DataFrame,
    LocalBroadcastProcess,
    make_lb_processes,
)
from repro.core.messages import Message
from repro.core.params import LBParams
from repro.core.seed_agreement import SeedFrame
from repro.dualgraph.generators import line_network
from repro.simulation.process import ProcessContext


@pytest.fixture
def params():
    return LBParams.small_for_testing(delta=8, delta_prime=16, tprog=12, tack_phases=2,
                                      seed_phase_length=4)


def make_process(params, vertex=0, seed=0):
    ctx = ProcessContext(
        vertex=vertex, delta=params.delta, delta_prime=params.delta_prime, rng=random.Random(seed)
    )
    return LocalBroadcastProcess(ctx, params)


def drive_rounds(process, params, start_round, end_round, frames=None):
    """Drive a process through [start_round, end_round] with optional frames."""
    frames = frames or {}
    transmitted = {}
    for round_number in range(start_round, end_round + 1):
        frame = process.transmit(round_number)
        if frame is not None:
            transmitted[round_number] = frame
        process.on_receive(round_number, frames.get(round_number))
    return transmitted


class TestInitialState:
    def test_starts_in_receiving_state(self, params):
        process = make_process(params)
        assert process.state == STATE_RECEIVING
        assert process.current_message is None
        assert process.pending_message is None

    def test_rejects_non_message_inputs(self, params):
        process = make_process(params)
        with pytest.raises(TypeError):
            process.on_input(1, "not a message")

    def test_rejects_second_message_while_busy(self, params):
        process = make_process(params)
        process.on_input(1, Message(origin=0, sequence=0))
        with pytest.raises(RuntimeError):
            process.on_input(2, Message(origin=0, sequence=1))


class TestStateTransitions:
    def test_switches_to_sending_at_next_phase_boundary(self, params):
        process = make_process(params)
        # Input arrives mid-phase: the process stays in receiving state until
        # the next phase starts.
        drive_rounds(process, params, 1, 3)
        process.on_input(4, Message(origin=0, sequence=0, payload="m"))
        drive_rounds(process, params, 4, params.phase_length)
        assert process.state == STATE_RECEIVING
        assert process.pending_message is not None
        # First round of phase 2: the switch happens.
        process.transmit(params.phase_length + 1)
        assert process.state == STATE_SENDING
        assert process.pending_message is None
        assert process.current_message.payload == "m"
        assert process.sending_phases_remaining == params.tack_phases

    def test_input_at_phase_start_switches_immediately(self, params):
        process = make_process(params)
        process.on_input(1, Message(origin=0, sequence=0))
        process.transmit(1)
        assert process.state == STATE_SENDING

    def test_ack_emitted_after_tack_phases(self, params):
        process = make_process(params)
        message = Message(origin=0, sequence=0, payload="m")
        process.on_input(1, message)
        total_rounds = (params.tack_phases) * params.phase_length
        drive_rounds(process, params, 1, total_rounds)
        events = process.drain_outputs()
        acks = [e for e in events if isinstance(e, AckOutput)]
        assert len(acks) == 1
        assert acks[0].message.message_id == message.message_id
        assert acks[0].round_number == total_rounds
        assert process.state == STATE_RECEIVING
        assert process.current_message is None

    def test_no_ack_before_tack_phases_elapse(self, params):
        process = make_process(params)
        process.on_input(1, Message(origin=0, sequence=0))
        drive_rounds(process, params, 1, params.phase_length)
        events = process.drain_outputs()
        assert not any(isinstance(e, AckOutput) for e in events)
        assert process.sending_phases_remaining == params.tack_phases - 1

    def test_ack_round_within_tack_bound(self, params):
        """The ack arrives within (Tack + 1)(Ts + Tprog) rounds of the bcast."""
        process = make_process(params)
        bcast_round = 5  # mid-phase, worst case for the wait
        drive_rounds(process, params, 1, bcast_round - 1)
        process.on_input(bcast_round, Message(origin=0, sequence=0))
        total = params.tack_rounds + bcast_round
        drive_rounds(process, params, bcast_round, total)
        acks = [e for e in process.drain_outputs() if isinstance(e, AckOutput)]
        assert len(acks) == 1
        assert acks[0].round_number - bcast_round <= params.tack_rounds


class TestPreambleBehavior:
    def test_phase_seed_committed_by_end_of_preamble(self, params):
        process = make_process(params)
        drive_rounds(process, params, 1, params.ts)
        assert process.committed_phase_seed is not None
        owner, seed = process.committed_phase_seed
        assert seed >= 0

    def test_fresh_seed_subroutine_each_phase(self, params):
        process = make_process(params)
        drive_rounds(process, params, 1, params.phase_length)
        first_seed = process.committed_phase_seed
        drive_rounds(process, params, params.phase_length + 1, 2 * params.phase_length)
        second_seed = process.committed_phase_seed
        # Both phases committed something (possibly equal values, but the
        # subroutine object is fresh -- check it re-committed).
        assert first_seed is not None and second_seed is not None

    def test_seed_frames_during_body_do_not_produce_recv(self, params):
        process = make_process(params)
        drive_rounds(process, params, 1, params.ts)
        # Deliver a stray seed frame in a body round: no recv output.
        process.transmit(params.ts + 1)
        process.on_receive(params.ts + 1, SeedFrame(owner=9, seed=1))
        events = process.drain_outputs()
        assert not any(isinstance(e, RecvOutput) for e in events)


class TestReceivingData:
    def test_new_message_generates_recv(self, params):
        process = make_process(params)
        drive_rounds(process, params, 1, params.ts)
        message = Message(origin=5, sequence=0, payload="hello")
        process.transmit(params.ts + 1)
        process.on_receive(params.ts + 1, DataFrame(message=message))
        events = process.drain_outputs()
        recvs = [e for e in events if isinstance(e, RecvOutput)]
        assert len(recvs) == 1
        assert recvs[0].message.message_id == message.message_id

    def test_duplicate_message_generates_single_recv(self, params):
        process = make_process(params)
        drive_rounds(process, params, 1, params.ts)
        message = Message(origin=5, sequence=0)
        for offset in (1, 2, 3):
            process.transmit(params.ts + offset)
            process.on_receive(params.ts + offset, DataFrame(message=message))
        events = process.drain_outputs()
        recvs = [e for e in events if isinstance(e, RecvOutput)]
        assert len(recvs) == 1

    def test_distinct_messages_each_generate_recv(self, params):
        process = make_process(params)
        drive_rounds(process, params, 1, params.ts)
        m1 = Message(origin=5, sequence=0)
        m2 = Message(origin=6, sequence=0)
        process.transmit(params.ts + 1)
        process.on_receive(params.ts + 1, DataFrame(message=m1))
        process.transmit(params.ts + 2)
        process.on_receive(params.ts + 2, DataFrame(message=m2))
        recvs = [e for e in process.drain_outputs() if isinstance(e, RecvOutput)]
        assert len(recvs) == 2

    def test_sending_node_can_also_receive(self, params):
        process = make_process(params)
        process.on_input(1, Message(origin=0, sequence=0))
        drive_rounds(process, params, 1, params.ts)
        other = Message(origin=9, sequence=0)
        process.transmit(params.ts + 1)
        process.on_receive(params.ts + 1, DataFrame(message=other))
        recvs = [e for e in process.drain_outputs() if isinstance(e, RecvOutput)]
        assert len(recvs) == 1


class TestBodyTransmissions:
    @pytest.fixture
    def long_params(self):
        """Enough body rounds that at least one transmission is near-certain."""
        return LBParams.small_for_testing(
            delta=8, delta_prime=16, tprog=150, tack_phases=3, seed_phase_length=4
        )

    def test_receiving_state_never_transmits_data(self, params):
        process = make_process(params)
        transmitted = drive_rounds(process, params, 1, params.phase_length)
        data_frames = [f for f in transmitted.values() if isinstance(f, DataFrame)]
        assert data_frames == []

    def test_sending_state_eventually_transmits_its_message(self, long_params):
        # ~450 body rounds at ~2% transmit probability per round: the chance
        # of zero transmissions is below 1e-3; a fixed seed keeps it exact.
        process = make_process(long_params, seed=123)
        message = Message(origin=0, sequence=0, payload="m")
        process.on_input(1, message)
        transmitted = drive_rounds(
            process, long_params, 1, long_params.tack_phases * long_params.phase_length
        )
        data_frames = [f for f in transmitted.values() if isinstance(f, DataFrame)]
        assert data_frames, "a sending node must transmit at least once over its phases"
        assert all(f.message.message_id == message.message_id for f in data_frames)

    def test_data_transmissions_only_in_body_rounds(self, long_params):
        process = make_process(long_params, seed=7)
        process.on_input(1, Message(origin=0, sequence=0))
        transmitted = drive_rounds(
            process, long_params, 1, long_params.tack_phases * long_params.phase_length
        )
        data_rounds = [
            rnd for rnd, frame in transmitted.items() if isinstance(frame, DataFrame)
        ]
        assert data_rounds, "expected at least one data transmission to classify"
        for round_number in data_rounds:
            _, offset = long_params.phase_position(round_number)
            assert long_params.is_body(offset)

    def test_seed_bits_never_exceed_kappa(self, long_params):
        process = make_process(long_params, seed=11)
        process.on_input(1, Message(origin=0, sequence=0))
        drive_rounds(
            process, long_params, 1, long_params.tack_phases * long_params.phase_length
        )
        assert process.stats_max_bits_consumed <= long_params.kappa

    def test_participant_rounds_subset_of_body_rounds(self, long_params):
        process = make_process(long_params, seed=3)
        process.on_input(1, Message(origin=0, sequence=0))
        drive_rounds(
            process, long_params, 1, long_params.tack_phases * long_params.phase_length
        )
        assert process.stats_participant_rounds <= process.stats_body_rounds_sending
        assert process.stats_broadcast_rounds <= process.stats_participant_rounds
        assert process.stats_participant_rounds > 0


class TestFactory:
    def test_make_lb_processes_covers_all_vertices(self, params):
        graph, _ = line_network(5)
        processes = make_lb_processes(graph, params, random.Random(0))
        assert set(processes) == set(graph.vertices)
        assert all(isinstance(p, LocalBroadcastProcess) for p in processes.values())

    def test_processes_have_independent_rngs(self, params):
        graph, _ = line_network(4)
        processes = make_lb_processes(graph, params, random.Random(0))
        draws = {v: p.rng.random() for v, p in processes.items()}
        assert len(set(draws.values())) == len(draws)

    def test_factory_is_reproducible(self, params):
        graph, _ = line_network(4)
        a = make_lb_processes(graph, params, random.Random(5))
        b = make_lb_processes(graph, params, random.Random(5))
        assert all(a[v].rng.random() == b[v].rng.random() for v in graph.vertices)
