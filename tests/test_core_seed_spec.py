"""Unit tests for the Seed(δ, ε) specification checker."""

import pytest

from repro.core.events import DecideOutput
from repro.core.seed_spec import (
    check_seed_execution,
    decide_latency_rounds,
    owner_seed_pairs,
)
from repro.dualgraph.graph import DualGraph
from repro.simulation.trace import ExecutionTrace


@pytest.fixture
def graph():
    """A path 0-1-2 with an unreliable edge 2-3."""
    return DualGraph(
        vertices=[0, 1, 2, 3],
        reliable_edges=[(0, 1), (1, 2)],
        unreliable_edges=[(2, 3)],
    )


def trace_with(decides):
    trace = ExecutionTrace()
    trace.note_round(10)
    for vertex, owner, seed, rnd in decides:
        trace.record_event(DecideOutput(vertex=vertex, owner=owner, seed=seed, round_number=rnd))
    return trace


class TestWellFormedness:
    def test_exactly_one_decide_per_vertex_is_ok(self, graph):
        trace = trace_with([(0, 0, 5, 1), (1, 0, 5, 2), (2, 2, 9, 3), (3, 3, 1, 4)])
        report = check_seed_execution(trace, graph, delta_bound=10)
        assert report.well_formed
        assert report.ok

    def test_missing_decide_is_a_violation(self, graph):
        trace = trace_with([(0, 0, 5, 1), (1, 0, 5, 2), (2, 2, 9, 3)])
        report = check_seed_execution(trace, graph, delta_bound=10)
        assert not report.well_formed
        assert any("never decided" in v for v in report.well_formedness_violations)

    def test_duplicate_decide_is_a_violation(self, graph):
        trace = trace_with(
            [(0, 0, 5, 1), (0, 0, 5, 2), (1, 0, 5, 2), (2, 2, 9, 3), (3, 3, 1, 4)]
        )
        report = check_seed_execution(trace, graph, delta_bound=10)
        assert not report.well_formed
        assert any("2 times" in v for v in report.well_formedness_violations)

    def test_restrict_to_limits_the_check(self, graph):
        trace = trace_with([(0, 0, 5, 1)])
        report = check_seed_execution(trace, graph, delta_bound=10, restrict_to=[0])
        assert report.well_formed


class TestConsistency:
    def test_same_owner_same_seed_is_ok(self, graph):
        trace = trace_with([(0, 9, 5, 1), (1, 9, 5, 1), (2, 9, 5, 1), (3, 9, 5, 1)])
        report = check_seed_execution(trace, graph, delta_bound=10)
        assert report.consistent

    def test_same_owner_different_seed_is_a_violation(self, graph):
        trace = trace_with([(0, 9, 5, 1), (1, 9, 6, 1), (2, 9, 5, 1), (3, 9, 5, 1)])
        report = check_seed_execution(trace, graph, delta_bound=10)
        assert not report.consistent
        assert not report.ok
        assert any("distinct seeds" in v for v in report.consistency_violations)


class TestAgreement:
    def test_counts_owners_in_closed_gprime_neighborhood(self, graph):
        trace = trace_with([(0, 0, 1, 1), (1, 1, 2, 1), (2, 2, 3, 1), (3, 3, 4, 1)])
        report = check_seed_execution(trace, graph, delta_bound=10)
        # Vertex 1's closed G' neighborhood is {0, 1, 2}: 3 owners.
        assert report.agreement_counts[1] == 3
        # Vertex 3's closed G' neighborhood is {2, 3}: 2 owners.
        assert report.agreement_counts[3] == 2
        assert report.max_agreement_count == 3

    def test_violations_when_bound_exceeded(self, graph):
        trace = trace_with([(0, 0, 1, 1), (1, 1, 2, 1), (2, 2, 3, 1), (3, 3, 4, 1)])
        report = check_seed_execution(trace, graph, delta_bound=2)
        assert not report.agreement_ok
        assert 1 in report.agreement_violations
        assert 0.0 < report.agreement_failure_fraction() <= 1.0

    def test_single_owner_everywhere_gives_count_one(self, graph):
        trace = trace_with([(v, 0, 7, 1) for v in graph.vertices])
        report = check_seed_execution(trace, graph, delta_bound=1)
        assert report.agreement_ok
        assert set(report.agreement_counts.values()) == {1}

    def test_empty_trace_counts_are_zero(self, graph):
        report = check_seed_execution(trace_with([]), graph, delta_bound=1)
        assert report.max_agreement_count == 0
        assert report.agreement_failure_fraction() == 0.0
        # But well-formedness fails because nobody decided.
        assert not report.well_formed


class TestHelpers:
    def test_owner_seed_pairs(self, graph):
        trace = trace_with([(0, 0, 5, 1), (1, 0, 5, 2), (2, 2, 9, 3)])
        pairs = owner_seed_pairs(trace)
        assert pairs == [(0, 5), (2, 9)]

    def test_decide_latency_rounds(self, graph):
        trace = trace_with([(0, 0, 5, 4), (1, 0, 5, 2), (2, 2, 9, 9)])
        latencies = decide_latency_rounds(trace)
        assert latencies == {0: 4, 1: 2, 2: 9}

    def test_decide_latency_keeps_earliest(self, graph):
        trace = trace_with([(0, 0, 5, 8), (0, 0, 5, 3)])
        assert decide_latency_rounds(trace)[0] == 3
