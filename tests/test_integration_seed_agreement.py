"""Integration tests: SeedAlg executions checked against the Seed(δ, ε) spec.

These tests run the full algorithm on real dual graph networks under several
link schedulers and verify the specification conditions (and the statistical
properties of Theorem 3.1) end to end.
"""

import random
from collections import Counter

import pytest

from repro.core.params import SeedParams
from repro.core.seed_spec import (
    check_seed_execution,
    decide_latency_rounds,
    owner_seed_pairs,
)
from repro.dualgraph.adversary import (
    FullInclusionScheduler,
    IIDScheduler,
    NoUnreliableScheduler,
    PeriodicScheduler,
)
from repro.dualgraph.generators import clique_network, random_geographic_network
from repro.simulation.engine import Simulator
from repro.simulation.metrics import unique_seed_owner_counts

from tests.helpers import make_seed_processes


def run_seed_execution(graph, params, scheduler_factory=None, master_seed=0):
    processes = make_seed_processes(graph, params, master_seed=master_seed)
    scheduler = scheduler_factory(graph) if scheduler_factory else None
    simulator = Simulator(graph, processes, scheduler=scheduler)
    trace = simulator.run(params.total_rounds)
    return simulator, trace


class TestSeedSpecOnNetworks:
    @pytest.mark.parametrize("scheduler_factory", [
        None,
        lambda g: FullInclusionScheduler(g),
        lambda g: IIDScheduler(g, probability=0.5, seed=13),
        lambda g: PeriodicScheduler(g, on_rounds=3, off_rounds=3),
    ])
    def test_well_formedness_and_consistency_always_hold(self, scheduler_factory):
        graph, _ = random_geographic_network(18, side=3.5, rng=5, require_connected=True)
        params = SeedParams.derive(0.2, delta=graph.max_reliable_degree,
                                   phase_length_override=8)
        _, trace = run_seed_execution(graph, params, scheduler_factory)
        report = check_seed_execution(trace, graph, delta_bound=params.delta_bound)
        assert report.well_formed, report.well_formedness_violations
        assert report.consistent, report.consistency_violations

    def test_every_node_decides_within_the_runtime_bound(self):
        graph, _ = random_geographic_network(18, side=3.5, rng=6, require_connected=True)
        params = SeedParams.derive(0.2, delta=graph.max_reliable_degree,
                                   phase_length_override=8)
        _, trace = run_seed_execution(graph, params)
        latencies = decide_latency_rounds(trace)
        assert set(latencies) == set(graph.vertices)
        assert max(latencies.values()) <= params.total_rounds

    def test_agreement_bound_holds_across_trials(self):
        """Theorem 3.1's agreement condition, estimated over repeated trials."""
        graph, _ = random_geographic_network(20, side=3.5, rng=7, require_connected=True)
        params = SeedParams.derive(0.2, delta=graph.max_reliable_degree,
                                   phase_length_override=8)
        violations = 0
        trials = 10
        for trial in range(trials):
            _, trace = run_seed_execution(
                graph, params,
                scheduler_factory=lambda g: IIDScheduler(g, probability=0.5, seed=trial),
                master_seed=trial,
            )
            report = check_seed_execution(trace, graph, delta_bound=params.delta_bound)
            if not report.agreement_ok:
                violations += 1
        assert violations <= 2, (
            f"the δ={params.delta_bound} agreement bound failed in {violations}/{trials} trials"
        )

    def test_owner_counts_are_far_below_neighborhood_sizes(self):
        """The whole point of seed agreement: few distinct owners per neighborhood."""
        graph, _ = random_geographic_network(24, side=3.0, rng=9, require_connected=True)
        params = SeedParams.derive(0.2, delta=graph.max_reliable_degree,
                                   phase_length_override=8)
        _, trace = run_seed_execution(graph, params, lambda g: FullInclusionScheduler(g))
        counts = unique_seed_owner_counts(trace, graph)
        for vertex, count in counts.items():
            neighborhood = len(graph.closed_potential_neighborhood(vertex))
            assert count <= neighborhood
        # On a dense network the reduction should be substantial on average.
        avg_count = sum(counts.values()) / len(counts)
        avg_neighborhood = sum(
            len(graph.closed_potential_neighborhood(v)) for v in graph.vertices
        ) / graph.n
        assert avg_count < avg_neighborhood

    def test_adopted_seeds_belong_to_real_owners(self):
        """Lemma B.1: a non-default decision names a leader's id and its seed."""
        graph, _ = random_geographic_network(18, side=3.0, rng=11, require_connected=True)
        params = SeedParams.derive(0.2, delta=graph.max_reliable_degree,
                                   phase_length_override=8)
        simulator, trace = run_seed_execution(graph, params)
        initial_seeds = {
            v: simulator.process_at(v).initial_seed for v in graph.vertices
        }
        for event in trace.decide_outputs:
            assert event.owner in graph.vertices
            assert event.seed == initial_seeds[event.owner]

    def test_owner_is_within_the_gprime_two_hop_neighborhood(self):
        """An adopted seed can only have traveled one hop in G' per reception."""
        graph, _ = random_geographic_network(18, side=3.0, rng=12, require_connected=True)
        params = SeedParams.derive(0.2, delta=graph.max_reliable_degree,
                                   phase_length_override=8)
        _, trace = run_seed_execution(graph, params, lambda g: FullInclusionScheduler(g))
        for event in trace.decide_outputs:
            if event.owner == event.vertex:
                continue
            assert event.owner in graph.potential_neighbors(event.vertex)


class TestSeedIndependence:
    def test_initial_seeds_look_uniform_across_trials(self):
        """Independence/uniformity (condition 4) on the first seed bit."""
        graph, _ = clique_network(6)
        params = SeedParams.derive(0.25, delta=graph.max_reliable_degree,
                                   phase_length_override=6, seed_domain_bits=16)
        top_bit_counts = Counter()
        trials = 60
        for trial in range(trials):
            _, trace = run_seed_execution(graph, params, master_seed=trial)
            for owner, seed in owner_seed_pairs(trace):
                top_bit_counts[(seed >> 15) & 1] += 1
        total = sum(top_bit_counts.values())
        assert total > 0
        fraction_ones = top_bit_counts[1] / total
        assert 0.35 < fraction_ones < 0.65

    def test_different_owners_have_independent_looking_seeds(self):
        """Seeds of distinct owners should not be systematically equal."""
        graph, _ = clique_network(6)
        params = SeedParams.derive(0.25, delta=graph.max_reliable_degree,
                                   phase_length_override=6, seed_domain_bits=32)
        equal_pairs = 0
        total_pairs = 0
        for trial in range(30):
            _, trace = run_seed_execution(graph, params, master_seed=100 + trial)
            pairs = owner_seed_pairs(trace)
            for i in range(len(pairs)):
                for j in range(i + 1, len(pairs)):
                    total_pairs += 1
                    if pairs[i][1] == pairs[j][1]:
                        equal_pairs += 1
        if total_pairs:
            assert equal_pairs / total_pairs < 0.05


class TestSeedRuntimeScaling:
    def test_runtime_grows_logarithmically_with_delta(self):
        """Theorem 3.1: the number of rounds scales with log Δ."""
        runtimes = {}
        for delta in (4, 16, 64):
            params = SeedParams.derive(0.1, delta=delta)
            runtimes[delta] = params.total_rounds
        assert runtimes[16] > runtimes[4]
        assert runtimes[64] > runtimes[16]
        # Log growth: the increment from 16 to 64 equals the one from 4 to 16.
        assert (runtimes[64] - runtimes[16]) == (runtimes[16] - runtimes[4])

    def test_runtime_grows_quadratically_in_log_one_over_epsilon(self):
        r1 = SeedParams.derive(0.25, delta=16).total_rounds
        r2 = SeedParams.derive(0.0625, delta=16).total_rounds
        # log(1/eps) doubles, so the phase length should grow ~4x.
        assert 2.5 < r2 / r1 < 6.0
