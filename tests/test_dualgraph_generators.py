"""Unit tests for the network generator families."""

import math
import random

import pytest

from repro.dualgraph.generators import (
    clique_network,
    cluster_network,
    grid_network,
    line_network,
    random_geographic_network,
    star_network,
    two_clusters_network,
)
from repro.dualgraph.geometric import is_r_geographic


class TestRandomGeographicNetwork:
    def test_produces_requested_size(self):
        graph, emb = random_geographic_network(12, side=3.0, rng=1)
        assert graph.n == 12
        assert len(emb) == 12

    def test_result_is_r_geographic(self):
        graph, emb = random_geographic_network(15, side=3.0, r=2.0, rng=2)
        assert is_r_geographic(graph, emb, 2.0)

    def test_reproducible_from_seed(self):
        g1, e1 = random_geographic_network(10, side=3.0, rng=5)
        g2, e2 = random_geographic_network(10, side=3.0, rng=5)
        assert g1.reliable_edges == g2.reliable_edges
        assert g1.unreliable_edges == g2.unreliable_edges
        assert all(e1.position(v) == e2.position(v) for v in g1.vertices)

    def test_different_seeds_differ(self):
        g1, _ = random_geographic_network(10, side=3.0, rng=5)
        g2, _ = random_geographic_network(10, side=3.0, rng=6)
        assert (
            g1.reliable_edges != g2.reliable_edges
            or g1.unreliable_edges != g2.unreliable_edges
        )

    def test_accepts_random_instance(self):
        rng = random.Random(9)
        graph, _ = random_geographic_network(8, side=2.5, rng=rng)
        assert graph.n == 8

    def test_require_connected(self):
        graph, _ = random_geographic_network(
            12, side=2.5, rng=4, require_connected=True
        )
        assert graph.is_reliably_connected()

    def test_require_connected_can_fail(self):
        # A huge, sparse area cannot produce a connected 30-node G.
        with pytest.raises(RuntimeError):
            random_geographic_network(
                30, side=200.0, rng=0, require_connected=True, max_attempts=3
            )

    def test_grey_zone_edge_probability_zero_means_no_unreliable_edges(self):
        graph, _ = random_geographic_network(
            12, side=3.0, rng=7, grey_zone_edge_probability=0.0
        )
        assert len(graph.unreliable_edges) == 0

    def test_grey_zone_edge_probability_one_matches_default_policy(self):
        g_prob, _ = random_geographic_network(
            12, side=3.0, rng=7, grey_zone_edge_probability=1.0
        )
        g_default, _ = random_geographic_network(12, side=3.0, rng=7)
        assert g_prob.unreliable_edges == g_default.unreliable_edges

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            random_geographic_network(5, grey_zone_edge_probability=1.5)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            random_geographic_network(0)


class TestLineNetwork:
    def test_consecutive_vertices_are_reliable_neighbors(self):
        graph, _ = line_network(5, spacing=0.9)
        for i in range(4):
            assert graph.has_reliable_edge(i, i + 1)

    def test_two_hop_vertices_fall_in_grey_zone(self):
        graph, _ = line_network(5, spacing=0.9, r=2.0)
        assert graph.has_unreliable_edge(0, 2)
        assert not graph.has_any_edge(0, 3)

    def test_diameter_matches_length(self):
        graph, _ = line_network(7, spacing=0.9)
        assert graph.reliable_hop_distance(0, 6) == 6

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            line_network(0)


class TestGridNetwork:
    def test_size(self):
        graph, _ = grid_network(3, 4, spacing=0.9)
        assert graph.n == 12

    def test_lattice_neighbors_are_reliable(self):
        graph, _ = grid_network(3, 3, spacing=0.9)
        # Vertex numbering is row-major: vertex 4 is the center.
        assert graph.has_reliable_edge(4, 1)
        assert graph.has_reliable_edge(4, 3)
        assert graph.has_reliable_edge(4, 5)
        assert graph.has_reliable_edge(4, 7)

    def test_result_is_r_geographic(self):
        graph, emb = grid_network(3, 3, spacing=0.9, r=2.0)
        assert is_r_geographic(graph, emb, 2.0)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            grid_network(0, 3)


class TestCliqueNetwork:
    def test_everyone_is_a_reliable_neighbor(self):
        graph, _ = clique_network(6)
        for u in graph.vertices:
            assert len(graph.reliable_neighbors(u)) == 5

    def test_degree_bound_equals_n(self):
        graph, _ = clique_network(7)
        assert graph.max_reliable_degree == 7

    def test_radius_validation(self):
        with pytest.raises(ValueError):
            clique_network(5, radius=0.8)


class TestStarNetwork:
    def test_center_has_all_leaves_as_reliable_neighbors(self):
        graph, _ = star_network(6)
        assert graph.reliable_neighbors(0) == frozenset(range(1, 7))

    def test_leaves_are_grey_zone_connected(self):
        graph, _ = star_network(6)
        # Adjacent leaves are within 2r of each other; with the default policy
        # they get unreliable edges, never reliable ones beyond distance 1.
        assert graph.max_potential_degree >= graph.max_reliable_degree

    def test_rejects_no_leaves(self):
        with pytest.raises(ValueError):
            star_network(0)


class TestClusterNetworks:
    def test_cluster_count_and_size(self):
        graph, _ = cluster_network(clusters=3, cluster_size=4, rng=1)
        assert graph.n == 12

    def test_within_cluster_is_reliable(self):
        graph, emb = cluster_network(clusters=2, cluster_size=4, rng=2)
        # Vertices 0..3 are the first cluster: all within radius 0.4 of its
        # center, hence within distance <= 0.8 of each other.
        for u in range(4):
            for v in range(u + 1, 4):
                assert graph.has_reliable_edge(u, v)

    def test_two_clusters_bridged_only_by_unreliable_edges(self):
        graph, _ = two_clusters_network(cluster_size=4, gap=1.5, rng=3)
        first, second = set(range(4)), set(range(4, 8))
        for u in first:
            for v in second:
                assert not graph.has_reliable_edge(u, v)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            cluster_network(clusters=0, cluster_size=3)

    def test_reproducible(self):
        g1, _ = cluster_network(clusters=2, cluster_size=5, rng=11)
        g2, _ = cluster_network(clusters=2, cluster_size=5, rng=11)
        assert g1.reliable_edges == g2.reliable_edges
