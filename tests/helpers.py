"""Shared non-fixture helpers used by unit and integration tests."""

from __future__ import annotations

import random

from repro import DualGraph, IIDScheduler, LBParams, SeedParams, Simulator, SingleShotEnvironment
from repro import make_lb_processes
from repro.core.seed_agreement import SeedAgreementProcess
from repro.simulation.process import ProcessContext


def make_context(
    vertex,
    delta: int = 8,
    delta_prime: int = 16,
    r: float = 2.0,
    seed: int = 0,
) -> ProcessContext:
    """A process context with a deterministic private RNG."""
    return ProcessContext(
        vertex=vertex,
        delta=delta,
        delta_prime=delta_prime,
        r=r,
        rng=random.Random(seed),
    )


def make_seed_processes(graph: DualGraph, params: SeedParams, master_seed: int = 0):
    """One SeedAgreementProcess per vertex with derived private RNGs."""
    master = random.Random(master_seed)
    delta, delta_prime = graph.degree_bounds()
    processes = {}
    for vertex in sorted(graph.vertices, key=repr):
        ctx = ProcessContext(
            vertex=vertex,
            delta=max(delta, params.delta),
            delta_prime=max(delta_prime, delta),
            rng=random.Random(master.getrandbits(64)),
        )
        processes[vertex] = SeedAgreementProcess(ctx, params)
    return processes


def run_lb_scenario(
    graph: DualGraph,
    params: LBParams,
    senders,
    rounds: int,
    scheduler=None,
    master_seed: int = 0,
    scheduler_probability: float = 0.5,
):
    """Run LBAlg with a single-shot workload and return (simulator, trace)."""
    rng = random.Random(master_seed)
    if scheduler is None:
        scheduler = IIDScheduler(graph, probability=scheduler_probability, seed=master_seed)
    simulator = Simulator(
        graph,
        make_lb_processes(graph, params, rng),
        scheduler=scheduler,
        environment=SingleShotEnvironment(senders=senders),
    )
    trace = simulator.run(rounds)
    return simulator, trace
