"""Unit tests for the oblivious link schedulers."""

import pytest

from repro.baselines.decay import decay_schedule
from repro.dualgraph.adversary import (
    AntiScheduleAdversary,
    FullInclusionScheduler,
    IIDScheduler,
    NoUnreliableScheduler,
    PeriodicScheduler,
    TraceScheduler,
)
from repro.dualgraph.graph import DualGraph, normalize_edge


@pytest.fixture
def graph_with_unreliable_edges():
    return DualGraph(
        vertices=[0, 1, 2, 3],
        reliable_edges=[(0, 1), (1, 2)],
        unreliable_edges=[(0, 2), (2, 3), (1, 3)],
    )


class TestBasicSchedulers:
    def test_no_unreliable_scheduler(self, graph_with_unreliable_edges):
        graph = graph_with_unreliable_edges
        scheduler = NoUnreliableScheduler(graph)
        for round_number in (1, 5, 100):
            assert scheduler.unreliable_edges_for_round(round_number) == frozenset()
            assert scheduler.topology_edges_for_round(round_number) == graph.reliable_edges

    def test_full_inclusion_scheduler(self, graph_with_unreliable_edges):
        graph = graph_with_unreliable_edges
        scheduler = FullInclusionScheduler(graph)
        assert scheduler.unreliable_edges_for_round(1) == graph.unreliable_edges
        assert scheduler.topology_edges_for_round(1) == graph.all_edges

    def test_topology_always_contains_reliable_edges(self, graph_with_unreliable_edges):
        graph = graph_with_unreliable_edges
        for scheduler in (
            NoUnreliableScheduler(graph),
            FullInclusionScheduler(graph),
            IIDScheduler(graph, probability=0.3, seed=1),
            PeriodicScheduler(graph, on_rounds=2, off_rounds=3),
        ):
            for round_number in range(1, 20):
                topology = scheduler.topology_edges_for_round(round_number)
                assert graph.reliable_edges <= topology
                assert topology <= graph.all_edges

    def test_describe_strings(self, graph_with_unreliable_edges):
        graph = graph_with_unreliable_edges
        assert "IIDScheduler" in IIDScheduler(graph, 0.25).describe()
        assert "PeriodicScheduler" in PeriodicScheduler(graph).describe()
        assert NoUnreliableScheduler(graph).describe() == "NoUnreliableScheduler"


class TestIIDScheduler:
    def test_probability_validation(self, graph_with_unreliable_edges):
        with pytest.raises(ValueError):
            IIDScheduler(graph_with_unreliable_edges, probability=1.5)

    def test_extreme_probabilities(self, graph_with_unreliable_edges):
        graph = graph_with_unreliable_edges
        assert IIDScheduler(graph, 0.0).unreliable_edges_for_round(3) == frozenset()
        assert IIDScheduler(graph, 1.0).unreliable_edges_for_round(3) == graph.unreliable_edges

    def test_obliviousness_same_round_same_result(self, graph_with_unreliable_edges):
        scheduler = IIDScheduler(graph_with_unreliable_edges, probability=0.5, seed=4)
        first = scheduler.unreliable_edges_for_round(17)
        second = scheduler.unreliable_edges_for_round(17)
        assert first == second

    def test_different_seeds_differ_somewhere(self, graph_with_unreliable_edges):
        a = IIDScheduler(graph_with_unreliable_edges, probability=0.5, seed=1)
        b = IIDScheduler(graph_with_unreliable_edges, probability=0.5, seed=2)
        rounds = range(1, 40)
        assert any(
            a.unreliable_edges_for_round(t) != b.unreliable_edges_for_round(t) for t in rounds
        )

    def test_empirical_inclusion_rate_near_probability(self, graph_with_unreliable_edges):
        graph = graph_with_unreliable_edges
        scheduler = IIDScheduler(graph, probability=0.3, seed=7)
        total = 0
        included = 0
        for round_number in range(1, 400):
            chosen = scheduler.unreliable_edges_for_round(round_number)
            total += len(graph.unreliable_edges)
            included += len(chosen)
        rate = included / total
        assert 0.2 < rate < 0.4


class TestPeriodicScheduler:
    def test_validation(self, graph_with_unreliable_edges):
        with pytest.raises(ValueError):
            PeriodicScheduler(graph_with_unreliable_edges, on_rounds=0, off_rounds=0)

    def test_on_off_pattern_without_stagger(self, graph_with_unreliable_edges):
        graph = graph_with_unreliable_edges
        scheduler = PeriodicScheduler(graph, on_rounds=2, off_rounds=3)
        pattern = [
            len(scheduler.unreliable_edges_for_round(t)) for t in range(1, 11)
        ]
        expected_on = len(graph.unreliable_edges)
        assert pattern == [expected_on, expected_on, 0, 0, 0] * 2

    def test_stagger_spreads_edge_phases(self, graph_with_unreliable_edges):
        graph = graph_with_unreliable_edges
        scheduler = PeriodicScheduler(graph, on_rounds=1, off_rounds=4, stagger=True, seed=3)
        # With stagger, not every edge toggles at the same round.
        per_round_counts = {
            t: len(scheduler.unreliable_edges_for_round(t)) for t in range(1, 6)
        }
        assert any(0 < count < len(graph.unreliable_edges) or count == 0
                   for count in per_round_counts.values())

    def test_deterministic_per_round(self, graph_with_unreliable_edges):
        scheduler = PeriodicScheduler(
            graph_with_unreliable_edges, on_rounds=3, off_rounds=2, stagger=True, seed=5
        )
        assert scheduler.unreliable_edges_for_round(9) == scheduler.unreliable_edges_for_round(9)


class TestAntiScheduleAdversary:
    def test_includes_everything_on_high_probability_rounds(self, graph_with_unreliable_edges):
        graph = graph_with_unreliable_edges
        victim = decay_schedule(8)  # [1/2, 1/4, 1/8]
        adversary = AntiScheduleAdversary(graph, victim, threshold=0.3)
        # Round 1 -> victim probability 1/2 >= 0.3: all unreliable edges included.
        assert adversary.unreliable_edges_for_round(1) == graph.unreliable_edges
        # Round 3 -> victim probability 1/8 < 0.3: none included.
        assert adversary.unreliable_edges_for_round(3) == frozenset()

    def test_cycles_with_the_victim_schedule(self, graph_with_unreliable_edges):
        victim = [0.5, 0.25, 0.125]
        adversary = AntiScheduleAdversary(graph_with_unreliable_edges, victim, threshold=0.3)
        for t in range(1, 10):
            assert adversary.victim_probability_for_round(t) == victim[(t - 1) % 3]

    def test_default_threshold_is_median(self, graph_with_unreliable_edges):
        adversary = AntiScheduleAdversary(graph_with_unreliable_edges, [0.5, 0.25, 0.125])
        assert adversary.threshold == 0.25

    def test_phase_offset_shifts_alignment(self, graph_with_unreliable_edges):
        victim = [0.5, 0.125]
        base = AntiScheduleAdversary(graph_with_unreliable_edges, victim, threshold=0.3)
        shifted = AntiScheduleAdversary(
            graph_with_unreliable_edges, victim, threshold=0.3, phase_offset=1
        )
        assert base.victim_probability_for_round(1) == shifted.victim_probability_for_round(2)

    def test_validation(self, graph_with_unreliable_edges):
        with pytest.raises(ValueError):
            AntiScheduleAdversary(graph_with_unreliable_edges, [])
        with pytest.raises(ValueError):
            AntiScheduleAdversary(graph_with_unreliable_edges, [1.5])

    def test_is_oblivious(self, graph_with_unreliable_edges):
        adversary = AntiScheduleAdversary(graph_with_unreliable_edges, decay_schedule(8))
        assert adversary.unreliable_edges_for_round(7) == adversary.unreliable_edges_for_round(7)


class TestTraceScheduler:
    def test_explicit_schedule_is_followed(self, graph_with_unreliable_edges):
        graph = graph_with_unreliable_edges
        scheduler = TraceScheduler(
            graph,
            schedule=[[(0, 2)], [], [(2, 3), (1, 3)]],
            cycle=False,
        )
        assert scheduler.unreliable_edges_for_round(1) == {normalize_edge(0, 2)}
        assert scheduler.unreliable_edges_for_round(2) == frozenset()
        assert scheduler.unreliable_edges_for_round(3) == {
            normalize_edge(2, 3),
            normalize_edge(1, 3),
        }

    def test_past_end_without_cycle_is_empty(self, graph_with_unreliable_edges):
        scheduler = TraceScheduler(graph_with_unreliable_edges, [[(0, 2)]], cycle=False)
        assert scheduler.unreliable_edges_for_round(5) == frozenset()

    def test_past_end_with_cycle_repeats(self, graph_with_unreliable_edges):
        scheduler = TraceScheduler(
            graph_with_unreliable_edges, [[(0, 2)], []], cycle=True
        )
        assert scheduler.unreliable_edges_for_round(3) == {normalize_edge(0, 2)}
        assert scheduler.unreliable_edges_for_round(4) == frozenset()

    def test_rejects_unknown_edges(self, graph_with_unreliable_edges):
        with pytest.raises(ValueError):
            TraceScheduler(graph_with_unreliable_edges, [[(0, 1)]])  # (0,1) is reliable

    def test_empty_schedule(self, graph_with_unreliable_edges):
        scheduler = TraceScheduler(graph_with_unreliable_edges, [])
        assert scheduler.unreliable_edges_for_round(1) == frozenset()
