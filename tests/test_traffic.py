"""Tests for the traffic subsystem (repro.traffic + its scenario wiring).

Covers the arrival processes (determinism, sequential-consumption contract,
rate calibration), the queue-backed environment's delivery accounting, the
traffic-aware scheduler family (routing tree, slot disjointness, delta-cache
signatures), the ``TrafficSpec`` serialization contract (JSON round-trip,
cross-process fingerprint stability, byte-identical serialization for
traffic-free specs), engine-lane parity for queued workloads, and the
serial-vs-parallel row identity of traffic runs.

Lane note: :class:`~repro.traffic.environment.QueuedEnvironment` overrides
``_on_recv`` for delivery tracking, which *disqualifies the counters-only
kernel lane by design* (the engine auto-falls back to the event-building
lanes; see the engine's ``_counters_lane`` gate).  The parity tests below
therefore cover the generic, fast, batched, and vector/kernel event lanes --
the counters fast-lane opt-out is asserted explicitly, not skipped silently.
"""

from __future__ import annotations

import json
import subprocess
import sys
from dataclasses import replace

import pytest

from repro.dualgraph.generators import two_clusters_network
from repro.scenarios.components import network_with_target_degree
from repro.scenarios.registry import ENVIRONMENTS, SCHEDULERS
from repro.scenarios.runtime import materialize, run, run_many, run_trial
from repro.scenarios.spec import (
    AlgorithmSpec,
    ArrivalSpec,
    EngineConfig,
    EnvironmentSpec,
    MetricSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    TopologySpec,
    TrafficSpec,
)
from repro.traffic import (
    ARRIVAL_KINDS,
    BurstyArrivals,
    ConvergecastArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    QueuedEnvironment,
    TrafficAwareScheduler,
    build_arrival_process,
    build_routing_tree,
    derive_stream_seed,
    subtree_loads,
)


def _traffic_spec(scheduler="tasa", scheduler_args=None, rate=0.05, trials=2, **over):
    base = dict(
        name=f"traffic-test-{scheduler}-{rate}",
        topology=TopologySpec("target_degree", {"target_delta": 8, "seed": 11}),
        algorithm=AlgorithmSpec("lbalg", {"preset": "small"}),
        scheduler=SchedulerSpec(scheduler, dict(scheduler_args or {})),
        environment=EnvironmentSpec("queued", {}),
        run=RunPolicy(rounds=1, rounds_unit="tack", trials=trials, master_seed=7),
        metrics=(MetricSpec("queue"),),
        traffic=TrafficSpec(arrival=ArrivalSpec("poisson", {"rate": rate}), sinks=(0,)),
    )
    base.update(over)
    return ScenarioSpec(**base)


# ----------------------------------------------------------------------
# arrival processes
# ----------------------------------------------------------------------
class TestArrivalProcesses:
    def test_streams_are_deterministic_and_seed_sensitive(self):
        rounds = 200
        realizations = []
        for seed in (3, 3, 4):
            p = PoissonArrivals(sources=range(6), sinks=(), seed=seed, rate=0.3)
            realizations.append(
                [tuple(p.arrivals_for_round(r)) for r in range(1, rounds + 1)]
            )
        assert realizations[0] == realizations[1]
        assert realizations[0] != realizations[2]

    def test_sequential_consumption_is_enforced(self):
        p = PoissonArrivals(sources=[0], sinks=(), seed=1, rate=0.5)
        p.arrivals_for_round(1)
        with pytest.raises(ValueError, match="in order"):
            p.arrivals_for_round(3)
        with pytest.raises(ValueError, match="in order"):
            p.arrivals_for_round(1)  # no replays either

    def test_poisson_rate_is_calibrated(self):
        # The stream seed fills the full kappa bits; a narrower seed would
        # leave leading zeros and inflate every early draw (regression: the
        # empirical rate at 0.002 once came out 4x high).
        for rate in (0.002, 0.1):
            p = PoissonArrivals(sources=range(10), sinks=(), seed=5, rate=rate)
            total = sum(len(p.arrivals_for_round(r)) for r in range(1, 4001))
            assert total / 40000 == pytest.approx(rate, rel=0.25)

    def test_stream_seed_derivation_is_stable_and_wide(self):
        value = derive_stream_seed(7, 3)
        assert value == derive_stream_seed(7, 3)
        assert value != derive_stream_seed(7, 4)
        assert value != derive_stream_seed(8, 3)
        assert value != derive_stream_seed(7, 3, salt="offset")
        # full 256-bit digests: at least one of these has high bits set
        assert max(derive_stream_seed(7, v).bit_length() for v in range(8)) > 200

    def test_periodic_and_bursty_emit_on_schedule(self):
        periodic = PeriodicArrivals(sources=[0, 1], sinks=(), seed=2, period=4)
        bursty = BurstyArrivals(sources=[0], sinks=(), seed=2, burst=3, period=5)
        periodic_counts = {0: 0, 1: 0}
        burst_sizes = set()
        for r in range(1, 21):
            for v, count in periodic.arrivals_for_round(r):
                periodic_counts[v] += count
            for _v, count in bursty.arrivals_for_round(r):
                burst_sizes.add(count)
        assert periodic_counts == {0: 5, 1: 5}  # once per period each
        assert burst_sizes == {3}
        assert periodic.expected_rate(0) == 0.25
        assert bursty.expected_rate(0) == pytest.approx(3 / 5)

    def test_convergecast_excludes_sinks_and_requires_them(self):
        p = ConvergecastArrivals(sources=range(5), sinks=(0,), seed=1, rate=1.0)
        arrivals = p.arrivals_for_round(1)
        assert {v for v, _ in arrivals} == {1, 2, 3, 4}
        assert p.expected_rate(0) == 0.0
        with pytest.raises(ValueError, match="sink"):
            ConvergecastArrivals(sources=range(5), sinks=(), seed=1)

    def test_builder_covers_every_kind_and_rejects_unknown(self):
        for kind in ARRIVAL_KINDS:
            sinks = (0,) if kind == "convergecast" else ()
            process = build_arrival_process(
                kind, {}, sources=range(4), sinks=sinks, seed=9
            )
            process.arrivals_for_round(1)
        with pytest.raises(KeyError, match="unknown arrival kind"):
            build_arrival_process("nope", {}, sources=[0], sinks=(), seed=0)


# ----------------------------------------------------------------------
# queued environment
# ----------------------------------------------------------------------
class TestQueuedEnvironment:
    def _graph(self):
        graph, _ = network_with_target_degree(8, seed=11)
        return graph

    def test_head_of_line_submission_and_backlog(self):
        graph = self._graph()
        arrival = BurstyArrivals(
            sources=sorted(graph.vertices)[:2], sinks=(), seed=1, burst=3, period=1000,
            stagger=False,
        )
        env = QueuedEnvironment(graph, arrival)
        inputs = env.inputs_for_round(1)
        # one head-of-line message per source; the rest stays queued
        assert sum(len(msgs) for msgs in inputs.values()) == 2
        assert env.total_backlog() == 4
        # busy nodes (unacked message outstanding) submit nothing more but
        # keep their backlog
        inputs2 = env.inputs_for_round(2)
        assert inputs2 == {}
        assert env.total_backlog() == 4

    def test_capacity_drops_excess_arrivals(self):
        graph = self._graph()
        arrival = BurstyArrivals(
            sources=sorted(graph.vertices)[:1], sinks=(), seed=1, burst=5, period=1000,
            stagger=False,
        )
        env = QueuedEnvironment(graph, arrival, capacity=2)
        env.inputs_for_round(1)
        assert env.offered == 5
        assert env.enqueued == 2
        assert env.dropped == 3

    def test_delivery_requires_every_reliable_neighbor(self):
        graph, _ = two_clusters_network(cluster_size=3, gap=1.5, rng=1)
        source = 0
        neighbors = sorted(graph.reliable_neighbors(source))
        arrival = PeriodicArrivals(
            sources=[source], sinks=(), seed=1, period=1000, stagger=False
        )
        env = QueuedEnvironment(graph, arrival)
        inputs = env.inputs_for_round(1)
        (message,) = inputs[source]

        class _Recv:
            def __init__(self, vertex, message):
                self.vertex = vertex
                self.message = message

        for i, neighbor in enumerate(neighbors):
            assert env.delivered == 0  # not delivered until the last one
            env._on_recv(5 + i, _Recv(neighbor, message))
        assert env.delivered == 1
        # delivered at the round the last neighbor heard it (enqueued round 1)
        assert env.delivery_latencies == [5 + len(neighbors) - 1 - 1]

    def test_queued_environment_disqualifies_counters_lane(self):
        # QueuedEnvironment overrides _on_recv, so the engine must fall back
        # from the counters-only kernel lane to the event-building lanes --
        # the documented lane opt-out for stateful reception tracking.
        spec = _traffic_spec(
            scheduler="iid",
            scheduler_args={"probability": 0.5},
            trials=1,
            engine=EngineConfig(trace_mode="counters"),
        )
        built = materialize(spec, 0)
        assert isinstance(built.environment, QueuedEnvironment)
        assert not built.simulator.uses_counters_lane

    def test_lane_fallback_reason_is_recorded(self):
        # The opt-out above used to be silent: a traffic workload quietly ran
        # off the counters lane with nothing in the result saying so.  The
        # engine now reports the lane that actually ran plus the first
        # disqualifying reason, and both travel through RunResult.perf_stats.
        spec = _traffic_spec(
            scheduler="iid",
            scheduler_args={"probability": 0.5},
            trials=1,
            engine=EngineConfig(trace_mode="counters"),
        )
        built = materialize(spec, 0)
        assert built.simulator.lane != "counters-kernel-numpy"
        assert built.simulator.lane_fallback == (
            "environment QueuedEnvironment overrides _on_recv"
        )

        result = run(spec, keep=False)
        assert result.perf_stats["lane"] == built.simulator.lane
        assert result.perf_stats["lane_fallback"] == (
            "environment QueuedEnvironment overrides _on_recv"
        )

    def test_lane_fallback_is_none_when_counters_lane_engages(self):
        # A queue-free counters run takes the top lane and reports no
        # fallback -- the absence of a reason is part of the contract.
        spec = ScenarioSpec(
            name="lane-top",
            topology=TopologySpec("target_degree", {"target_delta": 8, "seed": 11}),
            algorithm=AlgorithmSpec("lbalg", {"preset": "small"}),
            scheduler=SchedulerSpec("iid", {"probability": 0.5}),
            run=RunPolicy(rounds=1, rounds_unit="tack", trials=1, master_seed=7),
            engine=EngineConfig(trace_mode="counters"),
        )
        result = run(spec, keep=False)
        assert result.perf_stats["lane"].startswith("counters-kernel-")
        assert result.perf_stats["lane_fallback"] is None


# ----------------------------------------------------------------------
# traffic-aware schedulers
# ----------------------------------------------------------------------
class TestTrafficAwareScheduler:
    def _graph(self):
        graph, _ = network_with_target_degree(8, seed=11)
        return graph

    def test_routing_tree_reaches_reliable_component(self):
        graph = self._graph()
        sink = min(graph.vertices)
        parents = build_routing_tree(graph, [sink])
        assert parents[sink] is None
        reachable = [v for v, p in parents.items() if p is not None]
        assert reachable  # something besides the sink is attached
        for vertex, parent in parents.items():
            if parent is not None:
                assert parent in graph.reliable_neighbors(vertex)
        with pytest.raises(ValueError, match="sink"):
            build_routing_tree(graph, [])

    def test_subtree_loads_aggregate_toward_sink(self):
        parents = {0: None, 1: 0, 2: 1, 3: 1}
        loads = subtree_loads(parents, {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0})
        assert loads[2] == 2.0
        assert loads[3] == 3.0
        assert loads[1] == 6.0
        assert loads[0] == 6.0

    def test_slots_are_endpoint_disjoint(self):
        graph = self._graph()
        scheduler = TrafficAwareScheduler(graph)
        for slot in range(scheduler.frame):
            edges = scheduler.unreliable_edges_for_round(slot + 1)
            endpoints = [v for e in edges for v in e]
            assert len(endpoints) == len(set(endpoints))
        # every unreliable edge is assigned exactly one slot
        assigned = set()
        for slot in range(scheduler.frame):
            assigned |= set(scheduler.unreliable_edges_for_round(slot + 1))
        assert assigned == set(graph.unreliable_edges)

    def test_schedule_is_periodic_and_seed_independent(self):
        graph = self._graph()
        a = TrafficAwareScheduler(graph, rates={v: 1.0 for v in graph.vertices})
        b = TrafficAwareScheduler(graph, rates={v: 1.0 for v in graph.vertices})
        assert a.unreliable_edges_for_round(1) == b.unreliable_edges_for_round(1)
        assert a.unreliable_edges_for_round(1) == a.unreliable_edges_for_round(
            1 + a.frame
        )

    def test_variants_and_signatures_differ_with_forecast(self):
        graph = self._graph()
        vertices = sorted(graph.vertices)
        skewed = {v: (10.0 if i < 3 else 0.01) for i, v in enumerate(vertices)}
        tasa = TrafficAwareScheduler(graph, rates=skewed, variant="tasa")
        lqf = TrafficAwareScheduler(graph, rates=skewed, variant="longest_queue")
        assert tasa._delta_cache_signature() != lqf._delta_cache_signature()
        uniform = TrafficAwareScheduler(graph, variant="tasa")
        assert tasa._delta_cache_signature()[:2] == uniform._delta_cache_signature()[:2]
        with pytest.raises(ValueError, match="variant"):
            TrafficAwareScheduler(graph, variant="mystery")

    def test_registry_metadata(self):
        for name in ("tasa", "longest_queue"):
            assert SCHEDULERS.supports_traffic(name)
            assert not SCHEDULERS.is_trial_seeded(name)
        assert not SCHEDULERS.supports_traffic("iid")
        assert ENVIRONMENTS.supports_traffic("queued")
        assert ENVIRONMENTS.supports_trial_seed("queued")
        assert ENVIRONMENTS.workload("queued") == "dense"
        assert ENVIRONMENTS.workload("single_shot") == "sparse"


# ----------------------------------------------------------------------
# spec serialization
# ----------------------------------------------------------------------
class TestTrafficSpecSerialization:
    def test_round_trip(self):
        spec = _traffic_spec()
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert restored == spec
        assert restored.fingerprint() == spec.fingerprint()

    def test_traffic_free_specs_serialize_identically_to_before(self):
        spec = _traffic_spec()
        plain = replace(spec, traffic=None)
        data = plain.to_dict()
        assert "traffic" not in data
        # and a queued-free spec neither mentions traffic nor changes shape
        legacy = ScenarioSpec(
            name="legacy",
            topology=TopologySpec("line", {"n": 4}),
            algorithm=AlgorithmSpec("lbalg", {"preset": "small"}),
        )
        assert "traffic" not in legacy.to_dict()

    def test_traffic_spec_validation(self):
        with pytest.raises(TypeError, match="ArrivalSpec"):
            TrafficSpec(arrival={"name": "poisson"})
        with pytest.raises(ValueError, match="capacity"):
            TrafficSpec(arrival=ArrivalSpec("poisson"), capacity=-1)
        with pytest.raises(TypeError, match="TrafficSpec"):
            _traffic_spec(traffic={"arrival": {"name": "poisson"}})

    def test_fingerprint_stable_across_processes(self):
        spec = _traffic_spec()
        code = (
            "import json, sys\n"
            "from repro.scenarios.spec import ScenarioSpec\n"
            "spec = ScenarioSpec.from_dict(json.loads(sys.stdin.read()))\n"
            "print(spec.fingerprint())\n"
        )
        prints = [
            subprocess.run(
                [sys.executable, "-c", code],
                input=json.dumps(spec.to_dict()),
                capture_output=True,
                text=True,
                check=True,
            ).stdout.strip()
            for _ in range(2)
        ]
        assert prints[0] == prints[1] == spec.fingerprint()


# ----------------------------------------------------------------------
# execution: lane parity and serial/parallel identity
# ----------------------------------------------------------------------
class TestTrafficExecution:
    def _events(self, engine: EngineConfig, scheduler="tasa", scheduler_args=None):
        spec = _traffic_spec(
            scheduler=scheduler, scheduler_args=scheduler_args, trials=1, engine=engine
        )
        trial = run_trial(spec, 0)
        return trial.trace.events, trial.metric_row

    @pytest.mark.parametrize(
        "scheduler,scheduler_args",
        [("tasa", None), ("longest_queue", None), ("iid", {"probability": 0.5})],
    )
    def test_engine_lane_parity_for_queued_workloads(self, scheduler, scheduler_args):
        generic = self._events(
            EngineConfig(fast_path=False, vector_path=False, batch_path=False),
            scheduler,
            scheduler_args,
        )
        fast = self._events(
            EngineConfig(fast_path=True, vector_path=False, batch_path=False),
            scheduler,
            scheduler_args,
        )
        batched = self._events(
            EngineConfig(fast_path=True, vector_path=False, batch_path=True),
            scheduler,
            scheduler_args,
        )
        vector = self._events(
            EngineConfig(fast_path=True, vector_path=True, batch_path=True),
            scheduler,
            scheduler_args,
        )
        kernel_python = self._events(
            EngineConfig(
                fast_path=True, vector_path=True, batch_path=True, kernel="python"
            ),
            scheduler,
            scheduler_args,
        )
        assert fast[0] == generic[0]
        assert batched[0] == generic[0]
        assert vector[0] == generic[0]
        assert kernel_python[0] == generic[0]
        for other in (fast, batched, vector, kernel_python):
            assert other[1] == generic[1]

    def test_serial_and_parallel_run_many_rows_match(self):
        def strip_timing(rows):
            return [
                {k: v for k, v in row.items() if k not in ("elapsed_s", "rounds_per_s")}
                for row in rows
            ]

        spec = _traffic_spec(trials=2)
        serial = run_many(spec, jobs=1, prebuild=False)
        parallel = run_many(spec, jobs=2, prebuild=False)
        assert strip_timing(serial.rows) == strip_timing(parallel.rows)

    def test_delta_identity_includes_traffic_only_for_aware_schedulers(self):
        from repro.scenarios.runtime import _delta_identity

        aware = _traffic_spec()
        oblivious = _traffic_spec(scheduler="iid", scheduler_args={"probability": 0.5})
        heavier = replace(
            aware,
            traffic=TrafficSpec(
                arrival=ArrivalSpec("poisson", {"rate": 0.4}), sinks=(0,)
            ),
        )
        assert _delta_identity(aware) != _delta_identity(heavier)
        oblivious_heavier = replace(heavier, scheduler=oblivious.scheduler)
        assert _delta_identity(oblivious) == _delta_identity(oblivious_heavier)

    def test_trials_draw_independent_arrivals_unless_seed_pinned(self):
        spec = _traffic_spec(trials=2, rate=0.2)
        result = run(spec)
        rows = result.metric_rows
        assert rows[0]["queue.enqueued"] != rows[1]["queue.enqueued"] or (
            rows[0] != rows[1]
        )
        pinned = replace(
            spec,
            traffic=TrafficSpec(
                arrival=ArrivalSpec("poisson", {"rate": 0.2}), sinks=(0,), seed=99
            ),
        )
        pinned_result = run(pinned)
        pinned_rows = pinned_result.metric_rows
        assert pinned_rows[0]["queue.enqueued"] == pinned_rows[1]["queue.enqueued"]

    def test_queue_metric_reports_wilson_intervals(self):
        result = run(_traffic_spec(trials=2))
        delivery = result.metric_summaries["queue.delivery_rate"]
        assert {"value", "wilson_low", "wilson_high"} <= set(delivery)
        assert 0.0 <= delivery["wilson_low"] <= delivery["value"] or delivery[
            "value"
        ] == 0.0
        latency = result.metric_summaries["queue.delivery_latency_mean"]
        assert latency["denominator"] > 0
