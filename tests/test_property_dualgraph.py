"""Property-based tests (hypothesis) for the dual graph substrate."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dualgraph.generators import random_geographic_network
from repro.dualgraph.geometric import (
    Embedding,
    geographic_dual_graph,
    is_r_geographic,
)
from repro.dualgraph.graph import DualGraph, normalize_edge
from repro.dualgraph.regions import GridRegionPartition, RegionGraph

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
coordinates = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)
points = st.tuples(coordinates, coordinates)


@st.composite
def position_maps(draw, min_size=2, max_size=12):
    """A mapping of integer vertices to plane positions."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    return {i: draw(points) for i in range(n)}


@st.composite
def edge_lists(draw, n, max_edges=20):
    """A list of distinct-endpoint vertex pairs within range(n)."""
    count = draw(st.integers(min_value=0, max_value=max_edges))
    edges = []
    for _ in range(count):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            edges.append((u, v))
    return edges


@st.composite
def dual_graphs(draw, min_size=2, max_size=10):
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    reliable = draw(edge_lists(n))
    unreliable = draw(edge_lists(n))
    return DualGraph(vertices=range(n), reliable_edges=reliable, unreliable_edges=unreliable)


# ----------------------------------------------------------------------
# DualGraph invariants
# ----------------------------------------------------------------------
class TestDualGraphProperties:
    @given(dual_graphs())
    @settings(max_examples=60, deadline=None)
    def test_internal_invariants_always_hold(self, graph):
        graph.validate()

    @given(dual_graphs())
    @settings(max_examples=60, deadline=None)
    def test_reliable_neighbors_are_subset_of_potential(self, graph):
        for u in graph.vertices:
            assert graph.reliable_neighbors(u) <= graph.potential_neighbors(u)

    @given(dual_graphs())
    @settings(max_examples=60, deadline=None)
    def test_neighborhood_symmetry(self, graph):
        for u in graph.vertices:
            for v in graph.reliable_neighbors(u):
                assert u in graph.reliable_neighbors(v)
            for v in graph.potential_neighbors(u):
                assert u in graph.potential_neighbors(v)

    @given(dual_graphs())
    @settings(max_examples=60, deadline=None)
    def test_degree_bounds_cover_every_vertex(self, graph):
        delta, delta_prime = graph.degree_bounds()
        for u in graph.vertices:
            assert len(graph.closed_reliable_neighborhood(u)) <= delta
            assert len(graph.closed_potential_neighborhood(u)) <= delta_prime
        assert delta_prime >= delta

    @given(dual_graphs())
    @settings(max_examples=40, deadline=None)
    def test_hop_distance_symmetry_and_triangle(self, graph):
        vertices = sorted(graph.vertices)
        u, v = vertices[0], vertices[-1]
        duv = graph.reliable_hop_distance(u, v)
        dvu = graph.reliable_hop_distance(v, u)
        assert duv == dvu
        if duv is not None:
            assert duv <= graph.n - 1

    @given(st.integers(min_value=0, max_value=10 ** 6), st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=50, deadline=None)
    def test_normalize_edge_is_symmetric(self, u, v):
        if u == v:
            return
        assert normalize_edge(u, v) == normalize_edge(v, u)


# ----------------------------------------------------------------------
# geometric construction invariants
# ----------------------------------------------------------------------
class TestGeometricProperties:
    @given(position_maps(), st.floats(min_value=1.0, max_value=4.0))
    @settings(max_examples=50, deadline=None)
    def test_geographic_construction_is_always_r_geographic(self, positions, r):
        graph, embedding = geographic_dual_graph(positions, r=r)
        assert is_r_geographic(graph, embedding, r)

    @given(position_maps())
    @settings(max_examples=50, deadline=None)
    def test_close_pairs_always_connected(self, positions):
        graph, embedding = geographic_dual_graph(positions, r=2.0)
        vertices = list(positions)
        for i, u in enumerate(vertices):
            for v in vertices[i + 1 :]:
                if embedding.distance(u, v) <= 1.0:
                    assert graph.has_reliable_edge(u, v)

    @given(position_maps())
    @settings(max_examples=50, deadline=None)
    def test_far_pairs_never_connected(self, positions):
        graph, embedding = geographic_dual_graph(positions, r=1.5)
        vertices = list(positions)
        for i, u in enumerate(vertices):
            for v in vertices[i + 1 :]:
                if embedding.distance(u, v) > 1.5:
                    assert not graph.has_any_edge(u, v)

    @given(st.integers(min_value=2, max_value=25), st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=30, deadline=None)
    def test_random_networks_are_r_geographic(self, n, seed):
        graph, embedding = random_geographic_network(n, side=3.0, rng=seed)
        assert is_r_geographic(graph, embedding, 2.0)
        assert graph.n == n


# ----------------------------------------------------------------------
# region partition invariants
# ----------------------------------------------------------------------
class TestRegionProperties:
    @given(points)
    @settings(max_examples=100, deadline=None)
    def test_every_point_has_exactly_one_region(self, point):
        partition = GridRegionPartition()
        region = partition.region_of_point(point)
        side = partition.side
        x, y = point
        assert region[0] * side <= x < (region[0] + 1) * side or math.isclose(x, (region[0]) * side)
        assert region[1] * side <= y < (region[1] + 1) * side or math.isclose(y, (region[1]) * side)

    @given(position_maps())
    @settings(max_examples=40, deadline=None)
    def test_co_region_points_are_within_distance_one(self, positions):
        partition = GridRegionPartition()
        embedding = Embedding(positions)
        buckets = partition.assign_vertices(embedding)
        for members in buckets.values():
            members = sorted(members)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    assert embedding.distance(u, v) <= 1.0 + 1e-9

    @given(position_maps(), st.floats(min_value=1.0, max_value=3.0))
    @settings(max_examples=30, deadline=None)
    def test_region_graph_is_f_bounded(self, positions, r):
        partition = GridRegionPartition()
        embedding = Embedding(positions)
        region_graph = RegionGraph(partition, embedding, r=r)
        constant = partition.f_bound_constant(r)
        assert region_graph.check_f_bounded(constant, max_hops=2)

    @given(position_maps())
    @settings(max_examples=30, deadline=None)
    def test_region_adjacency_requires_close_points(self, positions):
        partition = GridRegionPartition()
        embedding = Embedding(positions)
        r = 2.0
        region_graph = RegionGraph(partition, embedding, r=r)
        for region in region_graph.regions:
            for other in region_graph.neighbors(region):
                close = False
                for u in region_graph.members(region):
                    for v in region_graph.members(other):
                        if embedding.distance(u, v) <= r:
                            close = True
                assert close
