"""Unit tests for execution traces and their derived views."""

import pytest

from repro.core.events import AckOutput, BcastInput, DecideOutput, RecvOutput
from repro.core.messages import Message
from repro.simulation.trace import ExecutionTrace, TraceMode


@pytest.fixture
def message():
    return Message(origin=0, sequence=0, payload="hello")


@pytest.fixture
def other_message():
    return Message(origin=1, sequence=0, payload="other")


def build_trace(message, other_message):
    """A small hand-built trace: bcast at 2, recvs at 5 and 7, ack at 9."""
    trace = ExecutionTrace()
    trace.note_round(12)
    trace.record_event(BcastInput(vertex=0, message=message, round_number=2))
    trace.record_event(RecvOutput(vertex=1, message=message, round_number=5))
    trace.record_event(RecvOutput(vertex=2, message=message, round_number=7))
    trace.record_event(AckOutput(vertex=0, message=message, round_number=9))
    trace.record_event(BcastInput(vertex=1, message=other_message, round_number=10))
    trace.record_event(DecideOutput(vertex=3, owner=4, seed=17, round_number=1))
    return trace


class TestEventAccessors:
    def test_counts_by_kind(self, message, other_message):
        trace = build_trace(message, other_message)
        assert len(trace.bcast_inputs) == 2
        assert len(trace.ack_outputs) == 1
        assert len(trace.recv_outputs) == 2
        assert len(trace.decide_outputs) == 1
        assert len(trace.events) == 6

    def test_by_vertex_views(self, message, other_message):
        trace = build_trace(message, other_message)
        assert set(trace.bcasts_by_vertex()) == {0, 1}
        assert set(trace.acks_by_vertex()) == {0}
        assert set(trace.recvs_by_vertex()) == {1, 2}
        assert set(trace.decides_by_vertex()) == {3}

    def test_num_rounds(self, message, other_message):
        trace = build_trace(message, other_message)
        assert trace.num_rounds == 12

    def test_repr_is_informative(self, message, other_message):
        text = repr(build_trace(message, other_message))
        assert "rounds=12" in text and "bcasts=2" in text


class TestMessageLifecycles:
    def test_bcast_and_ack_rounds(self, message, other_message):
        trace = build_trace(message, other_message)
        assert trace.bcast_round_for(message) == 2
        assert trace.ack_round_for(message) == 9
        assert trace.ack_round_for(other_message) is None

    def test_active_interval(self, message, other_message):
        trace = build_trace(message, other_message)
        assert trace.active_interval(message) == (2, 9)
        assert trace.active_interval(other_message) == (10, None)
        unknown = Message(origin=9, sequence=0)
        assert trace.active_interval(unknown) is None

    def test_actively_broadcasting(self, message, other_message):
        trace = build_trace(message, other_message)
        # Before the bcast: not active.
        assert trace.actively_broadcasting(0, 1) == []
        # Between bcast and ack (inclusive): active.
        assert trace.actively_broadcasting(0, 2) == [message]
        assert trace.actively_broadcasting(0, 9) == [message]
        # After the ack: no longer active.
        assert trace.actively_broadcasting(0, 10) == []
        # The unacknowledged message stays active forever.
        assert trace.actively_broadcasting(1, 11) == [other_message]

    def test_is_active(self, message, other_message):
        trace = build_trace(message, other_message)
        assert trace.is_active(0, 5)
        assert not trace.is_active(0, 1)
        assert not trace.is_active(2, 5)

    def test_receivers_of(self, message, other_message):
        trace = build_trace(message, other_message)
        assert trace.receivers_of(message) == {1: 5, 2: 7}
        assert trace.receivers_of(other_message) == {}

    def test_receivers_of_keeps_earliest_round(self, message):
        trace = ExecutionTrace()
        trace.record_event(RecvOutput(vertex=1, message=message, round_number=8))
        trace.record_event(RecvOutput(vertex=1, message=message, round_number=4))
        assert trace.receivers_of(message) == {1: 4}

    def test_recv_rounds_for_vertex(self, message, other_message):
        trace = build_trace(message, other_message)
        assert trace.recv_rounds_for_vertex(1) == [5]
        assert trace.recv_rounds_for_vertex(99) == []


class TestFrameRecording:
    def test_transmissions_and_receptions(self):
        trace = ExecutionTrace()
        trace.note_round(1)
        trace.record_transmissions(1, {0: "frame-a"})
        trace.record_receptions(1, {1: "frame-a", 2: None})
        assert trace.transmissions_in_round(1) == {0: "frame-a"}
        # Null receptions are not stored.
        assert trace.receptions_in_round(1) == {1: "frame-a"}
        assert trace.receptions_in_round(2) == {}

    def test_events_mode_drops_frames(self, message, other_message):
        trace = ExecutionTrace(mode=TraceMode.EVENTS)
        trace.note_round(1)
        trace.record_transmissions(1, {0: "frame"})
        trace.record_receptions(1, {1: "frame"})
        assert trace.transmissions_in_round(1) == {}
        assert trace.receptions_in_round(1) == {}
        # Events are still recorded.
        trace.record_event(BcastInput(vertex=0, message=message, round_number=1))
        assert len(trace.bcast_inputs) == 1

    def test_empty_transmissions_are_not_stored(self):
        trace = ExecutionTrace()
        trace.record_transmissions(1, {})
        assert trace.transmissions_in_round(1) == {}
