"""Unit tests for the LB(t_ack, t_prog, ε) specification checker."""

import pytest

from repro.core.events import AckOutput, BcastInput, RecvOutput
from repro.core.lb_spec import check_lb_execution
from repro.core.local_broadcast import DataFrame
from repro.core.messages import Message
from repro.dualgraph.graph import DualGraph
from repro.simulation.trace import ExecutionTrace


@pytest.fixture
def graph():
    """Vertex 0 with reliable neighbors 1, 2; vertex 3 reachable only via G'."""
    return DualGraph(
        vertices=[0, 1, 2, 3],
        reliable_edges=[(0, 1), (0, 2)],
        unreliable_edges=[(1, 3)],
    )


def trace_of(events, num_rounds=40):
    trace = ExecutionTrace()
    trace.note_round(num_rounds)
    for event in events:
        trace.record_event(event)
    return trace


def msg(origin=0, seq=0, payload=None):
    return Message(origin=origin, sequence=seq, payload=payload)


class TestTimelyAck:
    def test_ack_within_deadline_is_ok(self, graph):
        m = msg()
        trace = trace_of([
            BcastInput(vertex=0, message=m, round_number=2),
            AckOutput(vertex=0, message=m, round_number=10),
        ])
        report = check_lb_execution(trace, graph, tack=20, tprog=5)
        assert report.timely_ack_ok

    def test_missing_ack_after_deadline_is_a_violation(self, graph):
        m = msg()
        trace = trace_of([BcastInput(vertex=0, message=m, round_number=2)], num_rounds=40)
        report = check_lb_execution(trace, graph, tack=20, tprog=5)
        assert not report.timely_ack_ok
        assert any("never" in v for v in report.timely_ack_violations)

    def test_missing_ack_before_deadline_is_not_a_violation(self, graph):
        m = msg()
        trace = trace_of([BcastInput(vertex=0, message=m, round_number=30)], num_rounds=40)
        report = check_lb_execution(trace, graph, tack=20, tprog=5)
        assert report.timely_ack_ok

    def test_late_ack_is_a_violation(self, graph):
        m = msg()
        trace = trace_of([
            BcastInput(vertex=0, message=m, round_number=2),
            AckOutput(vertex=0, message=m, round_number=30),
        ])
        report = check_lb_execution(trace, graph, tack=20, tprog=5)
        assert not report.timely_ack_ok
        assert any("outside" in v for v in report.timely_ack_violations)

    def test_duplicate_ack_is_a_violation(self, graph):
        m = msg()
        trace = trace_of([
            BcastInput(vertex=0, message=m, round_number=2),
            AckOutput(vertex=0, message=m, round_number=5),
            AckOutput(vertex=0, message=m, round_number=6),
        ])
        report = check_lb_execution(trace, graph, tack=20, tprog=5)
        assert any("acknowledged 2 times" in v for v in report.timely_ack_violations)

    def test_ack_from_wrong_vertex_is_a_violation(self, graph):
        m = msg()
        trace = trace_of([
            BcastInput(vertex=0, message=m, round_number=2),
            AckOutput(vertex=1, message=m, round_number=5),
        ])
        report = check_lb_execution(trace, graph, tack=20, tprog=5)
        assert any("not by its" in v for v in report.timely_ack_violations)

    def test_unsolicited_ack_is_a_violation(self, graph):
        trace = trace_of([AckOutput(vertex=0, message=msg(), round_number=5)])
        report = check_lb_execution(trace, graph, tack=20, tprog=5)
        assert any("never submitted" in v for v in report.timely_ack_violations)

    def test_invalid_bounds_rejected(self, graph):
        with pytest.raises(ValueError):
            check_lb_execution(trace_of([]), graph, tack=3, tprog=5)


class TestValidity:
    def test_recv_while_neighbor_active_is_ok(self, graph):
        m = msg(origin=1)
        trace = trace_of([
            BcastInput(vertex=1, message=m, round_number=1),
            RecvOutput(vertex=0, message=m, round_number=5),
            AckOutput(vertex=1, message=m, round_number=10),
        ])
        report = check_lb_execution(trace, graph, tack=20, tprog=5)
        assert report.validity_ok

    def test_recv_without_any_active_broadcaster_is_a_violation(self, graph):
        m = msg(origin=1)
        trace = trace_of([RecvOutput(vertex=0, message=m, round_number=5)])
        report = check_lb_execution(trace, graph, tack=20, tprog=5)
        assert not report.validity_ok

    def test_recv_after_the_ack_is_a_violation(self, graph):
        m = msg(origin=1)
        trace = trace_of([
            BcastInput(vertex=1, message=m, round_number=1),
            AckOutput(vertex=1, message=m, round_number=4),
            RecvOutput(vertex=0, message=m, round_number=9),
        ])
        report = check_lb_execution(trace, graph, tack=20, tprog=5)
        assert not report.validity_ok

    def test_recv_from_non_neighbor_is_a_violation(self, graph):
        # Vertex 2 and 3 are not G'-neighbors, so 2 can never legitimately
        # receive 3's message.
        m = msg(origin=3)
        trace = trace_of([
            BcastInput(vertex=3, message=m, round_number=1),
            RecvOutput(vertex=2, message=m, round_number=5),
        ])
        report = check_lb_execution(trace, graph, tack=20, tprog=5)
        assert not report.validity_ok

    def test_recv_over_unreliable_edge_is_valid(self, graph):
        m = msg(origin=3)
        trace = trace_of([
            BcastInput(vertex=3, message=m, round_number=1),
            RecvOutput(vertex=1, message=m, round_number=5),
        ])
        report = check_lb_execution(trace, graph, tack=20, tprog=5)
        assert report.validity_ok


class TestReliability:
    def test_full_delivery_has_no_failures(self, graph):
        m = msg(origin=0)
        trace = trace_of([
            BcastInput(vertex=0, message=m, round_number=1),
            RecvOutput(vertex=1, message=m, round_number=3),
            RecvOutput(vertex=2, message=m, round_number=4),
            AckOutput(vertex=0, message=m, round_number=10),
        ])
        report = check_lb_execution(trace, graph, tack=20, tprog=5)
        assert report.reliability_failures == []
        assert report.reliability_failure_rate == 0.0

    def test_partial_delivery_is_a_reliability_failure(self, graph):
        m = msg(origin=0)
        trace = trace_of([
            BcastInput(vertex=0, message=m, round_number=1),
            RecvOutput(vertex=1, message=m, round_number=3),
            AckOutput(vertex=0, message=m, round_number=10),
        ])
        report = check_lb_execution(trace, graph, tack=20, tprog=5)
        assert len(report.reliability_failures) == 1
        assert report.reliability_failure_rate == 1.0

    def test_pending_broadcasts_are_not_counted(self, graph):
        m = msg(origin=0)
        trace = trace_of([BcastInput(vertex=0, message=m, round_number=35)], num_rounds=40)
        report = check_lb_execution(trace, graph, tack=20, tprog=5)
        assert report.completed_deliveries == []
        assert report.reliability_failure_rate == 0.0


class TestProgressAndSummary:
    def test_progress_report_included_by_default(self, graph):
        m = msg(origin=1)
        trace = trace_of([
            BcastInput(vertex=1, message=m, round_number=1),
        ], num_rounds=20)
        trace.record_receptions(3, {0: DataFrame(message=m)})
        report = check_lb_execution(trace, graph, tack=40, tprog=10)
        assert report.progress is not None
        assert report.num_progress_windows > 0

    def test_progress_can_be_skipped(self, graph):
        report = check_lb_execution(trace_of([]), graph, tack=40, tprog=10, check_progress=False)
        assert report.progress is None
        assert report.progress_failure_rate == 0.0
        assert report.num_progress_windows == 0

    def test_summary_keys(self, graph):
        report = check_lb_execution(trace_of([]), graph, tack=40, tprog=10)
        summary = report.summary()
        assert set(summary) == {
            "timely_ack_violations",
            "validity_violations",
            "completed_broadcasts",
            "reliability_failures",
            "reliability_failure_rate",
            "progress_windows",
            "progress_failure_rate",
        }

    def test_deterministic_ok_combines_both_conditions(self, graph):
        m = msg(origin=1)
        good = trace_of([
            BcastInput(vertex=1, message=m, round_number=1),
            AckOutput(vertex=1, message=m, round_number=5),
        ])
        assert check_lb_execution(good, graph, tack=20, tprog=5).deterministic_ok
        bad = trace_of([RecvOutput(vertex=0, message=msg(origin=1), round_number=3)])
        assert not check_lb_execution(bad, graph, tack=20, tprog=5).deterministic_ok
