"""Integration tests: baselines vs LBAlg under benign and adversarial schedulers.

The paper's motivating observation (Section 1, "Discussion") is that a fixed
broadcast-probability schedule such as Decay can be defeated by an oblivious
link scheduler built against it, while LBAlg's seed-permuted schedule cannot.
These tests stage exactly that comparison at a small scale (the E6 benchmark
repeats it with more statistical power).
"""

import random

import pytest

from repro.baselines import make_baseline_processes
from repro.baselines.decay import decay_schedule
from repro.core.local_broadcast import make_lb_processes
from repro.core.params import LBParams
from repro.dualgraph.adversary import AntiScheduleAdversary, IIDScheduler, NoUnreliableScheduler
from repro.dualgraph.generators import clique_network, star_network, two_clusters_network
from repro.simulation.engine import Simulator
from repro.simulation.environment import SaturatingEnvironment, SingleShotEnvironment
from repro.simulation.metrics import data_reception_rounds, delivery_report


def run_baseline(graph, kind, senders, rounds, scheduler=None, master_seed=0, **kwargs):
    rng = random.Random(master_seed)
    processes = make_baseline_processes(graph, kind, rng, **kwargs)
    simulator = Simulator(
        graph,
        processes,
        scheduler=scheduler,
        environment=SaturatingEnvironment(senders=senders),
    )
    return simulator.run(rounds)


def receiver_hears_fraction(trace, receiver, rounds):
    """Fraction of rounds in which the receiver physically got a data frame."""
    heard = data_reception_rounds(trace, receiver)
    return len(heard) / rounds


class TestBaselinesUnderBenignSchedulers:
    def test_decay_delivers_in_the_static_model(self):
        """Without unreliable edges Decay works as in the classic analysis."""
        graph, _ = star_network(4)
        trace = run_baseline(
            graph, "decay", senders=[1], rounds=200,
            scheduler=NoUnreliableScheduler(graph), num_cycles=8,
        )
        records = delivery_report(trace, graph)
        assert records, "the saturating environment must have submitted something"
        delivered = [r for r in records if r.ack_round is not None]
        assert any(0 in r.delivered_before_ack for r in delivered)

    def test_round_robin_delivers_without_collisions_on_a_clique(self):
        graph, _ = clique_network(5)
        trace = run_baseline(
            graph, "round_robin", senders=[0], rounds=120,
            scheduler=NoUnreliableScheduler(graph), frame_size=16, num_frames=2,
        )
        records = [r for r in delivery_report(trace, graph) if r.ack_round is not None]
        assert records
        assert records[0].delivery_fraction == 1.0

    def test_uniform_delivers_with_moderate_probability(self):
        graph, _ = clique_network(4)
        trace = run_baseline(
            graph, "uniform", senders=[0], rounds=150,
            scheduler=NoUnreliableScheduler(graph), probability=0.25, active_rounds=40,
        )
        records = [r for r in delivery_report(trace, graph) if r.ack_round is not None]
        assert records
        assert records[0].delivery_fraction > 0.0


class TestAntiScheduleAdversary:
    @pytest.fixture
    def contended_network(self):
        """Two dense clusters bridged only by unreliable links: the adversary
        controls how much cross-cluster contention each receiver sees."""
        return two_clusters_network(cluster_size=5, gap=1.5, rng=9)

    def test_adversary_degrades_decay_reception(self, contended_network):
        graph, _ = contended_network
        delta = graph.max_reliable_degree
        senders = [v for v in sorted(graph.vertices) if v != 0][:6]
        rounds = 400
        receiver = 0

        benign_trace = run_baseline(
            graph, "decay", senders=senders, rounds=rounds,
            scheduler=IIDScheduler(graph, probability=0.5, seed=1),
            num_cycles=8, master_seed=1,
        )
        adversarial_trace = run_baseline(
            graph, "decay", senders=senders, rounds=rounds,
            scheduler=AntiScheduleAdversary(graph, decay_schedule(delta)),
            num_cycles=8, master_seed=1,
        )
        benign_rate = receiver_hears_fraction(benign_trace, receiver, rounds)
        adversarial_rate = receiver_hears_fraction(adversarial_trace, receiver, rounds)
        # The targeted schedule must not help, and typically clearly hurts.
        assert adversarial_rate <= benign_rate + 0.05

    def test_lbalg_survives_the_same_adversary(self, contended_network):
        graph, _ = contended_network
        delta, delta_prime = graph.degree_bounds()
        params = LBParams.derive(0.2, delta=delta, delta_prime=delta_prime)
        senders = [v for v in sorted(graph.vertices) if v != 0][:6]
        receiver = 0
        rounds = 4 * params.phase_length

        rng = random.Random(3)
        simulator = Simulator(
            graph,
            make_lb_processes(graph, params, rng),
            scheduler=AntiScheduleAdversary(graph, decay_schedule(delta)),
            environment=SaturatingEnvironment(senders=senders),
        )
        trace = simulator.run(rounds)
        heard = data_reception_rounds(trace, receiver)
        # The receiver has reliable in-cluster neighbors broadcasting the whole
        # time; LBAlg must keep delivering something every phase or two.
        assert len(heard) >= rounds / (2 * params.phase_length)


class TestCrossAlgorithmComparison:
    def test_lbalg_and_decay_traces_are_comparable(self):
        """Both speak the same event vocabulary, so the same metrics apply."""
        graph, _ = star_network(4)
        delta, delta_prime = graph.degree_bounds()
        params = LBParams.small_for_testing(delta=delta, delta_prime=delta_prime,
                                            tprog=40, tack_phases=2, seed_phase_length=4)
        rng = random.Random(0)
        lb_sim = Simulator(
            graph,
            make_lb_processes(graph, params, rng),
            environment=SingleShotEnvironment(senders=[1]),
        )
        lb_trace = lb_sim.run(params.tack_rounds)
        decay_trace = run_baseline(
            graph, "decay", senders=[1], rounds=params.tack_rounds,
            scheduler=NoUnreliableScheduler(graph), num_cycles=8,
        )
        for trace in (lb_trace, decay_trace):
            records = delivery_report(trace, graph)
            assert records
            assert all(hasattr(r, "delivery_fraction") for r in records)
