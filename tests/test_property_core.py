"""Property-based tests (hypothesis) for the core algorithms and checkers."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constants import ParamMode
from repro.core.params import LBParams, SeedParams
from repro.core.seed_agreement import SeedAgreementProcess
from repro.core.seed_spec import check_seed_execution
from repro.core.seedbits import SeedBitStream
from repro.dualgraph.adversary import IIDScheduler
from repro.dualgraph.generators import random_geographic_network
from repro.simulation.engine import Simulator
from repro.simulation.process import ProcessContext


# ----------------------------------------------------------------------
# SeedBitStream properties
# ----------------------------------------------------------------------
class TestSeedBitStreamProperties:
    @given(st.integers(min_value=0, max_value=2 ** 64 - 1), st.lists(st.integers(1, 12), min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_same_seed_same_bits_regardless_of_chunking(self, seed, widths):
        a = SeedBitStream(seed, kappa=64)
        b = SeedBitStream(seed, kappa=64)
        bits_a = []
        for width in widths:
            bits_a.extend(a.consume_bits(width))
        bits_b = b.consume_bits(sum(widths))
        assert bits_a == bits_b

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_initial_bits_reconstruct_the_seed(self, seed):
        stream = SeedBitStream(seed, kappa=32)
        assert stream.consume_int(32) == seed

    @given(st.integers(min_value=0, max_value=2 ** 16 - 1),
           st.integers(min_value=1, max_value=10),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_uniform_index_always_in_range(self, seed, modulus, width):
        stream = SeedBitStream(seed, kappa=16)
        for _ in range(5):
            assert 0 <= stream.consume_uniform_index(modulus, width) < modulus

    @given(st.integers(min_value=0, max_value=2 ** 16 - 1), st.integers(min_value=1, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_bits_consumed_accounting(self, seed, total):
        stream = SeedBitStream(seed, kappa=16)
        stream.consume_bits(total)
        assert stream.bits_consumed == total


# ----------------------------------------------------------------------
# parameter calculus properties
# ----------------------------------------------------------------------
class TestParamProperties:
    @given(st.floats(min_value=0.01, max_value=0.4), st.integers(min_value=1, max_value=256))
    @settings(max_examples=60, deadline=None)
    def test_seed_params_always_well_formed(self, epsilon, delta):
        params = SeedParams.derive(epsilon, delta)
        assert params.num_phases >= 1
        assert params.phase_length >= 1
        assert 0 < params.leader_broadcast_probability <= 1
        assert params.total_rounds == params.num_phases * params.phase_length
        probabilities = [
            params.leader_election_probability(h) for h in range(1, params.num_phases + 1)
        ]
        assert all(0 < p <= 0.5 for p in probabilities)
        assert probabilities == sorted(probabilities)

    @given(st.floats(min_value=0.01, max_value=0.4),
           st.integers(min_value=1, max_value=64),
           st.integers(min_value=0, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_lb_params_always_well_formed(self, epsilon, delta, extra):
        params = LBParams.derive(epsilon, delta=delta, delta_prime=delta + extra)
        assert params.phase_length == params.ts + params.tprog
        assert params.tack_rounds >= params.tprog_rounds >= 1
        assert params.kappa >= params.tprog * (
            params.participant_bits + params.b_selection_bits
        )
        assert 0 < params.participant_probability <= 0.5
        # Round/phase arithmetic is consistent.
        for round_number in (1, params.phase_length, params.phase_length + 1):
            phase, offset = params.phase_position(round_number)
            assert 1 <= offset <= params.phase_length
            assert params.is_preamble(offset) != params.is_body(offset)

    @given(st.floats(min_value=0.01, max_value=0.4), st.integers(min_value=2, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_paper_mode_never_shorter_than_simulation_mode(self, epsilon, delta):
        paper = SeedParams.derive(epsilon, delta, mode=ParamMode.PAPER)
        simulation = SeedParams.derive(epsilon, delta, mode=ParamMode.SIMULATION)
        assert paper.total_rounds >= simulation.total_rounds


# ----------------------------------------------------------------------
# SeedAlg end-to-end properties on random networks
# ----------------------------------------------------------------------
class TestSeedAlgProperties:
    @given(
        st.integers(min_value=4, max_value=14),
        st.integers(min_value=0, max_value=10 ** 6),
        st.floats(min_value=0.1, max_value=0.3),
    )
    @settings(max_examples=15, deadline=None)
    def test_well_formedness_and_consistency_for_arbitrary_networks(self, n, seed, epsilon):
        graph, _ = random_geographic_network(n, side=3.0, rng=seed)
        params = SeedParams.derive(epsilon, delta=graph.max_reliable_degree,
                                   phase_length_override=5)
        master = random.Random(seed)
        delta, delta_prime = graph.degree_bounds()
        processes = {}
        for vertex in sorted(graph.vertices):
            ctx = ProcessContext(vertex=vertex, delta=delta, delta_prime=delta_prime,
                                 rng=random.Random(master.getrandbits(64)))
            processes[vertex] = SeedAgreementProcess(ctx, params)
        simulator = Simulator(
            graph, processes, scheduler=IIDScheduler(graph, probability=0.5, seed=seed)
        )
        trace = simulator.run(params.total_rounds)
        report = check_seed_execution(trace, graph, delta_bound=graph.n + 1)
        # Well-formedness and consistency are non-probabilistic: they must hold
        # for every network, every seed, every epsilon.
        assert report.well_formed, report.well_formedness_violations
        assert report.consistent, report.consistency_violations
        # Every decided owner is a real vertex.
        for event in trace.decide_outputs:
            assert event.owner in graph.vertices
