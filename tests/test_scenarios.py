"""Tests for the declarative scenario layer (specs, registries, runtime, CLI).

Pinned contracts:

* every registered component round-trips through spec JSON and actually
  materializes (the registry's ``sample_args`` must stay runnable);
* ``fingerprint()`` is a pure function of the serialized spec -- identical
  across processes and hash seeds;
* registries fail loudly on duplicate and unknown names;
* a spec-built simulator observes *byte-identical* executions to the
  equivalent hand-built one (LBAlg + IID, the acceptance workload);
* ``run_many`` dispatches serialized specs (not closures) and produces
  worker-count-independent rows;
* the disk-backed scheduler-delta table skips recomputation on re-use.
"""

from __future__ import annotations

import json
import os
import pickle
import random
import subprocess
import sys

import pytest

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
SRC_DIR = os.path.join(REPO_ROOT, "src")

from repro import (
    IIDScheduler,
    LBParams,
    Simulator,
    SingleShotEnvironment,
    make_lb_processes,
    random_geographic_network,
)
from repro.dualgraph.adversary import prebuild_scheduler_deltas
from repro.scenarios import (
    ALGORITHMS,
    ENVIRONMENTS,
    SCHEDULERS,
    TOPOLOGIES,
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    Registry,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    TopologySpec,
    build,
    materialize,
    prebuild_delta_table,
    run,
    run_many,
    run_spec_point,
)
from repro.scenarios.cli import main as cli_main
from repro.simulation.trace import TraceMode


def small_spec(**overrides) -> ScenarioSpec:
    spec = ScenarioSpec(
        name="test-scenario",
        topology=TopologySpec(
            "random_geographic", {"n": 14, "side": 3.2, "seed": 5, "require_connected": True}
        ),
        algorithm=AlgorithmSpec("lbalg", {"epsilon": 0.2, "preset": "small"}),
        scheduler=SchedulerSpec("iid", {"probability": 0.5, "seed": 5}),
        environment=EnvironmentSpec("single_shot", {"senders": [0]}),
        run=RunPolicy(rounds=2, rounds_unit="phases", master_seed=5, seed_policy="fixed"),
    )
    if overrides:
        spec = spec.with_overrides(overrides)
    return spec


class TestSpecSerialization:
    def test_json_round_trip_preserves_spec_and_fingerprint(self):
        spec = small_spec()
        text = spec.to_json()
        restored = ScenarioSpec.from_json(text)
        assert restored == spec
        assert restored.fingerprint() == spec.fingerprint()

    @pytest.mark.parametrize("name", TOPOLOGIES.names())
    def test_every_topology_round_trips_and_materializes(self, name):
        spec = small_spec(
            **{"topology.name": name, "run.rounds_unit": "rounds", "run.rounds": 2}
        )
        spec = spec.with_overrides({"topology.args": TOPOLOGIES.sample_args(name)})
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec and restored.fingerprint() == spec.fingerprint()
        built = materialize(restored)
        assert built.graph.n >= 1

    @pytest.mark.parametrize("name", SCHEDULERS.names())
    def test_every_scheduler_round_trips_and_materializes(self, name):
        spec = small_spec(
            **{
                "scheduler.name": name,
                "scheduler.args": SCHEDULERS.sample_args(name),
                "run.rounds_unit": "rounds",
                "run.rounds": 3,
            }
        )
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec and restored.fingerprint() == spec.fingerprint()
        result = run(restored, keep=False)
        assert result.metrics["rounds"] == 3

    @pytest.mark.parametrize("name", ALGORITHMS.names())
    def test_every_algorithm_round_trips_and_materializes(self, name):
        spec = small_spec(
            **{
                "algorithm.name": name,
                "algorithm.args": ALGORITHMS.sample_args(name),
                "environment.name": "saturating",
                "environment.args": {"senders": {"select": "first", "count": 2}},
                "run.rounds_unit": "rounds",
                "run.rounds": 4,
            }
        )
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec and restored.fingerprint() == spec.fingerprint()
        result = run(restored, keep=False)
        assert result.metrics["rounds"] == 4

    @pytest.mark.parametrize("name", ENVIRONMENTS.names())
    def test_every_environment_round_trips_and_materializes(self, name):
        spec = small_spec(
            **{
                "environment.name": name,
                "environment.args": ENVIRONMENTS.sample_args(name),
                "run.rounds_unit": "rounds",
                "run.rounds": 3,
            }
        )
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec and restored.fingerprint() == spec.fingerprint()
        result = run(restored, keep=False)
        assert result.metrics["rounds"] == 3

    def test_unknown_spec_keys_are_rejected(self):
        data = small_spec().to_dict()
        data["typo_field"] = 1
        with pytest.raises(ValueError, match="typo_field"):
            ScenarioSpec.from_dict(data)
        engine = small_spec().to_dict()
        engine["engine"]["warp_drive"] = True
        with pytest.raises(ValueError, match="warp_drive"):
            ScenarioSpec.from_dict(engine)

    def test_non_json_args_are_rejected(self):
        with pytest.raises(TypeError, match="JSON-serializable"):
            TopologySpec("grid", {"rows": object()})

    def test_overrides_apply_and_validate(self):
        spec = small_spec()
        varied = spec.with_overrides({"scheduler.args.probability": 0.25, "run.trials": 2})
        assert varied.scheduler.args["probability"] == 0.25
        assert varied.run.trials == 2
        assert varied.fingerprint() != spec.fingerprint()
        with pytest.raises(KeyError, match="does not resolve"):
            spec.with_overrides({"scheduler.args.probability.deep": 1})

    def test_variants_follow_canonical_grid_order(self):
        spec = small_spec()
        variants = spec.variants({"scheduler.args.probability": [0.1, 0.9]})
        assert [v.scheduler.args["probability"] for v in variants] == [0.1, 0.9]


class TestFingerprint:
    def test_fingerprint_is_stable_across_processes_and_hash_seeds(self, tmp_path):
        spec = small_spec()
        path = tmp_path / "spec.json"
        spec.save(str(path))
        script = (
            "import sys; from repro.scenarios import ScenarioSpec; "
            "print(ScenarioSpec.load(sys.argv[1]).fingerprint())"
        )
        prints = []
        for hash_seed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
            env["PYTHONHASHSEED"] = hash_seed
            proc = subprocess.run(
                [sys.executable, "-c", script, str(path)],
                capture_output=True,
                text=True,
                env=env,
            )
            assert proc.returncode == 0, proc.stderr
            prints.append(proc.stdout.strip())
        assert prints[0] == prints[1] == spec.fingerprint()

    def test_fingerprint_changes_with_content(self):
        spec = small_spec()
        assert spec.fingerprint() != spec.with_overrides({"run.master_seed": 6}).fingerprint()
        assert (
            spec.fingerprint()
            != spec.with_overrides({"topology.args.n": 15}).fingerprint()
        )

    def test_kernel_field_round_trips_and_default_stays_out_of_identity(self):
        """PR-6: ``engine.kernel`` serializes only when pinned away from
        "auto", so every pre-kernel spec keeps its fingerprint; a pinned
        backend round-trips through JSON like any other field."""
        base = small_spec()
        assert base.engine.kernel == "auto"
        assert "kernel" not in base.engine.to_dict()
        explicit_auto = base.with_overrides({"engine.kernel": "auto"})
        assert explicit_auto == base
        assert explicit_auto.fingerprint() == base.fingerprint()

        pinned = base.with_overrides({"engine.kernel": "python"})
        restored = ScenarioSpec.from_json(pinned.to_json())
        assert restored == pinned and restored.engine.kernel == "python"
        assert restored.fingerprint() == pinned.fingerprint()
        assert pinned.fingerprint() != base.fingerprint()

        with pytest.raises(ValueError, match="kernel"):
            EngineConfig(kernel="cuda")

    def test_kernel_field_reaches_the_simulator(self):
        off = materialize(small_spec(**{"engine.kernel": "off"})).simulator
        assert not off.uses_kernel and off.kernel_backend is None
        python = materialize(small_spec(**{"engine.kernel": "python"})).simulator
        assert python.uses_kernel and python.kernel_backend == "python"


class TestRegistries:
    def test_duplicate_registration_raises(self):
        registry = Registry("widget")

        @registry.register("thing")
        def _build_thing():
            return 1

        with pytest.raises(ValueError, match="duplicate widget registration"):

            @registry.register("thing")
            def _build_thing_again():
                return 2

    def test_trial_seeded_metadata_is_recorded(self):
        assert TOPOLOGIES.is_trial_seeded("random_geographic")
        assert TOPOLOGIES.is_trial_seeded("target_degree")
        assert not TOPOLOGIES.is_trial_seeded("grid")
        assert SCHEDULERS.is_trial_seeded("iid")
        assert not SCHEDULERS.is_trial_seeded("full")
        with pytest.raises(KeyError):
            TOPOLOGIES.is_trial_seeded("moebius_strip")

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(KeyError, match="registered topology names"):
            TOPOLOGIES.get("moebius_strip")
        with pytest.raises(KeyError, match="registered algorithm names"):
            ALGORITHMS.get("gossip")
        spec = small_spec(**{"scheduler.name": "quantum"})
        with pytest.raises(KeyError, match="unknown scheduler 'quantum'"):
            build(spec)


class TestTraceIdentity:
    def test_spec_built_simulator_matches_hand_built(self):
        """The acceptance contract: byte-identical traces for LBAlg + IID."""
        spec = ScenarioSpec(
            name="identity",
            topology=TopologySpec(
                "random_geographic",
                {"n": 18, "side": 3.2, "seed": 41, "require_connected": True},
            ),
            algorithm=AlgorithmSpec("lbalg", {"epsilon": 0.2, "preset": "small"}),
            scheduler=SchedulerSpec("iid", {"probability": 0.4, "seed": 13}),
            environment=EnvironmentSpec(
                "single_shot", {"senders": {"select": "first", "count": 3}}
            ),
            run=RunPolicy(rounds=2, rounds_unit="phases", master_seed=99, seed_policy="fixed"),
        )
        built = materialize(spec)
        spec_trace = built.simulator.run(built.total_rounds)

        graph, _ = random_geographic_network(18, side=3.2, r=2.0, rng=41, require_connected=True)
        delta, delta_prime = graph.degree_bounds()
        params = LBParams.small_for_testing(
            delta=delta, delta_prime=delta_prime, epsilon=0.2, r=2.0
        )
        hand_sim = Simulator(
            graph,
            make_lb_processes(graph, params, random.Random(99)),
            scheduler=IIDScheduler(graph, probability=0.4, seed=13),
            environment=SingleShotEnvironment(senders=sorted(graph.vertices)[:3]),
        )
        hand_trace = hand_sim.run(2 * params.phase_length)

        assert spec_trace.events == hand_trace.events
        for round_number in range(1, built.total_rounds + 1):
            assert spec_trace.transmissions_in_round(
                round_number
            ) == hand_trace.transmissions_in_round(round_number)
            assert spec_trace.receptions_in_round(
                round_number
            ) == hand_trace.receptions_in_round(round_number)

    def test_build_returns_configured_simulator(self):
        spec = small_spec(**{"engine.vector_path": False, "engine.trace_mode": "events"})
        simulator = build(spec)
        assert simulator.uses_fast_path and not simulator.uses_vector_path
        assert simulator.trace.mode is TraceMode.EVENTS


class TestRunPolicy:
    def test_rounds_units_resolve_through_algorithm(self):
        spec = small_spec(**{"run.rounds_unit": "tack", "run.rounds": 1})
        built = materialize(spec)
        assert built.total_rounds == built.params.tack_rounds
        spec = small_spec(**{"run.rounds_unit": "rounds", "run.rounds": 17})
        assert materialize(spec).total_rounds == 17

    def test_rounds_unit_without_structure_fails_loudly(self):
        spec = small_spec(
            **{
                "algorithm.name": "uniform",
                "algorithm.args": {},
                "run.rounds_unit": "phases",
            }
        )
        with pytest.raises(ValueError, match="rounds_unit='phases'"):
            materialize(spec)

    def test_seed_policies(self):
        derived = RunPolicy(trials=3, master_seed=9, seed_policy="derived")
        sequential = RunPolicy(trials=3, master_seed=9, seed_policy="sequential")
        fixed = RunPolicy(trials=3, master_seed=9, seed_policy="fixed")
        assert [sequential.trial_seed(i) for i in range(3)] == [9, 10, 11]
        assert [fixed.trial_seed(i) for i in range(3)] == [9, 9, 9]
        assert len({derived.trial_seed(i) for i in range(3)}) == 3
        assert derived.trial_seed(0) != 9

    def test_multi_trial_run_varies_unpinned_components(self):
        spec = small_spec(
            **{
                "topology.args": {"n": 12, "side": 3.4, "require_connected": True},
                "scheduler.args": {"probability": 0.5},
                "run.trials": 2,
                "run.seed_policy": "derived",
            }
        )
        result = run(spec)
        assert len(result.trials) == 2
        assert result.trials[0].seed != result.trials[1].seed
        assert result.metrics["trials"] == 2


class TestRunMany:
    GRID = {"scheduler.args.probability": [0.25, 0.75]}

    @staticmethod
    def _strip_timing(rows):
        return [
            {k: v for k, v in row.items() if k not in ("elapsed_s", "rounds_per_s")}
            for row in rows
        ]

    def test_rows_independent_of_worker_count(self):
        spec = small_spec()
        serial = run_many(spec, self.GRID, jobs=1)
        parallel = run_many(spec, self.GRID, jobs=2)
        assert self._strip_timing(serial.rows) == self._strip_timing(parallel.rows)
        assert [row["scheduler.args.probability"] for row in serial.rows] == [0.25, 0.75]

    def test_workers_receive_serialized_specs_not_closures(self):
        # The dispatch target is a picklable module-level function...
        assert run_spec_point.__module__ == "repro.scenarios.runtime"
        assert pickle.loads(pickle.dumps(run_spec_point)) is run_spec_point
        # ... and reconstructs the run entirely from the spec's JSON text.
        spec = small_spec()
        row = run_spec_point(
            spec_json=spec.to_json(), **{"scheduler.args.probability": 0.25}
        )
        expected = spec.with_overrides({"scheduler.args.probability": 0.25})
        assert row["fingerprint"] == expected.fingerprint()
        assert row["rounds"] > 0

    def test_injected_base_seed_overrides_master_seed(self):
        spec = small_spec(
            **{
                "topology.args": {"n": 12, "side": 3.4, "require_connected": True},
                "scheduler.args": {"probability": 0.5},
            }
        )
        with_seed = run_many(spec, self.GRID, jobs=1, base_seed=123)
        again = run_many(spec, self.GRID, jobs=2, base_seed=123)
        assert self._strip_timing(with_seed.rows) == self._strip_timing(again.rows)


class TestDeltaTableDiskCache:
    def _scheduler(self):
        graph, _ = random_geographic_network(12, side=3.0, rng=3, require_connected=True)
        return IIDScheduler(graph, probability=0.5, seed=9)

    def test_second_invocation_skips_recomputation(self, tmp_path, monkeypatch):
        calls = {"n": 0}
        original = IIDScheduler._compute_unreliable_edge_ids

        def counting(self, round_number, index):
            calls["n"] += 1
            return original(self, round_number, index)

        monkeypatch.setattr(IIDScheduler, "_compute_unreliable_edge_ids", counting)

        first = prebuild_scheduler_deltas(
            self._scheduler(), 20, cache_dir=str(tmp_path), cache_key="spec-fp"
        )
        assert calls["n"] == 20 and len(first) == 20

        second = prebuild_scheduler_deltas(
            self._scheduler(), 20, cache_dir=str(tmp_path), cache_key="spec-fp"
        )
        assert calls["n"] == 20, "second invocation must load from disk, not recompute"
        assert second == first

        # A smaller budget is served by the stored superset table.
        third = prebuild_scheduler_deltas(
            self._scheduler(), 10, cache_dir=str(tmp_path), cache_key="spec-fp"
        )
        assert calls["n"] == 20
        assert third == first

        # A larger budget recomputes (and re-persists) the wider table.
        fourth = prebuild_scheduler_deltas(
            self._scheduler(), 25, cache_dir=str(tmp_path), cache_key="spec-fp"
        )
        assert calls["n"] == 45 and len(fourth) == 25

    def test_corrupt_cache_file_is_recomputed(self, tmp_path):
        scheduler = self._scheduler()
        table = prebuild_scheduler_deltas(
            scheduler, 5, cache_dir=str(tmp_path), cache_key="fp"
        )
        (path,) = tmp_path.iterdir()
        path.write_bytes(b"not a pickle")
        again = prebuild_scheduler_deltas(
            self._scheduler(), 5, cache_dir=str(tmp_path), cache_key="fp"
        )
        assert again == table

    def test_spec_level_prebuild_is_keyed_by_fingerprint(self, tmp_path, monkeypatch):
        calls = {"n": 0}
        original = IIDScheduler._compute_unreliable_edge_ids

        def counting(self, round_number, index):
            calls["n"] += 1
            return original(self, round_number, index)

        monkeypatch.setattr(IIDScheduler, "_compute_unreliable_edge_ids", counting)

        spec = small_spec(**{"run.rounds_unit": "rounds", "run.rounds": 8})
        table = prebuild_delta_table(spec, cache_dir=str(tmp_path))
        assert table is not None and len(table) == 8
        files = list(tmp_path.iterdir())
        assert len(files) == 1 and spec.fingerprint() in files[0].name

        before = calls["n"]
        again = prebuild_delta_table(spec, cache_dir=str(tmp_path))
        assert calls["n"] == before and again == table

    def test_adaptive_scheduler_yields_no_table(self):
        spec = small_spec(**{"scheduler.name": "adaptive_collision", "scheduler.args": {}})
        assert prebuild_delta_table(spec) is None


class TestCLI:
    QUICKSTART = os.path.join(REPO_ROOT, "examples", "scenarios", "quickstart.json")

    def test_run_subcommand_produces_nonempty_result(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = cli_main(
            [
                "run",
                self.QUICKSTART,
                "--set",
                "algorithm.args.preset=small",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["metrics"]["rounds"] > 0
        assert payload["metrics"]["transmissions"] > 0
        assert payload["scenario"]["name"] == "quickstart"
        assert "fingerprint" in payload
        stdout = capsys.readouterr().out
        assert "per-trial results" in stdout

    def test_sweep_subcommand_runs_grid(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = cli_main(
            [
                "sweep",
                self.QUICKSTART,
                "--set",
                "algorithm.args.preset=small",
                "--set",
                "run.rounds_unit=phases",
                "--set",
                "run.rounds=2",
                "--grid",
                "scheduler.args.probability=0.25,0.75",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert len(payload["rows"]) == 2
        assert {row["scheduler.args.probability"] for row in payload["rows"]} == {0.25, 0.75}

    def test_list_subcommand_reports_registries(self, capsys):
        assert cli_main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "lbalg" in payload["algorithm"]
        assert "iid" in payload["scheduler"]
        assert "random_geographic" in payload["topology"]
        assert "single_shot" in payload["environment"]


class TestDeprecations:
    def test_build_lb_simulator_record_frames_warns(self):
        from benchmarks.common import build_lb_simulator

        graph, _ = random_geographic_network(10, side=3.0, rng=2, require_connected=True)
        delta, delta_prime = graph.degree_bounds()
        params = LBParams.small_for_testing(delta=delta, delta_prime=delta_prime)
        with pytest.warns(DeprecationWarning, match="record_frames"):
            simulator = build_lb_simulator(
                graph,
                params,
                SingleShotEnvironment(senders=[0]),
                record_frames=False,
            )
        assert simulator.trace.mode is TraceMode.EVENTS

    def test_execution_trace_record_frames_warns(self):
        from repro.simulation.trace import ExecutionTrace

        with pytest.warns(DeprecationWarning, match="record_frames"):
            trace = ExecutionTrace(record_frames=False)
        assert trace.mode is TraceMode.EVENTS


class TestBenchJobsParsing:
    def test_unparseable_bench_jobs_warns_and_falls_back(self, monkeypatch):
        from benchmarks import common

        monkeypatch.setenv(common.JOBS_ENV_VAR, "all")
        with pytest.warns(RuntimeWarning, match="BENCH_JOBS"):
            assert common.default_jobs() == 1
        monkeypatch.setenv(common.JOBS_ENV_VAR, "4")
        assert common.default_jobs() == 4
