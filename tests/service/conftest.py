"""Harness for the scenario-service tests (``tests/service/``).

Two ways to stand a service up:

* :func:`threaded_service` (fixture factory) -- in-process
  :class:`~repro.scenarios.service.ThreadedService`; fast, shares the test's
  interpreter, used by the HTTP/dedup/round-trip tests.
* :class:`ServerProcess` -- a real ``python -m repro serve`` subprocess whose
  ready line is parsed for the bound port; the only way to test signal-driven
  shutdown, hard kills, and journal recovery across process lifetimes.

Plus raw :mod:`http.client` helpers (``request_json``, ``stream_events``)
that keep full control of status codes, error bodies and the chunked NDJSON
stream -- deliberately not a fixture-heavy client abstraction, so the tests
read like the protocol they assert.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
import time
import urllib.parse
from typing import Any, Dict, Iterator, List, Optional, Tuple

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
SRC_DIR = os.path.join(REPO_ROOT, "src")


# ----------------------------------------------------------------------
# payload builders (tiny, deterministic, fast)
# ----------------------------------------------------------------------
def tiny_scenario(name: str = "svc-tiny", seed: int = 7, trials: int = 2) -> Dict[str, Any]:
    """A scenario payload that runs in well under a second."""
    return {
        "name": name,
        "topology": {"name": "clique", "args": {"n": 4}},
        "algorithm": {"name": "uniform"},
        "run": {
            "rounds": 5,
            "rounds_unit": "rounds",
            "trials": trials,
            "master_seed": seed,
        },
        "metrics": [{"name": "counters"}],
    }


def tiny_suite(
    name: str = "svc-suite", entry_count: int = 2, trials: int = 2, seed: int = 11
) -> Dict[str, Any]:
    """A multi-entry suite payload (``entry_count * trials`` tasks)."""
    return {
        "name": name,
        "entries": [
            {
                "id": f"{name}-e{i}",
                "scenario": tiny_scenario(f"{name}-e{i}", seed=seed + i, trials=trials),
            }
            for i in range(entry_count)
        ],
    }


# ----------------------------------------------------------------------
# raw HTTP helpers
# ----------------------------------------------------------------------
def request_json(
    url: str,
    method: str,
    path: str,
    body: Optional[Any] = None,
    raw_body: Optional[bytes] = None,
    timeout: float = 60.0,
) -> Tuple[int, Any]:
    """One request; returns ``(status, parsed_json_or_bytes)``."""
    parsed = urllib.parse.urlparse(url)
    conn = http.client.HTTPConnection(parsed.hostname, parsed.port, timeout=timeout)
    try:
        payload = raw_body
        if payload is None and body is not None:
            payload = json.dumps(body).encode()
        conn.request(method, path, body=payload)
        response = conn.getresponse()
        data = response.read()
        try:
            return response.status, json.loads(data)
        except ValueError:
            return response.status, data
    finally:
        conn.close()


def fetch_report_bytes(url: str, job_id: str, timeout: float = 60.0) -> bytes:
    """The report endpoint's exact bytes (asserting 200)."""
    parsed = urllib.parse.urlparse(url)
    conn = http.client.HTTPConnection(parsed.hostname, parsed.port, timeout=timeout)
    try:
        conn.request("GET", f"/v1/jobs/{job_id}/report")
        response = conn.getresponse()
        data = response.read()
        assert response.status == 200, f"report fetch failed: {response.status} {data!r}"
        return data
    finally:
        conn.close()


def stream_events(url: str, job_id: str, timeout: float = 120.0) -> Iterator[Dict[str, Any]]:
    """Yield the NDJSON events of one job until the stream closes."""
    parsed = urllib.parse.urlparse(url)
    conn = http.client.HTTPConnection(parsed.hostname, parsed.port, timeout=timeout)
    try:
        conn.request("GET", f"/v1/jobs/{job_id}/events")
        response = conn.getresponse()
        assert response.status == 200
        # http.client decodes the chunked framing; readline gives NDJSON lines.
        while True:
            line = response.readline()
            if not line:
                return
            line = line.strip()
            if line:
                yield json.loads(line)
    finally:
        conn.close()


def wait_terminal(url: str, job_id: str, timeout: float = 120.0) -> Dict[str, Any]:
    """Poll the job descriptor until it reaches a terminal state."""
    deadline = time.monotonic() + timeout
    while True:
        status, payload = request_json(url, "GET", f"/v1/jobs/{job_id}")
        assert status == 200, payload
        job = payload["job"]
        if job["state"] in ("done", "failed", "cancelled"):
            return job
        if time.monotonic() > deadline:
            raise AssertionError(f"job {job_id} still {job['state']} after {timeout}s")
        time.sleep(0.05)


# ----------------------------------------------------------------------
# in-process service
# ----------------------------------------------------------------------
@pytest.fixture
def threaded_service(tmp_path):
    """Factory: start in-process services; all stopped at teardown.

    Returns ``start(**manager_kwargs) -> (url, service)``; ``store``
    defaults to a per-test directory so tests can share (or isolate) stores
    explicitly.
    """
    from repro.scenarios.service import ThreadedService

    started: List[Any] = []

    def start(**manager_kwargs: Any):
        manager_kwargs.setdefault("store", str(tmp_path / "store"))
        manager_kwargs.setdefault("workers", 2)
        service = ThreadedService(manager_kwargs)
        url = service.start()
        started.append(service)
        return url, service

    yield start
    for service in started:
        service.stop()


# ----------------------------------------------------------------------
# subprocess server
# ----------------------------------------------------------------------
class ServerProcess:
    """A real ``python -m repro serve`` child, addressed via its ready line."""

    def __init__(
        self,
        store: str,
        workers: int = 1,
        retries: int = 2,
        backoff: float = 0.05,
        env_extra: Optional[Dict[str, str]] = None,
    ) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        env.update(env_extra or {})
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-u",
                "-m",
                "repro",
                "serve",
                "--store",
                store,
                "--port",
                "0",
                "--workers",
                str(workers),
                "--retries",
                str(retries),
                "--backoff",
                str(backoff),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
            cwd=REPO_ROOT,
        )
        self.url = self._await_ready()

    def _await_ready(self, timeout: float = 30.0) -> str:
        deadline = time.monotonic() + timeout
        assert self.proc.stdout is not None
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise AssertionError(
                    f"server exited before its ready line (rc={self.proc.poll()})"
                )
            if line.startswith("repro service listening on "):
                return line.split("listening on ", 1)[1].strip()
        raise AssertionError("no ready line within timeout")

    def sigterm(self) -> int:
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=60)

    def sigkill(self) -> None:
        self.proc.kill()
        self.proc.wait(timeout=60)

    def wait(self, timeout: float = 120.0) -> int:
        return self.proc.wait(timeout=timeout)

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=30)


@pytest.fixture
def server_process(tmp_path):
    """Factory: launch ``python -m repro serve`` children; all reaped at teardown."""
    started: List[ServerProcess] = []

    def start(store: Optional[str] = None, **kwargs: Any) -> ServerProcess:
        server = ServerProcess(store or str(tmp_path / "store"), **kwargs)
        started.append(server)
        return server

    yield start
    for server in started:
        server.stop()
