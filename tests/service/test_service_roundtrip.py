"""Property-based submission round-trips (satellite 1 of the PR-8 issue).

Randomized (but seeded -- every failure reproduces) scenario trees drawn
from the component registries travel the full path: payload -> strict
parse -> fingerprint -> submit -> execute -> report JSON.  Alongside, a
malformed-payload catalogue asserts that the service rejects, with an
HTTP 400 whose body names the offending key, every corruption of a valid
submission we can mechanically produce.
"""

from __future__ import annotations

import copy
import json
import random

import pytest

from repro.scenarios.jobs import parse_submission
from repro.scenarios.spec import ScenarioSpec

from .conftest import fetch_report_bytes, request_json, wait_terminal

pytestmark = pytest.mark.service

#: (topology, scheduler, algorithm) pools; every combination is runnable in
#: a handful of milliseconds.  Environments stay "null" so that every
#: algorithm has traffic without sender bookkeeping.
_TOPOLOGIES = [
    ("clique", {"n": 4}),
    ("line", {"n": 5}),
    ("star", {"leaves": 4}),
    ("grid", {"rows": 2, "cols": 3}),
]
_SCHEDULERS = [
    ("none", {}),
    ("full", {}),
    ("iid", {"probability": 0.5, "seed": 3}),
    ("periodic", {"on_rounds": 2, "off_rounds": 1}),
]
_ALGORITHMS = [
    ("uniform", {}),
    ("round_robin", {}),
    ("decay", {"num_cycles": 2}),
]
_METRIC_POOLS = [
    [{"name": "counters"}],
    [{"name": "counters"}, {"name": "params"}],
    [{"name": "counters"}, {"name": "graph_stats"}],
]


def random_scenario(rng: random.Random, index: int) -> dict:
    topology, topo_args = rng.choice(_TOPOLOGIES)
    scheduler, sched_args = rng.choice(_SCHEDULERS)
    algorithm, algo_args = rng.choice(_ALGORITHMS)
    return {
        "name": f"prop-{index}",
        "description": f"randomized round-trip case {index}",
        "topology": {"name": topology, "args": dict(topo_args)},
        "scheduler": {"name": scheduler, "args": dict(sched_args)},
        "algorithm": {"name": algorithm, "args": dict(algo_args)},
        "environment": {"name": "null", "args": {}},
        "run": {
            "rounds": rng.randint(2, 5),
            "rounds_unit": "rounds",
            "trials": 1,
            "master_seed": rng.randint(0, 2**20),
        },
        "metrics": rng.choice(_METRIC_POOLS),
    }


def test_randomized_scenarios_roundtrip_through_service(threaded_service):
    rng = random.Random(0xC0FFEE)
    url, _ = threaded_service(workers=2)
    cases = [random_scenario(rng, i) for i in range(10)]
    submitted = []
    for case in cases:
        status, payload = request_json(url, "POST", "/v1/jobs", body={"scenario": case})
        assert status in (200, 201), (case, payload)
        submitted.append((case, payload["job"]))
    for case, job in submitted:
        final = wait_terminal(url, job["id"])
        assert final["state"] == "done", (case, final)
        report = json.loads(fetch_report_bytes(url, job["id"]))
        # The report's embedded suite round-trips to the submitted scenario.
        entries = report["suite"]["entries"]
        assert len(entries) == 1
        restored = ScenarioSpec.from_dict(entries[0]["scenario"])
        assert restored == ScenarioSpec.from_dict(case)


def test_fingerprint_stability_across_wire_forms(threaded_service):
    """Key-order, float formatting, and re-serialization don't change identity."""
    rng = random.Random(2024)
    for index in range(10):
        case = random_scenario(rng, index)
        suite_a, _ = parse_submission({"scenario": case})
        # Same tree serialized via the spec's own canonical dict form...
        spec = ScenarioSpec.from_dict(case)
        suite_b, _ = parse_submission({"scenario": spec.to_dict()})
        # ...and via a JSON round-trip with scrambled key order.
        scrambled = json.loads(
            json.dumps(case, sort_keys=True)
        )
        suite_c, _ = parse_submission({"scenario": scrambled})
        assert suite_a.fingerprint() == suite_b.fingerprint() == suite_c.fingerprint()


def _corruptions(valid: dict):
    """Yield (label, payload, expected-message-fragment) malformed variants."""
    case = copy.deepcopy(valid)
    case["scenario"]["bogus_field"] = 1
    yield "unknown scenario key", case, "bogus_field"

    case = copy.deepcopy(valid)
    case["scenario"]["topology"]["flavor"] = "spicy"
    yield "unknown topology key", case, "flavor"

    case = copy.deepcopy(valid)
    case["scenario"]["run"]["cadence"] = 3
    yield "unknown run key", case, "cadence"

    case = copy.deepcopy(valid)
    del case["scenario"]["topology"]
    yield "missing topology", case, "topology"

    case = copy.deepcopy(valid)
    case["scenario"]["run"]["trials"] = 0
    yield "zero trials", case, "trials"

    case = copy.deepcopy(valid)
    case["scenario"]["version"] = 999
    yield "bad version", case, "version"

    case = copy.deepcopy(valid)
    case["scenario"]["topology"]["name"] = ""
    yield "empty component name", case, "name"

    yield "both forms", {"scenario": valid["scenario"], "suite": {"name": "x", "entries": []}}, "exactly one"
    yield "neither form", {"options": {}}, "exactly one"
    yield "unknown top key", {**copy.deepcopy(valid), "priority": 9}, "priority"
    yield "non-object body", ["not", "an", "object"], "object"

    case = copy.deepcopy(valid)
    case["options"] = {"jobs": 0}
    yield "bad options.jobs", case, "jobs"

    case = copy.deepcopy(valid)
    case["options"] = {"prebuild": "yes"}
    yield "bad options.prebuild", case, "prebuild"

    case = copy.deepcopy(valid)
    case["options"] = {"turbo": True}
    yield "unknown option", case, "turbo"


def test_malformed_payloads_rejected_with_named_errors(threaded_service):
    url, _ = threaded_service()
    valid = {"scenario": random_scenario(random.Random(5), 0)}
    # The template itself must be accepted, or the corruptions prove nothing.
    status, _ = request_json(url, "POST", "/v1/jobs", body=valid)
    assert status in (200, 201)
    for label, payload, fragment in _corruptions(valid):
        status, body = request_json(url, "POST", "/v1/jobs", body=payload)
        assert status == 400, (label, status, body)
        message = body["error"]["message"]
        assert fragment in message, (label, message)
        assert body["error"]["code"] in ("rejected", "bad-json")


def test_rejected_submissions_leave_no_job_behind(threaded_service):
    url, _ = threaded_service()
    request_json(url, "POST", "/v1/jobs", body={"scenario": {"name": "broken"}})
    status, stats = request_json(url, "GET", "/stats")
    assert sum(stats["jobs"].values()) == 0
    assert stats["queue_depth"] == 0
