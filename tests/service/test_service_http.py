"""End-to-end HTTP contract of the scenario service.

Covers the full client journey -- submit, poll, stream, fetch report,
cancel -- plus the protocol edges (missing Content-Length, wrong methods,
unknown routes, oversized bodies) whose error bodies the docs promise.
"""

from __future__ import annotations

import json

import pytest

from repro.scenarios.suite import SuiteSpec, deterministic_report_dict, run_suite

from .conftest import (
    fetch_report_bytes,
    request_json,
    stream_events,
    tiny_scenario,
    tiny_suite,
    wait_terminal,
)

pytestmark = pytest.mark.service


def test_submit_stream_report_roundtrip(threaded_service, tmp_path):
    """Submit -> stream NDJSON until done -> report equals a direct run."""
    url, service = threaded_service()
    suite_payload = tiny_suite("http-e2e", entry_count=2, trials=2)

    status, payload = request_json(url, "POST", "/v1/jobs", body={"suite": suite_payload})
    assert status == 201, payload
    assert payload["dedup"] == "new"
    job = payload["job"]
    assert job["state"] in ("queued", "running")
    assert job["suite"] == {"name": "http-e2e", "entries": 2, "tasks": 4}

    events = list(stream_events(url, job["id"]))
    kinds = [event["event"] for event in events]
    assert kinds[0] == "snapshot"
    # Task completions stream in order with a running counter.  A subscriber
    # attaching after execution began misses the earliest events (the
    # snapshot's progress covers them), so assert a suffix, not the full run.
    task_events = [event for event in events if event["event"] == "task"]
    dones = [event["done"] for event in task_events]
    assert dones == list(range(dones[0], 5)) if dones else True
    assert all(event["total"] == 4 for event in task_events)
    assert events[-1] == {
        "job": job["id"],
        "event": "state",
        "state": "done",
        "error": None,
    }

    report = json.loads(fetch_report_bytes(url, job["id"]))
    direct = run_suite(SuiteSpec.from_dict(tiny_suite("http-e2e", entry_count=2, trials=2)))
    assert deterministic_report_dict(report) == deterministic_report_dict(direct.to_dict())

    # The descriptor reflects the terminal state and final progress.
    final = wait_terminal(url, job["id"])
    assert final["state"] == "done"
    assert final["progress"]["done"] == 4
    assert final["attempts"] == 1


def test_scenario_submission_wraps_into_suite(threaded_service):
    url, _ = threaded_service()
    status, payload = request_json(
        url, "POST", "/v1/jobs", body={"scenario": tiny_scenario("solo", trials=1)}
    )
    assert status == 201, payload
    assert payload["job"]["suite"] == {"name": "scenario:solo", "entries": 1, "tasks": 1}
    final = wait_terminal(url, payload["job"]["id"])
    assert final["state"] == "done"


def test_healthz_and_stats(threaded_service):
    url, _ = threaded_service()
    status, payload = request_json(url, "GET", "/healthz")
    assert (status, payload) == (200, {"ok": True, "service": "repro"})

    status, stats = request_json(url, "GET", "/stats")
    assert status == 200
    assert stats["workers"] == 2
    assert stats["counters"]["submitted"] == 0
    assert set(stats["jobs"]) == {
        "queued",
        "running",
        "done",
        "failed",
        "cancelled",
        "rejected",
    }
    assert "entries" in stats["store"]
    assert stats["fleet"]["workers"] == 0  # fleet dispatch off by default


def test_job_listing_and_descriptor(threaded_service):
    url, _ = threaded_service()
    status, payload = request_json(
        url, "POST", "/v1/jobs", body={"scenario": tiny_scenario("listed", trials=1)}
    )
    job_id = payload["job"]["id"]
    wait_terminal(url, job_id)

    status, listing = request_json(url, "GET", "/v1/jobs")
    assert status == 200
    assert [job["id"] for job in listing["jobs"]] == [job_id]

    status, payload = request_json(url, "GET", f"/v1/jobs/{job_id}")
    assert status == 200
    assert payload["job"]["fingerprint"]


def test_report_before_done_is_409(threaded_service):
    url, service = threaded_service(workers=1)
    # Stall the single worker with a bigger job, then ask for a queued job's
    # report: the 409 names the polling endpoints.
    status, first = request_json(
        url, "POST", "/v1/jobs", body={"suite": tiny_suite("stall", entry_count=2, trials=3)}
    )
    status, second = request_json(
        url, "POST", "/v1/jobs", body={"scenario": tiny_scenario("queued-09", seed=99)}
    )
    job_id = second["job"]["id"]
    status, body = request_json(url, "GET", f"/v1/jobs/{job_id}/report")
    if status == 409:  # terminal already on fast machines -> nothing to assert
        assert body["error"]["code"] == "not-finished"
        assert job_id in body["error"]["message"]
    wait_terminal(url, first["job"]["id"])
    wait_terminal(url, job_id)


def test_cancel_queued_job(threaded_service):
    url, service = threaded_service(workers=1)
    request_json(
        url, "POST", "/v1/jobs", body={"suite": tiny_suite("cancel-stall", entry_count=2, trials=3)}
    )
    status, queued = request_json(
        url, "POST", "/v1/jobs", body={"scenario": tiny_scenario("cancel-me", seed=123)}
    )
    job_id = queued["job"]["id"]
    status, payload = request_json(url, "POST", f"/v1/jobs/{job_id}/cancel")
    assert status == 200
    final = wait_terminal(url, job_id)
    assert final["state"] in ("cancelled", "done")  # done if it raced onto the worker
    if final["state"] == "cancelled":
        status, body = request_json(url, "GET", f"/v1/jobs/{job_id}/report")
        assert status == 409
        assert body["error"]["code"] == "job-cancelled"


def test_http_protocol_edges(threaded_service):
    url, _ = threaded_service()

    status, body = request_json(url, "GET", "/no/such/route")
    assert status == 404
    assert body["error"]["code"] == "not-found"

    status, body = request_json(url, "GET", "/v1/jobs/job-999999")
    assert status == 404
    assert body["error"]["code"] == "unknown-job"

    status, body = request_json(url, "DELETE", "/healthz")
    assert status == 405
    assert "GET" in body["error"]["message"]

    status, body = request_json(url, "GET", "/v1/jobs/whatever/unknown-action")
    assert status == 404

    # POST without a parseable body -> 400 with the JSON error.
    status, body = request_json(url, "POST", "/v1/jobs", raw_body=b"{not json")
    assert status == 400
    assert body["error"]["code"] == "bad-json"


def test_submission_while_stopping_is_rejected(threaded_service):
    url, service = threaded_service()
    assert service.manager is not None
    service.manager.stopping = True
    status, body = request_json(
        url, "POST", "/v1/jobs", body={"scenario": tiny_scenario("too-late")}
    )
    assert status == 400
    assert "shutting down" in body["error"]["message"]
    service.manager.stopping = False


def test_subprocess_server_ready_line_and_roundtrip(server_process):
    """The real CLI child: ready line parses, one job runs end to end."""
    server = server_process()
    status, payload = request_json(
        server.url, "POST", "/v1/jobs", body={"scenario": tiny_scenario("subproc", trials=1)}
    )
    assert status == 201, payload
    final = wait_terminal(server.url, payload["job"]["id"])
    assert final["state"] == "done"
    assert server.sigterm() == 0
