"""Fault injection (satellite 3): crashes, hard exits, and kills mid-suite.

Every test asserts the same invariant from the PR-8 issue: whatever dies --
a worker attempt (``crash:N``), the whole process (``exit:N`` /
``SIGKILL``), or a gracefully terminated server (``SIGTERM``) -- the
journaled job is recovered, execution resumes from the fsynced checkpoint
plus the trial store, and the final report equals a clean uninterrupted
run under :func:`deterministic_report_dict`.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.scenarios.jobs import FaultPlan
from repro.scenarios.suite import SuiteSpec, deterministic_report_dict, run_suite

from .conftest import (
    fetch_report_bytes,
    request_json,
    tiny_suite,
    wait_terminal,
)

pytestmark = [pytest.mark.service, pytest.mark.fault_injection]


def slow_suite(trials: int = 16) -> dict:
    """~50ms per task: wide enough to kill the server mid-execution."""
    return {
        "name": "svc-slow",
        "entries": [
            {
                "id": "svc-slow-e0",
                "scenario": {
                    "name": "svc-slow-e0",
                    "topology": {"name": "clique", "args": {"n": 10}},
                    "algorithm": {"name": "uniform"},
                    "run": {
                        "rounds": 400,
                        "rounds_unit": "rounds",
                        "trials": trials,
                        "master_seed": 99,
                    },
                    "metrics": [{"name": "counters"}],
                },
            }
        ],
    }


def clean_report(payload: dict) -> dict:
    """The ground truth: the same suite run directly, no service, no store."""
    report = run_suite(SuiteSpec.from_dict(payload))
    return deterministic_report_dict(report.to_dict())


def wait_progress(url: str, job_id: str, done_at_least: int, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = request_json(url, "GET", f"/v1/jobs/{job_id}")
        job = payload["job"]
        if job["progress"].get("done", 0) >= done_at_least:
            return
        if job["state"] in ("done", "failed", "cancelled"):
            raise AssertionError(f"job went {job['state']} before reaching progress")
        time.sleep(0.02)
    raise AssertionError(f"no progress >= {done_at_least} within {timeout}s")


def recovered_job(url: str, fingerprint: str) -> dict:
    """The journal-recovered job for one fingerprint on a restarted server."""
    status, listing = request_json(url, "GET", "/v1/jobs")
    assert status == 200
    matches = [job for job in listing["jobs"] if job["fingerprint"] == fingerprint]
    assert matches, f"no recovered job for {fingerprint}"
    return matches[0]


def test_worker_crash_mid_suite_retries_from_checkpoint(threaded_service):
    """``crash:2``: attempt 1 dies after 2 tasks; attempt 2 resumes, not restarts."""
    url, service = threaded_service(
        workers=1,
        retries=2,
        backoff_s=0.01,
        fault_plan=FaultPlan(kind="crash", after_tasks=2),
    )
    payload = tiny_suite("crash-mid", entry_count=3, trials=2)  # 6 tasks
    status, submitted = request_json(url, "POST", "/v1/jobs", body={"suite": payload})
    assert status == 201

    final = wait_terminal(url, submitted["job"]["id"])
    assert final["state"] == "done"
    assert final["attempts"] == 2  # one crash, one successful retry
    # The retry's plan shows the resumed prefix: the crashed attempt's two
    # checkpointed tasks were served, not re-executed.
    assert final["progress"]["resumed"] + final["progress"]["hits"] >= 2

    report = json.loads(fetch_report_bytes(url, submitted["job"]["id"]))
    assert deterministic_report_dict(report) == clean_report(payload)

    status, stats = request_json(url, "GET", "/stats")
    assert stats["counters"]["retries"] == 1
    assert stats["counters"]["completed"] == 1


def test_crash_beyond_retry_budget_fails_cleanly(threaded_service):
    """Crashing on *every* attempt must exhaust retries into state=failed."""
    url, service = threaded_service(
        workers=1,
        retries=1,
        backoff_s=0.01,
        fault_plan=FaultPlan(kind="crash", after_tasks=1),
    )
    # Arm the crash on every attempt, not just the first.
    assert service.manager is not None
    service.manager._arm_fault = lambda job: service.manager.fault_plan  # type: ignore[assignment]

    status, submitted = request_json(
        url, "POST", "/v1/jobs", body={"suite": tiny_suite("crash-always", entry_count=2)}
    )
    final = wait_terminal(url, submitted["job"]["id"])
    assert final["state"] == "failed"
    assert "injected crash" in final["error"]
    status, body = request_json(url, "GET", f"/v1/jobs/{final['id']}/report")
    assert status == 409
    assert body["error"]["code"] == "job-failed"


def test_hard_exit_mid_suite_recovers_on_restart(server_process, tmp_path):
    """``exit:N``: the whole server process dies; the next one finishes the job."""
    store = str(tmp_path / "store")
    payload = slow_suite(trials=8)

    server = server_process(store=store, env_extra={"REPRO_SERVICE_FAULT": "exit:2"})
    status, submitted = request_json(server.url, "POST", "/v1/jobs", body={"suite": payload})
    assert status == 201
    fingerprint = submitted["job"]["fingerprint"]
    assert server.wait(timeout=120) == 70  # the injected hard exit

    fresh = server_process(store=store)  # no fault env: clean second life
    job = recovered_job(fresh.url, fingerprint)
    assert job["origin"] == "recovered"
    final = wait_terminal(fresh.url, job["id"])
    assert final["state"] == "done"
    # At least the pre-exit tasks came back from checkpoint/store.
    assert final["progress"]["resumed"] + final["progress"]["hits"] >= 2

    report = json.loads(fetch_report_bytes(fresh.url, job["id"]))
    assert deterministic_report_dict(report) == clean_report(payload)


def test_sigterm_mid_suite_checkpoints_and_resumes(server_process, tmp_path):
    """Graceful shutdown: exit 0, job stays journaled, restart completes it."""
    store = str(tmp_path / "store")
    payload = slow_suite(trials=16)

    server = server_process(store=store)
    status, submitted = request_json(server.url, "POST", "/v1/jobs", body={"suite": payload})
    job_id = submitted["job"]["id"]
    fingerprint = submitted["job"]["fingerprint"]
    wait_progress(server.url, job_id, done_at_least=2)
    assert server.sigterm() == 0

    fresh = server_process(store=store)
    job = recovered_job(fresh.url, fingerprint)
    assert job["origin"] == "recovered"
    final = wait_terminal(fresh.url, job["id"])
    assert final["state"] == "done"
    assert final["progress"]["resumed"] + final["progress"]["hits"] >= 2

    report = json.loads(fetch_report_bytes(fresh.url, job["id"]))
    assert deterministic_report_dict(report) == clean_report(payload)


def test_sigkill_mid_suite_recovers_on_restart(server_process, tmp_path):
    """SIGKILL: no shutdown path ran at all; durability alone must carry it."""
    store = str(tmp_path / "store")
    payload = slow_suite(trials=16)

    server = server_process(store=store)
    status, submitted = request_json(server.url, "POST", "/v1/jobs", body={"suite": payload})
    fingerprint = submitted["job"]["fingerprint"]
    wait_progress(server.url, submitted["job"]["id"], done_at_least=2)
    server.sigkill()

    fresh = server_process(store=store)
    job = recovered_job(fresh.url, fingerprint)
    final = wait_terminal(fresh.url, job["id"])
    assert final["state"] == "done"
    report = json.loads(fetch_report_bytes(fresh.url, job["id"]))
    assert deterministic_report_dict(report) == clean_report(payload)


def test_kill_between_report_and_close_serves_report(server_process, tmp_path, threaded_service):
    """A journal accept whose report already landed closes without re-running."""
    store = str(tmp_path / "store")
    payload = tiny_suite("late-close", entry_count=1, trials=2)

    server = server_process(store=store)
    status, submitted = request_json(server.url, "POST", "/v1/jobs", body={"suite": payload})
    job_id = submitted["job"]["id"]
    fingerprint = submitted["job"]["fingerprint"]
    wait_terminal(server.url, job_id)
    original = fetch_report_bytes(server.url, job_id)
    # Re-open the accept as if the close line had been lost in a crash.
    import os

    journal = os.path.join(store, "service", "jobs.jsonl")
    with open(journal, "a", encoding="utf-8") as handle:
        handle.write(
            json.dumps(
                {
                    "op": "accept",
                    "job": job_id,
                    "fingerprint": fingerprint,
                    "options": {},
                    "suite": json.loads(original)["suite"],
                },
                sort_keys=True,
                separators=(",", ":"),
            )
            + "\n"
        )
    server.sigkill()

    fresh = server_process(store=store)
    job = recovered_job(fresh.url, fingerprint)
    assert job["state"] == "done"  # closed from the persisted report, no re-run
    assert fetch_report_bytes(fresh.url, job["id"]) == original
    status, stats = request_json(fresh.url, "GET", "/stats")
    assert stats["counters"]["completed"] == 0
