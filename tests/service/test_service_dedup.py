"""Dedup guarantees: one fingerprint never executes twice.

Satellite 2 of the PR-8 issue: N clients submitting the same suite
fingerprint simultaneously must trigger exactly one execution, and every
client must receive byte-identical report bytes.
"""

from __future__ import annotations

import json
import threading

import pytest

from .conftest import fetch_report_bytes, request_json, tiny_suite, wait_terminal

pytestmark = pytest.mark.service

CLIENTS = 8


def test_concurrent_identical_submissions_execute_once(threaded_service):
    url, service = threaded_service(workers=2)
    suite_payload = tiny_suite("dedup-storm", entry_count=2, trials=2)
    body = {"suite": suite_payload}

    results = [None] * CLIENTS
    barrier = threading.Barrier(CLIENTS)

    def client(index: int) -> None:
        barrier.wait()
        status, payload = request_json(url, "POST", "/v1/jobs", body=body)
        assert status in (200, 201), payload
        job = wait_terminal(url, payload["job"]["id"])
        assert job["state"] == "done"
        results[index] = (payload["dedup"], fetch_report_bytes(url, payload["job"]["id"]))

    threads = [threading.Thread(target=client, args=(i,)) for i in range(CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive()

    dispositions = [disposition for disposition, _ in results]
    reports = {report for _, report in results}

    # Every client got the same bytes, and exactly one submission was "new".
    assert len(reports) == 1
    assert dispositions.count("new") == 1
    assert all(d in ("new", "inflight", "cached") for d in dispositions)

    status, stats = request_json(url, "GET", "/stats")
    counters = stats["counters"]
    assert counters["submitted"] == CLIENTS
    assert counters["completed"] == 1
    assert counters["dedup_inflight"] + counters["dedup_cached"] == CLIENTS - 1
    # Exactly one execution: the store saw each of the 4 tasks miss once.
    assert stats["store"]["misses"] == 4

    # Late resubmission after completion: pure at-rest dedup, same bytes.
    status, payload = request_json(url, "POST", "/v1/jobs", body=body)
    assert status == 200
    assert payload["dedup"] == "cached"
    assert payload["job"]["state"] == "done"
    assert fetch_report_bytes(url, payload["job"]["id"]) == next(iter(reports))


def test_cached_submission_survives_restarted_manager(threaded_service, tmp_path):
    """At-rest dedup is a property of the store, not the process."""
    store = str(tmp_path / "shared-store")
    body = {"suite": tiny_suite("dedup-persist", entry_count=1, trials=2)}

    url1, service1 = threaded_service(store=store, workers=1)
    status, payload = request_json(url1, "POST", "/v1/jobs", body=body)
    assert payload["dedup"] == "new"
    wait_terminal(url1, payload["job"]["id"])
    original = fetch_report_bytes(url1, payload["job"]["id"])
    service1.stop()

    url2, service2 = threaded_service(store=store, workers=1)
    status, payload = request_json(url2, "POST", "/v1/jobs", body=body)
    assert status == 200
    assert payload["dedup"] == "cached"
    assert payload["job"]["origin"] == "cache"
    assert fetch_report_bytes(url2, payload["job"]["id"]) == original
    status, stats = request_json(url2, "GET", "/stats")
    assert stats["counters"]["completed"] == 0  # nothing executed this life


def test_distinct_fingerprints_do_not_dedup(threaded_service):
    url, _ = threaded_service()
    status, a = request_json(
        url, "POST", "/v1/jobs", body={"suite": tiny_suite("fp-a", seed=1)}
    )
    status, b = request_json(
        url, "POST", "/v1/jobs", body={"suite": tiny_suite("fp-b", seed=2)}
    )
    assert a["dedup"] == b["dedup"] == "new"
    assert a["job"]["fingerprint"] != b["job"]["fingerprint"]
    assert wait_terminal(url, a["job"]["id"])["state"] == "done"
    assert wait_terminal(url, b["job"]["id"])["state"] == "done"
    reports = {
        fetch_report_bytes(url, a["job"]["id"]),
        fetch_report_bytes(url, b["job"]["id"]),
    }
    assert len(reports) == 2
