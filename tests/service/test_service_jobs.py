"""JobManager unit tests: journal mechanics, recovery edges, cancellation.

These run the manager directly on an asyncio loop (no HTTP) where the
subprocess harness would be slow or could not reach the edge at all --
torn journal lines, duplicate accepts, cancel-while-running.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.scenarios.jobs import JobManager, JobRejected, parse_submission
from repro.scenarios.suite import SuiteSpec

from .conftest import tiny_scenario, tiny_suite

pytestmark = pytest.mark.service


def run_async(coro):
    return asyncio.run(coro)


def manager_for(tmp_path, **kwargs) -> JobManager:
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("backoff_s", 0.01)
    return JobManager(store=str(tmp_path / "store"), **kwargs)


async def drive(manager: JobManager, job) -> None:
    """Wait for one job to reach a terminal state, then stop the workers."""
    queue = manager.subscribe(job)
    try:
        while not job.terminal:
            await asyncio.wait_for(queue.get(), timeout=60)
    finally:
        manager.unsubscribe(job, queue)
        await manager.shutdown()


# ----------------------------------------------------------------------
# parse_submission
# ----------------------------------------------------------------------
def test_parse_submission_options_and_wrapping():
    suite, options = parse_submission(
        {"scenario": tiny_scenario("wrapme"), "options": {"jobs": 3, "prebuild": True}}
    )
    assert suite.name == "scenario:wrapme"
    assert [entry.id for entry in suite.entries] == ["wrapme"]
    assert options == {"jobs": 3, "prebuild": True}

    suite, options = parse_submission({"suite": tiny_suite("plain")})
    assert suite == SuiteSpec.from_dict(tiny_suite("plain"))
    assert options == {}


def test_parse_submission_rejects_non_integer_jobs():
    with pytest.raises(JobRejected):
        parse_submission({"scenario": tiny_scenario(), "options": {"jobs": "many"}})


# ----------------------------------------------------------------------
# journal + recovery
# ----------------------------------------------------------------------
def test_submit_journals_before_ack(tmp_path):
    async def main():
        manager = manager_for(tmp_path)
        await manager.start()
        job, disposition = manager.submit(*parse_submission({"suite": tiny_suite("durable")}))
        assert disposition == "new"
        # The accept line is on disk before submit() returned.
        with open(manager.journal_path, encoding="utf-8") as handle:
            entries = [json.loads(line) for line in handle if line.strip()]
        assert any(e["op"] == "accept" and e["job"] == job.id for e in entries)
        await drive(manager, job)
        # ...and the close line lands on completion.
        with open(manager.journal_path, encoding="utf-8") as handle:
            entries = [json.loads(line) for line in handle if line.strip()]
        assert {"op": "close", "job": job.id, "state": "done"} in entries

    run_async(main())


def test_recover_tolerates_torn_tail_and_compacts(tmp_path):
    suite, _ = parse_submission({"suite": tiny_suite("torn")})
    manager = manager_for(tmp_path)
    manager._journal_append(
        {
            "op": "accept",
            "job": "job-000001",
            "fingerprint": suite.fingerprint(),
            "options": {},
            "suite": suite.to_dict(),
        }
    )
    with open(manager.journal_path, "a", encoding="utf-8") as handle:
        handle.write('{"op": "acc')  # a kill mid-append

    fresh = JobManager(store=manager.store)
    with pytest.warns(RuntimeWarning, match="unreadable"):
        recovered = fresh.recover()
    assert [job.id for job in recovered] == ["job-000001"]
    assert recovered[0].origin == "recovered"
    # Compaction rewrote the journal: the torn tail is gone for good.
    with open(fresh.journal_path, encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    assert len(lines) == 1
    assert json.loads(lines[0])["op"] == "accept"


def test_recover_supersedes_duplicate_fingerprints(tmp_path):
    suite, _ = parse_submission({"suite": tiny_suite("dup-fp")})
    manager = manager_for(tmp_path)
    for job_id in ("job-000001", "job-000002"):
        manager._journal_append(
            {
                "op": "accept",
                "job": job_id,
                "fingerprint": suite.fingerprint(),
                "options": {},
                "suite": suite.to_dict(),
            }
        )
    fresh = JobManager(store=manager.store)
    recovered = fresh.recover()
    assert [job.id for job in recovered] == ["job-000001"]
    with open(fresh.journal_path, encoding="utf-8") as handle:
        entries = [json.loads(line) for line in handle if line.strip()]
    assert {"op": "close", "job": "job-000002", "state": "superseded"} in entries


def test_recover_drops_unreadable_suites_with_warning(tmp_path):
    manager = manager_for(tmp_path)
    manager._journal_append(
        {"op": "accept", "job": "job-000009", "fingerprint": "x", "options": {}, "suite": {"nonsense": 1}}
    )
    fresh = JobManager(store=manager.store)
    with pytest.warns(RuntimeWarning, match="dropping unreadable"):
        assert fresh.recover() == []


# ----------------------------------------------------------------------
# cancellation
# ----------------------------------------------------------------------
def test_cancel_running_job_keeps_checkpoint_for_resume(tmp_path):
    payload = tiny_suite("cancel-run", entry_count=3, trials=2)  # 6 tasks

    async def main():
        manager = manager_for(tmp_path)
        await manager.start()
        job, _ = manager.submit(*parse_submission({"suite": payload}))
        queue = manager.subscribe(job)
        # Cancel as soon as the first task completes.
        while True:
            event = await asyncio.wait_for(queue.get(), timeout=60)
            if event.get("event") == "task":
                manager.cancel(job)
            if event.get("event") == "state" and event["state"] in (
                "done",
                "failed",
                "cancelled",
            ):
                break
        manager.unsubscribe(job, queue)
        await manager.shutdown()
        return manager, job

    manager, job = run_async(main())
    if job.state == "done":  # the last task raced the cancel -- nothing to resume
        return
    assert job.state == "cancelled"
    assert os.path.exists(manager.checkpoint_path(job.fingerprint))

    async def resume():
        fresh = JobManager(store=manager.store, workers=1, backoff_s=0.01)
        await fresh.start()
        resumed, disposition = fresh.submit(*parse_submission({"suite": payload}))
        assert disposition == "new"
        await drive(fresh, resumed)
        return resumed

    resumed = run_async(resume())
    assert resumed.state == "done"
    # The cancelled prefix was resumed from checkpoint/store, not re-run.
    assert resumed.progress["resumed"] + resumed.progress["hits"] >= 1
    assert resumed.progress["misses"] < 6


def test_cancel_terminal_job_is_a_noop(tmp_path):
    async def main():
        manager = manager_for(tmp_path)
        await manager.start()
        job, _ = manager.submit(*parse_submission({"scenario": tiny_scenario("noop", trials=1)}))
        await drive(manager, job)
        assert job.state == "done"
        assert manager.cancel(job) is False
        assert job.state == "done"

    run_async(main())


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
def test_stats_reports_queue_depth_and_per_job_backlog(tmp_path):
    async def main():
        manager = manager_for(tmp_path)
        # Submitted but no worker started yet: the job sits in the queue
        # with its whole task list pending.
        job, _ = manager.submit(*parse_submission({"suite": tiny_suite("backlog")}))
        stats = manager.stats()
        assert stats["queue_depth"] == 1
        entry = stats["backlog"][job.id]
        assert entry["state"] == "queued"
        assert entry["tasks_total"] == job.task_count
        assert entry["tasks_done"] == 0
        assert entry["tasks_pending"] == job.task_count
        assert stats["backlog_tasks"] == job.task_count

        await manager.start()
        await drive(manager, job)
        assert job.state == "done"
        stats = manager.stats()
        # Terminal jobs carry no backlog.
        assert stats["backlog"] == {}
        assert stats["backlog_tasks"] == 0

    run_async(main())
