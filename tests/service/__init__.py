"""Scenario-service test package (see harness.py for the shared helpers)."""
