"""Tests for the adaptive link scheduler extension (outside the paper's model).

The paper assumes an *oblivious* link scheduler and cites the impossibility of
efficient local broadcast progress against an *adaptive* one.  The adaptive
schedulers in this library exist to reproduce that contrast; these tests check
their mechanics and the qualitative collapse of reception under them.
"""

import random

import pytest

from repro import (
    CollisionAdaptiveAdversary,
    IIDScheduler,
    LBParams,
    SaturatingEnvironment,
    Simulator,
    make_lb_processes,
    two_clusters_network,
)
from repro.dualgraph.adversary import AdaptiveLinkScheduler
from repro.dualgraph.graph import DualGraph, normalize_edge
from repro.simulation.metrics import data_reception_rounds
from repro.simulation.process import Process, ProcessContext


class FixedTransmitters(Process):
    """Transmits a constant frame iff its vertex is in the chosen set."""

    def __init__(self, ctx, transmitters):
        super().__init__(ctx)
        self._transmitters = transmitters
        self.heard = []

    def transmit(self, round_number):
        if self.vertex in self._transmitters:
            return ("data", self.vertex)
        return None

    def on_receive(self, round_number, frame):
        self.heard.append(frame)


def _ctx(vertex):
    return ProcessContext(vertex=vertex, delta=8, delta_prime=8)


@pytest.fixture
def collision_graph():
    """Receiver 0 with a reliable sender 1 and an unreliable-linked sender 2."""
    return DualGraph(
        vertices=[0, 1, 2],
        reliable_edges=[(0, 1)],
        unreliable_edges=[(0, 2)],
    )


class TestAdaptiveSchedulerInterface:
    def test_oblivious_schedulers_are_not_adaptive(self, collision_graph):
        assert not IIDScheduler(collision_graph, 0.5).is_adaptive

    def test_collision_adversary_is_adaptive(self, collision_graph):
        adversary = CollisionAdaptiveAdversary(collision_graph)
        assert adversary.is_adaptive
        assert isinstance(adversary, AdaptiveLinkScheduler)
        assert "adaptive" in adversary.describe()

    def test_oblivious_projection_is_empty(self, collision_graph):
        adversary = CollisionAdaptiveAdversary(collision_graph)
        assert adversary.unreliable_edges_for_round(5) == frozenset()


class TestCollisionAdaptiveAdversary:
    def test_spoils_a_clean_reliable_reception(self, collision_graph):
        adversary = CollisionAdaptiveAdversary(collision_graph)
        # Both 1 (reliable neighbor) and 2 (unreliable neighbor) transmit:
        # the adversary adds the unreliable edge to create a collision at 0.
        chosen = adversary.adaptive_unreliable_edges(1, frozenset({1, 2}))
        assert chosen == {normalize_edge(0, 2)}

    def test_does_not_help_a_lonely_unreliable_transmitter(self, collision_graph):
        adversary = CollisionAdaptiveAdversary(collision_graph)
        # Only the unreliable-linked vertex transmits: adding its edge would
        # help the receiver, so the adversary stays out.
        assert adversary.adaptive_unreliable_edges(1, frozenset({2})) == frozenset()

    def test_no_spare_transmitter_means_no_edge(self, collision_graph):
        adversary = CollisionAdaptiveAdversary(collision_graph)
        assert adversary.adaptive_unreliable_edges(1, frozenset({1})) == frozenset()

    def test_end_to_end_reception_is_suppressed(self, collision_graph):
        processes = {
            0: FixedTransmitters(_ctx(0), transmitters=set()),
            1: FixedTransmitters(_ctx(1), transmitters={1, 2}),
            2: FixedTransmitters(_ctx(2), transmitters={1, 2}),
        }
        simulator = Simulator(
            collision_graph, processes, scheduler=CollisionAdaptiveAdversary(collision_graph)
        )
        simulator.run(5)
        # With the adversary reacting every round, vertex 0 never hears anything.
        assert all(frame is None for frame in processes[0].heard)

    def test_without_the_adversary_the_same_setup_delivers(self, collision_graph):
        from repro.dualgraph.adversary import NoUnreliableScheduler

        processes = {
            0: FixedTransmitters(_ctx(0), transmitters=set()),
            1: FixedTransmitters(_ctx(1), transmitters={1, 2}),
            2: FixedTransmitters(_ctx(2), transmitters={1, 2}),
        }
        simulator = Simulator(
            collision_graph, processes, scheduler=NoUnreliableScheduler(collision_graph)
        )
        simulator.run(5)
        assert all(frame == ("data", 1) for frame in processes[0].heard)


class TestLBAlgUnderAdaptiveAdversary:
    def test_every_included_edge_spoils_a_reception(self):
        """Soundness of the adversary inside a full LBAlg run: whenever it
        decides to include an unreliable edge at a listening vertex, that
        vertex hears nothing in that round (the edge exists only to collide),
        and the adversary never gratuitously enables a delivery."""
        graph, _ = two_clusters_network(cluster_size=5, gap=1.5, rng=8)
        delta, delta_prime = graph.degree_bounds()
        params = LBParams.small_for_testing(
            delta=delta, delta_prime=delta_prime, tprog=60, tack_phases=2, seed_phase_length=6
        )
        receiver = 0
        senders = [v for v in sorted(graph.vertices) if v != receiver]
        adversary = CollisionAdaptiveAdversary(graph)
        simulator = Simulator(
            graph,
            make_lb_processes(graph, params, random.Random(3)),
            scheduler=adversary,
            environment=SaturatingEnvironment(senders=senders),
        )
        rounds = 2 * params.phase_length
        trace = simulator.run(rounds)

        for round_number in range(1, rounds + 1):
            transmitters = frozenset(trace.transmissions_in_round(round_number))
            chosen = adversary.adaptive_unreliable_edges(round_number, transmitters)
            receptions = trace.receptions_in_round(round_number)
            for edge in chosen:
                for vertex in edge:
                    if vertex not in transmitters:
                        assert vertex not in receptions

    def test_adaptive_adversary_never_delivers_over_unreliable_edges(self):
        """Under this adversary a reception can only ever come from a reliable
        neighbor -- the adversary only includes unreliable edges that collide."""
        graph, _ = two_clusters_network(cluster_size=5, gap=1.5, rng=9)
        delta, delta_prime = graph.degree_bounds()
        params = LBParams.small_for_testing(
            delta=delta, delta_prime=delta_prime, tprog=60, tack_phases=2, seed_phase_length=6
        )
        senders = sorted(graph.vertices)[1:]
        simulator = Simulator(
            graph,
            make_lb_processes(graph, params, random.Random(5)),
            scheduler=CollisionAdaptiveAdversary(graph),
            environment=SaturatingEnvironment(senders=senders),
        )
        rounds = 2 * params.phase_length
        trace = simulator.run(rounds)
        for round_number in range(1, rounds + 1):
            transmissions = trace.transmissions_in_round(round_number)
            for receiver, frame in trace.receptions_in_round(round_number).items():
                sender_candidates = [
                    v for v, sent in transmissions.items() if sent is frame
                ]
                assert any(
                    candidate in graph.reliable_neighbors(receiver)
                    for candidate in sender_candidates
                )
