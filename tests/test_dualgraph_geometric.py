"""Unit tests for embeddings and the r-geographic property."""

import math

import pytest

from repro.dualgraph.geometric import (
    Embedding,
    always_reliable_policy,
    always_unreliable_policy,
    euclidean_distance,
    geographic_dual_graph,
    is_r_geographic,
    never_connected_policy,
    r_geographic_violations,
)
from repro.dualgraph.graph import DualGraph


class TestEmbedding:
    def test_positions_and_distance(self):
        emb = Embedding({0: (0, 0), 1: (3, 4)})
        assert emb.position(0) == (0.0, 0.0)
        assert emb.distance(0, 1) == pytest.approx(5.0)

    def test_unknown_vertex_raises(self):
        emb = Embedding({0: (0, 0)})
        with pytest.raises(KeyError):
            emb.position(1)

    def test_empty_embedding_rejected(self):
        with pytest.raises(ValueError):
            Embedding({})

    def test_bounding_box(self):
        emb = Embedding({0: (0, 1), 1: (2, -1), 2: (1, 3)})
        assert emb.bounding_box() == (0.0, -1.0, 2.0, 3.0)

    def test_contains_and_len(self):
        emb = Embedding({0: (0, 0), "a": (1, 1)})
        assert 0 in emb and "a" in emb and 5 not in emb
        assert len(emb) == 2


class TestEuclideanDistance:
    def test_zero_distance(self):
        assert euclidean_distance((1, 1), (1, 1)) == 0.0

    def test_pythagoras(self):
        assert euclidean_distance((0, 0), (1, 1)) == pytest.approx(math.sqrt(2))


class TestGeographicConstruction:
    def test_close_pairs_get_reliable_edges(self):
        graph, emb = geographic_dual_graph({0: (0, 0), 1: (0.5, 0)}, r=2.0)
        assert graph.has_reliable_edge(0, 1)

    def test_grey_zone_pairs_follow_policy(self):
        positions = {0: (0, 0), 1: (1.5, 0)}
        graph_u, _ = geographic_dual_graph(positions, r=2.0, grey_zone_policy=always_unreliable_policy)
        assert graph_u.has_unreliable_edge(0, 1)
        graph_r, _ = geographic_dual_graph(positions, r=2.0, grey_zone_policy=always_reliable_policy)
        assert graph_r.has_reliable_edge(0, 1)
        graph_n, _ = geographic_dual_graph(positions, r=2.0, grey_zone_policy=never_connected_policy)
        assert not graph_n.has_any_edge(0, 1)

    def test_far_pairs_get_no_edge(self):
        graph, _ = geographic_dual_graph({0: (0, 0), 1: (5, 0)}, r=2.0)
        assert not graph.has_any_edge(0, 1)

    def test_boundary_distance_exactly_one_is_reliable(self):
        graph, _ = geographic_dual_graph({0: (0, 0), 1: (1.0, 0)}, r=2.0)
        assert graph.has_reliable_edge(0, 1)

    def test_boundary_distance_exactly_r_may_have_edge(self):
        graph, _ = geographic_dual_graph(
            {0: (0, 0), 1: (2.0, 0)}, r=2.0, grey_zone_policy=always_unreliable_policy
        )
        assert graph.has_unreliable_edge(0, 1)

    def test_invalid_r_rejected(self):
        with pytest.raises(ValueError):
            geographic_dual_graph({0: (0, 0)}, r=0.5)

    def test_invalid_policy_value_rejected(self):
        def bad_policy(u, v, d):
            return "sometimes"

        with pytest.raises(ValueError):
            geographic_dual_graph({0: (0, 0), 1: (1.5, 0)}, r=2.0, grey_zone_policy=bad_policy)

    def test_construction_result_is_r_geographic(self):
        positions = {i: (i * 0.8, (i % 3) * 0.7) for i in range(10)}
        graph, emb = geographic_dual_graph(positions, r=2.0)
        assert is_r_geographic(graph, emb, 2.0)


class TestRGeographicChecks:
    def test_missing_reliable_edge_is_a_violation(self):
        emb = Embedding({0: (0, 0), 1: (0.5, 0)})
        graph = DualGraph(vertices=[0, 1])  # no edges at all
        violations = r_geographic_violations(graph, emb, r=2.0)
        assert len(violations) == 1
        assert "not reliable neighbors" in violations[0]
        assert not is_r_geographic(graph, emb, 2.0)

    def test_long_edge_is_a_violation(self):
        emb = Embedding({0: (0, 0), 1: (5, 0)})
        graph = DualGraph(vertices=[0, 1], unreliable_edges=[(0, 1)])
        violations = r_geographic_violations(graph, emb, r=2.0)
        assert len(violations) == 1
        assert "> r=2.0" in violations[0]

    def test_violation_limit_short_circuits(self):
        emb = Embedding({i: (i * 0.1, 0) for i in range(6)})
        graph = DualGraph(vertices=range(6))  # every close pair is missing its edge
        limited = r_geographic_violations(graph, emb, r=2.0, limit=2)
        assert len(limited) == 2

    def test_invalid_r_rejected(self):
        emb = Embedding({0: (0, 0)})
        graph = DualGraph(vertices=[0])
        with pytest.raises(ValueError):
            r_geographic_violations(graph, emb, r=0.9)

    def test_grey_zone_freedom_is_not_a_violation(self):
        # A grey-zone pair with no edge and another with a reliable edge: both legal.
        emb = Embedding({0: (0, 0), 1: (1.5, 0), 2: (0, 1.5)})
        graph = DualGraph(vertices=[0, 1, 2], reliable_edges=[(0, 2)])
        assert is_r_geographic(graph, emb, 2.0)
