"""Tests for the seed-reuse variant of LBAlg (the Section 4.2 remark).

Running seed agreement less frequently must not break any deterministic
property of the service; it only changes how many rounds are spent in
preambles.  These tests check the reuse mechanics at the process level and
the end-to-end spec compliance of reusing runs.
"""

import random

import pytest

from repro import (
    IIDScheduler,
    LBParams,
    SaturatingEnvironment,
    Simulator,
    SingleShotEnvironment,
    check_lb_execution,
    make_lb_processes,
    random_geographic_network,
)
from repro.core.local_broadcast import LocalBroadcastProcess
from repro.core.messages import Message
from repro.core.seed_agreement import SeedFrame
from repro.simulation.metrics import progress_report
from repro.simulation.process import ProcessContext


@pytest.fixture
def params():
    return LBParams.small_for_testing(delta=8, delta_prime=16, tprog=12, tack_phases=2,
                                      seed_phase_length=4)


def make_process(params, reuse, seed=0):
    ctx = ProcessContext(vertex=0, delta=params.delta, delta_prime=params.delta_prime,
                         rng=random.Random(seed))
    return LocalBroadcastProcess(ctx, params, seed_reuse_phases=reuse)


def drive(process, params, start, end):
    transmitted = {}
    for round_number in range(start, end + 1):
        frame = process.transmit(round_number)
        if frame is not None:
            transmitted[round_number] = frame
        process.on_receive(round_number, None)
    return transmitted


class TestReuseMechanics:
    def test_reuse_factor_validation(self, params):
        with pytest.raises(ValueError):
            make_process(params, reuse=0)

    def test_default_is_fresh_seed_every_phase(self, params):
        process = make_process(params, reuse=1)
        assert process.seed_reuse_phases == 1

    def test_preamble_of_reused_phase_is_silent(self, params):
        process = make_process(params, reuse=2, seed=5)
        # Phase 1: normal preamble (the seed subroutine may transmit).
        drive(process, params, 1, params.phase_length)
        # Phase 2: reused seed -- no seed frames may be transmitted during the
        # preamble rounds.
        transmitted = drive(
            process, params, params.phase_length + 1, params.phase_length + params.ts
        )
        assert not any(isinstance(f, SeedFrame) for f in transmitted.values())

    def test_reused_phase_keeps_the_committed_seed(self, params):
        process = make_process(params, reuse=3, seed=7)
        drive(process, params, 1, params.phase_length)
        first = process.committed_phase_seed
        drive(process, params, params.phase_length + 1, 2 * params.phase_length)
        assert process.committed_phase_seed == first

    def test_fresh_seed_run_happens_again_after_reuse_window(self, params):
        process = make_process(params, reuse=2, seed=9)
        # Phases 1 (fresh), 2 (reuse), 3 (fresh again): during phase 3's
        # preamble the subroutine exists again.
        drive(process, params, 1, 2 * params.phase_length)
        process.transmit(2 * params.phase_length + 1)
        assert process._seed_subroutine is not None

    def test_bit_stream_continues_across_reused_phases(self, params):
        process = make_process(params, reuse=2, seed=11)
        process.on_input(1, Message(origin=0, sequence=0))
        drive(process, params, 1, 2 * params.phase_length)
        # Two phases of body rounds consumed from a single stream: more bits
        # than one phase alone could consume, and possibly beyond kappa
        # (allowed -- the stream extends deterministically).
        assert process.stats_max_bits_consumed > params.tprog * params.participant_bits // 2


class TestReuseEndToEnd:
    @pytest.fixture
    def network(self):
        return random_geographic_network(14, side=3.2, rng=13, require_connected=True)

    @pytest.mark.parametrize("reuse", [1, 2, 4])
    def test_deterministic_conditions_hold_for_every_reuse_factor(self, network, reuse):
        graph, _ = network
        delta, delta_prime = graph.degree_bounds()
        params = LBParams.small_for_testing(
            delta=delta, delta_prime=delta_prime, tprog=60, tack_phases=3, seed_phase_length=6
        )
        simulator = Simulator(
            graph,
            make_lb_processes(graph, params, random.Random(1), seed_reuse_phases=reuse),
            scheduler=IIDScheduler(graph, probability=0.5, seed=1),
            environment=SingleShotEnvironment(senders=[0, 1]),
        )
        trace = simulator.run(params.tack_rounds)
        report = check_lb_execution(trace, graph, params.tack_rounds, params.tprog_rounds,
                                    check_progress=False)
        assert report.timely_ack_ok, report.timely_ack_violations
        assert report.validity_ok, report.validity_violations

    def test_reuse_does_not_collapse_progress(self, network):
        graph, _ = network
        delta, delta_prime = graph.degree_bounds()
        params = LBParams.derive(0.2, delta=delta, delta_prime=delta_prime)
        simulator = Simulator(
            graph,
            make_lb_processes(graph, params, random.Random(2), seed_reuse_phases=3),
            scheduler=IIDScheduler(graph, probability=0.5, seed=2),
            environment=SaturatingEnvironment(senders=[0]),
        )
        trace = simulator.run(5 * params.phase_length)
        report = progress_report(trace, graph, window=params.tprog_rounds)
        assert report.num_applicable > 0
        assert report.failure_rate <= params.epsilon + 0.2
