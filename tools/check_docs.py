"""Docs integrity checker: every link and code reference must resolve.

Scans ``docs/*.md`` and ``README.md`` for

* **relative markdown links** -- ``[text](path)`` targets that are not
  absolute URLs must point at files that exist (fragments are stripped;
  pure in-page ``#anchor`` links are skipped), and
* **code references** -- backticked ``path/to/file.py:Symbol`` tokens whose
  path lies inside the repo (``src/``, ``tests/``, ``benchmarks/``,
  ``tools/``, ``examples/``) must name an existing file *and* a symbol
  defined in it.  Dotted symbols (``Class.method``) resolve through the
  class body: methods, nested classes, class-level assignments, ``__slots__``
  entries, and ``self.attr`` assignments inside methods all count.

Exit status is non-zero when anything dangles, with one line per problem --
this is the CI docs job (see ``.github/workflows/ci.yml``).

Run it directly::

    python tools/check_docs.py
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Only backticked file:symbol references under these roots are checked;
#: anything else (e.g. the ``path/to/file.py:Symbol`` convention placeholder)
#: is treated as illustrative.
CHECKED_PREFIXES = ("src/", "tests/", "benchmarks/", "tools/", "examples/")

MARKDOWN_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_REFERENCE = re.compile(r"`([\w./-]+\.py):([A-Za-z_][\w.]*)`")


def doc_files() -> List[Path]:
    docs = sorted((REPO_ROOT / "docs").glob("*.md"))
    readme = REPO_ROOT / "README.md"
    if readme.exists():
        docs.append(readme)
    return docs


def iter_links(text: str) -> Iterator[str]:
    for match in MARKDOWN_LINK.finditer(text):
        yield match.group(1)


def iter_code_references(text: str) -> Iterator[Tuple[str, str]]:
    for match in CODE_REFERENCE.finditer(text):
        yield match.group(1), match.group(2)


def check_link(doc: Path, target: str) -> Optional[str]:
    if target.startswith(("http://", "https://", "mailto:")):
        return None
    path, _, _fragment = target.partition("#")
    if not path:  # in-page anchor
        return None
    resolved = (doc.parent / path).resolve()
    if not resolved.exists():
        return f"{doc.relative_to(REPO_ROOT)}: broken link -> {target}"
    return None


def _class_member_names(node: ast.ClassDef) -> Set[str]:
    """Every name a ``Class.member`` reference may legitimately use."""
    names: Set[str] = set()
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(item.name)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                    if target.id == "__slots__":
                        names.update(_slot_strings(item.value))
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            names.add(item.target.id)
    # self.attr assignments in the class's *own* methods (not in nested
    # classes' methods, whose attributes belong to the nested class).
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for sub in ast.walk(method):
            if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        names.add(target.attr)
    return names


def _slot_strings(value: ast.expr) -> Set[str]:
    names: Set[str] = set()
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        for element in value.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                names.add(element.value)
    return names


def check_code_reference(doc: Path, path: str, symbol: str) -> Optional[str]:
    if not path.startswith(CHECKED_PREFIXES):
        return None
    where = f"{doc.relative_to(REPO_ROOT)}: `{path}:{symbol}`"
    source = REPO_ROOT / path
    if not source.exists():
        return f"{where} -- file does not exist"
    try:
        tree = ast.parse(source.read_text())
    except SyntaxError as error:  # pragma: no cover - tree is CI-tested code
        return f"{where} -- file failed to parse: {error}"

    parts = symbol.split(".")
    top = {
        item.name: item
        for item in tree.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    }
    for item in tree.body:  # module-level assignments (constants)
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    top.setdefault(target.id, item)
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            top.setdefault(item.target.id, item)

    head = top.get(parts[0])
    if head is None:
        return f"{where} -- no top-level symbol {parts[0]!r}"
    if len(parts) == 1:
        return None
    if not isinstance(head, ast.ClassDef):
        return f"{where} -- {parts[0]!r} is not a class, cannot hold {parts[1]!r}"
    # Resolve the dotted tail one level at a time (nested classes supported).
    node: ast.ClassDef = head
    for depth, part in enumerate(parts[1:], start=1):
        members = _class_member_names(node)
        if part not in members:
            owner = ".".join(parts[:depth])
            return f"{where} -- {owner!r} has no member {part!r}"
        nested = next(
            (
                item
                for item in node.body
                if isinstance(item, ast.ClassDef) and item.name == part
            ),
            None,
        )
        if nested is None:
            if depth != len(parts) - 1:
                owner = ".".join(parts[: depth + 1])
                return f"{where} -- {owner!r} is not a nested class"
            break
        node = nested
    return None


def main() -> int:
    docs = doc_files()
    if not (REPO_ROOT / "docs").is_dir():
        print("FAIL: docs/ directory is missing", file=sys.stderr)
        return 1
    problems: List[str] = []
    links = refs = 0
    for doc in docs:
        text = doc.read_text()
        for target in iter_links(text):
            links += 1
            problem = check_link(doc, target)
            if problem:
                problems.append(problem)
        for path, symbol in iter_code_references(text):
            refs += 1
            problem = check_code_reference(doc, path, symbol)
            if problem:
                problems.append(problem)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    print(
        f"checked {len(docs)} docs, {links} links, {refs} code references: "
        f"{len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
