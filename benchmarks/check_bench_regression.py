"""CI guard: fail when engine throughput regresses against the committed baseline.

Compares a freshly produced ``bench_engine`` JSON report (e.g. from
``bench_engine.py --quick``) against the repo's committed
``BENCH_engine.json`` at one network size and exits non-zero when the batched
engine's rounds/sec regressed by more than the allowed fraction.

Raw rounds/sec are only comparable between runs on the same machine, and CI
runners are not the machine the baseline was committed from.  The default
mode therefore *normalizes* each report's batched rounds/sec by its own
legacy rounds/sec -- the batched/legacy speedup -- which cancels the hardware
factor and regresses only when the batched engine got slower *relative to
the same code's legacy path*.  Pass ``--absolute`` for raw rounds/sec
comparisons between runs on one machine.

Usage (the CI smoke step)::

    PYTHONPATH=src python benchmarks/bench_engine.py --quick --output /tmp/smoke.json
    PYTHONPATH=src python benchmarks/check_bench_regression.py \
        --baseline BENCH_engine.json --fresh /tmp/smoke.json \
        --at-n 100 --max-regression 0.30
"""

from __future__ import annotations

import argparse
import json
import sys


def _row_for(report: dict, n: int) -> dict:
    for row in report.get("workloads", []):
        if row.get("n") == n:
            return row
    raise KeyError(f"no n={n} row in report (sizes: {[r.get('n') for r in report.get('workloads', [])]})")


def _metric(row: dict, absolute: bool) -> float:
    batched = row["batched_rps"]
    if absolute:
        return batched
    return batched / row["legacy_rps"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed BENCH_engine.json")
    parser.add_argument("--fresh", required=True, help="freshly produced report to check")
    parser.add_argument("--at-n", type=int, default=100, help="network size to compare")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="maximum allowed fractional drop (0.30 = fail below 70%% of baseline)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw rounds/sec (same-machine runs only) instead of the "
        "hardware-independent batched/legacy speedup",
    )
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.fresh) as handle:
        fresh = json.load(handle)

    if not fresh.get("all_traces_identical", False):
        print("FAIL: fresh report says engine traces diverged", file=sys.stderr)
        return 1

    base_value = _metric(_row_for(baseline, args.at_n), args.absolute)
    fresh_value = _metric(_row_for(fresh, args.at_n), args.absolute)
    floor = base_value * (1.0 - args.max_regression)
    unit = "rounds/sec" if args.absolute else "batched/legacy speedup"

    print(
        f"n={args.at_n}: baseline {unit} {base_value:.2f}, fresh {fresh_value:.2f}, "
        f"floor {floor:.2f} (max regression {args.max_regression:.0%})"
    )
    if fresh_value < floor:
        print(
            f"FAIL: batched engine {unit} at n={args.at_n} regressed more than "
            f"{args.max_regression:.0%} vs the committed baseline",
            file=sys.stderr,
        )
        return 1
    print("OK: no throughput regression beyond the allowed margin")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
