"""CI guard: fail when engine throughput regresses against the committed baseline.

Compares a freshly produced ``bench_engine`` JSON report (e.g. from
``bench_engine.py --quick``) against the repo's committed
``BENCH_engine.json`` at one network size and exits non-zero when a gated
engine's rounds/sec regressed by more than the allowed fraction.

Raw rounds/sec are only comparable between runs on the same machine, and CI
runners are not the machine the baseline was committed from.  The default
mode therefore *normalizes* each report's engine rounds/sec by its own
legacy rounds/sec -- the engine/legacy speedup -- which cancels the hardware
factor and regresses only when the engine got slower *relative to the same
code's legacy path*.  Pass ``--absolute`` for raw rounds/sec comparisons
between runs on one machine.

The PR-2 ``batched`` engine, the PR-3 ``vector`` engine, and the PR-6
``kernel`` lanes (``kernel`` = FULL traces, ``kernel_counters`` = the
counters-only lane) are gated by default (``--engines``).  A report that
lacks an engine's column or the requested network size -- e.g. a baseline
committed before that engine existed -- is *skipped* for that engine with a
warning instead of failing with a ``KeyError``, so the gate stays usable
across baseline generations.

The PR-7 suite-throughput report (``bench_suite_throughput.py`` writing
``BENCH_suite.json``) is gated separately via ``--suite-fresh``: its headline
``warm_speedup`` (warm store-served rerun over cold execution) is a
same-host ratio, so it is compared against an absolute floor
(``--min-warm-speedup``) rather than a committed baseline, and the report's
correctness booleans (byte-identical warm rows, zero warm misses, merged
shards == unsharded) must all hold.

The PR-10 ``fleet`` section of the same report (multi-process work-stealing
executor on a skewed modeled-latency workload) is gated by
``--min-fleet-speedup``: fleet-of-4 over the workers=1 arm of the *same*
executor, a core-count-independent ratio, plus its two identity booleans
(fleet report == serial report, both on the skew suite and the real one).
Reports predating the section are skipped with a warning.

Usage (the CI smoke steps)::

    PYTHONPATH=src python benchmarks/bench_engine.py --quick --output /tmp/smoke.json
    PYTHONPATH=src python benchmarks/check_bench_regression.py \
        --baseline BENCH_engine.json --fresh /tmp/smoke.json \
        --at-n 100 --max-regression 0.30

    PYTHONPATH=src:. python benchmarks/bench_suite_throughput.py \
        --quick --output /tmp/suite.json
    PYTHONPATH=src python benchmarks/check_bench_regression.py \
        --suite-fresh /tmp/suite.json --min-warm-speedup 20
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional


def _row_for(report: dict, n: int) -> Optional[dict]:
    for row in report.get("workloads", []):
        if row.get("n") == n:
            return row
    return None


def _metric(row: dict, engine: str, absolute: bool):
    """``(value, None)`` for the gated metric, or ``(None, reason)``."""
    engine_rps = row.get(f"{engine}_rps")
    if engine_rps is None:
        return None, f"lacks the '{engine}_rps' column"
    if not absolute:
        legacy_rps = row.get("legacy_rps")
        if not legacy_rps:
            return None, "lacks a usable 'legacy_rps' denominator"
        return engine_rps / legacy_rps, None
    return engine_rps, None


def check_engine(
    engine: str,
    baseline: dict,
    fresh: dict,
    at_n: int,
    max_regression: float,
    absolute: bool,
) -> Optional[bool]:
    """Gate one engine; True=pass, False=fail, None=skipped (data missing)."""
    unit = "rounds/sec" if absolute else f"{engine}/legacy speedup"
    for name, report in (("baseline", baseline), ("fresh", fresh)):
        if _row_for(report, at_n) is None:
            sizes = [r.get("n") for r in report.get("workloads", [])]
            print(f"SKIP [{engine}]: {name} report has no n={at_n} row (sizes: {sizes})")
            return None
    base_value, base_reason = _metric(_row_for(baseline, at_n), engine, absolute)
    fresh_value, fresh_reason = _metric(_row_for(fresh, at_n), engine, absolute)
    for name, value, reason in (
        ("baseline", base_value, base_reason),
        ("fresh", fresh_value, fresh_reason),
    ):
        if value is None:
            print(
                f"SKIP [{engine}]: {name} report {reason} at n={at_n} "
                f"(older benchmark format?)"
            )
            return None

    floor = base_value * (1.0 - max_regression)
    ratio = fresh_value / base_value if base_value else float("inf")
    allowed = 1.0 - max_regression
    print(
        f"n={at_n} [{engine}]: baseline {unit} {base_value:.2f}, fresh {fresh_value:.2f}, "
        f"floor {floor:.2f} (max regression {max_regression:.0%})"
    )
    if fresh_value < floor:
        print(
            f"FAIL [{engine}]: measured fresh/baseline ratio {ratio:.3f} is below the "
            f"allowed {allowed:.3f} -- the {engine} engine {unit} at n={at_n} "
            f"regressed more than {max_regression:.0%} vs the committed baseline",
            file=sys.stderr,
        )
        return False
    print(f"OK [{engine}]: ratio {ratio:.3f} >= allowed {allowed:.3f}")
    return True


def check_fleet(fresh: dict, min_fleet_speedup: float) -> Optional[bool]:
    """Gate the PR-10 ``fleet`` section; True=pass, False=fail, None=skipped.

    Like ``warm_speedup``, the fleet speedup divides two same-host timings --
    and because both arms run the same executor on a *modeled-latency*
    workload (see ``bench_suite_throughput.py``), it measures dispatch
    overlap and steal balance rather than CPU core count, so the absolute
    floor holds even on single-core runners.  The identity booleans are hard
    correctness claims: a fast fleet that produced a different report is a
    lease-protocol bug, not a perf number.
    """
    fleet = fresh.get("fleet")
    if not fleet:
        print(
            "SKIP [fleet]: report has no 'fleet' section "
            "(pre-fleet benchmark format?)"
        )
        return None
    ok = True
    for key, meaning in (
        ("skew_identical", "fleet skew report equals its serial (workers=1) run"),
        ("merge_identical", "cold fleet report equals the serial run_suite report"),
    ):
        if not fleet.get(key, False):
            print(f"FAIL [fleet]: report says not {key} ({meaning})", file=sys.stderr)
            ok = False
    speedup = fleet.get("speedup")
    if speedup is None:
        print("FAIL [fleet]: section lacks a 'speedup' column", file=sys.stderr)
        return False
    print(
        f"fleet: skew speedup {speedup:.1f} over workers=1, "
        f"floor {min_fleet_speedup:.1f} "
        f"(serial {fleet.get('serial_s', float('nan')):.4f}s, "
        f"fleet {fleet.get('fleet_s', float('nan')):.4f}s, "
        f"workers={fleet.get('workers', '?')}, "
        f"steals={fleet.get('steals', '?')}, "
        f"cpu_count={fleet.get('cpu_count', '?')})"
    )
    if speedup < min_fleet_speedup:
        print(
            f"FAIL [fleet]: fleet-of-{fleet.get('workers', '?')} is only "
            f"{speedup:.1f}x faster than the workers=1 arm on the skewed "
            f"workload, below the required {min_fleet_speedup:.1f}x -- "
            "dispatch overlap or lease balance regressed",
            file=sys.stderr,
        )
        ok = False
    elif ok:
        print(f"OK [fleet]: speedup {speedup:.1f} >= floor {min_fleet_speedup:.1f}")
    return ok


def check_suite(fresh: dict, min_warm_speedup: float) -> bool:
    """Gate a bench_suite_throughput report; True=pass, False=fail.

    The warm-over-cold speedup divides two timings from the same run on the
    same host, so (unlike raw rounds/sec) an absolute floor is meaningful on
    any machine.  The identity booleans are hard correctness claims -- a
    fast warm rerun that recomputed trials or changed a row is a cache bug,
    not a perf regression -- so they fail the gate regardless of timing.
    """
    ok = True
    for key, meaning in (
        ("rows_identical", "warm rerun reproduced the cold run's metric rows"),
        ("merge_identical", "merged shard report equals the unsharded report"),
    ):
        if not fresh.get(key, False):
            print(f"FAIL [suite]: report says not {key} ({meaning})", file=sys.stderr)
            ok = False
    warm_misses = fresh.get("warm_misses")
    if warm_misses != 0:
        print(
            f"FAIL [suite]: warm rerun recomputed {warm_misses} trial(s) "
            "(expected every record served from the store)",
            file=sys.stderr,
        )
        ok = False
    speedup = fresh.get("warm_speedup")
    if speedup is None:
        print("FAIL [suite]: report lacks a 'warm_speedup' column", file=sys.stderr)
        return False
    print(
        f"suite: warm/cold speedup {speedup:.1f}, floor {min_warm_speedup:.1f} "
        f"(cold {fresh.get('cold_s', float('nan')):.4f}s, "
        f"warm {fresh.get('warm_s', float('nan')):.4f}s, "
        f"{fresh.get('tasks', '?')} tasks)"
    )
    if speedup < min_warm_speedup:
        print(
            f"FAIL [suite]: warm rerun is only {speedup:.1f}x faster than cold, "
            f"below the required {min_warm_speedup:.1f}x -- the result store's "
            "warm path regressed",
            file=sys.stderr,
        )
        ok = False
    elif ok:
        print(f"OK [suite]: speedup {speedup:.1f} >= floor {min_warm_speedup:.1f}")
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", help="committed BENCH_engine.json")
    parser.add_argument("--fresh", help="freshly produced engine report to check")
    parser.add_argument("--at-n", type=int, default=100, help="network size to compare")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="maximum allowed fractional drop (0.30 = fail below 70%% of baseline)",
    )
    parser.add_argument(
        "--engines",
        default="batched,vector,kernel,kernel_counters",
        help="comma-separated engine names to gate (each needs an <engine>_rps "
        "column; engines missing from either report are skipped with a warning)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw rounds/sec (same-machine runs only) instead of the "
        "hardware-independent engine/legacy speedup",
    )
    parser.add_argument(
        "--suite-fresh",
        help="freshly produced bench_suite_throughput report (BENCH_suite.json "
        "format) to gate on warm-over-cold speedup and cache correctness",
    )
    parser.add_argument(
        "--min-warm-speedup",
        type=float,
        default=20.0,
        help="minimum required warm/cold speedup in the --suite-fresh report",
    )
    parser.add_argument(
        "--min-fleet-speedup",
        type=float,
        default=2.5,
        help="minimum required fleet-over-serial speedup on the skewed "
        "workload in the --suite-fresh report's 'fleet' section (sections "
        "missing from older reports are skipped with a warning)",
    )
    args = parser.parse_args(argv)

    if args.suite_fresh is None and (args.baseline is None or args.fresh is None):
        parser.error("nothing to gate: pass --baseline/--fresh and/or --suite-fresh")
    if (args.baseline is None) != (args.fresh is None):
        parser.error("--baseline and --fresh must be given together")

    failed = False

    if args.suite_fresh is not None:
        with open(args.suite_fresh) as handle:
            suite_fresh = json.load(handle)
        if not check_suite(suite_fresh, args.min_warm_speedup):
            failed = True
        if check_fleet(suite_fresh, args.min_fleet_speedup) is False:
            failed = True

    if args.baseline is not None:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        with open(args.fresh) as handle:
            fresh = json.load(handle)

        if not fresh.get("all_traces_identical", False):
            print("FAIL: fresh report says engine traces diverged", file=sys.stderr)
            return 1

        engines = [name.strip() for name in args.engines.split(",") if name.strip()]
        if not engines:
            print("FAIL: --engines selected nothing to gate", file=sys.stderr)
            return 1

        verdicts = [
            check_engine(
                engine, baseline, fresh, args.at_n, args.max_regression, args.absolute
            )
            for engine in engines
        ]
        if any(verdict is False for verdict in verdicts):
            failed = True
        if all(verdict is None for verdict in verdicts):
            # Nothing was comparable at all -- almost certainly a
            # misconfiguration (wrong --at-n, or a report from a different
            # benchmark entirely).
            print(
                "FAIL: no engine could be compared between the two reports",
                file=sys.stderr,
            )
            return 1

    if failed:
        return 1
    print("OK: no throughput regression beyond the allowed margin")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
