"""E5 -- Per-round receive probability (Lemma 4.2).

Reproduced claims: in a body round of a phase whose seed agreement succeeded,
a receiver ``u`` with at least one actively broadcasting reliable neighbor
receives *some* message with probability

    p_u >= c2 / (r² log(1/ε2) log Δ),

and receives a message from a *specific* active neighbor ``v`` with
probability ``p_{u,v} >= p_u / Δ'``.

The harness instruments single phases: it runs LBAlg with saturating senders,
counts (over all body rounds and all receivers adjacent to a sender) the
fraction of rounds with a successful data reception, and compares with the
Lemma 4.2 formula.  Because the implementation's participant probability is
the power-of-two version of ``1/(r² log(1/ε2))``, the measured rate is
expected to land within a small constant factor of the formula, not exactly
on it -- the table reports the ratio so that constant is visible.
"""

from __future__ import annotations

from typing import Dict

from repro import LBParams
from repro.analysis import theory
from repro.analysis.stats import mean
from repro.analysis.sweep import SweepResult, sweep
from repro.scenarios import resolve_senders, run as run_scenario
from repro.simulation.metrics import data_reception_rounds

from benchmarks.common import lb_point_spec, print_and_save, run_once_benchmark

TARGET_DELTAS = (8, 16)
EPSILON = 0.2
TRIALS = 3
PHASES_PER_TRIAL = 3

#: Declared once and shared between the spec (who transmits) and the
#: receiver sampling below (who listens next to a transmitter).
SENDERS_SELECTION = {"select": "first", "divisor": 5, "min": 2}


def _body_rounds(params: LBParams, phases: int):
    for phase in range(phases):
        base = phase * params.phase_length
        for offset in range(params.ts + 1, params.phase_length + 1):
            yield base + offset


def _run_point(target_delta: int) -> Dict[str, float]:
    per_receiver_rates = []
    params = None
    measured_delta = None
    measured_delta_prime = None

    for trial in range(TRIALS):
        spec = lb_point_spec(
            "bench-round-probability",
            target_delta=target_delta,
            graph_seed=5200 + 11 * target_delta + trial,
            trial_seed=trial,
            epsilon=EPSILON,
            environment="saturating",
            senders=SENDERS_SELECTION,
            rounds=PHASES_PER_TRIAL,
            rounds_unit="phases",
        )
        result = run_scenario(spec)
        (point,) = result.trials
        graph, params, trace = point.graph, point.params, point.trace
        measured_delta, measured_delta_prime = params.delta, params.delta_prime
        senders = resolve_senders(graph, SENDERS_SELECTION)

        body_rounds = set(_body_rounds(params, PHASES_PER_TRIAL))
        receivers = set()
        for sender in senders:
            receivers |= set(graph.reliable_neighbors(sender))
        receivers -= set(senders)
        for receiver in receivers:
            heard = set(data_reception_rounds(trace, receiver)) & body_rounds
            per_receiver_rates.append(len(heard) / len(body_rounds))

    theory_pu = theory.lemma42_receive_probability(measured_delta, EPSILON, r=2.0)
    measured_pu = mean(per_receiver_rates)
    return {
        "measured_delta": measured_delta,
        "measured_delta_prime": measured_delta_prime,
        "receivers_sampled": len(per_receiver_rates),
        "measured_pu": measured_pu,
        "theory_pu_bound": theory_pu,
        "measured_over_theory": measured_pu / theory_pu,
        "theory_puv_bound": theory.lemma42_pairwise_probability(
            measured_delta, measured_delta_prime, EPSILON, r=2.0
        ),
    }


def run_round_probability_experiment() -> SweepResult:
    """Run the E5 sweep and return its table."""
    return sweep({"target_delta": TARGET_DELTAS}, run=_run_point)


def test_bench_round_probability(benchmark):
    result = run_once_benchmark(benchmark, run_round_probability_experiment)
    print_and_save(
        "E5_round_probability",
        "E5 -- per-body-round receive probability vs the Lemma 4.2 bound",
        result,
        columns=[
            "target_delta",
            "measured_delta",
            "measured_delta_prime",
            "receivers_sampled",
            "measured_pu",
            "theory_pu_bound",
            "measured_over_theory",
            "theory_puv_bound",
        ],
    )
    for row in result:
        # The measured per-round rate is positive and within a constant factor
        # of the Lemma 4.2 shape (the implementation's power-of-two rounding
        # costs at most ~4x; contention and collisions cost a bit more).
        assert row["measured_pu"] > 0.0
        assert row["measured_over_theory"] > 0.1
    # The probability shrinks as Δ grows (the 1/log Δ factor plus contention).
    rows = {r["target_delta"]: r for r in result}
    assert rows[16]["measured_pu"] <= rows[8]["measured_pu"] * 1.5
