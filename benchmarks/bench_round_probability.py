"""E5 -- Per-round receive probability (Lemma 4.2).

Reproduced claims: in a body round of a phase whose seed agreement succeeded,
a receiver ``u`` with at least one actively broadcasting reliable neighbor
receives *some* message with probability

    p_u >= c2 / (r² log(1/ε2) log Δ),

and receives a message from a *specific* active neighbor ``v`` with
probability ``p_{u,v} >= p_u / Δ'``.

The harness is a **scenario suite**: one entry per (Δ, trial) declaring the
``params`` / ``body_receive`` metrics, one group per Δ.  The ``body_receive``
metric is the instrumentation the pre-suite harness hand-wired: it rates, for
each receiver adjacent to a sender, the fraction of body rounds with a
successful data reception; the pooled group ``rate_mean`` equals the flat
mean over all per-receiver rates the old code computed.  The checked-in
manifest at ``examples/suites/bench_round_probability.json`` is this suite as
data (``python -m repro suite ...`` reproduces the table; pinned by
``tests/test_suites.py``).  Because the implementation's participant
probability is the power-of-two version of ``1/(r² log(1/ε2))``, the measured
rate is expected to land within a small constant factor of the formula, not
exactly on it -- the table reports the ratio so that constant is visible.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.analysis import theory
from repro.analysis.sweep import SweepResult
from repro.scenarios import MetricSpec, SuiteEntry, SuiteReport, SuiteSpec, run_suite

from benchmarks.common import default_jobs, lb_point_spec, print_and_save, run_once_benchmark

TARGET_DELTAS = (8, 16)
EPSILON = 0.2
TRIALS = 3
PHASES_PER_TRIAL = 3

SUITE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "examples", "suites", "bench_round_probability.json"
)

#: Declared once and shared between the spec (who transmits) and the
#: ``body_receive`` metric (who listens next to a transmitter -- the metric
#: reads the selection back off the scenario's environment).
SENDERS_SELECTION = {"select": "first", "divisor": 5, "min": 2}

#: ``trace_mode="auto"`` resolves to FULL -- ``body_receive`` needs frames to
#: tell data receptions from seed-agreement control traffic.
ROUND_PROBABILITY_METRICS = (MetricSpec("params"), MetricSpec("body_receive"))


def build_round_probability_suite() -> SuiteSpec:
    """The E5 experiment as a :class:`~repro.scenarios.suite.SuiteSpec`.

    Seeds match the pre-suite harness exactly (``graph_seed = 5200 + 11Δ + trial``,
    process RNGs rooted at the trial index), so the suite's pooled group
    aggregates equal the historical table values.
    """
    entries: List[SuiteEntry] = []
    for target_delta in TARGET_DELTAS:
        for trial in range(TRIALS):
            spec = lb_point_spec(
                f"bench-round-probability-d{target_delta}-t{trial}",
                target_delta=target_delta,
                graph_seed=5200 + 11 * target_delta + trial,
                trial_seed=trial,
                epsilon=EPSILON,
                environment="saturating",
                senders=SENDERS_SELECTION,
                rounds=PHASES_PER_TRIAL,
                rounds_unit="phases",
                trace_mode="auto",
                metrics=ROUND_PROBABILITY_METRICS,
            )
            entries.append(
                SuiteEntry(id=spec.name, scenario=spec, group=f"delta-{target_delta}")
            )
    return SuiteSpec(
        name="bench-round-probability",
        description=(
            "E5 -- per-body-round receive probability vs the Lemma 4.2 bound: "
            "saturating senders, receivers pooled per degree target"
        ),
        entries=tuple(entries),
    )


def round_probability_rows_from_report(report: SuiteReport) -> SweepResult:
    """Reduce the suite report to the benchmark's one-row-per-Δ table."""
    result = SweepResult()
    for target_delta in TARGET_DELTAS:
        group = f"delta-{target_delta}"
        summaries = report.group_summaries[group]
        members = [e for e in report.entries if e.entry.group_label == group]
        # The pre-suite harness reported the *last* trial's measured bounds.
        last_row = members[-1].result.trials[-1].metric_row
        measured_delta = int(last_row["params.delta"])
        measured_delta_prime = int(last_row["params.delta_prime"])
        theory_pu = theory.lemma42_receive_probability(measured_delta, EPSILON, r=2.0)
        measured_pu = summaries["body_receive.rate_mean"]["value"]
        result.append(
            {
                "target_delta": target_delta,
                "measured_delta": measured_delta,
                "measured_delta_prime": measured_delta_prime,
                "receivers_sampled": int(summaries["body_receive.receivers"]["sum"]),
                "measured_pu": measured_pu,
                "theory_pu_bound": theory_pu,
                "measured_over_theory": measured_pu / theory_pu,
                "theory_puv_bound": theory.lemma42_pairwise_probability(
                    measured_delta, measured_delta_prime, EPSILON, r=2.0
                ),
            }
        )
    return result


def run_round_probability_experiment(jobs: Optional[int] = None) -> SweepResult:
    """Run the E5 suite and return its table."""
    report = run_suite(
        build_round_probability_suite(),
        jobs=jobs if jobs is not None else default_jobs(),
    )
    return round_probability_rows_from_report(report)


def test_bench_round_probability(benchmark):
    result = run_once_benchmark(benchmark, run_round_probability_experiment)
    print_and_save(
        "E5_round_probability",
        "E5 -- per-body-round receive probability vs the Lemma 4.2 bound",
        result,
        columns=[
            "target_delta",
            "measured_delta",
            "measured_delta_prime",
            "receivers_sampled",
            "measured_pu",
            "theory_pu_bound",
            "measured_over_theory",
            "theory_puv_bound",
        ],
    )
    for row in result:
        # The measured per-round rate is positive and within a constant factor
        # of the Lemma 4.2 shape (the implementation's power-of-two rounding
        # costs at most ~4x; contention and collisions cost a bit more).
        assert row["measured_pu"] > 0.0
        assert row["measured_over_theory"] > 0.1
    # The probability shrinks as Δ grows (the 1/log Δ factor plus contention).
    rows = {r["target_delta"]: r for r in result}
    assert rows[16]["measured_pu"] <= rows[8]["measured_pu"] * 1.5


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-suite",
        action="store_true",
        help=f"regenerate the checked-in manifest at {SUITE_PATH}",
    )
    args = parser.parse_args()
    if args.write_suite:
        print("wrote", build_round_probability_suite().save(os.path.normpath(SUITE_PATH)))
    else:
        result = run_round_probability_experiment()
        print_and_save(
            "E5_round_probability",
            "E5 -- per-body-round receive probability vs the Lemma 4.2 bound",
            result,
        )
