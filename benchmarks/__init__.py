"""Benchmark harnesses reproducing the paper's quantitative claims.

One module per experiment of the DESIGN.md experiment index (E1-E10).  Each
module exposes a ``run_*_experiment`` function that returns the experiment's
data table (a :class:`repro.analysis.sweep.SweepResult`) and a pytest-benchmark
test that executes the harness exactly once, prints the table, and stores it
under ``benchmarks/results/`` for EXPERIMENTS.md.
"""
