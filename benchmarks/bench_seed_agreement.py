"""E1 / E2 -- Seed agreement quality and runtime (Theorem 3.1).

Reproduced claims:

* **E1 (agreement quality)**: ``SeedAlg(ε1)`` commits at most
  ``δ = O(r² log(1/ε1))`` distinct seed owners in any closed G' neighborhood,
  with probability at least 1 − ε.  We measure, per (Δ, ε1) grid point, the
  maximum and mean neighborhood owner counts over repeated trials and the
  fraction of trials violating the derived δ.
* **E2 (runtime)**: the algorithm takes ``O(log Δ · log²(1/ε1))`` rounds.  We
  report the exact round count used (it is deterministic given the
  parameters) next to the theoretical shape, and the measured commit
  latencies.
"""

from __future__ import annotations

import random
from typing import Dict

from repro import IIDScheduler, SeedParams, Simulator, check_seed_execution
from repro.analysis import theory
from repro.analysis.stats import mean
from repro.analysis.sweep import SweepResult, sweep
from repro.core.seed_agreement import SeedAgreementProcess
from repro.core.seed_spec import decide_latency_rounds
from repro.simulation.metrics import unique_seed_owner_counts
from repro.simulation.process import ProcessContext

from benchmarks.common import network_with_target_degree, print_and_save, run_once_benchmark

TARGET_DELTAS = (8, 16, 32)
EPSILONS = (0.2, 0.1)
TRIALS = 8


def _run_point(target_delta: int, epsilon: float) -> Dict[str, float]:
    max_owner_counts = []
    mean_owner_counts = []
    agreement_violation_trials = 0
    commit_latencies = []
    params = None
    measured_delta = None

    for trial in range(TRIALS):
        graph, _ = network_with_target_degree(target_delta, seed=1000 * target_delta + trial)
        delta, delta_prime = graph.degree_bounds()
        measured_delta = delta
        params = SeedParams.derive(epsilon, delta=delta, r=2.0)
        master = random.Random(trial)
        processes = {}
        for vertex in sorted(graph.vertices):
            ctx = ProcessContext(
                vertex=vertex, delta=delta, delta_prime=delta_prime, r=2.0,
                rng=random.Random(master.getrandbits(64)),
            )
            processes[vertex] = SeedAgreementProcess(ctx, params)
        simulator = Simulator(
            graph, processes, scheduler=IIDScheduler(graph, probability=0.5, seed=trial)
        )
        trace = simulator.run(params.total_rounds)

        report = check_seed_execution(trace, graph, delta_bound=params.delta_bound)
        assert report.well_formed and report.consistent
        counts = unique_seed_owner_counts(trace, graph)
        max_owner_counts.append(max(counts.values()))
        mean_owner_counts.append(mean(list(counts.values())))
        if not report.agreement_ok:
            agreement_violation_trials += 1
        commit_latencies.extend(decide_latency_rounds(trace).values())

    return {
        "measured_delta": measured_delta,
        "delta_bound": params.delta_bound,
        "max_owners": max(max_owner_counts),
        "mean_owners": mean(mean_owner_counts),
        "violation_rate": agreement_violation_trials / TRIALS,
        "rounds_used": params.total_rounds,
        "theory_rounds_shape": theory.seed_runtime_bound(measured_delta, epsilon),
        "theory_delta_shape": theory.seed_delta_bound(epsilon, r=2.0),
        "mean_commit_round": mean(commit_latencies),
    }


def run_seed_agreement_experiment() -> SweepResult:
    """Run the E1/E2 grid and return its table."""
    return sweep(
        {"target_delta": TARGET_DELTAS, "epsilon": EPSILONS},
        run=_run_point,
    )


def test_bench_seed_agreement(benchmark):
    result = run_once_benchmark(benchmark, run_seed_agreement_experiment)
    print_and_save(
        "E1_E2_seed_agreement",
        "E1/E2 -- SeedAlg agreement quality and runtime (Theorem 3.1)",
        result,
        columns=[
            "target_delta",
            "epsilon",
            "measured_delta",
            "max_owners",
            "mean_owners",
            "delta_bound",
            "violation_rate",
            "rounds_used",
            "theory_rounds_shape",
            "mean_commit_round",
        ],
    )
    # Sanity constraints on the reproduced shape (not absolute numbers):
    for epsilon in EPSILONS:
        rows = result.where(epsilon=epsilon).rows
        by_delta = {row["target_delta"]: row for row in rows}
        # Runtime grows with Δ (log shape) ...
        assert by_delta[32]["rounds_used"] >= by_delta[8]["rounds_used"]
        # ... and the observed owner counts respect the δ bound in most trials.
        assert all(row["violation_rate"] <= 0.25 for row in rows)
        assert all(row["max_owners"] <= row["delta_bound"] + 2 for row in rows)
