"""E1 / E2 -- Seed agreement quality and runtime (Theorem 3.1).

Reproduced claims:

* **E1 (agreement quality)**: ``SeedAlg(ε1)`` commits at most
  ``δ = O(r² log(1/ε1))`` distinct seed owners in any closed G' neighborhood,
  with probability at least 1 − ε.  We measure, per (Δ, ε1) grid point, the
  maximum and mean neighborhood owner counts over repeated trials and the
  fraction of trials violating the derived δ.
* **E2 (runtime)**: the algorithm takes ``O(log Δ · log²(1/ε1))`` rounds.  We
  report the exact round count used (it is deterministic given the
  parameters) next to the theoretical shape, and the measured commit
  latencies.

The harness is a **scenario suite**: one entry per (Δ, ε1, trial), grouped
per (Δ, ε1) grid point, with the ``params`` / ``graph_stats`` /
``seed_owners`` / ``seed_spec`` / ``commit_latency`` metrics declared on the
spec.  The checked-in manifest at ``examples/suites/bench_seed_agreement.json``
is this suite as data (pinned by ``tests/test_suites.py``); seeds match the
pre-suite harness exactly (``graph_seed = 1000Δ + trial``, process RNGs
rooted at the trial index), so the table values are unchanged.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.analysis import theory
from repro.analysis.stats import mean
from repro.analysis.sweep import SweepResult
from repro.scenarios import (
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    MetricSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    SuiteEntry,
    SuiteReport,
    SuiteSpec,
    TopologySpec,
    run_suite,
)

from benchmarks.common import default_jobs, print_and_save, run_once_benchmark

TARGET_DELTAS = (8, 16, 32)
EPSILONS = (0.2, 0.1)
TRIALS = 8

SUITE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "examples", "suites", "bench_seed_agreement.json"
)

#: ``trace_mode="auto"`` resolves to EVENTS -- none of these reads frames.
SEED_METRICS = (
    MetricSpec("params"),
    MetricSpec("graph_stats"),
    MetricSpec("seed_owners"),
    MetricSpec("seed_spec"),
    MetricSpec("commit_latency"),
)


def _group(target_delta: int, epsilon: float) -> str:
    return f"d{target_delta}-e{epsilon}"


def build_seed_agreement_suite() -> SuiteSpec:
    """The E1/E2 grid as a :class:`~repro.scenarios.suite.SuiteSpec`."""
    entries: List[SuiteEntry] = []
    for target_delta in TARGET_DELTAS:
        for epsilon in EPSILONS:
            for trial in range(TRIALS):
                spec = ScenarioSpec(
                    name=f"bench-seed-d{target_delta}-e{epsilon}-t{trial}",
                    topology=TopologySpec(
                        "target_degree",
                        {"target_delta": target_delta, "seed": 1000 * target_delta + trial},
                    ),
                    algorithm=AlgorithmSpec("seed_agreement", {"epsilon": epsilon}),
                    scheduler=SchedulerSpec("iid", {"probability": 0.5, "seed": trial}),
                    environment=EnvironmentSpec("null", {}),
                    engine=EngineConfig(trace_mode="auto"),
                    run=RunPolicy(
                        rounds=1,
                        rounds_unit="algorithm",
                        trials=1,
                        master_seed=trial,
                        seed_policy="fixed",
                    ),
                    metrics=SEED_METRICS,
                )
                entries.append(
                    SuiteEntry(
                        id=spec.name, scenario=spec, group=_group(target_delta, epsilon)
                    )
                )
    return SuiteSpec(
        name="bench-seed-agreement",
        description=(
            "E1/E2 -- SeedAlg agreement quality and runtime vs (Delta, epsilon): "
            "standalone seed agreement to completion, pooled per grid point"
        ),
        entries=tuple(entries),
    )


def seed_agreement_rows_from_report(report: SuiteReport) -> SweepResult:
    """Reduce the suite report to the benchmark's one-row-per-grid-point table."""
    result = SweepResult()
    for target_delta in TARGET_DELTAS:
        for epsilon in EPSILONS:
            group = _group(target_delta, epsilon)
            members = [e for e in report.entries if e.entry.group_label == group]
            trial_rows = [m.result.trials[0].metric_row for m in members]
            # Well-formedness and consistency must hold in every trial (the
            # assertions that used to live inside the per-trial loop).
            for row in trial_rows:
                assert row["seed_spec.well_formedness_violations"] == 0
                assert row["seed_spec.consistency_violations"] == 0
            # The pre-suite harness reported the *last* trial's measured Δ
            # and derived parameters.
            last = trial_rows[-1]
            measured_delta = int(last["params.delta"])
            violating = sum(
                1 for row in trial_rows if row["seed_spec.agreement_violations"] > 0
            )
            row: Dict[str, float] = {
                "target_delta": target_delta,
                "epsilon": epsilon,
                "measured_delta": measured_delta,
                "delta_bound": int(last["params.delta_bound"]),
                "max_owners": max(int(r["seed_owners.owners_max"]) for r in trial_rows),
                "mean_owners": mean(
                    [
                        r["seed_owners.owner_count_sum"] / r["seed_owners.vertices"]
                        for r in trial_rows
                    ]
                ),
                "violation_rate": violating / TRIALS,
                "rounds_used": int(last["params.total_rounds"]),
                "theory_rounds_shape": theory.seed_runtime_bound(measured_delta, epsilon),
                "theory_delta_shape": theory.seed_delta_bound(epsilon, r=2.0),
                # The flat mean over every vertex's earliest decide round
                # across all trials == the pooled latency ratio.
                "mean_commit_round": (
                    sum(r["commit_latency.latency_sum"] for r in trial_rows)
                    / sum(r["commit_latency.decided"] for r in trial_rows)
                ),
            }
            result.append(row)
    return result


def run_seed_agreement_experiment(jobs: Optional[int] = None) -> SweepResult:
    """Run the E1/E2 suite and return its table."""
    report = run_suite(
        build_seed_agreement_suite(), jobs=jobs if jobs is not None else default_jobs()
    )
    return seed_agreement_rows_from_report(report)


def test_bench_seed_agreement(benchmark):
    result = run_once_benchmark(benchmark, run_seed_agreement_experiment)
    print_and_save(
        "E1_E2_seed_agreement",
        "E1/E2 -- SeedAlg agreement quality and runtime (Theorem 3.1)",
        result,
        columns=[
            "target_delta",
            "epsilon",
            "measured_delta",
            "max_owners",
            "mean_owners",
            "delta_bound",
            "violation_rate",
            "rounds_used",
            "theory_rounds_shape",
            "mean_commit_round",
        ],
    )
    # Sanity constraints on the reproduced shape (not absolute numbers):
    for epsilon in EPSILONS:
        rows = result.where(epsilon=epsilon).rows
        by_delta = {row["target_delta"]: row for row in rows}
        # Runtime grows with Δ (log shape) ...
        assert by_delta[32]["rounds_used"] >= by_delta[8]["rounds_used"]
        # ... and the observed owner counts respect the δ bound in most trials.
        assert all(row["violation_rate"] <= 0.25 for row in rows)
        assert all(row["max_owners"] <= row["delta_bound"] + 2 for row in rows)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-suite",
        action="store_true",
        help=f"regenerate the checked-in manifest at {SUITE_PATH}",
    )
    args = parser.parse_args()
    if args.write_suite:
        print("wrote", build_seed_agreement_suite().save(os.path.normpath(SUITE_PATH)))
    else:
        result = run_seed_agreement_experiment()
        print_and_save(
            "E1_E2_seed_agreement",
            "E1/E2 -- SeedAlg agreement quality and runtime (Theorem 3.1)",
            result,
        )
