"""E4 -- Acknowledgment bound and reliability (Theorem 4.1 / Lemma C.3).

Reproduced claims:

* every broadcast is acknowledged within
  ``t_ack = (Tack + 1)(Ts + Tprog)`` rounds (deterministically), with
  ``t_ack`` growing roughly linearly in Δ (through ``Tack ~ Δ'``) and only
  logarithmically in 1/ε;
* with probability at least 1 − ε, every reliable neighbor of the sender
  receives the message before the ack (reliability).

The harness is a **scenario suite**: one entry per (Δ, trial) with the
``params`` / ``ack_delay`` / ``delivery`` metrics declared on the spec, one
group per Δ.  The checked-in manifest at ``examples/suites/bench_ack.json``
is this suite as data (``python -m repro suite examples/suites/bench_ack.json``
reproduces the table; pinned by ``tests/test_suites.py``); the old
hand-written trace→metric plumbing is gone -- the group aggregates *are* the
table, pooled exactly as the pre-suite harness pooled its per-trial lists.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.analysis import theory
from repro.analysis.sweep import SweepResult
from repro.scenarios import MetricSpec, SuiteEntry, SuiteReport, SuiteSpec, run_suite

from benchmarks.common import default_jobs, lb_point_spec, print_and_save, run_once_benchmark

TARGET_DELTAS = (8, 16)
EPSILON = 0.2
TRIALS = 3
SIMULTANEOUS_SENDERS = 3

SUITE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "examples", "suites", "bench_ack.json"
)

#: The metrics every entry declares; ``trace_mode="auto"`` then records the
#: cheapest sufficient mode (EVENTS -- none of these needs frames).
ACK_METRICS = (MetricSpec("params"), MetricSpec("ack_delay"), MetricSpec("delivery"))


def build_ack_suite() -> SuiteSpec:
    """The E4 experiment as a :class:`~repro.scenarios.suite.SuiteSpec`.

    Seeds match the pre-suite harness exactly (``graph_seed = 9100 + 13Δ + trial``,
    process RNGs rooted at the trial index), so the suite's pooled group
    aggregates equal the historical table values.
    """
    entries: List[SuiteEntry] = []
    for target_delta in TARGET_DELTAS:
        for trial in range(TRIALS):
            spec = lb_point_spec(
                f"bench-ack-d{target_delta}-t{trial}",
                target_delta=target_delta,
                graph_seed=9100 + 13 * target_delta + trial,
                trial_seed=trial,
                epsilon=EPSILON,
                environment="single_shot",
                senders={"select": "first", "count": SIMULTANEOUS_SENDERS},
                rounds=1,
                rounds_unit="tack",
                trace_mode="auto",
                metrics=ACK_METRICS,
            )
            entries.append(
                SuiteEntry(id=spec.name, scenario=spec, group=f"delta-{target_delta}")
            )
    return SuiteSpec(
        name="bench-ack",
        description=(
            "E4 -- acknowledgment latency and reliability vs Delta: single-shot "
            "senders under contention, pooled per degree target"
        ),
        entries=tuple(entries),
    )


def ack_rows_from_report(report: SuiteReport) -> SweepResult:
    """Reduce the suite report to the benchmark's one-row-per-Δ table."""
    result = SweepResult()
    for target_delta in TARGET_DELTAS:
        group = f"delta-{target_delta}"
        summaries = report.group_summaries[group]
        members = [e for e in report.entries if e.entry.group_label == group]
        # The pre-suite harness reported the *last* trial's measured Δ.
        measured_delta = int(members[-1].result.trials[-1].metric_row["params.delta"])
        # Timely acknowledgment must always hold (the assertions that used to
        # live inside the per-trial loop, now over pooled metric columns).
        assert summaries["ack_delay.pending"]["sum"] == 0, "timely acknowledgment must always hold"
        assert summaries["ack_delay.bound_violations"]["sum"] == 0
        row: Dict[str, float] = {
            "target_delta": target_delta,
            "measured_delta": measured_delta,
            "tack_rounds_bound": int(summaries["params.tack_rounds"]["max"]),
            "theory_tack_shape": theory.tack_bound(measured_delta, EPSILON, r=2.0),
            "theory_ack_lower_bound": theory.ack_lower_bound(measured_delta),
            "mean_ack_delay": summaries["ack_delay.delay_mean"]["value"],
            "max_ack_delay": int(summaries["ack_delay.delay_max"]["max"]),
            "broadcasts": int(summaries["delivery.broadcasts"]["sum"]),
            "reliability_success_rate": summaries["delivery.success_rate"]["value"],
            "mean_delivery_fraction": summaries["delivery.fraction_mean"]["value"],
            "target_epsilon": EPSILON,
        }
        result.append(row)
    return result


def run_ack_experiment(jobs: Optional[int] = None) -> SweepResult:
    """Run the E4 suite and return its table.

    ``prebuild=False``: single-shot senders leave most of the t_ack-long run
    idle, so lazily-computed scheduler deltas touch only a fraction of the
    rounds an upfront full-table prebuild would pay for.
    """
    report = run_suite(
        build_ack_suite(),
        jobs=jobs if jobs is not None else default_jobs(),
        prebuild=False,
    )
    return ack_rows_from_report(report)


def test_bench_ack(benchmark):
    result = run_once_benchmark(benchmark, run_ack_experiment)
    print_and_save(
        "E4_acknowledgment",
        "E4 -- acknowledgment latency and reliability vs Δ",
        result,
        columns=[
            "target_delta",
            "measured_delta",
            "mean_ack_delay",
            "max_ack_delay",
            "tack_rounds_bound",
            "theory_tack_shape",
            "theory_ack_lower_bound",
            "broadcasts",
            "reliability_success_rate",
            "mean_delivery_fraction",
        ],
    )
    rows = {r["target_delta"]: r for r in result}
    # Acks always arrive within the bound (asserted inside the harness) and
    # the bound grows with Δ, staying above the Ω(Δ) lower-bound context.
    assert rows[16]["tack_rounds_bound"] > rows[8]["tack_rounds_bound"]
    for row in result:
        assert row["tack_rounds_bound"] >= row["theory_ack_lower_bound"]
        # Reliability: most broadcasts reach their full reliable neighborhood.
        assert row["mean_delivery_fraction"] >= 0.7


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-suite",
        action="store_true",
        help=f"regenerate the checked-in manifest at {SUITE_PATH}",
    )
    args = parser.parse_args()
    if args.write_suite:
        print("wrote", build_ack_suite().save(os.path.normpath(SUITE_PATH)))
    else:
        result = run_ack_experiment()
        print_and_save("E4_acknowledgment", "E4 -- acknowledgment latency and reliability vs Δ", result)
