"""E4 -- Acknowledgment bound and reliability (Theorem 4.1 / Lemma C.3).

Reproduced claims:

* every broadcast is acknowledged within
  ``t_ack = (Tack + 1)(Ts + Tprog)`` rounds (deterministically), with
  ``t_ack`` growing roughly linearly in Δ (through ``Tack ~ Δ'``) and only
  logarithmically in 1/ε;
* with probability at least 1 − ε, every reliable neighbor of the sender
  receives the message before the ack (reliability).

The harness uses single-shot senders under contention (several simultaneous
broadcasters) on random geographic networks, measures the ack delay and the
fraction of reliable neighbors reached before the ack, and reports the
derived ``t_ack`` next to the theoretical shape.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis import theory
from repro.analysis.stats import mean
from repro.analysis.sweep import SweepResult, sweep
from repro.scenarios import run as run_scenario
from repro.simulation.metrics import ack_delays, delivery_report

from benchmarks.common import lb_point_spec, print_and_save, run_once_benchmark

TARGET_DELTAS = (8, 16)
EPSILON = 0.2
TRIALS = 3
SIMULTANEOUS_SENDERS = 3


def _run_point(target_delta: int) -> Dict[str, float]:
    delays = []
    delivery_fractions = []
    full_deliveries = 0
    broadcasts = 0
    measured_delta = None
    tack_bounds = []

    for trial in range(TRIALS):
        spec = lb_point_spec(
            "bench-ack",
            target_delta=target_delta,
            graph_seed=9100 + 13 * target_delta + trial,
            trial_seed=trial,
            epsilon=EPSILON,
            environment="single_shot",
            senders={"select": "first", "count": SIMULTANEOUS_SENDERS},
            rounds=1,
            rounds_unit="tack",
            trace_mode="events",
        )
        result = run_scenario(spec)
        (point,) = result.trials
        graph, params, trace = point.graph, point.params, point.trace
        measured_delta = params.delta
        tack_bounds.append(params.tack_rounds)
        for record in ack_delays(trace):
            assert record.delay is not None, "timely acknowledgment must always hold"
            assert record.delay <= params.tack_rounds
            delays.append(record.delay)
        for record in delivery_report(trace, graph):
            broadcasts += 1
            delivery_fractions.append(record.delivery_fraction)
            if record.fully_delivered:
                full_deliveries += 1

    return {
        "measured_delta": measured_delta,
        "tack_rounds_bound": max(tack_bounds),
        "theory_tack_shape": theory.tack_bound(measured_delta, EPSILON, r=2.0),
        "theory_ack_lower_bound": theory.ack_lower_bound(measured_delta),
        "mean_ack_delay": mean(delays),
        "max_ack_delay": max(delays),
        "broadcasts": broadcasts,
        "reliability_success_rate": full_deliveries / max(broadcasts, 1),
        "mean_delivery_fraction": mean(delivery_fractions),
        "target_epsilon": EPSILON,
    }


def run_ack_experiment() -> SweepResult:
    """Run the E4 sweep and return its table."""
    return sweep({"target_delta": TARGET_DELTAS}, run=_run_point)


def test_bench_ack(benchmark):
    result = run_once_benchmark(benchmark, run_ack_experiment)
    print_and_save(
        "E4_acknowledgment",
        "E4 -- acknowledgment latency and reliability vs Δ",
        result,
        columns=[
            "target_delta",
            "measured_delta",
            "mean_ack_delay",
            "max_ack_delay",
            "tack_rounds_bound",
            "theory_tack_shape",
            "theory_ack_lower_bound",
            "broadcasts",
            "reliability_success_rate",
            "mean_delivery_fraction",
        ],
    )
    rows = {r["target_delta"]: r for r in result}
    # Acks always arrive within the bound (asserted inside the harness) and
    # the bound grows with Δ, staying above the Ω(Δ) lower-bound context.
    assert rows[16]["tack_rounds_bound"] > rows[8]["tack_rounds_bound"]
    for row in result:
        assert row["tack_rounds_bound"] >= row["theory_ack_lower_bound"]
        # Reliability: most broadcasts reach their full reliable neighborhood.
        assert row["mean_delivery_fraction"] >= 0.7
