"""E7 -- Near-optimality context (Section 1, "Results").

The paper argues its bounds are near optimal because, even with reliable
links only:

* any progress guarantee needs Ω(log Δ) rounds (symmetry breaking among an
  unknown set of contenders), and
* any acknowledgment guarantee needs Ω(Δ) rounds in the worst case -- a
  receiver adjacent to Δ broadcasters can absorb at most one message per
  round, so the last broadcaster to be heard waits at least Δ rounds.

The harness measures, on star networks *without* unreliable edges:

* the round of the first successful reception at a contended receiver
  (progress-like quantity) as Δ grows -- it should sit above the log Δ floor
  and scale gently, and
* the round by which the receiver has heard *all* Δ broadcasters -- it can
  never beat Δ, and the measured values sit above that floor for both LBAlg
  and the Decay baseline.

The harness is a **scenario suite**: one entry per (leaves, algorithm,
trial), grouped by ``(algorithm, leaves)``, with the ``receiver_contention``
metric (first physical data reception and the round by which every origin
was heard at the hub) declared on the spec; the Ω floors are theory columns
computed in the reduction.  The checked-in manifest at
``examples/suites/bench_lower_bound_context.json`` is this suite as data
(pinned by ``tests/test_suites.py``); seeds match the pre-suite harness
exactly, so the table values are unchanged.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.analysis import theory
from repro.analysis.stats import mean
from repro.analysis.sweep import SweepResult
from repro.scenarios import (
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    MetricSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    SuiteEntry,
    SuiteReport,
    SuiteSpec,
    TopologySpec,
    run_suite,
)

from benchmarks.common import default_jobs, print_and_save, run_once_benchmark

LEAF_COUNTS = (4, 8, 16)
ALGORITHMS = ("lbalg", "decay")
TRIALS = 3
RECEIVER = 0
EPSILON = 0.2
DECAY_CYCLES = 10

SUITE_PATH = os.path.join(
    os.path.dirname(__file__),
    "..",
    "examples",
    "suites",
    "bench_lower_bound_context.json",
)


def _entry_spec(leaves: int, algorithm: str, trial: int) -> ScenarioSpec:
    if algorithm == "lbalg":
        algorithm_spec = AlgorithmSpec("lbalg", {"epsilon": EPSILON, "preset": "derived"})
        # The historical budget: two full acknowledgment periods.
        run_policy = RunPolicy(
            rounds=2,
            rounds_unit="tack",
            trials=1,
            master_seed=trial,
            seed_policy="fixed",
        )
    else:
        algorithm_spec = AlgorithmSpec("decay", {"num_cycles": DECAY_CYCLES})
        # Decay has no derived schedule; the historical literal budget.
        run_policy = RunPolicy(
            rounds=40 * leaves * DECAY_CYCLES,
            rounds_unit="rounds",
            trials=1,
            master_seed=trial,
            seed_policy="fixed",
        )
    return ScenarioSpec(
        name=f"bench-lbctx-{algorithm}-d{leaves}-t{trial}",
        topology=TopologySpec("star", {"leaves": leaves}),
        algorithm=algorithm_spec,
        scheduler=SchedulerSpec("none", {}),
        environment=EnvironmentSpec(
            "saturating", {"senders": list(range(1, leaves + 1))}
        ),
        engine=EngineConfig(trace_mode="auto"),
        run=run_policy,
        metrics=(MetricSpec("receiver_contention", {"receiver": RECEIVER}),),
    )


def build_lower_bound_suite() -> SuiteSpec:
    """The E7 experiment as a :class:`~repro.scenarios.suite.SuiteSpec`.

    Seeds match the pre-suite harness exactly (process RNGs rooted at the
    trial index; the star and the no-unreliable-links scheduler are
    deterministic), so the suite reproduces the historical table values.
    """
    entries: List[SuiteEntry] = []
    for leaves in LEAF_COUNTS:
        for algorithm in ALGORITHMS:
            for trial in range(TRIALS):
                spec = _entry_spec(leaves, algorithm, trial)
                entries.append(
                    SuiteEntry(
                        id=spec.name,
                        scenario=spec,
                        group=f"{algorithm}-d{leaves}",
                    )
                )
    return SuiteSpec(
        name="bench-lower-bound-context",
        description=(
            "E7 -- contended star without unreliable links: measured first-"
            "reception and all-heard latencies vs the Omega(log Delta) / "
            "Omega(Delta) floors, LBAlg vs the Decay baseline"
        ),
        entries=tuple(entries),
    )


def lower_bound_rows_from_report(report: SuiteReport) -> SweepResult:
    """Reduce the suite report to the benchmark's per-(leaves, algorithm) table."""
    result = SweepResult()
    for leaves in LEAF_COUNTS:
        for algorithm in ALGORITHMS:
            members = [
                e
                for e in report.entries
                if e.entry.group_label == f"{algorithm}-d{leaves}"
            ]
            trial_rows = [m.result.trials[0].metric_row for m in members]
            complete = [
                row
                for row in trial_rows
                if row["receiver_contention.complete"]
            ]
            result.append(
                {
                    "leaves": leaves,
                    "algorithm": algorithm,
                    "delta": leaves + 1,
                    "first_reception_round": mean(
                        [
                            row["receiver_contention.first_reception_round"]
                            for row in trial_rows
                        ]
                    ),
                    "all_senders_heard_round": (
                        mean(
                            [
                                row["receiver_contention.all_heard_round"]
                                for row in complete
                            ]
                        )
                        if complete
                        else float("nan")
                    ),
                    "incomplete_trials": len(trial_rows) - len(complete),
                    "progress_lower_bound": theory.progress_lower_bound(leaves + 1),
                    "ack_lower_bound": theory.ack_lower_bound(leaves),
                }
            )
    return result


def run_lower_bound_experiment(jobs: Optional[int] = None) -> SweepResult:
    """Run the E7 suite and return its table."""
    report = run_suite(
        build_lower_bound_suite(), jobs=jobs if jobs is not None else default_jobs()
    )
    return lower_bound_rows_from_report(report)


def test_bench_lower_bound_context(benchmark):
    result = run_once_benchmark(benchmark, run_lower_bound_experiment)
    print_and_save(
        "E7_lower_bound_context",
        "E7 -- contended star without unreliable links: measured latencies vs the Ω(log Δ) / Ω(Δ) floors",
        result,
        columns=[
            "leaves",
            "algorithm",
            "delta",
            "first_reception_round",
            "progress_lower_bound",
            "all_senders_heard_round",
            "ack_lower_bound",
            "incomplete_trials",
        ],
    )
    for row in result:
        # No algorithm can beat the information-theoretic floors.
        assert row["first_reception_round"] >= 1
        if row["incomplete_trials"] < TRIALS and row["all_senders_heard_round"] == row["all_senders_heard_round"]:
            assert row["all_senders_heard_round"] >= row["ack_lower_bound"]
    # Hearing everyone takes longer as Δ grows (the Ω(Δ) shape).
    for algorithm in ALGORITHMS:
        rows = {r["leaves"]: r for r in result.where(algorithm=algorithm)}
        if rows[16]["incomplete_trials"] < TRIALS and rows[4]["incomplete_trials"] < TRIALS:
            assert rows[16]["all_senders_heard_round"] > rows[4]["all_senders_heard_round"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-suite",
        action="store_true",
        help=f"regenerate the checked-in manifest at {SUITE_PATH}",
    )
    args = parser.parse_args()
    if args.write_suite:
        print("wrote", build_lower_bound_suite().save(os.path.normpath(SUITE_PATH)))
    else:
        result = run_lower_bound_experiment()
        print_and_save(
            "E7_lower_bound_context",
            "E7 -- contended star without unreliable links: measured latencies vs the Ω(log Δ) / Ω(Δ) floors",
            result,
        )
