"""E7 -- Near-optimality context (Section 1, "Results").

The paper argues its bounds are near optimal because, even with reliable
links only:

* any progress guarantee needs Ω(log Δ) rounds (symmetry breaking among an
  unknown set of contenders), and
* any acknowledgment guarantee needs Ω(Δ) rounds in the worst case -- a
  receiver adjacent to Δ broadcasters can absorb at most one message per
  round, so the last broadcaster to be heard waits at least Δ rounds.

The harness measures, on clique / star networks *without* unreliable edges:

* the round of the first successful reception at a contended receiver
  (progress-like quantity) as Δ grows -- it should sit above the log Δ floor
  and scale gently, and
* the round by which the receiver has heard *all* Δ broadcasters -- it can
  never beat Δ, and the measured values sit above that floor for both LBAlg
  and the Decay baseline.
"""

from __future__ import annotations

import random
from typing import Dict

from repro import LBParams, Simulator, make_lb_processes
from repro.analysis import theory
from repro.analysis.stats import mean
from repro.analysis.sweep import SweepResult, sweep
from repro.baselines import make_baseline_processes
from repro.dualgraph.adversary import NoUnreliableScheduler
from repro.dualgraph.generators import star_network
from repro.simulation.environment import SaturatingEnvironment
from repro.simulation.metrics import data_reception_rounds

from benchmarks.common import print_and_save, run_once_benchmark

LEAF_COUNTS = (4, 8, 16)
ALGORITHMS = ("lbalg", "decay")
TRIALS = 3
RECEIVER = 0


def _distinct_origin_completion_round(trace, receiver, expected_origins):
    """Round by which the receiver has heard every expected origin (or None)."""
    heard = {}
    for recv in trace.recv_outputs:
        if recv.vertex != receiver:
            continue
        origin = recv.message.origin
        if origin not in heard:
            heard[origin] = recv.round_number
    if set(heard) >= set(expected_origins):
        return max(heard[origin] for origin in expected_origins)
    return None


def _run_point(leaves: int, algorithm: str) -> Dict[str, float]:
    first_reception_rounds = []
    all_heard_rounds = []
    incomplete = 0

    for trial in range(TRIALS):
        graph, _ = star_network(leaves)
        delta, delta_prime = graph.degree_bounds()
        senders = list(range(1, leaves + 1))
        rng = random.Random(trial)
        if algorithm == "lbalg":
            params = LBParams.derive(0.2, delta=delta, delta_prime=delta_prime, r=2.0)
            processes = make_lb_processes(graph, params, rng)
            rounds = 2 * params.tack_rounds
        else:
            processes = make_baseline_processes(graph, "decay", rng, num_cycles=10)
            rounds = 40 * leaves * 10
        simulator = Simulator(
            graph,
            processes,
            scheduler=NoUnreliableScheduler(graph),
            environment=SaturatingEnvironment(senders=senders),
        )
        trace = simulator.run(rounds)

        heard_rounds = data_reception_rounds(trace, RECEIVER)
        first_reception_rounds.append(heard_rounds[0] if heard_rounds else rounds)
        completion = _distinct_origin_completion_round(trace, RECEIVER, senders)
        if completion is None:
            incomplete += 1
        else:
            all_heard_rounds.append(completion)

    return {
        "delta": leaves + 1,
        "first_reception_round": mean(first_reception_rounds),
        "all_senders_heard_round": mean(all_heard_rounds) if all_heard_rounds else float("nan"),
        "incomplete_trials": incomplete,
        "progress_lower_bound": theory.progress_lower_bound(leaves + 1),
        "ack_lower_bound": theory.ack_lower_bound(leaves),
    }


def run_lower_bound_experiment() -> SweepResult:
    """Run the E7 grid and return its table."""
    return sweep({"leaves": LEAF_COUNTS, "algorithm": ALGORITHMS}, run=_run_point)


def test_bench_lower_bound_context(benchmark):
    result = run_once_benchmark(benchmark, run_lower_bound_experiment)
    print_and_save(
        "E7_lower_bound_context",
        "E7 -- contended star without unreliable links: measured latencies vs the Ω(log Δ) / Ω(Δ) floors",
        result,
        columns=[
            "leaves",
            "algorithm",
            "delta",
            "first_reception_round",
            "progress_lower_bound",
            "all_senders_heard_round",
            "ack_lower_bound",
            "incomplete_trials",
        ],
    )
    for row in result:
        # No algorithm can beat the information-theoretic floors.
        assert row["first_reception_round"] >= 1
        if row["incomplete_trials"] < TRIALS and row["all_senders_heard_round"] == row["all_senders_heard_round"]:
            assert row["all_senders_heard_round"] >= row["ack_lower_bound"]
    # Hearing everyone takes longer as Δ grows (the Ω(Δ) shape).
    for algorithm in ALGORITHMS:
        rows = {r["leaves"]: r for r in result.where(algorithm=algorithm)}
        if rows[16]["incomplete_trials"] < TRIALS and rows[4]["incomplete_trials"] < TRIALS:
            assert rows[16]["all_senders_heard_round"] > rows[4]["all_senders_heard_round"]
