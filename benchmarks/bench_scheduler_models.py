"""E12 (model boundary) -- oblivious scheduler family vs an adaptive adversary.

The paper's guarantees are stated for *oblivious* link schedulers and it
recalls that efficient local broadcast progress is impossible against an
*adaptive* adversary.  This experiment documents that model boundary
empirically: it runs the identical LBAlg configuration under

* no unreliable edges at all (the static radio model),
* i.i.d. and full-inclusion oblivious schedulers (inside the model), and
* the collision-manufacturing adaptive adversary (outside the model),

and reports the receiver-side reception rate and how many receptions traveled
over unreliable edges.  Under the adaptive adversary that last number is zero
by construction -- the adversary only ever includes an unreliable edge to
destroy a reception -- which is the mechanism behind the impossibility result.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.sweep import SweepResult, sweep
from repro.scenarios import run as run_scenario

from benchmarks.common import lb_point_spec, print_and_save, run_once_benchmark

SCHEDULER_KINDS = ("none", "iid", "full", "adaptive")
TARGET_DELTA = 16
EPSILON = 0.2
TRIALS = 3
PHASES_PER_TRIAL = 4

#: Experiment kind -> (registered scheduler name, args template); the i.i.d.
#: entry takes the per-trial seed, the rest are parameter-free.
_SCHEDULER_SPECS = {
    "none": ("none", {}),
    "iid": ("iid", {"probability": 0.5}),
    "full": ("full", {}),
    "adaptive": ("adaptive_collision", {}),
}


def _run_point(scheduler: str) -> Dict[str, float]:
    total_rounds = 0
    total_receptions = 0
    unreliable_receptions = 0

    for trial in range(TRIALS):
        scheduler_name, scheduler_args = _SCHEDULER_SPECS[scheduler]
        if scheduler_name == "iid":
            scheduler_args = dict(scheduler_args, seed=trial)
        spec = lb_point_spec(
            "bench-scheduler-models",
            target_delta=TARGET_DELTA,
            graph_seed=6100 + trial,
            trial_seed=trial,
            epsilon=EPSILON,
            environment="saturating",
            senders={"select": "first", "divisor": 6, "min": 2},
            rounds=PHASES_PER_TRIAL,
            rounds_unit="phases",
            scheduler=scheduler_name,
            scheduler_args=scheduler_args,
        )
        result = run_scenario(spec)
        (point,) = result.trials
        graph, trace = point.graph, point.trace
        rounds = point.rounds
        total_rounds += rounds

        for round_number in range(1, rounds + 1):
            transmissions = trace.transmissions_in_round(round_number)
            for receiver, frame in trace.receptions_in_round(round_number).items():
                if getattr(frame, "message", None) is None:
                    continue
                total_receptions += 1
                senders_of_frame = [v for v, f in transmissions.items() if f is frame]
                if senders_of_frame and not any(
                    v in graph.reliable_neighbors(receiver) for v in senders_of_frame
                ):
                    unreliable_receptions += 1

    return {
        "data_receptions": total_receptions,
        "receptions_per_round": total_receptions / max(total_rounds, 1),
        "unreliable_edge_receptions": unreliable_receptions,
        "unreliable_fraction": unreliable_receptions / max(total_receptions, 1),
    }


def run_scheduler_models_experiment() -> SweepResult:
    """Run the E12 sweep and return its table."""
    return sweep({"scheduler": SCHEDULER_KINDS}, run=_run_point)


def test_bench_scheduler_models(benchmark):
    result = run_once_benchmark(benchmark, run_scheduler_models_experiment)
    print_and_save(
        "E12_scheduler_models",
        "E12 -- LBAlg under the oblivious scheduler family vs an adaptive adversary",
        result,
        columns=[
            "scheduler",
            "data_receptions",
            "receptions_per_round",
            "unreliable_edge_receptions",
            "unreliable_fraction",
        ],
    )
    rows = {r["scheduler"]: r for r in result}
    # The service keeps delivering under every oblivious scheduler.
    for kind in ("none", "iid", "full"):
        assert rows[kind]["data_receptions"] > 0
    # The adaptive adversary never lets a delivery cross an unreliable edge
    # (it only includes edges that collide), unlike the oblivious schedulers
    # that do include helpful edges.
    assert rows["adaptive"]["unreliable_edge_receptions"] == 0
    assert rows["iid"]["unreliable_edge_receptions"] >= 0
