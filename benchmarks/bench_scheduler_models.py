"""E12 (model boundary) -- oblivious scheduler family vs an adaptive adversary.

The paper's guarantees are stated for *oblivious* link schedulers and it
recalls that efficient local broadcast progress is impossible against an
*adaptive* adversary.  This experiment documents that model boundary
empirically: it runs the identical LBAlg configuration under

* no unreliable edges at all (the static radio model),
* i.i.d. and full-inclusion oblivious schedulers (inside the model), and
* the collision-manufacturing adaptive adversary (outside the model),

and reports the receiver-side reception rate and how many receptions traveled
over unreliable edges.  Under the adaptive adversary that last number is zero
by construction -- the adversary only ever includes an unreliable edge to
destroy a reception -- which is the mechanism behind the impossibility result.

The harness is a **scenario suite**: one entry per (scheduler kind, trial)
declaring the ``reception_provenance`` metric, one group per kind; the pooled
group ratios are exactly the totals-over-totals arithmetic the pre-suite
harness used.  The checked-in manifest at
``examples/suites/bench_scheduler_models.json`` is this suite as data
(``python -m repro suite ...`` reproduces the table; pinned by
``tests/test_suites.py``).
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.analysis.sweep import SweepResult
from repro.scenarios import MetricSpec, SuiteEntry, SuiteReport, SuiteSpec, run_suite

from benchmarks.common import default_jobs, lb_point_spec, print_and_save, run_once_benchmark

SCHEDULER_KINDS = ("none", "iid", "full", "adaptive")
TARGET_DELTA = 16
EPSILON = 0.2
TRIALS = 3
PHASES_PER_TRIAL = 4

SUITE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "examples", "suites", "bench_scheduler_models.json"
)

#: Experiment kind -> (registered scheduler name, args template); the i.i.d.
#: entry takes the per-trial seed, the rest are parameter-free.
_SCHEDULER_SPECS = {
    "none": ("none", {}),
    "iid": ("iid", {"probability": 0.5}),
    "full": ("full", {}),
    "adaptive": ("adaptive_collision", {}),
}

#: ``trace_mode="auto"`` resolves to FULL -- provenance needs the frames to
#: match receptions back to their transmitters.
SCHEDULER_MODEL_METRICS = (MetricSpec("reception_provenance"),)


def build_scheduler_models_suite() -> SuiteSpec:
    """The E12 experiment as a :class:`~repro.scenarios.suite.SuiteSpec`.

    Seeds match the pre-suite harness exactly (``graph_seed = 6100 + trial``,
    process RNGs rooted at the trial index, the i.i.d. scheduler seeded by the
    trial), so the suite's pooled group aggregates equal the historical table.
    """
    entries: List[SuiteEntry] = []
    for kind in SCHEDULER_KINDS:
        scheduler_name, scheduler_template = _SCHEDULER_SPECS[kind]
        for trial in range(TRIALS):
            scheduler_args = dict(scheduler_template)
            if scheduler_name == "iid":
                scheduler_args["seed"] = trial
            spec = lb_point_spec(
                f"bench-scheduler-models-{kind}-t{trial}",
                target_delta=TARGET_DELTA,
                graph_seed=6100 + trial,
                trial_seed=trial,
                epsilon=EPSILON,
                environment="saturating",
                senders={"select": "first", "divisor": 6, "min": 2},
                rounds=PHASES_PER_TRIAL,
                rounds_unit="phases",
                scheduler=scheduler_name,
                scheduler_args=scheduler_args,
                trace_mode="auto",
                metrics=SCHEDULER_MODEL_METRICS,
            )
            entries.append(SuiteEntry(id=spec.name, scenario=spec, group=kind))
    return SuiteSpec(
        name="bench-scheduler-models",
        description=(
            "E12 -- LBAlg under the oblivious scheduler family vs an adaptive "
            "adversary: reception provenance pooled per scheduler kind"
        ),
        entries=tuple(entries),
    )


def scheduler_models_rows_from_report(report: SuiteReport) -> SweepResult:
    """Reduce the suite report to the benchmark's one-row-per-kind table."""
    result = SweepResult()
    for kind in SCHEDULER_KINDS:
        summaries = report.group_summaries[kind]
        data_receptions = int(summaries["reception_provenance.data_receptions"]["sum"])
        unreliable = int(summaries["reception_provenance.unreliable_receptions"]["sum"])
        result.append(
            {
                "scheduler": kind,
                "data_receptions": data_receptions,
                "receptions_per_round": summaries["reception_provenance.per_round"]["value"],
                "unreliable_edge_receptions": unreliable,
                "unreliable_fraction": (
                    summaries["reception_provenance.unreliable_fraction"]["value"]
                ),
            }
        )
    return result


def run_scheduler_models_experiment(jobs: Optional[int] = None) -> SweepResult:
    """Run the E12 suite and return its table."""
    report = run_suite(
        build_scheduler_models_suite(),
        jobs=jobs if jobs is not None else default_jobs(),
    )
    return scheduler_models_rows_from_report(report)


def test_bench_scheduler_models(benchmark):
    result = run_once_benchmark(benchmark, run_scheduler_models_experiment)
    print_and_save(
        "E12_scheduler_models",
        "E12 -- LBAlg under the oblivious scheduler family vs an adaptive adversary",
        result,
        columns=[
            "scheduler",
            "data_receptions",
            "receptions_per_round",
            "unreliable_edge_receptions",
            "unreliable_fraction",
        ],
    )
    rows = {r["scheduler"]: r for r in result}
    # The service keeps delivering under every oblivious scheduler.
    for kind in ("none", "iid", "full"):
        assert rows[kind]["data_receptions"] > 0
    # The adaptive adversary never lets a delivery cross an unreliable edge
    # (it only includes edges that collide), unlike the oblivious schedulers
    # that do include helpful edges.
    assert rows["adaptive"]["unreliable_edge_receptions"] == 0
    assert rows["iid"]["unreliable_edge_receptions"] >= 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-suite",
        action="store_true",
        help=f"regenerate the checked-in manifest at {SUITE_PATH}",
    )
    args = parser.parse_args()
    if args.write_suite:
        print("wrote", build_scheduler_models_suite().save(os.path.normpath(SUITE_PATH)))
    else:
        result = run_scheduler_models_experiment()
        print_and_save(
            "E12_scheduler_models",
            "E12 -- LBAlg under the oblivious scheduler family vs an adaptive adversary",
            result,
        )
