"""Shared machinery for the benchmark harnesses.

Every experiment follows the same recipe: build networks with a target degree
bound, run a workload for some rounds over several independent trials, reduce
the traces to a few numbers, and print a table whose rows mirror the data
series a figure in a systems paper would show.  The helpers here keep the
individual ``bench_*.py`` modules short and uniform.
"""

from __future__ import annotations

import argparse
import os
import random
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro import (
    DualGraph,
    Embedding,
    IIDScheduler,
    LBParams,
    Simulator,
    make_lb_processes,
    random_geographic_network,
)
from repro.analysis.sweep import ParallelSweepRunner, SweepResult, format_table
from repro.simulation.environment import Environment

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Environment variable consulted when no explicit --jobs value is given, so
#: the pytest-driven harnesses can be parallelized without changing call sites
#: (``BENCH_JOBS=8 pytest benchmarks/...``).
JOBS_ENV_VAR = "BENCH_JOBS"

#: Network "density profiles": approximate reliable degree bound -> sampling
#: parameters (n, side) for random geographic networks.  Degree bounds are
#: approximate by nature (the sample decides), which is fine because every
#: experiment records the *measured* Δ of the network it actually used.
DENSITY_PROFILES: Dict[int, Tuple[int, float]] = {
    4: (12, 4.2),
    8: (16, 3.5),
    10: (20, 3.0),
    12: (28, 3.3),
    16: (30, 2.6),
    20: (36, 2.6),
    24: (40, 2.4),
    32: (56, 2.4),
}


def ensure_results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_table(name: str, table: str) -> str:
    """Write a rendered table under benchmarks/results/ and return the path."""
    path = os.path.join(ensure_results_dir(), f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(table + "\n")
    return path


def network_with_target_degree(
    target_delta: int, seed: int, require_connected: bool = True
) -> Tuple[DualGraph, Embedding]:
    """Sample a random geographic network whose Δ lands near the target."""
    if target_delta not in DENSITY_PROFILES:
        raise KeyError(
            f"no density profile for Δ≈{target_delta}; known targets: {sorted(DENSITY_PROFILES)}"
        )
    n, side = DENSITY_PROFILES[target_delta]
    return random_geographic_network(
        n, side=side, r=2.0, rng=seed, require_connected=require_connected, max_attempts=80
    )


def build_lb_simulator(
    graph: DualGraph,
    params: LBParams,
    environment: Environment,
    scheduler=None,
    master_seed: int = 0,
    record_frames: bool = True,
    batch_path: bool = True,
) -> Simulator:
    """A Simulator running LBAlg at every vertex (the default experiment setup)."""
    rng = random.Random(master_seed)
    if scheduler is None:
        scheduler = IIDScheduler(graph, probability=0.5, seed=master_seed)
    return Simulator(
        graph,
        make_lb_processes(graph, params, rng),
        scheduler=scheduler,
        environment=environment,
        record_frames=record_frames,
        batch_path=batch_path,
    )


def print_and_save(name: str, title: str, result: SweepResult, columns=None) -> str:
    """Render, print, and persist an experiment table; returns the rendering."""
    table = format_table(result.rows, columns=columns, title=title)
    print()
    print(table)
    save_table(name, table)
    return table


def run_once_benchmark(benchmark, fn: Callable[[], SweepResult]) -> SweepResult:
    """Run an experiment harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)


def default_jobs() -> int:
    """The sweep worker count when no --jobs flag is given (``BENCH_JOBS`` or 1)."""
    try:
        return max(1, int(os.environ.get(JOBS_ENV_VAR, "1")))
    except ValueError:
        return 1


def add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the standard ``--jobs`` flag to a benchmark's CLI parser."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for the sweep (default: $BENCH_JOBS or 1; "
            "values above 1 use a process pool over grid points)"
        ),
    )


def run_sweep(
    grid: Mapping[str, Sequence[Any]],
    run: Callable[..., Mapping[str, Any]],
    jobs: Optional[int] = None,
    base_seed: Optional[int] = None,
    common: Optional[Mapping[str, Any]] = None,
) -> SweepResult:
    """Run a benchmark grid serially or on a process pool.

    ``jobs=None`` falls back to ``$BENCH_JOBS`` (default 1, i.e. the classic
    serial :func:`repro.analysis.sweep.sweep`).  Rows are identical and in
    identical order regardless of the worker count; with ``base_seed`` set,
    per-point derived seeds are injected as the ``seed`` keyword argument.
    ``common`` keyword arguments (fixed workload/engine configuration) are
    passed to ``run`` at every grid point.
    """
    if jobs is None:
        jobs = default_jobs()
    return ParallelSweepRunner(jobs=jobs, base_seed=base_seed).run(grid, run, common=common)
