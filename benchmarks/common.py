"""Shared machinery for the benchmark harnesses.

Every experiment follows the same recipe: build networks with a target degree
bound, run a workload for some rounds over several independent trials, reduce
the traces to a few numbers, and print a table whose rows mirror the data
series a figure in a systems paper would show.  The helpers here keep the
individual ``bench_*.py`` modules short and uniform.
"""

from __future__ import annotations

import argparse
import os
import random
import warnings
from typing import Any, Callable, Mapping, Optional, Sequence

from repro import (
    DualGraph,
    IIDScheduler,
    LBParams,
    Simulator,
    make_lb_processes,
)
from repro.analysis.sweep import ParallelSweepRunner, SweepResult, format_table

# The density-profile table and degree-targeted sampler moved into the
# scenario component library (so the ``target_degree`` registered topology
# and the benches share one source of truth); re-exported here because the
# bench harnesses historically import them from this module.
from repro.scenarios.components import DENSITY_PROFILES, network_with_target_degree
from repro.scenarios.spec import (
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    MetricSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    TopologySpec,
)
from repro.simulation.environment import Environment
from repro.simulation.trace import TraceMode

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Environment variable consulted when no explicit --jobs value is given, so
#: the pytest-driven harnesses can be parallelized without changing call sites
#: (``BENCH_JOBS=8 pytest benchmarks/...``).
JOBS_ENV_VAR = "BENCH_JOBS"


def ensure_results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


def save_table(name: str, table: str) -> str:
    """Write a rendered table under benchmarks/results/ and return the path."""
    path = os.path.join(ensure_results_dir(), f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(table + "\n")
    return path


def build_lb_simulator(
    graph: DualGraph,
    params: LBParams,
    environment: Environment,
    scheduler=None,
    master_seed: int = 0,
    record_frames: Optional[bool] = None,
    trace_mode: Optional[TraceMode] = None,
    batch_path: bool = True,
) -> Simulator:
    """A Simulator running LBAlg at every vertex (the default experiment setup).

    This is the low-level escape hatch kept for harnesses that hand-build
    graphs or environments; spec-expressible workloads use
    :mod:`repro.scenarios` instead (see ``docs/scenarios.md``).
    ``record_frames`` is deprecated exactly as on the
    :class:`~repro.simulation.engine.Simulator` constructor -- pass
    ``trace_mode=`` instead.
    """
    rng = random.Random(master_seed)
    if scheduler is None:
        scheduler = IIDScheduler(graph, probability=0.5, seed=master_seed)
    if record_frames is not None:
        warnings.warn(
            "build_lb_simulator(record_frames=...) is deprecated; pass trace_mode=",
            DeprecationWarning,
            stacklevel=2,
        )
        if trace_mode is None:
            trace_mode = TraceMode.FULL if record_frames else TraceMode.EVENTS
    return Simulator(
        graph,
        make_lb_processes(graph, params, rng),
        scheduler=scheduler,
        environment=environment,
        trace_mode=trace_mode,
        batch_path=batch_path,
    )


def lb_point_spec(
    name: str,
    target_delta: int,
    graph_seed: int,
    trial_seed: int,
    epsilon: float,
    environment: str,
    senders: Any,
    rounds: int,
    rounds_unit: str,
    trace_mode: str = "full",
    scheduler: str = "iid",
    scheduler_args: Optional[Mapping[str, Any]] = None,
    metrics: Sequence[MetricSpec] = (),
) -> ScenarioSpec:
    """The standard bench workload as a :class:`~repro.scenarios.spec.ScenarioSpec`.

    One trial of the classic experiment recipe: a degree-targeted random
    geographic network (``graph_seed`` pins the sample), LBAlg with
    parameters derived from the measured bounds, an i.i.d. link scheduler
    seeded by the trial, and process RNGs rooted at ``trial_seed`` -- exactly
    the wiring :func:`build_lb_simulator` produced, so migrated harnesses
    keep their historical traces byte-for-byte.  ``metrics`` declares the
    :class:`~repro.scenarios.spec.MetricSpec` entries the harness reads back
    (``trace_mode="auto"`` then records exactly what they need).
    """
    if scheduler_args is None:
        # Only the i.i.d. scheduler takes these; parameter-free schedulers
        # ("none", "full", "adaptive_collision") default to empty args.
        scheduler_args = (
            {"probability": 0.5, "seed": trial_seed} if scheduler == "iid" else {}
        )
    return ScenarioSpec(
        name=name,
        topology=TopologySpec(
            "target_degree", {"target_delta": target_delta, "seed": graph_seed}
        ),
        algorithm=AlgorithmSpec("lbalg", {"epsilon": epsilon, "preset": "derived"}),
        scheduler=SchedulerSpec(scheduler, dict(scheduler_args)),
        environment=EnvironmentSpec(environment, {"senders": senders}),
        engine=EngineConfig(trace_mode=trace_mode),
        run=RunPolicy(
            rounds=rounds,
            rounds_unit=rounds_unit,
            trials=1,
            master_seed=trial_seed,
            seed_policy="fixed",
        ),
        metrics=tuple(metrics),
    )


def print_and_save(name: str, title: str, result: SweepResult, columns=None) -> str:
    """Render, print, and persist an experiment table; returns the rendering."""
    table = format_table(result.rows, columns=columns, title=title)
    print()
    print(table)
    save_table(name, table)
    return table


def run_once_benchmark(benchmark, fn: Callable[[], SweepResult]) -> SweepResult:
    """Run an experiment harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, iterations=1, rounds=1)


def default_jobs() -> int:
    """The sweep worker count when no --jobs flag is given (``BENCH_JOBS`` or 1).

    An unparseable ``BENCH_JOBS`` value falls back to 1 **with a warning** --
    a silent fallback here once meant "BENCH_JOBS=all" quietly ran a long
    sweep serially.
    """
    raw = os.environ.get(JOBS_ENV_VAR, "1")
    try:
        return max(1, int(raw))
    except ValueError:
        warnings.warn(
            f"ignoring unparseable {JOBS_ENV_VAR}={raw!r} (expected an integer); "
            "running sweeps serially with jobs=1",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1


def add_jobs_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the standard ``--jobs`` flag to a benchmark's CLI parser."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for the sweep (default: $BENCH_JOBS or 1; "
            "values above 1 use a process pool over grid points)"
        ),
    )


def run_sweep(
    grid: Mapping[str, Sequence[Any]],
    run: Callable[..., Mapping[str, Any]],
    jobs: Optional[int] = None,
    base_seed: Optional[int] = None,
    common: Optional[Mapping[str, Any]] = None,
) -> SweepResult:
    """Run a benchmark grid serially or on a process pool.

    ``jobs=None`` falls back to ``$BENCH_JOBS`` (default 1, i.e. the classic
    serial :func:`repro.analysis.sweep.sweep`).  Rows are identical and in
    identical order regardless of the worker count; with ``base_seed`` set,
    per-point derived seeds are injected as the ``seed`` keyword argument.
    ``common`` keyword arguments (fixed workload/engine configuration) are
    passed to ``run`` at every grid point.
    """
    if jobs is None:
        jobs = default_jobs()
    return ParallelSweepRunner(jobs=jobs, base_seed=base_seed).run(grid, run, common=common)
