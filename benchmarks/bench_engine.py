"""Engine throughput benchmark: rounds/sec, path comparison, and breakdown.

This is the repo's performance yardstick.  For each network size it runs the
same fixed-seed LBAlg workload (saturating senders, i.i.d. link scheduler)
through

* the **legacy** engine path (``fast_path=False``: per-round topology edge
  frozensets, exactly the seed engine's resolution strategy), and
* the **fast** path (indexed CSR topology, transmitter-centric collision
  counters, scheduler edge-id deltas), under each :class:`TraceMode`,

verifies that the legacy and fast executions produce *identical* event traces
and per-round frames, and writes ``BENCH_engine.json`` at the repo root with
rounds/sec, speedups, and a per-section time breakdown (from a separate
profiled run so the headline numbers carry no timer overhead).

Run it directly::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full grid
    PYTHONPATH=src python benchmarks/bench_engine.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_engine.py --jobs 4   # pool over n
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from functools import partial
from typing import Any, Dict

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro import (
    IIDScheduler,
    LBParams,
    Simulator,
    TraceMode,
    make_lb_processes,
    random_geographic_network,
)
from repro.analysis.sweep import format_table
from repro.simulation.environment import SaturatingEnvironment

from benchmarks.common import add_jobs_argument, run_sweep, save_table

#: Approximate points per unit area; keeps the reliable degree roughly
#: constant as n grows (side scales with sqrt(n)).
DENSITY = 2.55

FULL_SIZES = (25, 100, 400)
QUICK_SIZES = (25, 100)
FULL_ROUNDS = {25: 1200, 100: 600, 400: 300}
QUICK_ROUNDS = {25: 200, 100: 100}
MASTER_SEED = 2015  # PODC 2015
TARGET_SPEEDUP = 5.0

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_engine.json"
)


def build_workload(n: int, fast_path: bool, trace_mode: TraceMode, profile: bool = False):
    """One fixed-seed LBAlg workload; identical construction for every config."""
    import random

    side = math.sqrt(n / DENSITY)
    graph, _ = random_geographic_network(n, side=side, r=2.0, rng=MASTER_SEED + n)
    delta, delta_prime = graph.degree_bounds()
    params = LBParams.small_for_testing(delta=delta, delta_prime=delta_prime)
    senders = sorted(graph.vertices)[: max(2, n // 5)]
    simulator = Simulator(
        graph,
        make_lb_processes(graph, params, random.Random(MASTER_SEED)),
        scheduler=IIDScheduler(graph, probability=0.5, seed=MASTER_SEED),
        environment=SaturatingEnvironment(senders=senders),
        trace_mode=trace_mode,
        fast_path=fast_path,
        profile=profile,
    )
    return simulator, params


def _timed_run(n: int, rounds: int, fast_path: bool, trace_mode: TraceMode):
    simulator, _ = build_workload(n, fast_path, trace_mode)
    start = time.perf_counter()
    trace = simulator.run(rounds)
    elapsed = time.perf_counter() - start
    return simulator, trace, rounds / elapsed


def _profiled_breakdown(n: int, rounds: int, fast_path: bool) -> Dict[str, float]:
    simulator, _ = build_workload(n, fast_path, TraceMode.FULL, profile=True)
    simulator.run(rounds)
    total = sum(simulator.perf_stats.values()) or 1.0
    return {section: t / total for section, t in sorted(simulator.perf_stats.items())}


def _traces_identical(trace_a, trace_b, rounds: int) -> bool:
    if trace_a.events != trace_b.events:
        return False
    for round_number in range(1, rounds + 1):
        if trace_a.transmissions_in_round(round_number) != trace_b.transmissions_in_round(
            round_number
        ):
            return False
        if trace_a.receptions_in_round(round_number) != trace_b.receptions_in_round(
            round_number
        ):
            return False
    return True


def run_workload_point(n: int, rounds_by_n: Dict[int, int]) -> Dict[str, Any]:
    """Benchmark one network size across engine paths and trace modes."""
    rounds = rounds_by_n[n]
    legacy_sim, legacy_trace, legacy_rps = _timed_run(n, rounds, False, TraceMode.FULL)
    graph = legacy_sim.graph
    fast_sim, fast_trace, fast_rps = _timed_run(n, rounds, True, TraceMode.FULL)
    _, _, fast_events_rps = _timed_run(n, rounds, True, TraceMode.EVENTS)
    _, _, fast_counters_rps = _timed_run(n, rounds, True, TraceMode.COUNTERS)

    assert not legacy_sim.uses_fast_path and fast_sim.uses_fast_path
    identical = _traces_identical(legacy_trace, fast_trace, rounds)

    return {
        "delta": graph.max_reliable_degree,
        "delta_prime": graph.max_potential_degree,
        "reliable_edges": len(graph.reliable_edges),
        "unreliable_edges": len(graph.unreliable_edges),
        "rounds": rounds,
        "legacy_rps": legacy_rps,
        "fast_rps": fast_rps,
        "fast_events_rps": fast_events_rps,
        "fast_counters_rps": fast_counters_rps,
        "speedup": fast_rps / legacy_rps,
        "speedup_counters": fast_counters_rps / legacy_rps,
        "trace_identical": identical,
        "events": len(fast_trace.events),
        "breakdown_fast": _profiled_breakdown(n, max(rounds // 4, 20), True),
        "breakdown_legacy": _profiled_breakdown(n, max(rounds // 4, 20), False),
    }


def run_engine_benchmark(quick: bool = False, jobs: int = None):
    sizes = QUICK_SIZES if quick else FULL_SIZES
    rounds_by_n = QUICK_ROUNDS if quick else FULL_ROUNDS
    run_point = partial(run_workload_point, rounds_by_n=rounds_by_n)
    return run_sweep({"n": list(sizes)}, run_point, jobs=jobs)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small grid for CI smoke runs")
    parser.add_argument("--output", default=DEFAULT_OUTPUT, help="path of the JSON report")
    add_jobs_argument(parser)
    args = parser.parse_args(argv)

    result = run_engine_benchmark(quick=args.quick, jobs=args.jobs)

    columns = [
        "n",
        "delta",
        "unreliable_edges",
        "rounds",
        "legacy_rps",
        "fast_rps",
        "fast_events_rps",
        "fast_counters_rps",
        "speedup",
        "trace_identical",
    ]
    table = format_table(
        result.rows,
        columns=columns,
        title="Engine throughput: legacy vs fast path (rounds/sec), IID scheduler",
    )
    print(table)
    save_table("BENCH_engine", table)

    largest = max(row["n"] for row in result)
    headline = next(row for row in result if row["n"] == largest)
    report = {
        "benchmark": "bench_engine",
        "workload": "LBAlg, saturating senders, IIDScheduler(p=0.5), fixed seeds",
        "quick": bool(args.quick),
        "python": sys.version.split()[0],
        "target_speedup": TARGET_SPEEDUP,
        "headline_n": largest,
        "headline_speedup": headline["speedup"],
        "headline_speedup_counters": headline["speedup_counters"],
        "all_traces_identical": all(row["trace_identical"] for row in result),
        "workloads": result.rows,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nwrote {args.output}")
    print(
        f"n={largest}: {headline['speedup']:.1f}x rounds/sec vs seed engine "
        f"({headline['speedup_counters']:.1f}x with counters-only traces); "
        f"traces identical: {report['all_traces_identical']}"
    )

    if not report["all_traces_identical"]:
        print("ERROR: fast path diverged from the legacy engine", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
