"""Engine throughput benchmark: rounds/sec, path comparison, and breakdown.

This is the repo's performance yardstick.  For each network size it runs the
same fixed-seed LBAlg workload (saturating senders, i.i.d. link scheduler)
through four engine configurations:

* the **legacy** engine (``fast_path=False, batch_path=False``: per-round
  topology edge frozensets and per-process stepping -- exactly the seed
  engine's strategy),
* the **fast** path (indexed CSR topology, transmitter-centric collision
  counters with per-edge scheduler point queries, still per-process stepping
  -- the PR-1 engine, kept as the batching baseline),
* the **batched** engine (point-query resolution plus batch group drivers
  that share each body round's seed-cohort decision and skip dormant
  automata entirely -- the PR-2 engine), and
* the **vector** engine (batched stepping plus the vectorized reception
  resolver over flat per-round structures, with per-round scheduler deltas
  shared across runs by the ``SchedulerDeltaCache``), under each
  :class:`TraceMode`, and
* the **kernel** engine (the PR-6 array-kernel lane: bulk cohort RNG
  decode, round-scoped reusable buffers, and the python/numpy resolver
  backends selected by ``kernel="auto"``), run both under ``FULL`` traces
  for the identity check and under ``COUNTERS`` where the counters-only
  lane engages and event materialization is skipped entirely,

verifies that all five produce *identical* event traces and per-round
frames (the kernel counters run is checked against the legacy aggregate
counters instead, which is all that mode retains), and writes
``BENCH_engine.json`` at the repo root with rounds/sec, speedups, a
``resolve`` section comparing the resolvers' share of a round, a ``kernel``
section with the counters-lane headline and the kernel transmit-share cut
over the vector path, and per-section time breakdowns (from separate
profiled runs so the headline numbers carry no timer overhead).

Run it directly::

    PYTHONPATH=src python benchmarks/bench_engine.py            # full grid
    PYTHONPATH=src python benchmarks/bench_engine.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_engine.py --jobs 4   # pool over n
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
from typing import Any, Dict, Optional

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro import (
    IIDScheduler,
    LBParams,
    Simulator,
    TraceMode,
    make_lb_processes,
    random_geographic_network,
)
from repro.analysis.sweep import format_table
from repro.simulation.environment import SaturatingEnvironment

from benchmarks.common import add_jobs_argument, run_sweep, save_table

#: Approximate points per unit area; keeps the reliable degree roughly
#: constant as n grows (side scales with sqrt(n)).
DENSITY = 2.55

FULL_SIZES = (25, 100, 400)
QUICK_SIZES = (25, 100)
FULL_ROUNDS = {25: 1200, 100: 600, 400: 300}
#: Quick-mode rounds stay closer to the full run's steady state at n=100 so
#: the CI regression check is not dominated by warm-up rounds.
QUICK_ROUNDS = {25: 200, 100: 300}
MASTER_SEED = 2015  # PODC 2015
TARGET_SPEEDUP = 5.0
#: The PR-2 acceptance bar: batched rounds/sec over the PR-1 fast path.
TARGET_BATCHED_OVER_FAST = 2.0
#: The PR-3 acceptance bar: the vectorized resolver must cut the resolve
#: share of a batched round at the largest n by at least this factor.
TARGET_RESOLVE_SHARE_CUT = 1.5
#: The PR-6 acceptance bar: the kernel counters lane over the seed engine
#: at the largest n (this is the report's ``headline_speedup``).
TARGET_KERNEL_SPEEDUP = 150.0
#: The PR-6 transmit bar: bulk cohort decode must cut the transmit share of
#: a round at the largest n by at least this factor vs the vector path.
TARGET_KERNEL_TRANSMIT_SHARE_CUT = 1.5

#: name -> (fast_path, vector_path, batch_path, kernel); "kernel" is the
#: production default engine, the other four are the regression baselines it
#: stacks on.
ENGINES = {
    "legacy": (False, False, False, "off"),
    "fast": (True, False, False, "off"),
    "batched": (True, False, True, "off"),
    "vector": (True, True, True, "off"),
    "kernel": (True, True, True, "auto"),
}

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_engine.json"
)


def build_workload(
    n: int,
    engine: str,
    trace_mode: TraceMode,
    profile: bool = False,
):
    """One fixed-seed LBAlg workload; identical construction for every config."""
    import random

    fast_path, vector_path, batch_path, kernel = ENGINES[engine]
    side = math.sqrt(n / DENSITY)
    graph, _ = random_geographic_network(n, side=side, r=2.0, rng=MASTER_SEED + n)
    delta, delta_prime = graph.degree_bounds()
    params = LBParams.small_for_testing(delta=delta, delta_prime=delta_prime)
    senders = sorted(graph.vertices)[: max(2, n // 5)]
    simulator = Simulator(
        graph,
        make_lb_processes(graph, params, random.Random(MASTER_SEED)),
        scheduler=IIDScheduler(graph, probability=0.5, seed=MASTER_SEED),
        environment=SaturatingEnvironment(senders=senders),
        trace_mode=trace_mode,
        fast_path=fast_path,
        vector_path=vector_path,
        batch_path=batch_path,
        kernel=kernel,
        profile=profile,
    )
    return simulator, params


#: Timing samples per engine config; rounds/sec is the best of these.  The
#: fastest configs finish a whole sample in tens of milliseconds, where a
#: single GC pause or scheduler hiccup skews one sample by double digits --
#: best-of-N keeps the committed numbers and the CI regression gate stable.
TIMING_REPEATS = 3
#: Keep sampling (beyond ``TIMING_REPEATS``) until this much wall-clock has
#: been spent inside timed runs, up to ``TIMING_MAX_REPEATS``.  Slow configs
#: (legacy spends seconds per sample) stay at the minimum; the kernel lanes
#: finish a sample in tens of milliseconds and get best-of-~20, which is
#: what makes a microsecond-scale per-round headline reproducible on a
#: machine with double-digit run-to-run noise.
TIMING_MIN_SECONDS = 1.0
TIMING_MAX_REPEATS = 20


def _timed_run(n: int, rounds: int, engine: str, trace_mode: TraceMode):
    """Build and run the workload repeatedly; report the best rounds/sec.

    Every repeat constructs an identical fixed-seed simulator, so the traces
    are interchangeable; the first run's simulator and trace are returned for
    the identity checks.
    """
    simulator = trace = None
    best_rps = 0.0
    spent = 0.0
    for repeat in range(TIMING_MAX_REPEATS):
        if repeat >= TIMING_REPEATS and spent >= TIMING_MIN_SECONDS:
            break
        sim, _ = build_workload(n, engine, trace_mode)
        start = time.perf_counter()
        this_trace = sim.run(rounds)
        elapsed = time.perf_counter() - start
        spent += elapsed
        best_rps = max(best_rps, rounds / elapsed)
        if simulator is None:
            simulator, trace = sim, this_trace
    return simulator, trace, best_rps


def _profiled_breakdown(
    n: int, rounds: int, engine: str, trace_mode: TraceMode = TraceMode.FULL
) -> Dict[str, float]:
    simulator, _ = build_workload(n, engine, trace_mode, profile=True)
    simulator.run(rounds)
    total = sum(simulator.perf_stats.values()) or 1.0
    return {section: t / total for section, t in sorted(simulator.perf_stats.items())}


def _traces_identical(trace_a, trace_b, rounds: int) -> bool:
    if trace_a.events != trace_b.events:
        return False
    for round_number in range(1, rounds + 1):
        if trace_a.transmissions_in_round(round_number) != trace_b.transmissions_in_round(
            round_number
        ):
            return False
        if trace_a.receptions_in_round(round_number) != trace_b.receptions_in_round(
            round_number
        ):
            return False
    return True


def _counters_match(full_trace, counters_trace) -> bool:
    """Aggregate-counter parity: all a COUNTERS-mode trace retains."""
    return (
        counters_trace.num_rounds == full_trace.num_rounds
        and counters_trace.event_counts == full_trace.event_counts
        and counters_trace.num_transmissions == full_trace.num_transmissions
        and counters_trace.num_receptions == full_trace.num_receptions
    )


def run_workload_point(n: int, rounds_by_n: Dict[int, int]) -> Dict[str, Any]:
    """Benchmark one network size across engine paths and trace modes."""
    rounds = rounds_by_n[n]
    legacy_sim, legacy_trace, legacy_rps = _timed_run(n, rounds, "legacy", TraceMode.FULL)
    graph = legacy_sim.graph
    fast_sim, fast_trace, fast_rps = _timed_run(n, rounds, "fast", TraceMode.FULL)
    batched_sim, batched_trace, batched_rps = _timed_run(
        n, rounds, "batched", TraceMode.FULL
    )
    vector_sim, vector_trace, vector_rps = _timed_run(n, rounds, "vector", TraceMode.FULL)
    _, _, vector_events_rps = _timed_run(n, rounds, "vector", TraceMode.EVENTS)
    _, _, vector_counters_rps = _timed_run(n, rounds, "vector", TraceMode.COUNTERS)
    kernel_sim, kernel_trace, kernel_rps = _timed_run(n, rounds, "kernel", TraceMode.FULL)
    kc_sim, kc_trace, kernel_counters_rps = _timed_run(
        n, rounds, "kernel", TraceMode.COUNTERS
    )

    assert not legacy_sim.uses_fast_path and not legacy_sim.uses_batch_stepping
    assert fast_sim.uses_fast_path and not fast_sim.uses_vector_path
    assert not fast_sim.uses_batch_stepping
    assert batched_sim.uses_fast_path and batched_sim.uses_batch_stepping
    assert not batched_sim.uses_vector_path
    assert vector_sim.uses_vector_path and vector_sim.uses_batch_stepping
    assert not vector_sim.uses_kernel
    assert kernel_sim.uses_kernel and kernel_sim.kernel_backend in ("python", "numpy")
    assert kc_sim.uses_counters_lane, (
        "the benchmark workload must engage the counters-only kernel lane"
    )
    identical = (
        _traces_identical(legacy_trace, fast_trace, rounds)
        and _traces_identical(legacy_trace, batched_trace, rounds)
        and _traces_identical(legacy_trace, vector_trace, rounds)
        and _traces_identical(legacy_trace, kernel_trace, rounds)
        and _counters_match(legacy_trace, kc_trace)
    )

    profile_rounds = max(rounds // 4, 20)
    breakdown_batched = _profiled_breakdown(n, profile_rounds, "batched")
    breakdown_vector = _profiled_breakdown(n, profile_rounds, "vector")
    breakdown_kernel = _profiled_breakdown(n, profile_rounds, "kernel")
    breakdown_kernel_counters = _profiled_breakdown(
        n, profile_rounds, "kernel", TraceMode.COUNTERS
    )
    return {
        "delta": graph.max_reliable_degree,
        "delta_prime": graph.max_potential_degree,
        "reliable_edges": len(graph.reliable_edges),
        "unreliable_edges": len(graph.unreliable_edges),
        "rounds": rounds,
        "legacy_rps": legacy_rps,
        "fast_rps": fast_rps,
        "batched_rps": batched_rps,
        "vector_rps": vector_rps,
        "vector_events_rps": vector_events_rps,
        "vector_counters_rps": vector_counters_rps,
        "kernel_rps": kernel_rps,
        "kernel_counters_rps": kernel_counters_rps,
        "kernel_backend": kernel_sim.kernel_backend,
        "speedup_fast": fast_rps / legacy_rps,
        "speedup_batched": batched_rps / legacy_rps,
        "speedup": vector_rps / legacy_rps,
        "speedup_counters": vector_counters_rps / legacy_rps,
        "speedup_kernel": kernel_rps / legacy_rps,
        "speedup_kernel_counters": kernel_counters_rps / legacy_rps,
        "batched_over_fast": batched_rps / fast_rps,
        "vector_over_batched": vector_rps / batched_rps,
        "kernel_over_vector": kernel_rps / vector_rps,
        "resolve_share_batched": breakdown_batched.get("resolve", 0.0),
        "resolve_share_vector": breakdown_vector.get("resolve", 0.0),
        "transmit_share_vector": breakdown_vector.get("transmit", 0.0),
        "transmit_share_kernel": breakdown_kernel.get("transmit", 0.0),
        "trace_identical": identical,
        "events": len(vector_trace.events),
        "breakdown_kernel": breakdown_kernel,
        "breakdown_kernel_counters": breakdown_kernel_counters,
        "breakdown_vector": breakdown_vector,
        "breakdown_batched": breakdown_batched,
        "breakdown_fast": _profiled_breakdown(n, profile_rounds, "fast"),
        "breakdown_legacy": _profiled_breakdown(n, profile_rounds, "legacy"),
    }


def run_engine_benchmark(quick: bool = False, jobs: Optional[int] = None):
    sizes = QUICK_SIZES if quick else FULL_SIZES
    rounds_by_n = QUICK_ROUNDS if quick else FULL_ROUNDS
    return run_sweep(
        {"n": list(sizes)},
        run_workload_point,
        jobs=jobs,
        common={"rounds_by_n": rounds_by_n},
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small grid for CI smoke runs")
    parser.add_argument("--output", default=DEFAULT_OUTPUT, help="path of the JSON report")
    add_jobs_argument(parser)
    args = parser.parse_args(argv)

    result = run_engine_benchmark(quick=args.quick, jobs=args.jobs)

    columns = [
        "n",
        "delta",
        "rounds",
        "legacy_rps",
        "fast_rps",
        "batched_rps",
        "vector_rps",
        "kernel_rps",
        "kernel_counters_rps",
        "speedup_batched",
        "speedup",
        "speedup_kernel",
        "speedup_kernel_counters",
        "kernel_backend",
        "trace_identical",
    ]
    table = format_table(
        result.rows,
        columns=columns,
        title=(
            "Engine throughput: legacy vs fast vs batched vs vector vs kernel "
            "(rounds/sec), IID scheduler"
        ),
    )
    print(table)
    # Quick smoke runs save under a separate name so they never clobber the
    # committed full-grid table that evidences the headline numbers.
    save_table("BENCH_engine_quick" if args.quick else "BENCH_engine", table)

    largest = max(row["n"] for row in result)
    headline = next(row for row in result if row["n"] == largest)
    resolve_section = {
        "description": (
            "per-section profile shares of one round; 'cut' is the batched "
            "(point-query) resolver's share over the vectorized resolver's "
            "share at the same n"
        ),
        "target_share_cut": TARGET_RESOLVE_SHARE_CUT,
        "by_n": {
            str(row["n"]): {
                "batched_share": row["resolve_share_batched"],
                "vector_share": row["resolve_share_vector"],
                # None (not inf) when the vector share rounds to zero: the
                # report must stay strict JSON.
                "share_cut": (
                    row["resolve_share_batched"] / row["resolve_share_vector"]
                    if row["resolve_share_vector"]
                    else None
                ),
            }
            for row in result
        },
    }
    headline_cut = resolve_section["by_n"][str(largest)]["share_cut"]
    headline_cut_text = (
        f"{headline_cut:.1f}x" if headline_cut is not None else "n/a (zero vector share)"
    )
    kernel_section = {
        "description": (
            "the PR-6 array-kernel lane: 'full_rps' runs kernel stepping and "
            "the backend resolver under FULL traces (identity-checked), "
            "'counters_rps' is the counters-only lane that skips event "
            "materialization; 'transmit_share_cut' is the vector path's "
            "transmit share of a round over the kernel path's at the same n "
            "(bulk cohort decode shrinks the transmit section)"
        ),
        "target_speedup": TARGET_KERNEL_SPEEDUP,
        "target_transmit_share_cut": TARGET_KERNEL_TRANSMIT_SHARE_CUT,
        "backend": headline["kernel_backend"],
        "by_n": {
            str(row["n"]): {
                "full_rps": row["kernel_rps"],
                "counters_rps": row["kernel_counters_rps"],
                "speedup_full": row["speedup_kernel"],
                "speedup_counters": row["speedup_kernel_counters"],
                "transmit_share_vector": row["transmit_share_vector"],
                "transmit_share_kernel": row["transmit_share_kernel"],
                "transmit_share_cut": (
                    row["transmit_share_vector"] / row["transmit_share_kernel"]
                    if row["transmit_share_kernel"]
                    else None
                ),
            }
            for row in result
        },
    }
    headline_tx_cut = kernel_section["by_n"][str(largest)]["transmit_share_cut"]
    report = {
        "benchmark": "bench_engine",
        "workload": "LBAlg, saturating senders, IIDScheduler(p=0.5), fixed seeds",
        "quick": bool(args.quick),
        "python": sys.version.split()[0],
        "target_speedup": TARGET_SPEEDUP,
        "target_batched_over_fast": TARGET_BATCHED_OVER_FAST,
        "target_kernel_speedup": TARGET_KERNEL_SPEEDUP,
        "headline_n": largest,
        # The headline is the full PR-6 stack: the counters-only kernel lane
        # over the seed engine's FULL-trace rounds/sec.
        "headline_speedup": headline["speedup_kernel_counters"],
        "headline_speedup_fast": headline["speedup_fast"],
        "headline_speedup_batched": headline["speedup_batched"],
        "headline_speedup_vector": headline["speedup"],
        "headline_speedup_kernel": headline["speedup_kernel"],
        "headline_batched_over_fast": headline["batched_over_fast"],
        "headline_vector_over_batched": headline["vector_over_batched"],
        "headline_kernel_over_vector": headline["kernel_over_vector"],
        "headline_speedup_counters": headline["speedup_counters"],
        "headline_resolve_share_cut": headline_cut,
        "headline_transmit_share_cut": headline_tx_cut,
        "kernel_backend": headline["kernel_backend"],
        "resolve": resolve_section,
        "kernel": kernel_section,
        "all_traces_identical": all(row["trace_identical"] for row in result),
        "workloads": result.rows,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print(f"\nwrote {args.output}")
    headline_tx_cut_text = (
        f"{headline_tx_cut:.1f}x" if headline_tx_cut is not None else "n/a"
    )
    print(
        f"n={largest}: kernel counters lane {headline['speedup_kernel_counters']:.1f}x "
        f"rounds/sec vs seed engine (target {TARGET_KERNEL_SPEEDUP:.0f}x; "
        f"backend {headline['kernel_backend']}; "
        f"kernel FULL {headline['speedup_kernel']:.1f}x, "
        f"vector {headline['speedup']:.1f}x); "
        f"resolve share {headline['resolve_share_batched']:.0%} -> "
        f"{headline['resolve_share_vector']:.0%} "
        f"({headline_cut_text} cut, target {TARGET_RESOLVE_SHARE_CUT:.1f}x); "
        f"transmit share {headline['transmit_share_vector']:.0%} -> "
        f"{headline['transmit_share_kernel']:.0%} "
        f"({headline_tx_cut_text} cut, target "
        f"{TARGET_KERNEL_TRANSMIT_SHARE_CUT:.1f}x); "
        f"traces identical: {report['all_traces_identical']}"
    )

    if not report["all_traces_identical"]:
        print("ERROR: an engine path diverged from the legacy engine", file=sys.stderr)
        return 1
    if not args.quick and report["headline_speedup"] < TARGET_KERNEL_SPEEDUP:
        # Full-grid runs evidence the committed headline; warn loudly (but do
        # not fail -- machine variance is not a correctness problem).
        print(
            f"WARNING: headline speedup {report['headline_speedup']:.1f}x is below "
            f"the {TARGET_KERNEL_SPEEDUP:.0f}x target",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
