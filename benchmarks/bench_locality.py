"""E9 -- True locality: behavior is independent of the network size n.

Reproduced claim ("True Locality", Section 1): the service's specification,
time complexity, and error bounds depend only on *local* quantities (Δ, Δ',
r, ε), never on the network size n.  Growing the network while keeping the
local density fixed must therefore leave both the derived schedule lengths
and the observed local behavior (per-window progress failure rate, per-round
reception rate at a contended receiver) essentially unchanged.

The harness samples networks of increasing n at constant density, derives the
parameters from a *fixed* (Δ, Δ') budget (the processes only know the bounds,
not the sampled maxima), and measures local delivery behavior around a probe
sender placed in the middle of the area.
"""

from __future__ import annotations

import random
from typing import Dict

from repro import LBParams, Simulator, make_lb_processes, random_geographic_network
from repro.analysis.stats import mean
from repro.analysis.sweep import SweepResult, sweep
from repro.dualgraph.adversary import IIDScheduler
from repro.simulation.environment import SaturatingEnvironment
from repro.simulation.metrics import data_reception_rounds, progress_report

from benchmarks.common import print_and_save, run_once_benchmark

#: (n, side) pairs with constant density (~1.9 vertices per unit square).
SIZES = ((18, 3.0), (32, 4.0), (50, 5.0), (72, 6.0))
EPSILON = 0.2
TRIALS = 2
PHASES_PER_TRIAL = 3
DELTA_BUDGET = 16
DELTA_PRIME_BUDGET = 40


def _probe_vertex(graph, embedding):
    """The vertex closest to the center of the deployment area."""
    min_x, min_y, max_x, max_y = embedding.bounding_box()
    cx, cy = (min_x + max_x) / 2.0, (min_y + max_y) / 2.0
    return min(
        graph.vertices,
        key=lambda v: (embedding.position(v)[0] - cx) ** 2 + (embedding.position(v)[1] - cy) ** 2,
    )


def _run_point(size_index: int) -> Dict[str, float]:
    n, side = SIZES[size_index]
    params = LBParams.derive(EPSILON, delta=DELTA_BUDGET, delta_prime=DELTA_PRIME_BUDGET, r=2.0)
    failure_rates = []
    probe_rates = []
    measured_deltas = []

    for trial in range(TRIALS):
        graph, embedding = random_geographic_network(
            n, side=side, r=2.0, rng=300 + 7 * size_index + trial, require_connected=True,
            max_attempts=80,
        )
        measured_deltas.append(graph.max_reliable_degree)
        probe = _probe_vertex(graph, embedding)
        probe_neighbors = sorted(graph.reliable_neighbors(probe))
        senders = probe_neighbors[:2] if probe_neighbors else [probe]
        simulator = Simulator(
            graph,
            make_lb_processes(graph, params, random.Random(trial)),
            scheduler=IIDScheduler(graph, probability=0.5, seed=trial),
            environment=SaturatingEnvironment(senders=senders),
        )
        rounds = PHASES_PER_TRIAL * params.phase_length
        trace = simulator.run(rounds)

        report = progress_report(trace, graph, window=params.tprog_rounds, receivers=[probe])
        if report.num_applicable:
            failure_rates.append(report.failure_rate)
        probe_rates.append(len(data_reception_rounds(trace, probe)) / rounds)

    return {
        "n": n,
        "side": side,
        "mean_measured_delta": mean(measured_deltas),
        "tprog_rounds": params.tprog_rounds,
        "tack_rounds": params.tack_rounds,
        "probe_progress_failure_rate": mean(failure_rates) if failure_rates else 0.0,
        "probe_reception_rate": mean(probe_rates),
    }


def run_locality_experiment() -> SweepResult:
    """Run the E9 sweep and return its table."""
    return sweep({"size_index": list(range(len(SIZES)))}, run=_run_point)


def test_bench_locality(benchmark):
    result = run_once_benchmark(benchmark, run_locality_experiment)
    print_and_save(
        "E9_true_locality",
        "E9 -- growing n at fixed local density: schedule lengths and local behavior stay flat",
        result,
        columns=[
            "n",
            "side",
            "mean_measured_delta",
            "tprog_rounds",
            "tack_rounds",
            "probe_progress_failure_rate",
            "probe_reception_rate",
        ],
    )
    rows = result.rows
    # The derived schedule is literally identical for every n (it only sees
    # the fixed local budget), which is the heart of the locality claim.
    assert len({row["tprog_rounds"] for row in rows}) == 1
    assert len({row["tack_rounds"] for row in rows}) == 1
    # Local behavior does not degrade as n grows.
    smallest, largest = rows[0], rows[-1]
    assert largest["probe_progress_failure_rate"] <= EPSILON + 0.15
    assert largest["probe_reception_rate"] > 0.0
    if smallest["probe_reception_rate"] > 0:
        assert largest["probe_reception_rate"] >= 0.2 * smallest["probe_reception_rate"]
