"""E9 -- True locality: behavior is independent of the network size n.

Reproduced claim ("True Locality", Section 1): the service's specification,
time complexity, and error bounds depend only on *local* quantities (Δ, Δ',
r, ε), never on the network size n.  Growing the network while keeping the
local density fixed must therefore leave both the derived schedule lengths
and the observed local behavior (per-window progress failure rate, per-round
reception rate at a contended receiver) essentially unchanged.

The harness is a **scenario suite**: one entry per (size, trial), grouped by
n, with the ``params`` / ``graph_stats`` / ``probe_progress`` /
``probe_reception`` metrics declared on the spec.  The fixed (Δ, Δ') budget
becomes the ``lbalg`` builder's ``delta_budget`` / ``delta_prime_budget``
args (the processes only know the bounds, not the sampled maxima), and the
probe placement -- the vertex nearest the center of the deployment area, its
first two reliable neighbors saturating -- is the declarative
``center_probe_neighbors`` sender selection plus the probe metrics' default
center vertex.  The checked-in manifest at
``examples/suites/bench_locality.json`` is this suite as data (pinned by
``tests/test_suites.py``); seeds match the pre-suite harness exactly, so the
table values are unchanged.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.analysis.stats import mean
from repro.analysis.sweep import SweepResult
from repro.scenarios import (
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    MetricSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    SuiteEntry,
    SuiteReport,
    SuiteSpec,
    TopologySpec,
    run_suite,
)

from benchmarks.common import default_jobs, print_and_save, run_once_benchmark

#: (n, side) pairs with constant density (~1.9 vertices per unit square).
SIZES = ((18, 3.0), (32, 4.0), (50, 5.0), (72, 6.0))
EPSILON = 0.2
TRIALS = 2
PHASES_PER_TRIAL = 3
DELTA_BUDGET = 16
DELTA_PRIME_BUDGET = 40

SUITE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "examples", "suites", "bench_locality.json"
)

#: ``trace_mode="auto"`` resolves to FULL -- the probe metrics read frames.
LOCALITY_METRICS = (
    MetricSpec("params"),
    MetricSpec("graph_stats"),
    MetricSpec("probe_progress"),
    MetricSpec("probe_reception"),
)


def build_locality_suite() -> SuiteSpec:
    """The E9 experiment as a :class:`~repro.scenarios.suite.SuiteSpec`.

    Seeds match the pre-suite harness exactly (``graph_seed = 300 + 7*size_index
    + trial``, scheduler and process RNGs rooted at the trial index), so the
    suite reproduces the historical table values.
    """
    entries: List[SuiteEntry] = []
    for size_index, (n, side) in enumerate(SIZES):
        for trial in range(TRIALS):
            spec = ScenarioSpec(
                name=f"bench-locality-n{n}-t{trial}",
                topology=TopologySpec(
                    "random_geographic",
                    {
                        "n": n,
                        "side": side,
                        "r": 2.0,
                        "seed": 300 + 7 * size_index + trial,
                        "require_connected": True,
                        "max_attempts": 80,
                    },
                ),
                algorithm=AlgorithmSpec(
                    "lbalg",
                    {
                        "epsilon": EPSILON,
                        "preset": "derived",
                        "delta_budget": DELTA_BUDGET,
                        "delta_prime_budget": DELTA_PRIME_BUDGET,
                    },
                ),
                scheduler=SchedulerSpec("iid", {"probability": 0.5, "seed": trial}),
                environment=EnvironmentSpec(
                    "saturating",
                    {"senders": {"select": "center_probe_neighbors", "count": 2}},
                ),
                engine=EngineConfig(trace_mode="auto"),
                run=RunPolicy(
                    rounds=PHASES_PER_TRIAL,
                    rounds_unit="phases",
                    trials=1,
                    master_seed=trial,
                    seed_policy="fixed",
                ),
                metrics=LOCALITY_METRICS,
            )
            entries.append(SuiteEntry(id=spec.name, scenario=spec, group=f"n{n}"))
    return SuiteSpec(
        name="bench-locality",
        description=(
            "E9 -- true locality: networks of growing n at fixed local density, "
            "parameters derived from a fixed (Delta, Delta') budget, local "
            "behavior probed at the center vertex"
        ),
        entries=tuple(entries),
    )


def locality_rows_from_report(report: SuiteReport) -> SweepResult:
    """Reduce the suite report to the benchmark's one-row-per-n table."""
    result = SweepResult()
    for size_index, (n, side) in enumerate(SIZES):
        members = [e for e in report.entries if e.entry.group_label == f"n{n}"]
        trial_rows = [m.result.trials[0].metric_row for m in members]
        # The pre-suite harness averaged failure rates only over trials where
        # at least one progress window was applicable.
        failure_rates = [
            row["probe_progress.failure_rate"]
            for row in trial_rows
            if row["probe_progress.windows"] > 0
        ]
        result.append(
            {
                "size_index": size_index,
                "n": n,
                "side": side,
                "mean_measured_delta": mean(
                    [row["graph_stats.delta"] for row in trial_rows]
                ),
                # The derived schedule only sees the fixed budget, so these
                # are identical across trials (and across n -- the claim).
                "tprog_rounds": int(trial_rows[-1]["params.tprog_rounds"]),
                "tack_rounds": int(trial_rows[-1]["params.tack_rounds"]),
                "probe_progress_failure_rate": (
                    mean(failure_rates) if failure_rates else 0.0
                ),
                "probe_reception_rate": mean(
                    [row["probe_reception.rate"] for row in trial_rows]
                ),
            }
        )
    return result


def run_locality_experiment(jobs: Optional[int] = None) -> SweepResult:
    """Run the E9 suite and return its table."""
    report = run_suite(
        build_locality_suite(), jobs=jobs if jobs is not None else default_jobs()
    )
    return locality_rows_from_report(report)


def test_bench_locality(benchmark):
    result = run_once_benchmark(benchmark, run_locality_experiment)
    print_and_save(
        "E9_true_locality",
        "E9 -- growing n at fixed local density: schedule lengths and local behavior stay flat",
        result,
        columns=[
            "n",
            "side",
            "mean_measured_delta",
            "tprog_rounds",
            "tack_rounds",
            "probe_progress_failure_rate",
            "probe_reception_rate",
        ],
    )
    rows = result.rows
    # The derived schedule is literally identical for every n (it only sees
    # the fixed local budget), which is the heart of the locality claim.
    assert len({row["tprog_rounds"] for row in rows}) == 1
    assert len({row["tack_rounds"] for row in rows}) == 1
    # Local behavior does not degrade as n grows.
    smallest, largest = rows[0], rows[-1]
    assert largest["probe_progress_failure_rate"] <= EPSILON + 0.15
    assert largest["probe_reception_rate"] > 0.0
    if smallest["probe_reception_rate"] > 0:
        assert largest["probe_reception_rate"] >= 0.2 * smallest["probe_reception_rate"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-suite",
        action="store_true",
        help=f"regenerate the checked-in manifest at {SUITE_PATH}",
    )
    args = parser.parse_args()
    if args.write_suite:
        print("wrote", build_locality_suite().save(os.path.normpath(SUITE_PATH)))
    else:
        result = run_locality_experiment()
        print_and_save(
            "E9_true_locality",
            "E9 -- growing n at fixed local density: schedule lengths and local behavior stay flat",
            result,
        )
