"""Suite throughput benchmark: cold vs warm (result store) vs sharded runs.

This is the PR-7 performance yardstick for the content-addressed
:class:`~repro.scenarios.store.ResultStore` and the sharded suite executor.
It builds a synthetic seed-agreement suite (every trial is a standalone
``SeedAlg`` run to completion -- cheap enough to benchmark, expensive enough
that recomputation dominates store I/O) and times three executions:

* **cold** -- a fresh store: every trial executes and is written back;
* **warm** -- the same store again: every trial must be a cache hit
  (``store.misses == 0``) and the assembled metric rows must be
  *byte-identical* to the cold run's;
* **sharded** -- the suite split ``1/2`` + ``2/2`` over a second fresh
  store, merged via :func:`~repro.scenarios.suite.merge_reports`, whose
  deterministic content must equal the unsharded report's.

The headline is ``warm_speedup = cold_s / warm_s``: how much faster a rerun
is when every record is served from the store.  The committed baseline at
the repo root is ``BENCH_suite.json``; CI regenerates a ``--quick`` report
and gates ``warm_speedup`` (and the two identity booleans) through
``check_bench_regression.py --suite-fresh``.  The speedup is a ratio of two
runs on the same host, so it is comparable across machines.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_suite_throughput.py          # full
    PYTHONPATH=src python benchmarks/bench_suite_throughput.py --quick  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.analysis.sweep import format_table
from repro.scenarios import (
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    MetricSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    SuiteEntry,
    SuiteReport,
    SuiteSpec,
    TopologySpec,
    deterministic_report_dict,
    merge_reports,
    run_suite,
    run_suite_shard,
)

from benchmarks.common import add_jobs_argument, default_jobs, save_table

#: The PR-7 acceptance bar: a fully warm rerun over cold execution.
TARGET_WARM_SPEEDUP = 20.0

FULL_GRID = {"deltas": (8, 16), "epsilons": (0.2, 0.1), "trials": 6}
QUICK_GRID = {"deltas": (8,), "epsilons": (0.2,), "trials": 6}

OUTPUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_suite.json"
)

THROUGHPUT_METRICS = (
    MetricSpec("params"),
    MetricSpec("seed_owners"),
    MetricSpec("commit_latency"),
)


def build_throughput_suite(quick: bool = False) -> SuiteSpec:
    """A deterministic seed-agreement grid sized for benchmarking the store."""
    grid = QUICK_GRID if quick else FULL_GRID
    entries: List[SuiteEntry] = []
    for target_delta in grid["deltas"]:
        for epsilon in grid["epsilons"]:
            for trial in range(grid["trials"]):
                spec = ScenarioSpec(
                    name=f"store-bench-d{target_delta}-e{epsilon}-t{trial}",
                    topology=TopologySpec(
                        "target_degree",
                        {"target_delta": target_delta, "seed": 500 * target_delta + trial},
                    ),
                    algorithm=AlgorithmSpec("seed_agreement", {"epsilon": epsilon}),
                    scheduler=SchedulerSpec("iid", {"probability": 0.5, "seed": trial}),
                    environment=EnvironmentSpec("null", {}),
                    engine=EngineConfig(trace_mode="auto"),
                    run=RunPolicy(
                        rounds=1,
                        rounds_unit="algorithm",
                        trials=1,
                        master_seed=trial,
                        seed_policy="fixed",
                    ),
                    metrics=THROUGHPUT_METRICS,
                )
                entries.append(
                    SuiteEntry(
                        id=spec.name,
                        scenario=spec,
                        group=f"d{target_delta}-e{epsilon}",
                    )
                )
    return SuiteSpec(
        name="bench-suite-throughput",
        description="synthetic grid exercising the result store and sharding",
        entries=tuple(entries),
    )


def _metric_rows_blob(report: SuiteReport) -> str:
    """Canonical serialization of every trial's metric row, for byte equality."""
    rows = [t.metric_row for e in report.entries for t in e.result.trials]
    return json.dumps(rows, sort_keys=True)


def _timed(fn) -> Tuple[Any, float]:
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def run_benchmark(quick: bool = False, jobs: Optional[int] = None) -> Dict[str, Any]:
    if jobs is None:
        jobs = default_jobs()
    suite = build_throughput_suite(quick=quick)
    task_count = sum(entry.scenario.run.trials for entry in suite.entries)

    workdir = tempfile.mkdtemp(prefix="bench-suite-store-")
    try:
        store_dir = os.path.join(workdir, "store")
        cold, cold_s = _timed(lambda: run_suite(suite, jobs=jobs, store=store_dir))
        warm, warm_s = _timed(lambda: run_suite(suite, jobs=jobs, store=store_dir))

        # Sharded run over a second fresh store: two shards, then merge.
        shard_dir = os.path.join(workdir, "shard-store")
        shard1, shard1_s = _timed(
            lambda: run_suite_shard(suite, 1, 2, jobs=jobs, store=shard_dir)
        )
        shard2, shard2_s = _timed(
            lambda: run_suite_shard(suite, 2, 2, jobs=jobs, store=shard_dir)
        )
        merged, merge_s = _timed(lambda: merge_reports(suite, [shard1, shard2]))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    warm_speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    cold_det = deterministic_report_dict(cold.to_dict())
    report: Dict[str, Any] = {
        "benchmark": "bench_suite_throughput",
        "quick": quick,
        "jobs": jobs,
        "suite_fingerprint": suite.fingerprint(),
        "entries": len(suite.entries),
        "tasks": task_count,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warm_speedup": warm_speedup,
        "warm_hits": int(warm.store_stats["hits"]),
        "warm_misses": int(warm.store_stats["misses"]),
        "rows_identical": _metric_rows_blob(cold) == _metric_rows_blob(warm),
        "shard1_s": shard1_s,
        "shard2_s": shard2_s,
        "sharded_s": shard1_s + shard2_s,
        "merge_s": merge_s,
        "merge_identical": deterministic_report_dict(merged.to_dict()) == cold_det,
        "target_warm_speedup": TARGET_WARM_SPEEDUP,
    }
    return report


def render_table(report: Dict[str, Any]) -> str:
    rows = [
        {
            "mode": "cold (fresh store)",
            "elapsed_s": round(report["cold_s"], 4),
            "speedup_vs_cold": 1.0,
        },
        {
            "mode": "warm (all hits)",
            "elapsed_s": round(report["warm_s"], 4),
            "speedup_vs_cold": round(report["warm_speedup"], 1),
        },
        {
            "mode": "sharded 2x (fresh store)",
            "elapsed_s": round(report["sharded_s"], 4),
            "speedup_vs_cold": round(
                report["cold_s"] / report["sharded_s"] if report["sharded_s"] else 0.0, 2
            ),
        },
    ]
    title = (
        f"Suite throughput ({report['tasks']} tasks, jobs={report['jobs']}): "
        f"warm rerun {report['warm_speedup']:.0f}x over cold "
        f"(target >= {report['target_warm_speedup']:.0f}x); "
        f"warm misses={report['warm_misses']}, "
        f"rows identical={report['rows_identical']}, "
        f"merged == unsharded: {report['merge_identical']}"
    )
    return format_table(rows, columns=["mode", "elapsed_s", "speedup_vs_cold"], title=title)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small grid for CI smoke runs"
    )
    parser.add_argument(
        "--output",
        default=OUTPUT_PATH,
        help="where to write the JSON report (default: repo-root BENCH_suite.json)",
    )
    add_jobs_argument(parser)
    args = parser.parse_args(argv)

    report = run_benchmark(quick=args.quick, jobs=args.jobs)
    table = render_table(report)
    print(table)
    save_table("BENCH_suite", table)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {args.output}")

    failures = []
    if not report["rows_identical"]:
        failures.append("warm rerun's metric rows differ from the cold run's")
    if report["warm_misses"] != 0:
        failures.append(f"warm rerun recomputed {report['warm_misses']} trial(s)")
    if not report["merge_identical"]:
        failures.append("merged shard report differs from the unsharded report")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
