"""Suite throughput benchmark: cold vs warm (result store) vs sharded runs.

This is the PR-7 performance yardstick for the content-addressed
:class:`~repro.scenarios.store.ResultStore` and the sharded suite executor.
It builds a synthetic seed-agreement suite (every trial is a standalone
``SeedAlg`` run to completion -- cheap enough to benchmark, expensive enough
that recomputation dominates store I/O) and times three executions:

* **cold** -- a fresh store: every trial executes and is written back;
* **warm** -- the same store again: every trial must be a cache hit
  (``store.misses == 0``) and the assembled metric rows must be
  *byte-identical* to the cold run's;
* **sharded** -- the suite split ``1/2`` + ``2/2`` over a second fresh
  store, merged via :func:`~repro.scenarios.suite.merge_reports`, whose
  deterministic content must equal the unsharded report's.

The headline is ``warm_speedup = cold_s / warm_s``: how much faster a rerun
is when every record is served from the store.  The committed baseline at
the repo root is ``BENCH_suite.json``; CI regenerates a ``--quick`` report
and gates ``warm_speedup`` (and the two identity booleans) through
``check_bench_regression.py --suite-fresh``.  The speedup is a ratio of two
runs on the same host, so it is comparable across machines.

The PR-10 ``fleet`` section benchmarks the multi-process work-stealing
executor (:func:`~repro.scenarios.fleet.run_suite_fleet`) on a *skewed*
workload -- one task modeled an order of magnitude heavier than the rest, the
case where a fixed ``1/N`` shard split would straggle behind its heavy shard.
Per-task cost is modeled as blocking latency through the executor's
``task_runner`` seam and **both arms run the same executor** (``workers=1``
vs ``workers=4``), so the ratio measures dispatch overlap and steal balance
-- properties of the lease protocol -- rather than CPU core count, and the
``>= 2.5x`` gate (``--min-fleet-speedup``) holds even on single-core CI
runners.  Merge identity is asserted separately on the *real* suite: a cold
fleet-of-4 run must produce a report byte-identical (modulo timings) to the
serial ``run_suite`` report.

Run it directly::

    PYTHONPATH=src python benchmarks/bench_suite_throughput.py          # full
    PYTHONPATH=src python benchmarks/bench_suite_throughput.py --quick  # CI
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from repro.analysis.sweep import format_table
from repro.scenarios import (
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    MetricSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    SuiteEntry,
    SuiteReport,
    SuiteSpec,
    TopologySpec,
    deterministic_report_dict,
    merge_reports,
    run_suite,
    run_suite_fleet,
    run_suite_shard,
)
from repro.scenarios.fleet import default_task_runner

from benchmarks.common import add_jobs_argument, default_jobs, save_table

#: The PR-7 acceptance bar: a fully warm rerun over cold execution.
TARGET_WARM_SPEEDUP = 20.0

#: The PR-10 acceptance bar: cold fleet-of-4 over cold serial on the skewed
#: modeled-latency workload (same executor both arms; see module docstring).
TARGET_FLEET_SPEEDUP = 2.5

FLEET_WORKERS = 4

#: Skew workload: one heavy task pinned at exactly total/4 so a perfectly
#: balanced 4-worker fleet bottoms out on it -- any steal imbalance or
#: dispatch serialization shows up directly in the measured wall time.
SKEW_LIGHT_TASKS = 15
SKEW_LIGHT_S = 0.2
SKEW_HEAVY_S = 1.0

#: spec.name -> modeled blocking latency, populated before the fleet forks so
#: workers inherit it through fork memory (module-level: fork-visible without
#: pickling, exactly like the executor's own task_runner seam).
_MODELED_LATENCIES: Dict[str, float] = {}


def modeled_latency_task_runner(spec, trial_index):
    """Sleep the task's modeled cost, then run the real (cheap) trial.

    Records stay genuine -- content-addressed, mergeable, byte-identical
    across arms -- while wall time is dominated by the modeled latency."""
    time.sleep(_MODELED_LATENCIES.get(spec.name, 0.0))
    return default_task_runner(spec, trial_index)

FULL_GRID = {"deltas": (8, 16), "epsilons": (0.2, 0.1), "trials": 6}
QUICK_GRID = {"deltas": (8,), "epsilons": (0.2,), "trials": 6}

OUTPUT_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_suite.json"
)

THROUGHPUT_METRICS = (
    MetricSpec("params"),
    MetricSpec("seed_owners"),
    MetricSpec("commit_latency"),
)


def build_throughput_suite(quick: bool = False) -> SuiteSpec:
    """A deterministic seed-agreement grid sized for benchmarking the store."""
    grid = QUICK_GRID if quick else FULL_GRID
    entries: List[SuiteEntry] = []
    for target_delta in grid["deltas"]:
        for epsilon in grid["epsilons"]:
            for trial in range(grid["trials"]):
                spec = ScenarioSpec(
                    name=f"store-bench-d{target_delta}-e{epsilon}-t{trial}",
                    topology=TopologySpec(
                        "target_degree",
                        {"target_delta": target_delta, "seed": 500 * target_delta + trial},
                    ),
                    algorithm=AlgorithmSpec("seed_agreement", {"epsilon": epsilon}),
                    scheduler=SchedulerSpec("iid", {"probability": 0.5, "seed": trial}),
                    environment=EnvironmentSpec("null", {}),
                    engine=EngineConfig(trace_mode="auto"),
                    run=RunPolicy(
                        rounds=1,
                        rounds_unit="algorithm",
                        trials=1,
                        master_seed=trial,
                        seed_policy="fixed",
                    ),
                    metrics=THROUGHPUT_METRICS,
                )
                entries.append(
                    SuiteEntry(
                        id=spec.name,
                        scenario=spec,
                        group=f"d{target_delta}-e{epsilon}",
                    )
                )
    return SuiteSpec(
        name="bench-suite-throughput",
        description="synthetic grid exercising the result store and sharding",
        entries=tuple(entries),
    )


def build_skew_suite() -> SuiteSpec:
    """16 trivially-cheap tasks whose *modeled* costs are heavily skewed.

    Entry 0 carries :data:`SKEW_HEAVY_S`; the rest carry
    :data:`SKEW_LIGHT_S`.  A static ``1/4`` shard split would leave the
    heavy shard straggling ~2x behind; dynamic leases let the other workers
    drain the light tail while one worker sits on the heavy task.
    """
    entries: List[SuiteEntry] = []
    _MODELED_LATENCIES.clear()
    for index in range(1 + SKEW_LIGHT_TASKS):
        spec = ScenarioSpec(
            name=f"skew-bench-{index}",
            topology=TopologySpec("line", {"n": 5}),
            algorithm=AlgorithmSpec("lbalg", {"preset": "small"}),
            scheduler=SchedulerSpec("iid", {"probability": 0.5, "seed": index}),
            environment=EnvironmentSpec("single_shot", {"senders": [0]}),
            engine=EngineConfig(trace_mode="auto"),
            run=RunPolicy(
                rounds=1,
                rounds_unit="tack",
                trials=1,
                master_seed=index,
                seed_policy="fixed",
            ),
            metrics=(MetricSpec("counters"),),
        )
        _MODELED_LATENCIES[spec.name] = SKEW_HEAVY_S if index == 0 else SKEW_LIGHT_S
        entries.append(SuiteEntry(id=spec.name, scenario=spec, group="skew"))
    return SuiteSpec(
        name="bench-fleet-skew",
        description="skewed modeled-latency workload for the fleet executor",
        entries=tuple(entries),
    )


def run_fleet_benchmark(
    real_suite: SuiteSpec, workdir: str, real_serial_det: Dict[str, Any]
) -> Dict[str, Any]:
    """The PR-10 fleet section: skewed speedup + real-suite merge identity.

    ``real_serial_det`` is the deterministic dict of the cold serial run of
    ``real_suite`` (already measured by the caller -- no need to rerun it).
    """
    skew = build_skew_suite()
    modeled_total = SKEW_HEAVY_S + SKEW_LIGHT_TASKS * SKEW_LIGHT_S

    serial_dir = os.path.join(workdir, "fleet-serial")
    serial, serial_s = _timed(
        lambda: run_suite_fleet(
            skew,
            workers=1,
            store=serial_dir,
            prebuild=False,
            task_runner=modeled_latency_task_runner,
        )
    )
    fleet_dir = os.path.join(workdir, "fleet-skew")
    fleet, fleet_s = _timed(
        lambda: run_suite_fleet(
            skew,
            workers=FLEET_WORKERS,
            store=fleet_dir,
            chunk_size=1,
            prebuild=False,
            task_runner=modeled_latency_task_runner,
        )
    )

    # Merge identity on the *real* throughput suite: a cold fleet run must
    # reproduce the serial run_suite report (modulo wall-clock fields).
    real_fleet_dir = os.path.join(workdir, "fleet-real")
    real_fleet = run_suite_fleet(
        real_suite, workers=FLEET_WORKERS, store=real_fleet_dir
    )
    return {
        "workers": FLEET_WORKERS,
        "tasks": 1 + SKEW_LIGHT_TASKS,
        "modeled_total_s": modeled_total,
        "modeled_heavy_s": SKEW_HEAVY_S,
        "modeled_light_s": SKEW_LIGHT_S,
        "serial_s": serial_s,
        "fleet_s": fleet_s,
        "speedup": serial_s / fleet_s if fleet_s > 0 else float("inf"),
        "steals": int(fleet.store_stats.get("steals", 0)),
        "skew_identical": deterministic_report_dict(fleet.to_dict())
        == deterministic_report_dict(serial.to_dict()),
        "merge_identical": deterministic_report_dict(real_fleet.to_dict())
        == real_serial_det,
        "cpu_count": os.cpu_count(),
        "target_speedup": TARGET_FLEET_SPEEDUP,
        "methodology": (
            "per-task cost modeled as blocking latency via the task_runner "
            "seam; both arms run run_suite_fleet (workers=1 vs "
            f"{FLEET_WORKERS}) so the ratio measures dispatch overlap and "
            "steal balance, not CPU core count"
        ),
    }


def _metric_rows_blob(report: SuiteReport) -> str:
    """Canonical serialization of every trial's metric row, for byte equality."""
    rows = [t.metric_row for e in report.entries for t in e.result.trials]
    return json.dumps(rows, sort_keys=True)


def _timed(fn) -> Tuple[Any, float]:
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def run_benchmark(quick: bool = False, jobs: Optional[int] = None) -> Dict[str, Any]:
    if jobs is None:
        jobs = default_jobs()
    suite = build_throughput_suite(quick=quick)
    task_count = sum(entry.scenario.run.trials for entry in suite.entries)

    workdir = tempfile.mkdtemp(prefix="bench-suite-store-")
    try:
        store_dir = os.path.join(workdir, "store")
        cold, cold_s = _timed(lambda: run_suite(suite, jobs=jobs, store=store_dir))
        warm, warm_s = _timed(lambda: run_suite(suite, jobs=jobs, store=store_dir))

        # Sharded run over a second fresh store: two shards, then merge.
        shard_dir = os.path.join(workdir, "shard-store")
        shard1, shard1_s = _timed(
            lambda: run_suite_shard(suite, 1, 2, jobs=jobs, store=shard_dir)
        )
        shard2, shard2_s = _timed(
            lambda: run_suite_shard(suite, 2, 2, jobs=jobs, store=shard_dir)
        )
        merged, merge_s = _timed(lambda: merge_reports(suite, [shard1, shard2]))
        cold_det = deterministic_report_dict(cold.to_dict())
        fleet = run_fleet_benchmark(suite, workdir, cold_det)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    warm_speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    report: Dict[str, Any] = {
        "benchmark": "bench_suite_throughput",
        "quick": quick,
        "jobs": jobs,
        "suite_fingerprint": suite.fingerprint(),
        "entries": len(suite.entries),
        "tasks": task_count,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "warm_speedup": warm_speedup,
        "warm_hits": int(warm.store_stats["hits"]),
        "warm_misses": int(warm.store_stats["misses"]),
        "rows_identical": _metric_rows_blob(cold) == _metric_rows_blob(warm),
        "shard1_s": shard1_s,
        "shard2_s": shard2_s,
        "sharded_s": shard1_s + shard2_s,
        "merge_s": merge_s,
        "merge_identical": deterministic_report_dict(merged.to_dict()) == cold_det,
        "target_warm_speedup": TARGET_WARM_SPEEDUP,
        "fleet": fleet,
    }
    return report


def render_table(report: Dict[str, Any]) -> str:
    rows = [
        {
            "mode": "cold (fresh store)",
            "elapsed_s": round(report["cold_s"], 4),
            "speedup_vs_cold": 1.0,
        },
        {
            "mode": "warm (all hits)",
            "elapsed_s": round(report["warm_s"], 4),
            "speedup_vs_cold": round(report["warm_speedup"], 1),
        },
        {
            "mode": "sharded 2x (fresh store)",
            "elapsed_s": round(report["sharded_s"], 4),
            "speedup_vs_cold": round(
                report["cold_s"] / report["sharded_s"] if report["sharded_s"] else 0.0, 2
            ),
        },
    ]
    fleet = report.get("fleet")
    if fleet:
        rows.append(
            {
                "mode": f"fleet skew serial (workers=1, {fleet['tasks']} tasks)",
                "elapsed_s": round(fleet["serial_s"], 4),
                "speedup_vs_cold": "",
            }
        )
        rows.append(
            {
                "mode": f"fleet skew (workers={fleet['workers']}, work-stealing)",
                "elapsed_s": round(fleet["fleet_s"], 4),
                "speedup_vs_cold": "",
            }
        )
    title = (
        f"Suite throughput ({report['tasks']} tasks, jobs={report['jobs']}): "
        f"warm rerun {report['warm_speedup']:.0f}x over cold "
        f"(target >= {report['target_warm_speedup']:.0f}x); "
        f"warm misses={report['warm_misses']}, "
        f"rows identical={report['rows_identical']}, "
        f"merged == unsharded: {report['merge_identical']}"
    )
    if fleet:
        title += (
            f"; fleet-of-{fleet['workers']} skew speedup "
            f"{fleet['speedup']:.1f}x (target >= {fleet['target_speedup']:.1f}x, "
            f"{fleet['steals']} steal(s), fleet == serial: "
            f"{fleet['merge_identical']})"
        )
    return format_table(rows, columns=["mode", "elapsed_s", "speedup_vs_cold"], title=title)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="small grid for CI smoke runs"
    )
    parser.add_argument(
        "--output",
        default=OUTPUT_PATH,
        help="where to write the JSON report (default: repo-root BENCH_suite.json)",
    )
    add_jobs_argument(parser)
    args = parser.parse_args(argv)

    report = run_benchmark(quick=args.quick, jobs=args.jobs)
    table = render_table(report)
    print(table)
    save_table("BENCH_suite", table)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {args.output}")

    failures = []
    if not report["rows_identical"]:
        failures.append("warm rerun's metric rows differ from the cold run's")
    if report["warm_misses"] != 0:
        failures.append(f"warm rerun recomputed {report['warm_misses']} trial(s)")
    if not report["merge_identical"]:
        failures.append("merged shard report differs from the unsharded report")
    fleet = report.get("fleet", {})
    if not fleet.get("skew_identical"):
        failures.append("fleet skew report differs from its serial (workers=1) run")
    if not fleet.get("merge_identical"):
        failures.append("cold fleet report differs from the serial run_suite report")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
