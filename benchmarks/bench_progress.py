"""E3 -- Progress bound (Theorem 4.1 / Lemma C.2).

Reproduced claim: for a receiver with at least one reliable neighbor that is
actively broadcasting throughout a window of ``t_prog = Ts + Tprog`` rounds,
the probability of hearing nothing in the window is at most ε, with
``t_prog = O(r² log Δ · log(r⁴ log⁴Δ / ε))`` -- logarithmic in Δ, logarithmic
in 1/ε, and independent of n.

The harness is a **scenario suite**: one entry per (Δ, ε, trial) with the
``params`` / ``progress`` metrics declared on the spec, one group per
(Δ, ε).  The checked-in manifest at ``examples/suites/bench_progress.json``
is this suite as data (pinned by ``tests/test_suites.py``); the pooled group
rates carry the same Wilson intervals the pre-suite harness computed by hand.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.analysis import theory
from repro.analysis.sweep import SweepResult
from repro.scenarios import MetricSpec, SuiteEntry, SuiteReport, SuiteSpec, run_suite

from benchmarks.common import default_jobs, lb_point_spec, print_and_save, run_once_benchmark

TARGET_DELTAS = (8, 16, 24)
EPSILONS = (0.2, 0.1)
TRIALS = 3
PHASES_PER_TRIAL = 4

SUITE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "examples", "suites", "bench_progress.json"
)

#: ``progress`` needs per-round frames, so ``trace_mode="auto"`` records FULL.
PROGRESS_METRICS = (MetricSpec("params"), MetricSpec("progress"))


def _group(target_delta: int, epsilon: float) -> str:
    return f"delta-{target_delta}-eps-{epsilon}"


def build_progress_suite() -> SuiteSpec:
    """The E3 grid as a :class:`~repro.scenarios.suite.SuiteSpec`.

    Seeds match the pre-suite harness exactly
    (``graph_seed = 7000 + 17Δ + trial``), so pooled group rates equal the
    historical table values.
    """
    entries: List[SuiteEntry] = []
    for target_delta in TARGET_DELTAS:
        for epsilon in EPSILONS:
            for trial in range(TRIALS):
                spec = lb_point_spec(
                    f"bench-progress-d{target_delta}-eps{epsilon}-t{trial}",
                    target_delta=target_delta,
                    graph_seed=7000 + 17 * target_delta + trial,
                    trial_seed=trial,
                    epsilon=epsilon,
                    environment="saturating",
                    senders={"select": "first", "divisor": 6, "min": 2},
                    rounds=PHASES_PER_TRIAL,
                    rounds_unit="phases",
                    trace_mode="auto",
                    metrics=PROGRESS_METRICS,
                )
                entries.append(
                    SuiteEntry(
                        id=spec.name,
                        scenario=spec,
                        group=_group(target_delta, epsilon),
                    )
                )
    return SuiteSpec(
        name="bench-progress",
        description=(
            "E3 -- progress: per-window failure rate vs target epsilon under "
            "saturating senders, pooled per (Delta, epsilon)"
        ),
        entries=tuple(entries),
    )


def progress_rows_from_report(report: SuiteReport) -> SweepResult:
    """Reduce the suite report to the benchmark's one-row-per-(Δ, ε) table."""
    result = SweepResult()
    for target_delta in TARGET_DELTAS:
        for epsilon in EPSILONS:
            group = _group(target_delta, epsilon)
            summaries = report.group_summaries[group]
            members = [e for e in report.entries if e.entry.group_label == group]
            last_row = members[-1].result.trials[-1].metric_row
            rate = summaries["progress.failure_rate"]
            row: Dict[str, float] = {
                "target_delta": target_delta,
                "epsilon": epsilon,
                "measured_delta": int(last_row["params.delta"]),
                "tprog_rounds": int(last_row["params.tprog_rounds"]),
                "theory_tprog_shape": theory.tprog_bound(
                    int(last_row["params.delta"]), epsilon, r=2.0
                ),
                "windows": int(summaries["progress.windows"]["sum"]),
                "failures": int(summaries["progress.failures"]["sum"]),
                "failure_rate": rate["value"],
                "failure_rate_ci95_high": rate["wilson_high"],
                "target_epsilon": epsilon,
            }
            result.append(row)
    return result


def run_progress_experiment(jobs: Optional[int] = None) -> SweepResult:
    """Run the E3 suite and return its table."""
    report = run_suite(
        build_progress_suite(),
        jobs=jobs if jobs is not None else default_jobs(),
        # Saturating runs are short (a few phases); lazy per-round deltas beat
        # an upfront full-table prebuild here too.
        prebuild=False,
    )
    return progress_rows_from_report(report)


def test_bench_progress(benchmark):
    result = run_once_benchmark(benchmark, run_progress_experiment)
    print_and_save(
        "E3_progress",
        "E3 -- progress: empirical window failure rate vs target ε, and t_prog scaling",
        result,
        columns=[
            "target_delta",
            "epsilon",
            "measured_delta",
            "tprog_rounds",
            "theory_tprog_shape",
            "windows",
            "failures",
            "failure_rate",
            "failure_rate_ci95_high",
        ],
    )
    for row in result:
        # Reproduced shape: empirical failure stays in the neighborhood of ε
        # (we allow slack because trials are few and windows are correlated).
        assert row["failure_rate"] <= row["epsilon"] + 0.15
    # t_prog grows with Δ but sub-linearly (log shape).
    for epsilon in EPSILONS:
        rows = {r["target_delta"]: r for r in result.where(epsilon=epsilon)}
        assert rows[24]["tprog_rounds"] >= rows[8]["tprog_rounds"]
        assert rows[24]["tprog_rounds"] <= rows[8]["tprog_rounds"] * (24 / 8)


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-suite",
        action="store_true",
        help=f"regenerate the checked-in manifest at {SUITE_PATH}",
    )
    args = parser.parse_args()
    if args.write_suite:
        print("wrote", build_progress_suite().save(os.path.normpath(SUITE_PATH)))
    else:
        result = run_progress_experiment()
        print_and_save(
            "E3_progress",
            "E3 -- progress: empirical window failure rate vs target ε, and t_prog scaling",
            result,
        )
