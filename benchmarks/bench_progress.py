"""E3 -- Progress bound (Theorem 4.1 / Lemma C.2).

Reproduced claim: for a receiver with at least one reliable neighbor that is
actively broadcasting throughout a window of ``t_prog = Ts + Tprog`` rounds,
the probability of hearing nothing in the window is at most ε, with
``t_prog = O(r² log Δ · log(r⁴ log⁴Δ / ε))`` -- logarithmic in Δ, logarithmic
in 1/ε, and independent of n.

The harness drives saturating senders on random geographic networks for
several phases under an i.i.d. link scheduler, evaluates the per-window
progress outcome for every receiver, and reports the empirical failure rate
next to the target ε and the derived window length next to the theoretical
shape.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis import theory
from repro.analysis.stats import wilson_interval
from repro.analysis.sweep import SweepResult, sweep
from repro.scenarios import run as run_scenario
from repro.simulation.metrics import progress_report

from benchmarks.common import lb_point_spec, print_and_save, run_once_benchmark

TARGET_DELTAS = (8, 16, 24)
EPSILONS = (0.2, 0.1)
TRIALS = 3
PHASES_PER_TRIAL = 4


def _run_point(target_delta: int, epsilon: float) -> Dict[str, float]:
    applicable = 0
    failures = 0
    params = None
    measured_delta = None

    for trial in range(TRIALS):
        spec = lb_point_spec(
            "bench-progress",
            target_delta=target_delta,
            graph_seed=7000 + 17 * target_delta + trial,
            trial_seed=trial,
            epsilon=epsilon,
            environment="saturating",
            senders={"select": "first", "divisor": 6, "min": 2},
            rounds=PHASES_PER_TRIAL,
            rounds_unit="phases",
        )
        result = run_scenario(spec)
        (point,) = result.trials
        graph, params, trace = point.graph, point.params, point.trace
        measured_delta = params.delta
        report = progress_report(trace, graph, window=params.tprog_rounds)
        applicable += report.num_applicable
        failures += len(report.failures)

    low, high = wilson_interval(failures, max(applicable, 1))
    return {
        "measured_delta": measured_delta,
        "tprog_rounds": params.tprog_rounds,
        "theory_tprog_shape": theory.tprog_bound(measured_delta, epsilon, r=2.0),
        "windows": applicable,
        "failures": failures,
        "failure_rate": failures / max(applicable, 1),
        "failure_rate_ci95_high": high,
        "target_epsilon": epsilon,
    }


def run_progress_experiment() -> SweepResult:
    """Run the E3 grid and return its table."""
    return sweep({"target_delta": TARGET_DELTAS, "epsilon": EPSILONS}, run=_run_point)


def test_bench_progress(benchmark):
    result = run_once_benchmark(benchmark, run_progress_experiment)
    print_and_save(
        "E3_progress",
        "E3 -- progress: empirical window failure rate vs target ε, and t_prog scaling",
        result,
        columns=[
            "target_delta",
            "epsilon",
            "measured_delta",
            "tprog_rounds",
            "theory_tprog_shape",
            "windows",
            "failures",
            "failure_rate",
            "failure_rate_ci95_high",
        ],
    )
    for row in result:
        # Reproduced shape: empirical failure stays in the neighborhood of ε
        # (we allow slack because trials are few and windows are correlated).
        assert row["failure_rate"] <= row["epsilon"] + 0.15
    # t_prog grows with Δ but sub-linearly (log shape).
    for epsilon in EPSILONS:
        rows = {r["target_delta"]: r for r in result.where(epsilon=epsilon)}
        assert rows[24]["tprog_rounds"] >= rows[8]["tprog_rounds"]
        assert rows[24]["tprog_rounds"] <= rows[8]["tprog_rounds"] * (24 / 8)
