"""E10 -- The parameter calculus and the seed-length budget κ.

Reproduced claims (Appendix C.1 and the LBAlg description):

* the derived quantities Ts, Tprog, Tack and κ follow the paper's functional
  shapes in Δ and ε (Ts and Tprog logarithmic in Δ, Tack linear in Δ', all
  polylogarithmic in 1/ε), and
* κ = Tprog · ⌈log(r² log(1/ε2))⌉ · log log Δ bits of shared seed are enough
  for a full phase of shared random choices -- an instrumented run never
  consumes more than κ bits from a committed seed.

The harness tabulates the derived parameters over a (Δ, ε) grid and runs an
instrumented LBAlg execution per point to record the maximum number of seed
bits any node consumed in one phase.
"""

from __future__ import annotations

import random
from typing import Dict

from repro import LBParams, Simulator, TraceMode, make_lb_processes
from repro.analysis import theory
from repro.analysis.sweep import SweepResult, sweep
from repro.dualgraph.adversary import IIDScheduler
from repro.simulation.environment import SaturatingEnvironment

from benchmarks.common import network_with_target_degree, print_and_save, run_once_benchmark

TARGET_DELTAS = (8, 16, 32)
EPSILONS = (0.2, 0.1)


def _run_point(target_delta: int, epsilon: float) -> Dict[str, float]:
    graph, _ = network_with_target_degree(target_delta, seed=777 + target_delta)
    delta, delta_prime = graph.degree_bounds()
    params = LBParams.derive(epsilon, delta=delta, delta_prime=delta_prime, r=2.0)

    senders = sorted(graph.vertices)[: max(2, graph.n // 5)]
    simulator = Simulator(
        graph,
        make_lb_processes(graph, params, random.Random(0)),
        scheduler=IIDScheduler(graph, probability=0.5, seed=0),
        environment=SaturatingEnvironment(senders=senders),
        trace_mode=TraceMode.EVENTS,
    )
    simulator.run(2 * params.phase_length)
    max_bits = max(
        simulator.process_at(v).stats_max_bits_consumed for v in graph.vertices
    )

    return {
        "measured_delta": delta,
        "measured_delta_prime": delta_prime,
        "ts": params.ts,
        "tprog": params.tprog,
        "tack_phases": params.tack_phases,
        "tack_rounds": params.tack_rounds,
        "kappa_bits": params.kappa,
        "max_bits_consumed": max_bits,
        "theory_tprog_shape": theory.tprog_bound(delta, epsilon, r=2.0),
        "theory_tack_shape": theory.tack_bound(delta, epsilon, r=2.0),
    }


def run_params_experiment() -> SweepResult:
    """Run the E10 grid and return its table."""
    return sweep({"target_delta": TARGET_DELTAS, "epsilon": EPSILONS}, run=_run_point)


def test_bench_params(benchmark):
    result = run_once_benchmark(benchmark, run_params_experiment)
    print_and_save(
        "E10_parameter_calculus",
        "E10 -- derived schedule lengths, κ budget, and measured seed-bit consumption",
        result,
        columns=[
            "target_delta",
            "epsilon",
            "measured_delta",
            "measured_delta_prime",
            "ts",
            "tprog",
            "tack_phases",
            "tack_rounds",
            "kappa_bits",
            "max_bits_consumed",
            "theory_tprog_shape",
            "theory_tack_shape",
        ],
    )
    for row in result:
        # The κ budget is never exceeded (the algorithm never has to extend
        # its seed), which is the point of the calculus.
        assert row["max_bits_consumed"] <= row["kappa_bits"]
    # Shapes: Tprog grows sub-linearly, Tack roughly linearly with Δ'.
    for epsilon in EPSILONS:
        rows = {r["target_delta"]: r for r in result.where(epsilon=epsilon)}
        assert rows[32]["tprog"] > rows[8]["tprog"]
        assert rows[32]["tprog"] < rows[8]["tprog"] * (32 / 8)
        assert rows[32]["tack_rounds"] > rows[8]["tack_rounds"]
