"""E13 (traffic) -- queue-backed workloads under rising load, per scheduler.

The paper's local broadcast abstraction is exercised here as a *service*: a
queue-backed environment (:mod:`repro.traffic`) feeds each node a seed-derived
poisson arrival stream, nodes submit head-of-line messages whenever their MAC
slot frees up, and a message counts as **delivered** once every reliable
neighbor of its origin has received it -- the paper's guarantee surface.

Three link schedulers face the same load grid:

* ``iid`` (p = 0.5) -- the memoryless oblivious baseline; half of the
  unreliable edges interfere every round,
* ``tasa`` -- a TASA-style traffic-aware schedule built from the declared
  arrival forecast over a routing tree toward the sink: few,
  endpoint-disjoint unreliable edges per slot,
* ``longest_queue`` -- the same slot construction prioritized by local
  forecast rates only (no routing-tree aggregation).

The traffic-aware schedules admit far less interference per round, so they
deliver more messages, sooner: at the high-load grid point TASA beats i.i.d.
on pooled delivery latency and on the Wilson-bounded delivery rate.

The harness is a **scenario suite**: one entry per (scheduler, rate) running
``TRIALS`` independent arrival realizations, pooled per entry.  The
checked-in manifest at ``examples/suites/bench_traffic.json`` is this suite
as data (``python -m repro suite ...`` reproduces the table; pinned by
``tests/test_suites.py``).
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.analysis.sweep import SweepResult
from repro.scenarios import MetricSpec, SuiteEntry, SuiteReport, SuiteSpec, run_suite
from repro.scenarios.spec import (
    AlgorithmSpec,
    ArrivalSpec,
    EnvironmentSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    TopologySpec,
    TrafficSpec,
)

from benchmarks.common import default_jobs, print_and_save, run_once_benchmark

#: Arrival probability per source per round -- rising load, 10x end to end.
RATES = (0.005, 0.02, 0.05)
#: The grid point the delivery-latency comparison is pinned at.
HIGH_LOAD_RATE = RATES[-1]
SCHEDULER_KINDS = ("iid", "tasa", "longest_queue")
TARGET_DELTA = 8
GRAPH_SEED = 11
MASTER_SEED = 7
TRIALS = 5
TACKS = 3

SUITE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "examples", "suites", "bench_traffic.json"
)

_SCHEDULER_SPECS = {
    "iid": ("iid", {"probability": 0.5}),
    "tasa": ("tasa", {}),
    "longest_queue": ("longest_queue", {}),
}

TRAFFIC_METRICS = (MetricSpec("queue"),)


def _entry_id(kind: str, rate: float) -> str:
    return f"bench-traffic-{kind}-r{rate}"


def build_traffic_suite() -> SuiteSpec:
    """The E13 experiment as a :class:`~repro.scenarios.suite.SuiteSpec`.

    Every entry shares one pinned topology sample (``seed=11``) so the
    schedulers face identical graphs; the poisson arrival realizations vary
    per trial through the derived trial seeds, identically across schedulers.
    """
    entries: List[SuiteEntry] = []
    for rate in RATES:
        for kind in SCHEDULER_KINDS:
            scheduler_name, scheduler_args = _SCHEDULER_SPECS[kind]
            spec = ScenarioSpec(
                name=_entry_id(kind, rate),
                topology=TopologySpec(
                    "target_degree", {"target_delta": TARGET_DELTA, "seed": GRAPH_SEED}
                ),
                algorithm=AlgorithmSpec("lbalg", {"preset": "small"}),
                scheduler=SchedulerSpec(scheduler_name, dict(scheduler_args)),
                environment=EnvironmentSpec("queued", {}),
                run=RunPolicy(
                    rounds=TACKS,
                    rounds_unit="tack",
                    trials=TRIALS,
                    master_seed=MASTER_SEED,
                ),
                metrics=TRAFFIC_METRICS,
                traffic=TrafficSpec(
                    arrival=ArrivalSpec("poisson", {"rate": rate}),
                    sinks=(0,),
                ),
            )
            entries.append(SuiteEntry(id=spec.name, scenario=spec))
    return SuiteSpec(
        name="bench-traffic",
        description=(
            "E13 -- queue-backed poisson workloads under rising load: "
            "delivery latency / delivery rate / backlog per link scheduler"
        ),
        entries=tuple(entries),
    )


def traffic_rows_from_report(report: SuiteReport) -> SweepResult:
    """Reduce the suite report to one row per (rate, scheduler)."""
    result = SweepResult()
    for rate in RATES:
        for kind in SCHEDULER_KINDS:
            summaries = report.group_summaries[_entry_id(kind, rate)]
            latency = summaries["queue.delivery_latency_mean"]
            delivery = summaries["queue.delivery_rate"]
            result.append(
                {
                    "rate": rate,
                    "scheduler": kind,
                    "delivered": int(latency["denominator"]),
                    "delivery_latency": latency["value"],
                    "delivery_rate": delivery["value"],
                    "delivery_rate_low": delivery["wilson_low"],
                    "delivery_rate_high": delivery["wilson_high"],
                    "backlog_p90": summaries["queue.backlog_p90"]["mean"],
                    "throughput": summaries["queue.throughput"]["value"],
                }
            )
    return result


def run_traffic_experiment(jobs: Optional[int] = None) -> SweepResult:
    """Run the E13 suite and return its table."""
    report = run_suite(
        build_traffic_suite(),
        jobs=jobs if jobs is not None else default_jobs(),
    )
    return traffic_rows_from_report(report)


_COLUMNS = [
    "rate",
    "scheduler",
    "delivered",
    "delivery_latency",
    "delivery_rate",
    "delivery_rate_low",
    "delivery_rate_high",
    "backlog_p90",
    "throughput",
]


def test_bench_traffic(benchmark):
    result = run_once_benchmark(benchmark, run_traffic_experiment)
    print_and_save(
        "E13_traffic",
        "E13 -- queue-backed workloads under rising load, per link scheduler",
        result,
        columns=_COLUMNS,
    )
    rows = {(r["rate"], r["scheduler"]): r for r in result}
    high_iid = rows[(HIGH_LOAD_RATE, "iid")]
    high_tasa = rows[(HIGH_LOAD_RATE, "tasa")]
    # The traffic-aware schedule admits less interference: at the high-load
    # grid point it delivers more messages, at a lower pooled latency.
    assert high_tasa["delivery_latency"] < high_iid["delivery_latency"]
    assert high_tasa["delivered"] > high_iid["delivered"]
    for rate in RATES:
        for kind in SCHEDULER_KINDS:
            assert rows[(rate, kind)]["delivered"] > 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-suite",
        action="store_true",
        help=f"regenerate the checked-in manifest at {SUITE_PATH}",
    )
    args = parser.parse_args()
    if args.write_suite:
        print("wrote", build_traffic_suite().save(os.path.normpath(SUITE_PATH)))
    else:
        result = run_traffic_experiment()
        print_and_save(
            "E13_traffic",
            "E13 -- queue-backed workloads under rising load, per link scheduler",
            result,
            columns=_COLUMNS,
        )