"""E6 -- Fixed schedules vs LBAlg under a targeted oblivious link scheduler.

Reproduced claim (Section 1, "Discussion"): a fixed broadcast-probability
schedule such as Decay can be defeated by an oblivious link schedule that was
constructed against it -- adding unreliable edges (contention) exactly in the
rounds where the schedule transmits aggressively and removing them where it
transmits timidly.  LBAlg regains independence from the link schedule by
permuting its probability schedule with seed-agreement randomness chosen
*after* the link schedule is fixed, so the same adversary cannot starve it.

The harness compares, on a two-cluster network whose cross-cluster links are
all unreliable (so the adversary fully controls cross-traffic contention),
the per-round data-reception rate of a designated receiver under:

* algorithm ∈ {Decay, uniform, LBAlg},
* scheduler ∈ {benign i.i.d., anti-Decay targeted adversary}.

The paper's qualitative prediction: the targeted adversary hurts the fixed
schedules substantially while LBAlg's rate stays in the same ballpark under
both schedulers.
"""

from __future__ import annotations

import random
from typing import Dict

from repro import LBParams, Simulator, make_lb_processes
from repro.analysis.sweep import SweepResult, sweep
from repro.baselines import make_baseline_processes
from repro.baselines.decay import decay_schedule
from repro.dualgraph.adversary import AntiScheduleAdversary, IIDScheduler
from repro.dualgraph.generators import two_clusters_network
from repro.simulation.environment import SaturatingEnvironment
from repro.simulation.metrics import data_reception_rounds

from benchmarks.common import print_and_save, run_once_benchmark

ALGORITHMS = ("decay", "uniform", "lbalg")
SCHEDULERS = ("iid", "anti_decay")
TRIALS = 5
RECEIVER = 0
CLUSTER_SIZE = 5


def _make_scheduler(kind: str, graph, delta: int, seed: int):
    if kind == "iid":
        return IIDScheduler(graph, probability=0.5, seed=seed)
    return AntiScheduleAdversary(graph, decay_schedule(delta))


def _run_point(algorithm: str, scheduler: str) -> Dict[str, float]:
    rates = []
    rounds_per_trial = None
    for trial in range(TRIALS):
        graph, _ = two_clusters_network(cluster_size=CLUSTER_SIZE, gap=1.5, rng=40 + trial)
        delta, delta_prime = graph.degree_bounds()
        # The classic trap setup: the receiver has exactly one reliable
        # broadcaster (an in-cluster neighbor), while every node of the far
        # cluster also broadcasts.  The far cluster reaches the receiver only
        # over unreliable edges, so the adversary alone decides how much
        # contention the lone reliable broadcaster has to fight through.
        in_cluster_sender = min(graph.reliable_neighbors(RECEIVER))
        far_cluster = [v for v in sorted(graph.vertices) if v >= CLUSTER_SIZE]
        senders = [in_cluster_sender] + far_cluster
        link_scheduler = _make_scheduler(scheduler, graph, delta, seed=trial)
        rng = random.Random(trial)

        if algorithm == "lbalg":
            params = LBParams.derive(0.2, delta=delta, delta_prime=delta_prime, r=2.0)
            processes = make_lb_processes(graph, params, rng)
            rounds = 5 * params.phase_length
        elif algorithm == "decay":
            processes = make_baseline_processes(graph, "decay", rng, num_cycles=8)
            rounds = 1000
        else:
            processes = make_baseline_processes(
                graph, "uniform", rng, probability=1.0 / delta, active_rounds=4 * delta
            )
            rounds = 1000
        rounds_per_trial = rounds

        simulator = Simulator(
            graph,
            processes,
            scheduler=link_scheduler,
            environment=SaturatingEnvironment(senders=senders),
        )
        trace = simulator.run(rounds)
        heard = data_reception_rounds(trace, RECEIVER)
        rates.append(len(heard) / rounds)

    return {
        "rounds_per_trial": rounds_per_trial,
        "mean_reception_rate": sum(rates) / len(rates),
        "min_reception_rate": min(rates),
    }


def run_adversary_experiment() -> SweepResult:
    """Run the E6 grid and return its table."""
    return sweep({"algorithm": ALGORITHMS, "scheduler": SCHEDULERS}, run=_run_point)


def degradation_ratio(result: SweepResult, algorithm: str) -> float:
    """reception(benign) / reception(adversarial); > 1 means the adversary hurts."""
    benign = result.where(algorithm=algorithm, scheduler="iid").rows[0]["mean_reception_rate"]
    adversarial = result.where(algorithm=algorithm, scheduler="anti_decay").rows[0][
        "mean_reception_rate"
    ]
    if adversarial == 0:
        return float("inf")
    return benign / adversarial


def test_bench_adversary_resilience(benchmark):
    result = run_once_benchmark(benchmark, run_adversary_experiment)
    rows = list(result.rows)
    for algorithm in ALGORITHMS:
        rows.append(
            {
                "algorithm": algorithm,
                "scheduler": "degradation(benign/adversarial)",
                "rounds_per_trial": "",
                "mean_reception_rate": degradation_ratio(result, algorithm),
                "min_reception_rate": "",
            }
        )
    summary = SweepResult(rows=rows)
    print_and_save(
        "E6_adversary_resilience",
        "E6 -- receiver data-reception rate: fixed schedules vs LBAlg, benign vs targeted scheduler",
        summary,
        columns=[
            "algorithm",
            "scheduler",
            "rounds_per_trial",
            "mean_reception_rate",
            "min_reception_rate",
        ],
    )
    decay_degradation = degradation_ratio(result, "decay")
    lbalg_degradation = degradation_ratio(result, "lbalg")
    # The qualitative claim: the targeted adversary hurts Decay more than it
    # hurts LBAlg (who-wins shape, not absolute factors).
    assert decay_degradation > lbalg_degradation
    # And LBAlg keeps making progress under the adversary.
    adversarial_lbalg = result.where(algorithm="lbalg", scheduler="anti_decay").rows[0]
    assert adversarial_lbalg["mean_reception_rate"] > 0.0
