"""E6 -- Fixed schedules vs LBAlg under a targeted oblivious link scheduler.

Reproduced claim (Section 1, "Discussion"): a fixed broadcast-probability
schedule such as Decay can be defeated by an oblivious link schedule that was
constructed against it -- adding unreliable edges (contention) exactly in the
rounds where the schedule transmits aggressively and removing them where it
transmits timidly.  LBAlg regains independence from the link schedule by
permuting its probability schedule with seed-agreement randomness chosen
*after* the link schedule is fixed, so the same adversary cannot starve it.

The harness compares, on a two-cluster network whose cross-cluster links are
all unreliable (so the adversary fully controls cross-traffic contention),
the per-round data-reception rate of a designated receiver under:

* algorithm ∈ {Decay, uniform, LBAlg},
* scheduler ∈ {benign i.i.d., anti-Decay targeted adversary}.

The paper's qualitative prediction: the targeted adversary hurts the fixed
schedules substantially while LBAlg's rate stays in the same ballpark under
both schedulers.

The harness is a **scenario suite**: one entry per (algorithm, scheduler,
trial) declaring the ``probe_reception`` metric at the receiver, one group
per (algorithm, scheduler); the sender recipe is the registered
``receiver_trap`` selection.  Seeds match the pre-suite harness exactly
(graph ``seed = 40 + trial``, process RNGs and the i.i.d. scheduler rooted
at the trial index), so the suite reproduces the historical table.  The
checked-in manifest at ``examples/suites/bench_adversary_resilience.json``
is this suite as data (``python -m repro suite ...`` reproduces the table;
pinned by ``tests/test_suites.py``).
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.analysis.sweep import SweepResult
from repro.scenarios import MetricSpec, SuiteEntry, SuiteReport, SuiteSpec, run_suite
from repro.scenarios.spec import (
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    TopologySpec,
)

from benchmarks.common import default_jobs, print_and_save, run_once_benchmark

ALGORITHMS = ("decay", "uniform", "lbalg")
SCHEDULERS = ("iid", "anti_decay")
TRIALS = 5
RECEIVER = 0
CLUSTER_SIZE = 5

SUITE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "examples", "suites", "bench_adversary_resilience.json"
)

#: Experiment algorithm -> (registered name, args, (rounds, rounds_unit)).
#: The uniform baseline's 1/Δ probability and 4Δ active window are its
#: registered defaults, so its args stay empty (and trial-independent).
_ALGORITHM_SPECS = {
    "decay": ("decay", {"num_cycles": 8}, (1000, "rounds")),
    "uniform": ("uniform", {}, (1000, "rounds")),
    "lbalg": ("lbalg", {"epsilon": 0.2, "preset": "derived"}, (5, "phases")),
}

#: The E6 trap: the receiver's lone reliable in-cluster neighbor carries the
#: probe while the whole far cluster (vertices >= CLUSTER_SIZE) contends over
#: the unreliable bridge the adversary controls.
_SENDERS = {"select": "receiver_trap", "receiver": RECEIVER, "cutoff": CLUSTER_SIZE}

ADVERSARY_METRICS = (MetricSpec("probe_reception", {"vertex": RECEIVER}),)


def _group(algorithm: str, scheduler: str) -> str:
    return f"{algorithm}/{scheduler}"


def build_adversary_suite() -> SuiteSpec:
    """The E6 experiment as a :class:`~repro.scenarios.suite.SuiteSpec`."""
    entries: List[SuiteEntry] = []
    for algorithm in ALGORITHMS:
        algorithm_name, algorithm_args, (rounds, rounds_unit) = _ALGORITHM_SPECS[algorithm]
        for scheduler in SCHEDULERS:
            if scheduler == "iid":
                scheduler_spec = ("iid", {"probability": 0.5})
            else:
                scheduler_spec = ("anti_schedule", {"victim": "decay"})
            for trial in range(TRIALS):
                scheduler_args = dict(scheduler_spec[1])
                if scheduler == "iid":
                    scheduler_args["seed"] = trial
                spec = ScenarioSpec(
                    name=f"bench-adversary-{algorithm}-{scheduler}-t{trial}",
                    topology=TopologySpec(
                        "two_clusters",
                        {"cluster_size": CLUSTER_SIZE, "gap": 1.5, "seed": 40 + trial},
                    ),
                    algorithm=AlgorithmSpec(algorithm_name, dict(algorithm_args)),
                    scheduler=SchedulerSpec(scheduler_spec[0], scheduler_args),
                    environment=EnvironmentSpec("saturating", {"senders": _SENDERS}),
                    engine=EngineConfig(trace_mode="auto"),
                    run=RunPolicy(
                        rounds=rounds,
                        rounds_unit=rounds_unit,
                        trials=1,
                        master_seed=trial,
                        seed_policy="fixed",
                    ),
                    metrics=ADVERSARY_METRICS,
                )
                entries.append(
                    SuiteEntry(id=spec.name, scenario=spec, group=_group(algorithm, scheduler))
                )
    return SuiteSpec(
        name="bench-adversary-resilience",
        description=(
            "E6 -- receiver data-reception rate: fixed schedules vs LBAlg, "
            "benign vs targeted oblivious scheduler"
        ),
        entries=tuple(entries),
    )


def adversary_rows_from_report(report: SuiteReport) -> SweepResult:
    """Reduce the suite report to the benchmark's (algorithm, scheduler) table."""
    result = SweepResult()
    for algorithm in ALGORITHMS:
        for scheduler in SCHEDULERS:
            summaries = report.group_summaries[_group(algorithm, scheduler)]
            rate = summaries["probe_reception.rate"]
            rounds = summaries["probe_reception.rounds"]
            result.append(
                {
                    "algorithm": algorithm,
                    "scheduler": scheduler,
                    "rounds_per_trial": int(rounds["max"]),
                    "mean_reception_rate": rate["mean"],
                    "min_reception_rate": rate["min"],
                }
            )
    return result


def run_adversary_experiment(jobs: Optional[int] = None) -> SweepResult:
    """Run the E6 suite and return its table."""
    report = run_suite(
        build_adversary_suite(),
        jobs=jobs if jobs is not None else default_jobs(),
    )
    return adversary_rows_from_report(report)


def degradation_ratio(result: SweepResult, algorithm: str) -> float:
    """reception(benign) / reception(adversarial); > 1 means the adversary hurts."""
    benign = result.where(algorithm=algorithm, scheduler="iid").rows[0]["mean_reception_rate"]
    adversarial = result.where(algorithm=algorithm, scheduler="anti_decay").rows[0][
        "mean_reception_rate"
    ]
    if adversarial == 0:
        return float("inf")
    return benign / adversarial


def test_bench_adversary_resilience(benchmark):
    result = run_once_benchmark(benchmark, run_adversary_experiment)
    rows = list(result.rows)
    for algorithm in ALGORITHMS:
        rows.append(
            {
                "algorithm": algorithm,
                "scheduler": "degradation(benign/adversarial)",
                "rounds_per_trial": "",
                "mean_reception_rate": degradation_ratio(result, algorithm),
                "min_reception_rate": "",
            }
        )
    summary = SweepResult(rows=rows)
    print_and_save(
        "E6_adversary_resilience",
        "E6 -- receiver data-reception rate: fixed schedules vs LBAlg, benign vs targeted scheduler",
        summary,
        columns=[
            "algorithm",
            "scheduler",
            "rounds_per_trial",
            "mean_reception_rate",
            "min_reception_rate",
        ],
    )
    decay_degradation = degradation_ratio(result, "decay")
    lbalg_degradation = degradation_ratio(result, "lbalg")
    # The qualitative claim: the targeted adversary hurts Decay more than it
    # hurts LBAlg (who-wins shape, not absolute factors).
    assert decay_degradation > lbalg_degradation
    # And LBAlg keeps making progress under the adversary.
    adversarial_lbalg = result.where(algorithm="lbalg", scheduler="anti_decay").rows[0]
    assert adversarial_lbalg["mean_reception_rate"] > 0.0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-suite",
        action="store_true",
        help=f"regenerate the checked-in manifest at {SUITE_PATH}",
    )
    args = parser.parse_args()
    if args.write_suite:
        print("wrote", build_adversary_suite().save(os.path.normpath(SUITE_PATH)))
    else:
        result = run_adversary_experiment()
        print_and_save(
            "E6_adversary_resilience",
            "E6 -- receiver data-reception rate: fixed schedules vs LBAlg, benign vs targeted scheduler",
            result,
        )
