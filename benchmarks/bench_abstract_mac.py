"""E8 -- The abstract MAC layer interpretation: multi-hop flooding.

Reproduced claim (Section 1 / Section 5): the local broadcast service can be
used as an abstract MAC layer, so algorithms written against that layer --
the canonical example being global broadcast by flooding -- run in the dual
graph model with latency governed by the layer's ``f_ack`` bound.  On a line
network of reliable diameter ``D``, a flood completes after about ``D``
sequential acknowledgment periods; the measured completion round should grow
roughly linearly with the hop distance and stay within a small multiple of
``D * t_ack``.
"""

from __future__ import annotations

import random
from typing import Dict

from repro import LBParams
from repro.analysis.stats import mean
from repro.analysis.sweep import SweepResult, sweep
from repro.dualgraph.adversary import IIDScheduler
from repro.dualgraph.generators import line_network
from repro.mac.applications.flood import run_flood

from benchmarks.common import print_and_save, run_once_benchmark

LINE_LENGTHS = (3, 5, 7)
TRIALS = 2
EPSILON = 0.2


def _run_point(line_length: int) -> Dict[str, float]:
    completion_rounds = []
    coverages = []
    params = None
    for trial in range(TRIALS):
        graph, _ = line_network(line_length, spacing=0.9)
        delta, delta_prime = graph.degree_bounds()
        params = LBParams.derive(
            EPSILON, delta=delta, delta_prime=delta_prime, r=2.0,
            # The flood only needs delivery to the next hop, so a compact
            # sending period keeps the experiment fast while preserving the
            # D * f_ack shape being measured.
            tack_phases_override=max(2, delta_prime),
        )
        scheduler = IIDScheduler(graph, probability=0.5, seed=trial)
        result = run_flood(
            graph, params, source=0, scheduler=scheduler, rng=random.Random(trial)
        )
        coverages.append(result.coverage)
        completion_rounds.append(
            result.completion_round if result.completion_round is not None else result.rounds_run
        )

    diameter = line_length - 1
    return {
        "diameter": diameter,
        "phase_length": params.phase_length,
        "tack_rounds": params.tack_rounds,
        "mean_completion_round": mean(completion_rounds),
        "mean_coverage": mean(coverages),
        "completion_over_diameter_tack": mean(completion_rounds) / (diameter * params.tack_rounds),
    }


def run_abstract_mac_experiment() -> SweepResult:
    """Run the E8 sweep and return its table."""
    return sweep({"line_length": LINE_LENGTHS}, run=_run_point)


def test_bench_abstract_mac(benchmark):
    result = run_once_benchmark(benchmark, run_abstract_mac_experiment)
    print_and_save(
        "E8_abstract_mac_flood",
        "E8 -- flooding over the LBAlg-backed abstract MAC layer on line networks",
        result,
        columns=[
            "line_length",
            "diameter",
            "phase_length",
            "tack_rounds",
            "mean_completion_round",
            "mean_coverage",
            "completion_over_diameter_tack",
        ],
    )
    rows = {r["line_length"]: r for r in result}
    # Full coverage everywhere.
    for row in result:
        assert row["mean_coverage"] == 1.0
        # Completion stays within a small multiple of D * t_ack.
        assert row["completion_over_diameter_tack"] <= 2.0
    # Longer lines take longer (linear-in-D shape).
    assert rows[7]["mean_completion_round"] > rows[3]["mean_completion_round"]
