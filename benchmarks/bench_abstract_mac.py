"""E8 -- The abstract MAC layer interpretation: multi-hop flooding.

Reproduced claim (Section 1 / Section 5): the local broadcast service can be
used as an abstract MAC layer, so algorithms written against that layer --
the canonical example being global broadcast by flooding -- run in the dual
graph model with latency governed by the layer's ``f_ack`` bound.  On a line
network of reliable diameter ``D``, a flood completes after about ``D``
sequential acknowledgment periods; the measured completion round should grow
roughly linearly with the hop distance and stay within a small multiple of
``D * t_ack``.

The harness is a **scenario suite**: one entry per (line length, trial),
grouped by length, running the registered ``flood`` algorithm (one
:class:`~repro.mac.applications.flood.FloodClient` per vertex behind the
LBAlg-backed MAC adapter; ``compact_tack=True`` is the harness's historical
``tack_phases_override=max(2, delta_prime)``) with the ``params`` / ``flood``
metrics declared on the spec.  The checked-in manifest at
``examples/suites/bench_abstract_mac.json`` is this suite as data (pinned by
``tests/test_suites.py``); seeds match the pre-suite harness exactly
(scheduler seed and process RNG both rooted at the trial index), so the
table values are unchanged.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.analysis.stats import mean
from repro.analysis.sweep import SweepResult
from repro.scenarios import (
    AlgorithmSpec,
    EngineConfig,
    EnvironmentSpec,
    MetricSpec,
    RunPolicy,
    ScenarioSpec,
    SchedulerSpec,
    SuiteEntry,
    SuiteReport,
    SuiteSpec,
    TopologySpec,
    run_suite,
)

from benchmarks.common import default_jobs, print_and_save, run_once_benchmark

LINE_LENGTHS = (3, 5, 7)
TRIALS = 2
EPSILON = 0.2

SUITE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "examples", "suites", "bench_abstract_mac.json"
)

MAC_METRICS = (MetricSpec("params"), MetricSpec("flood"))


def build_abstract_mac_suite() -> SuiteSpec:
    """The E8 experiment as a :class:`~repro.scenarios.suite.SuiteSpec`.

    Seeds match the pre-suite harness exactly: per trial, the scheduler is
    ``iid(probability=0.5, seed=trial)`` and the MAC node RNG is
    ``random.Random(trial)`` (``master_seed=trial`` under the fixed seed
    policy), so the suite reproduces the historical table values.
    """
    entries: List[SuiteEntry] = []
    for line_length in LINE_LENGTHS:
        for trial in range(TRIALS):
            spec = ScenarioSpec(
                name=f"bench-mac-l{line_length}-t{trial}",
                topology=TopologySpec("line", {"n": line_length}),
                algorithm=AlgorithmSpec(
                    "flood",
                    {"epsilon": EPSILON, "source": 0, "compact_tack": True},
                ),
                scheduler=SchedulerSpec("iid", {"probability": 0.5, "seed": trial}),
                environment=EnvironmentSpec("null", {}),
                engine=EngineConfig(trace_mode="auto"),
                run=RunPolicy(
                    rounds=1,
                    rounds_unit="algorithm",
                    trials=1,
                    master_seed=trial,
                    seed_policy="fixed",
                ),
                metrics=MAC_METRICS,
            )
            entries.append(
                SuiteEntry(id=spec.name, scenario=spec, group=f"l{line_length}")
            )
    return SuiteSpec(
        name="bench-abstract-mac",
        description=(
            "E8 -- flooding over the LBAlg-backed abstract MAC layer on line "
            "networks: completion grows linearly with the hop distance and "
            "stays within a small multiple of D * t_ack"
        ),
        entries=tuple(entries),
    )


def abstract_mac_rows_from_report(report: SuiteReport) -> SweepResult:
    """Reduce the suite report to the benchmark's one-row-per-length table."""
    result = SweepResult()
    for line_length in LINE_LENGTHS:
        members = [
            e for e in report.entries if e.entry.group_label == f"l{line_length}"
        ]
        trial_rows = [m.result.trials[0].metric_row for m in members]
        diameter = line_length - 1
        # The line is deterministic, so the derived schedule is identical
        # across trials of one length.
        phase_length = int(trial_rows[-1]["params.phase_length"])
        tack_rounds = int(trial_rows[-1]["params.tack_rounds"])
        mean_completion = mean(
            [row["flood.completion_round"] for row in trial_rows]
        )
        result.append(
            {
                "line_length": line_length,
                "diameter": diameter,
                "phase_length": phase_length,
                "tack_rounds": tack_rounds,
                "mean_completion_round": mean_completion,
                "mean_coverage": mean([row["flood.coverage"] for row in trial_rows]),
                "completion_over_diameter_tack": mean_completion
                / (diameter * tack_rounds),
            }
        )
    return result


def run_abstract_mac_experiment(jobs: Optional[int] = None) -> SweepResult:
    """Run the E8 suite and return its table."""
    report = run_suite(
        build_abstract_mac_suite(), jobs=jobs if jobs is not None else default_jobs()
    )
    return abstract_mac_rows_from_report(report)


def test_bench_abstract_mac(benchmark):
    result = run_once_benchmark(benchmark, run_abstract_mac_experiment)
    print_and_save(
        "E8_abstract_mac_flood",
        "E8 -- flooding over the LBAlg-backed abstract MAC layer on line networks",
        result,
        columns=[
            "line_length",
            "diameter",
            "phase_length",
            "tack_rounds",
            "mean_completion_round",
            "mean_coverage",
            "completion_over_diameter_tack",
        ],
    )
    rows = {r["line_length"]: r for r in result}
    # Full coverage everywhere.
    for row in result:
        assert row["mean_coverage"] == 1.0
        # Completion stays within a small multiple of D * t_ack.
        assert row["completion_over_diameter_tack"] <= 2.0
    # Longer lines take longer (linear-in-D shape).
    assert rows[7]["mean_completion_round"] > rows[3]["mean_completion_round"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-suite",
        action="store_true",
        help=f"regenerate the checked-in manifest at {SUITE_PATH}",
    )
    args = parser.parse_args()
    if args.write_suite:
        print("wrote", build_abstract_mac_suite().save(os.path.normpath(SUITE_PATH)))
    else:
        result = run_abstract_mac_experiment()
        print_and_save(
            "E8_abstract_mac_flood",
            "E8 -- flooding over the LBAlg-backed abstract MAC layer on line networks",
            result,
        )
