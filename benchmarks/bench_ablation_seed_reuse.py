"""E11 (ablation) -- running seed agreement less frequently (§4.2 remark).

The paper notes that nothing is fundamental about running SeedAlg at the start
of *every* phase: the agreement can be run less frequently with seeds long
enough for several phases, which "does not change our worst-case time bounds
but might improve an average case cost or practical performance".

This ablation quantifies that trade on the same workload as E3: for reuse
factors 1 (the paper's base algorithm), 2, and 4 it reports

* the fraction of airtime spent in (non-idle) seed-agreement preambles, and
* the empirical progress failure rate,

showing the preamble overhead drops with the reuse factor while the progress
guarantee keeps holding.

The harness is a **scenario suite**: one entry per (reuse factor, trial)
declaring the ``progress`` metric (its window defaults to the trial's derived
``t_prog``), one group per reuse factor; the pooled group rate is exactly the
failures-over-windows arithmetic the pre-suite harness used, and the
preamble-airtime fraction is recomputed from the derived params
(:func:`repro.scenarios.runtime.resolve_params` -- no process population is
materialized for it).  Seeds match the pre-suite harness exactly
(``graph_seed = 4400 + trial``, process RNGs and the i.i.d. scheduler rooted
at the trial index).  The checked-in manifest at
``examples/suites/bench_ablation_seed_reuse.json`` is this suite as data
(``python -m repro suite ...`` reproduces the table; pinned by
``tests/test_suites.py``).
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import List, Optional

from repro.analysis.sweep import SweepResult
from repro.scenarios import MetricSpec, SuiteEntry, SuiteReport, SuiteSpec, run_suite
from repro.scenarios.runtime import resolve_params

from benchmarks.common import default_jobs, lb_point_spec, print_and_save, run_once_benchmark

REUSE_FACTORS = (1, 2, 4)
TARGET_DELTA = 16
EPSILON = 0.2
TRIALS = 3
PHASES_PER_TRIAL = 6

SUITE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "examples", "suites", "bench_ablation_seed_reuse.json"
)

SEED_REUSE_METRICS = (MetricSpec("progress"),)


def _group(reuse: int) -> str:
    return f"reuse-{reuse}"


def build_seed_reuse_suite() -> SuiteSpec:
    """The E11 ablation as a :class:`~repro.scenarios.suite.SuiteSpec`."""
    entries: List[SuiteEntry] = []
    for reuse in REUSE_FACTORS:
        for trial in range(TRIALS):
            spec = lb_point_spec(
                f"bench-seed-reuse-{reuse}-t{trial}",
                target_delta=TARGET_DELTA,
                graph_seed=4400 + trial,
                trial_seed=trial,
                epsilon=EPSILON,
                environment="saturating",
                senders={"select": "first", "divisor": 6, "min": 2},
                rounds=PHASES_PER_TRIAL,
                rounds_unit="phases",
                trace_mode="auto",
                metrics=SEED_REUSE_METRICS,
            )
            spec = replace(
                spec, algorithm=spec.algorithm.with_args(seed_reuse_phases=reuse)
            )
            entries.append(SuiteEntry(id=spec.name, scenario=spec, group=_group(reuse)))
    return SuiteSpec(
        name="bench-ablation-seed-reuse",
        description=(
            "E11 -- ablation: seed-agreement frequency (reuse factor) vs "
            "preamble overhead and progress"
        ),
        entries=tuple(entries),
    )


def seed_reuse_rows_from_report(report: SuiteReport) -> SweepResult:
    """Reduce the suite report to the benchmark's one-row-per-factor table."""
    result = SweepResult()
    for reuse in REUSE_FACTORS:
        group = _group(reuse)
        members = [e for e in report.entries if e.entry.group_label == group]
        # The derived params (ts, phase_length) are shared workload facts,
        # not trace outputs: recompute them from the last member's spec, the
        # same "params of the final trial" the pre-suite harness reported.
        params = resolve_params(members[-1].entry.scenario).params
        summaries = report.group_summaries[group]
        windows = int(summaries["progress.windows"]["sum"])
        failures = int(summaries["progress.failures"]["sum"])
        # With reuse factor k only ceil(PHASES/k) of the phases pay Ts rounds.
        phases_paying_preamble = -(-PHASES_PER_TRIAL // reuse)
        result.append(
            {
                "seed_reuse_phases": reuse,
                "ts": params.ts,
                "phase_length": params.phase_length,
                "preamble_airtime_fraction": (
                    phases_paying_preamble * params.ts
                )
                / (PHASES_PER_TRIAL * params.phase_length),
                "progress_windows": windows,
                "progress_failures": failures,
                "progress_failure_rate": failures / max(windows, 1),
                "target_epsilon": EPSILON,
            }
        )
    return result


def run_seed_reuse_ablation(jobs: Optional[int] = None) -> SweepResult:
    """Run the E11 suite and return its table."""
    report = run_suite(
        build_seed_reuse_suite(),
        jobs=jobs if jobs is not None else default_jobs(),
    )
    return seed_reuse_rows_from_report(report)


def test_bench_ablation_seed_reuse(benchmark):
    result = run_once_benchmark(benchmark, run_seed_reuse_ablation)
    print_and_save(
        "E11_ablation_seed_reuse",
        "E11 -- ablation: seed-agreement frequency (reuse factor) vs preamble overhead and progress",
        result,
        columns=[
            "seed_reuse_phases",
            "ts",
            "phase_length",
            "preamble_airtime_fraction",
            "progress_windows",
            "progress_failures",
            "progress_failure_rate",
        ],
    )
    rows = {r["seed_reuse_phases"]: r for r in result}
    # The preamble overhead shrinks as the reuse factor grows ...
    assert (
        rows[4]["preamble_airtime_fraction"]
        < rows[2]["preamble_airtime_fraction"]
        < rows[1]["preamble_airtime_fraction"]
    )
    # ... while the progress guarantee keeps holding.
    for row in result:
        assert row["progress_failure_rate"] <= EPSILON + 0.15


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-suite",
        action="store_true",
        help=f"regenerate the checked-in manifest at {SUITE_PATH}",
    )
    args = parser.parse_args()
    if args.write_suite:
        print("wrote", build_seed_reuse_suite().save(os.path.normpath(SUITE_PATH)))
    else:
        result = run_seed_reuse_ablation()
        print_and_save(
            "E11_ablation_seed_reuse",
            "E11 -- ablation: seed-agreement frequency (reuse factor) vs preamble overhead and progress",
            result,
        )
