"""E11 (ablation) -- running seed agreement less frequently (§4.2 remark).

The paper notes that nothing is fundamental about running SeedAlg at the start
of *every* phase: the agreement can be run less frequently with seeds long
enough for several phases, which "does not change our worst-case time bounds
but might improve an average case cost or practical performance".

This ablation quantifies that trade on the same workload as E3: for reuse
factors 1 (the paper's base algorithm), 2, and 4 it reports

* the fraction of airtime spent in (non-idle) seed-agreement preambles, and
* the empirical progress failure rate,

showing the preamble overhead drops with the reuse factor while the progress
guarantee keeps holding.
"""

from __future__ import annotations

import random
from typing import Dict

from repro import LBParams, Simulator, make_lb_processes
from repro.analysis.sweep import SweepResult, sweep
from repro.dualgraph.adversary import IIDScheduler
from repro.simulation.environment import SaturatingEnvironment
from repro.simulation.metrics import progress_report

from benchmarks.common import network_with_target_degree, print_and_save, run_once_benchmark

REUSE_FACTORS = (1, 2, 4)
TARGET_DELTA = 16
EPSILON = 0.2
TRIALS = 3
PHASES_PER_TRIAL = 6


def _run_point(seed_reuse_phases: int) -> Dict[str, float]:
    reuse = seed_reuse_phases
    applicable = 0
    failures = 0
    params = None

    for trial in range(TRIALS):
        graph, _ = network_with_target_degree(TARGET_DELTA, seed=4400 + trial)
        delta, delta_prime = graph.degree_bounds()
        params = LBParams.derive(EPSILON, delta=delta, delta_prime=delta_prime, r=2.0)
        senders = sorted(graph.vertices)[: max(2, graph.n // 6)]
        simulator = Simulator(
            graph,
            make_lb_processes(graph, params, random.Random(trial), seed_reuse_phases=reuse),
            scheduler=IIDScheduler(graph, probability=0.5, seed=trial),
            environment=SaturatingEnvironment(senders=senders),
        )
        trace = simulator.run(PHASES_PER_TRIAL * params.phase_length)
        report = progress_report(trace, graph, window=params.tprog_rounds)
        applicable += report.num_applicable
        failures += len(report.failures)

    # With reuse factor k only ceil(PHASES/k) of the phases pay the Ts rounds.
    phases_paying_preamble = -(-PHASES_PER_TRIAL // reuse)
    preamble_airtime_fraction = (
        phases_paying_preamble * params.ts
    ) / (PHASES_PER_TRIAL * params.phase_length)

    return {
        "ts": params.ts,
        "phase_length": params.phase_length,
        "preamble_airtime_fraction": preamble_airtime_fraction,
        "progress_windows": applicable,
        "progress_failures": failures,
        "progress_failure_rate": failures / max(applicable, 1),
        "target_epsilon": EPSILON,
    }


def run_seed_reuse_ablation() -> SweepResult:
    """Run the E11 ablation and return its table."""
    return sweep({"seed_reuse_phases": REUSE_FACTORS}, run=_run_point)


def test_bench_ablation_seed_reuse(benchmark):
    result = run_once_benchmark(benchmark, run_seed_reuse_ablation)
    print_and_save(
        "E11_ablation_seed_reuse",
        "E11 -- ablation: seed-agreement frequency (reuse factor) vs preamble overhead and progress",
        result,
        columns=[
            "seed_reuse_phases",
            "ts",
            "phase_length",
            "preamble_airtime_fraction",
            "progress_windows",
            "progress_failures",
            "progress_failure_rate",
        ],
    )
    rows = {r["seed_reuse_phases"]: r for r in result}
    # The preamble overhead shrinks as the reuse factor grows ...
    assert (
        rows[4]["preamble_airtime_fraction"]
        < rows[2]["preamble_airtime_fraction"]
        < rows[1]["preamble_airtime_fraction"]
    )
    # ... while the progress guarantee keeps holding.
    for row in result:
        assert row["progress_failure_rate"] <= EPSILON + 0.15
