"""Algorithm parameter derivation (Appendices B.1 and C.1).

:class:`SeedParams` packages everything ``SeedAlg(ε1)`` needs:

* the number of phases (``log Δ``) and the rounds per phase
  (``c4 · log²(1/ε1)``),
* the per-phase leader election probabilities
  ``2^{-(log Δ − h + 1)}`` for ``h = 1 .. log Δ``,
* the leader broadcast probability ``1 / log(1/ε1)``, and
* the theoretical seed-partition bound δ and error bound ε of Theorem 3.1.

:class:`LBParams` packages everything ``LBAlg(ε1)`` needs:

* the seed-agreement sub-parameters (run with error parameter ε2),
* the preamble length ``Ts``, body length ``Tprog``, and number of sending
  phases ``Tack``,
* the participant-decision bit width and the ``b``-selection bit width used
  to consume shared seed bits in each body round, and
* the seed length κ sufficient for one phase's worth of shared choices.

Both classes are plain frozen dataclasses constructible directly (tests and
examples often pass tiny explicit values) and derivable from the paper's
formulas through :meth:`SeedParams.derive` / :meth:`LBParams.derive`.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.core.constants import (
    LBConstants,
    ParamMode,
    SeedConstants,
    ceil_log2,
    log2_inverse,
)


def _clamp_probability(p: float) -> float:
    """Clamp a derived probability into (0, 1]."""
    return max(min(p, 1.0), 1e-12)


@functools.lru_cache(maxsize=None)
def _election_probability_table(num_phases: int) -> Tuple[float, ...]:
    """Per-phase leader election probabilities, 1-indexed by ``phase - 1``.

    Pure function of ``num_phases`` (the probabilities depend on nothing
    else), memoized process-wide: every member of every seed-agreement cohort
    asks for its phase's probability at each phase start, which makes the
    ``2 ** -k`` recomputation measurable on the batched engine's hot path.
    """
    return tuple(
        _clamp_probability(2.0 ** (-(num_phases - phase + 1)))
        for phase in range(1, num_phases + 1)
    )


@dataclass(frozen=True)
class SeedParams:
    """Concrete parameters for one run of ``SeedAlg``.

    Attributes
    ----------
    epsilon:
        The error parameter ε1 handed to the algorithm (``0 < ε1 <= 1/4`` in
        the paper; we accept up to 1/2 and clamp probabilities).
    delta:
        The reliable degree bound Δ known to every process.
    r:
        The geographic parameter.
    num_phases:
        ``log Δ`` phases (at least 1).
    phase_length:
        Rounds per phase.
    leader_broadcast_probability:
        The probability with which a leader transmits its ``(id, seed)`` pair
        in each remaining round of its phase.
    seed_domain_bits:
        Width of the seed domain ``S = {0,1}^κ`` from which initial seeds are
        drawn uniformly.
    delta_bound:
        The theoretical δ of Theorem 3.1 for these parameters (how many
        distinct owners may appear in a closed G' neighborhood).
    error_bound:
        The theoretical ε of Theorem 3.1.
    """

    epsilon: float
    delta: int
    r: float
    num_phases: int
    phase_length: int
    leader_broadcast_probability: float
    seed_domain_bits: int = 64
    delta_bound: int = 0
    error_bound: float = 1.0
    mode: ParamMode = ParamMode.SIMULATION

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if self.delta < 1:
            raise ValueError(f"Delta must be at least 1, got {self.delta}")
        if self.r < 1:
            raise ValueError(f"r must be at least 1, got {self.r}")
        if self.num_phases < 1 or self.phase_length < 1:
            raise ValueError("num_phases and phase_length must be at least 1")
        if not 0.0 < self.leader_broadcast_probability <= 1.0:
            raise ValueError("leader_broadcast_probability must be in (0, 1]")
        if self.seed_domain_bits < 1:
            raise ValueError("seed_domain_bits must be positive")

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def total_rounds(self) -> int:
        """Total rounds of one SeedAlg execution: ``num_phases * phase_length``."""
        return self.num_phases * self.phase_length

    def leader_election_probability(self, phase: int) -> float:
        """``2^{-(log Δ − h + 1)}`` for phase ``h`` (1-based).

        Phase 1 uses ``1/Δ``-ish probability and the final phase uses ``1/2``,
        doubling each phase, exactly as in the algorithm description.
        """
        if not 1 <= phase <= self.num_phases:
            raise ValueError(f"phase must be in [1, {self.num_phases}], got {phase}")
        return _election_probability_table(self.num_phases)[phase - 1]

    def phase_of_round(self, local_round: int) -> Tuple[int, int]:
        """Map a 1-based local round to ``(phase, round_within_phase)``.

        Rounds past the final phase are reported as belonging to a virtual
        phase ``num_phases + 1`` so callers can detect completion.
        """
        if local_round < 1:
            raise ValueError("local rounds are 1-based")
        phase = (local_round - 1) // self.phase_length + 1
        within = (local_round - 1) % self.phase_length + 1
        if phase > self.num_phases:
            return self.num_phases + 1, within
        return phase, within

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    @classmethod
    def derive(
        cls,
        epsilon: float,
        delta: int,
        r: float = 2.0,
        mode: ParamMode = ParamMode.SIMULATION,
        constants: Optional[SeedConstants] = None,
        seed_domain_bits: int = 64,
        phase_length_override: Optional[int] = None,
    ) -> "SeedParams":
        """Derive SeedAlg parameters from ``(ε1, Δ, r)`` using Appendix B.1.

        ``phase_length_override`` lets tests shrink the phase length without
        abandoning the rest of the calculus.
        """
        if constants is None:
            constants = SeedConstants.for_mode(mode)
        log_delta = max(1, ceil_log2(delta))
        log_eps = log2_inverse(epsilon)
        phase_length = phase_length_override
        if phase_length is None:
            phase_length = max(1, math.ceil(constants.c4_for_r(r) * log_eps * log_eps))
        broadcast_probability = _clamp_probability(1.0 / max(log_eps, 1.0))
        delta_bound = max(
            1, math.ceil(6.0 * constants.cr(r) * constants.c3 * log_eps)
            if mode is ParamMode.PAPER
            else math.ceil(constants.cr(r) / constants.c1 * 4.0 * log_eps)
        )
        error_bound = theoretical_seed_error(epsilon, delta, r, constants)
        return cls(
            epsilon=epsilon,
            delta=delta,
            r=r,
            num_phases=log_delta,
            phase_length=int(phase_length),
            leader_broadcast_probability=broadcast_probability,
            seed_domain_bits=seed_domain_bits,
            delta_bound=int(delta_bound),
            error_bound=float(error_bound),
            mode=mode,
        )

    def with_seed_domain_bits(self, bits: int) -> "SeedParams":
        """A copy with a different seed domain width (used by LBAlg for κ)."""
        return replace(self, seed_domain_bits=bits)


def theoretical_seed_error(
    epsilon: float, delta: int, r: float, constants: Optional[SeedConstants] = None
) -> float:
    """The Theorem 3.1 error bound ``ε = O(r^4 log^4(Δ) ε1^{c^{r^2}})``.

    Returned uncapped (it can exceed 1 for loose parameters, meaning the
    theorem gives no guarantee there) so scaling comparisons stay monotone.
    """
    if constants is None:
        constants = SeedConstants.paper()
    log_delta = max(1.0, math.log2(max(delta, 2)))
    eps2 = constants.epsilon2(epsilon)
    eps3 = constants.epsilon3(epsilon, r)
    eps4 = constants.cr(r) * eps2 + eps3
    # Theorem B.16: cr log Δ [(log Δ + 3)^3 ε4 + 9 ε2 + 4 ε3] + cr (log Δ + 3)^3 ε4
    term = constants.cr(r) * log_delta * (
        (log_delta + 3.0) ** 3 * eps4 + 9.0 * eps2 + 4.0 * eps3
    ) + constants.cr(r) * (log_delta + 3.0) ** 3 * eps4
    return term


@dataclass(frozen=True)
class LBParams:
    """Concrete parameters for one run of ``LBAlg``.

    Attributes
    ----------
    epsilon:
        The error parameter ε1 of the local broadcast service.
    delta / delta_prime:
        The degree bounds Δ and Δ'.
    r:
        The geographic parameter.
    seed_params:
        Parameters of the per-phase SeedAlg preamble (run with error ε2).
    ts:
        Preamble length in rounds (``Ts`` -- the SeedAlg running time).
    tprog:
        Body length in rounds (``Tprog``).
    tack_phases:
        Number of full phases spent in sending state per message (``Tack``).
    participant_bits:
        Bits consumed per body round for the participant decision
        (``⌈log(r² log(1/ε2))⌉``); a node participates iff all are zero.
    b_selection_bits:
        Bits consumed by participants to select ``b ∈ [log Δ]``.
    kappa:
        Seed length (bits) sufficient for one phase of shared choices.
    """

    epsilon: float
    delta: int
    delta_prime: int
    r: float
    seed_params: SeedParams
    ts: int
    tprog: int
    tack_phases: int
    participant_bits: int
    b_selection_bits: int
    kappa: int
    mode: ParamMode = ParamMode.SIMULATION

    def __post_init__(self) -> None:
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if self.delta < 1 or self.delta_prime < self.delta:
            raise ValueError("need 1 <= Delta <= Delta'")
        if self.ts < 1 or self.tprog < 1 or self.tack_phases < 1:
            raise ValueError("ts, tprog and tack_phases must all be at least 1")
        if self.participant_bits < 1 or self.b_selection_bits < 1:
            raise ValueError("bit widths must be at least 1")
        if self.kappa < self.tprog * (self.participant_bits + self.b_selection_bits):
            raise ValueError(
                "kappa is too small for one phase of shared choices: need at least "
                f"{self.tprog * (self.participant_bits + self.b_selection_bits)} bits, got {self.kappa}"
            )

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def phase_length(self) -> int:
        """Rounds per LBAlg phase: ``Ts + Tprog``."""
        return self.ts + self.tprog

    @property
    def tprog_rounds(self) -> int:
        """The problem's ``t_prog`` bound: one full phase (Lemma C.2)."""
        return self.phase_length

    @property
    def tack_rounds(self) -> int:
        """The problem's ``t_ack`` bound: ``(Tack + 1)(Ts + Tprog)`` (Lemma C.3)."""
        return (self.tack_phases + 1) * self.phase_length

    @property
    def log_delta(self) -> int:
        """``log Δ`` rounded up, at least 1 (the range of the b selection)."""
        return max(1, ceil_log2(self.delta))

    @property
    def participant_probability(self) -> float:
        """The probability that a seed group participates in a body round."""
        return 2.0 ** (-self.participant_bits)

    def phase_position(self, round_number: int) -> Tuple[int, int]:
        """Map a global 1-based round to ``(phase_index, offset_within_phase)``.

        ``offset_within_phase`` is 1-based; offsets ``1..ts`` are the preamble
        and ``ts+1..ts+tprog`` are the body.
        """
        if round_number < 1:
            raise ValueError("rounds are 1-based")
        phase = (round_number - 1) // self.phase_length + 1
        offset = (round_number - 1) % self.phase_length + 1
        return phase, offset

    def is_preamble(self, offset: int) -> bool:
        """True iff a 1-based in-phase offset falls in the SeedAlg preamble."""
        return 1 <= offset <= self.ts

    def is_body(self, offset: int) -> bool:
        """True iff a 1-based in-phase offset falls in the broadcast body."""
        return self.ts < offset <= self.phase_length

    @property
    def phase_offset_table(self) -> Tuple[Tuple[int, bool, bool, bool, bool], ...]:
        """Precomputed per-offset phase structure, indexed by ``(round-1) % phase_length``.

        Entry ``i`` is ``(offset, is_preamble, is_preamble_end, is_body_start,
        is_phase_end)`` for 1-based offset ``i + 1``.  ``LBAlg`` consults the
        phase structure twice per process per round; this table replaces the
        repeated ``phase_position`` / ``is_preamble`` arithmetic with a single
        ``divmod`` and a tuple lookup on the hot path.  Built lazily once per
        parameter set (the dataclass is frozen, so the cache is stashed via
        ``object.__setattr__``).
        """
        try:
            return self._phase_offset_table_cache
        except AttributeError:
            pass
        ts = self.ts
        length = self.phase_length
        table = tuple(
            (
                offset,
                offset <= ts,
                offset == ts,
                offset == ts + 1,
                offset == length,
            )
            for offset in range(1, length + 1)
        )
        object.__setattr__(self, "_phase_offset_table_cache", table)
        return table

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    @classmethod
    def derive(
        cls,
        epsilon: float,
        delta: int,
        delta_prime: Optional[int] = None,
        r: float = 2.0,
        mode: ParamMode = ParamMode.SIMULATION,
        constants: Optional[LBConstants] = None,
        seed_constants: Optional[SeedConstants] = None,
        tprog_override: Optional[int] = None,
        tack_phases_override: Optional[int] = None,
        seed_phase_length_override: Optional[int] = None,
    ) -> "LBParams":
        """Derive LBAlg parameters from ``(ε1, Δ, Δ', r)`` following Appendix C.1.

        The three ``*_override`` arguments let tests and examples shrink the
        derived schedule without abandoning the rest of the calculus; the
        benchmarks always use the fully derived values.
        """
        if constants is None:
            constants = LBConstants.for_mode(mode)
        if seed_constants is None:
            seed_constants = SeedConstants.for_mode(mode)
        if delta_prime is None:
            delta_prime = delta
        if delta_prime < delta:
            raise ValueError("Delta' cannot be smaller than Delta")

        epsilon2 = derive_epsilon2(epsilon, delta, r, mode)
        log_delta = max(1, ceil_log2(delta))
        log_eps1 = log2_inverse(epsilon)
        log_eps2 = log2_inverse(epsilon2)

        tprog = tprog_override
        if tprog is None:
            tprog = max(
                1,
                math.ceil(constants.phase_c1 * r * r * log_eps1 * log_eps2 * log_delta),
            )

        participant_bits = max(1, math.ceil(math.log2(max(r * r * log_eps2, 2.0))))
        b_selection_bits = max(1, math.ceil(math.log2(max(log_delta, 2))))
        kappa = tprog * (participant_bits + b_selection_bits)

        seed_params = SeedParams.derive(
            epsilon=epsilon2,
            delta=delta,
            r=r,
            mode=mode,
            constants=seed_constants,
            seed_domain_bits=kappa,
            phase_length_override=seed_phase_length_override,
        )
        ts = seed_params.total_rounds

        tack_phases = tack_phases_override
        if tack_phases is None:
            tack_phases = max(
                1,
                math.ceil(
                    constants.ack_scale
                    * delta_prime
                    * math.log(2.0 * delta / epsilon)
                    / (constants.recv_c2 * max(log_eps1, 1.0) * (1.0 - epsilon / 2.0))
                ),
            )

        return cls(
            epsilon=epsilon,
            delta=delta,
            delta_prime=delta_prime,
            r=r,
            seed_params=seed_params,
            ts=ts,
            tprog=int(tprog),
            tack_phases=int(tack_phases),
            participant_bits=participant_bits,
            b_selection_bits=b_selection_bits,
            kappa=kappa,
            mode=mode,
        )

    @classmethod
    def small_for_testing(
        cls,
        delta: int = 8,
        delta_prime: Optional[int] = None,
        epsilon: float = 0.2,
        r: float = 2.0,
        tprog: int = 24,
        tack_phases: int = 3,
        seed_phase_length: int = 6,
    ) -> "LBParams":
        """A compact but structurally faithful parameter set for fast tests."""
        return cls.derive(
            epsilon=epsilon,
            delta=delta,
            delta_prime=delta_prime,
            r=r,
            mode=ParamMode.SIMULATION,
            tprog_override=tprog,
            tack_phases_override=tack_phases,
            seed_phase_length_override=seed_phase_length,
        )


def derive_epsilon2(epsilon: float, delta: int, r: float, mode: ParamMode) -> float:
    """The ε2 handed to the SeedAlg preamble (Appendix C.1).

    In paper mode, ε2 = min(ε', ε1) where ε' is the largest error parameter
    that still makes Theorem 3.1's guarantee at most ε1/2:
    ``ε' = Θ((ε1 / (r^4 log^4 Δ))^{γ/r²})`` for some γ > 1.  In simulation
    mode we use ε2 = ε1 (the constants are already scaled down, and the
    functional forms of Ts/Tprog are unchanged).
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if mode is ParamMode.SIMULATION:
        return epsilon
    gamma = 2.0
    log_delta = max(1.0, math.log2(max(delta, 2)))
    eps_prime = (epsilon / (r ** 4 * log_delta ** 4)) ** (gamma / (r * r))
    return min(max(eps_prime, 1e-12), epsilon)
