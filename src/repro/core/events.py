"""Input and output events.

The model of Section 2 structures every round as: environment inputs, then
transmissions, then receptions, then outputs consumed by the environment.
These dataclasses are the vocabulary in which all of that is recorded in an
execution trace and consumed by the specification checkers:

* :class:`BcastInput`  -- ``bcast(m)_u``: the environment hands ``u`` a message.
* :class:`AckOutput`   -- ``ack(m)_u``: ``u`` reports it finished broadcasting ``m``.
* :class:`RecvOutput`  -- ``recv(m)_u``: ``u`` delivers a received message upward.
* :class:`DecideOutput`-- ``decide(j, s)_u``: seed agreement decision (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Union

from repro.core.messages import Message


@dataclass(frozen=True, slots=True)
class BcastInput:
    """``bcast(m)_u`` at the start of ``round_number``."""

    vertex: Hashable
    message: Message
    round_number: int

    kind = "bcast"


@dataclass(frozen=True, slots=True)
class AckOutput:
    """``ack(m)_u`` generated at the end of ``round_number``."""

    vertex: Hashable
    message: Message
    round_number: int

    kind = "ack"


@dataclass(frozen=True, slots=True)
class RecvOutput:
    """``recv(m)_u`` generated at the end of ``round_number``."""

    vertex: Hashable
    message: Message
    round_number: int

    kind = "recv"


@dataclass(frozen=True, slots=True)
class DecideOutput:
    """``decide(owner, seed)_u`` generated at the end of ``round_number``.

    ``owner`` is the id of the node whose seed was adopted; ``seed`` is the
    seed value itself (an integer in the seed domain ``S``).
    """

    vertex: Hashable
    owner: Hashable
    seed: int
    round_number: int

    kind = "decide"


Event = Union[BcastInput, AckOutput, RecvOutput, DecideOutput]
