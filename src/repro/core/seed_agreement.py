"""The SeedAlg seed agreement algorithm (Section 3.2).

``SeedAlg(ε1)`` runs for ``log Δ`` phases of ``c4 · log²(1/ε1)`` rounds each
and performs aggressive local leader elections:

* every process starts *active* with a uniformly random initial seed from the
  seed domain ``S``;
* at the start of phase ``h`` an active process becomes a *leader* with
  probability ``2^{-(log Δ − h + 1)}`` (so ``1/Δ, 2/Δ, …, 1/4, 1/2`` across
  the phases);
* a new leader immediately outputs ``decide(own id, own seed)`` and then
  broadcasts its ``(id, seed)`` pair with probability ``1/log(1/ε1)`` in each
  round of the phase, becoming *inactive* at the phase's end;
* an active non-leader listens for the whole phase; on receiving some
  ``(j, s)`` it outputs ``decide(j, s)`` and becomes inactive;
* a process that survives all phases still active outputs
  ``decide(own id, own seed)`` by default.

The class below implements this as a :class:`~repro.simulation.process.Process`
so it can be run standalone by the simulator, and it also exposes the
``step_transmit`` / ``step_receive`` pair used by ``LBAlg`` to embed it as the
preamble subroutine of every local broadcast phase (the subroutine keeps its
own local round counter, so where it sits in global time is irrelevant).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Tuple

from repro.core.events import DecideOutput
from repro.core.params import SeedParams, _election_probability_table
from repro.simulation.process import Process, ProcessContext

STATUS_ACTIVE = "active"
STATUS_LEADER = "leader"
STATUS_INACTIVE = "inactive"


@dataclass(frozen=True, slots=True)
class SeedFrame:
    """The ``(id, seed)`` pair a leader broadcasts during its phase."""

    owner: Hashable
    seed: int


class SeedAgreementProcess(Process):
    """One node's automaton for ``SeedAlg(ε1)``.

    Parameters
    ----------
    ctx:
        The process context (vertex/id, degree bounds, private RNG).
    params:
        The derived :class:`~repro.core.params.SeedParams`.
    emit_decides:
        When true (the default for standalone runs) the process emits a
        :class:`~repro.core.events.DecideOutput` into the trace when it
        commits.  ``LBAlg`` sets this to false for its embedded preambles so
        that local broadcast traces contain only local broadcast events.
    initial_seed:
        Normally drawn uniformly from ``{0,1}^κ`` using the process RNG; tests
        may fix it.
    """

    __slots__ = (
        "params",
        "_emit_decides",
        "_initial_seed",
        "_status",
        "_committed",
        "_local_round",
        "_current_phase",
        "_leader_this_phase",
        "_election_probs",
        "_own_frame",
    )

    def __init__(
        self,
        ctx: ProcessContext,
        params: SeedParams,
        emit_decides: bool = True,
        initial_seed: Optional[int] = None,
    ) -> None:
        super().__init__(ctx)
        self.params = params
        self._emit_decides = emit_decides
        if initial_seed is None:
            initial_seed = ctx.rng.getrandbits(params.seed_domain_bits)
        self._initial_seed = initial_seed
        self._status = STATUS_ACTIVE
        self._committed: Optional[Tuple[Hashable, int]] = None
        self._local_round = 0
        self._current_phase = 0
        self._leader_this_phase = False
        # Hot-path caches: the per-phase election probabilities are a pure
        # function of the params, and the broadcast frame is a frozen
        # value-equal pair fixed for this subroutine's lifetime -- reusing
        # one instance is observationally identical to fresh construction.
        self._election_probs = _election_probability_table(params.num_phases)
        self._own_frame: Optional[SeedFrame] = None

    def reinit(self) -> None:
        """Reset to a freshly-constructed state for a new preamble.

        Performs exactly the per-construction work of ``__init__`` that is
        not a pure function of the (unchanged) context and params: one
        ``getrandbits`` draw for the new initial seed, plus clearing all
        phase state.  ``LBAlg`` pools one subroutine instance per member and
        reinitializes it at each non-reuse phase boundary; because the child
        context shares the member's RNG and never draws at construction,
        reinit-in-place makes the same RNG draws and reaches the same state
        as building a new instance, at a fraction of the allocation cost.
        """
        self._initial_seed = self.ctx.rng.getrandbits(self.params.seed_domain_bits)
        self._status = STATUS_ACTIVE
        self._committed = None
        self._local_round = 0
        self._current_phase = 0
        self._leader_this_phase = False
        self._own_frame = None
        del self._pending_outputs[:]

    # ------------------------------------------------------------------
    # public state
    # ------------------------------------------------------------------
    @property
    def status(self) -> str:
        """One of ``"active"``, ``"leader"``, ``"inactive"``."""
        return self._status

    @property
    def initial_seed(self) -> int:
        return self._initial_seed

    @property
    def has_committed(self) -> bool:
        return self._committed is not None

    @property
    def committed_owner(self) -> Optional[Hashable]:
        return self._committed[0] if self._committed else None

    @property
    def committed_seed(self) -> Optional[int]:
        return self._committed[1] if self._committed else None

    @property
    def is_complete(self) -> bool:
        """True once every phase has been executed."""
        return self._local_round >= self.params.total_rounds

    @property
    def local_round(self) -> int:
        """How many subroutine rounds have been executed so far."""
        return self._local_round

    # ------------------------------------------------------------------
    # subroutine interface (used both by the simulator hooks and by LBAlg)
    # ------------------------------------------------------------------
    def step_transmit(self, global_round: int) -> Optional[SeedFrame]:
        """Advance one subroutine round and return the frame to transmit (if any)."""
        self._local_round += 1
        if self._local_round > self.params.total_rounds:
            # The subroutine has finished; stay silent if stepped further.
            return None
        phase, within = self.params.phase_of_round(self._local_round)

        if within == 1:
            self._begin_phase(phase, global_round)

        if self._status == STATUS_LEADER and self._leader_this_phase:
            if self.rng.random() < self.params.leader_broadcast_probability:
                return self._broadcast_frame()
        return None

    def step_receive(self, global_round: int, frame: Optional[Any]) -> None:
        """Handle the reception outcome of the current subroutine round."""
        if self._local_round > self.params.total_rounds:
            return
        if not isinstance(frame, SeedFrame):
            received = None
        else:
            received = frame
        if self._status == STATUS_ACTIVE and received is not None:
            self._commit(received.owner, received.seed, global_round)
            self._status = STATUS_INACTIVE

        phase, within = self.params.phase_of_round(self._local_round)
        if within == self.params.phase_length:
            self._end_phase(phase, global_round)

    # ------------------------------------------------------------------
    # cohort stepping (used by the batched LBAlg preamble driver)
    # ------------------------------------------------------------------
    # These methods expose the round structure of step_transmit/step_receive
    # as individually callable pieces so a group driver can compute the
    # round-position arithmetic once per cohort and dispatch only to the
    # members that actually have work (active members at phase starts,
    # leaders in broadcast rounds).  Each piece performs exactly the RNG
    # draws and state transitions of the corresponding fragment of the
    # per-process path, which is what keeps batched traces byte-identical.

    def batch_begin_phase(self, phase: int, global_round: int) -> bool:
        """Run the phase-start leader election; returns True if now a leader.

        Must only be called for subroutines whose status is ``"active"`` (the
        driver prunes its cohort first); inactive members draw nothing in the
        per-process path, so skipping them preserves RNG draw order.
        """
        self._begin_phase(phase, global_round)
        return self._leader_this_phase

    def batch_broadcast_frame(self) -> Optional[SeedFrame]:
        """The per-round leader broadcast draw (call only for current leaders)."""
        if self.ctx.rng.random() < self.params.leader_broadcast_probability:
            return self._broadcast_frame()
        return None

    def _broadcast_frame(self) -> SeedFrame:
        """This subroutine's ``(id, seed)`` frame (cached; frozen and value-equal)."""
        frame = self._own_frame
        if frame is None:
            frame = self._own_frame = SeedFrame(
                owner=self.process_id, seed=self._initial_seed
            )
        return frame

    def batch_commit_reception(self, frame: SeedFrame, global_round: int) -> None:
        """Adopt a received ``(id, seed)`` pair (call only while active)."""
        self._commit(frame.owner, frame.seed, global_round)
        self._status = STATUS_INACTIVE

    def batch_end_phase(self, phase: int, global_round: int) -> None:
        """Run the phase-end bookkeeping (leader retirement, default decide)."""
        self._end_phase(phase, global_round)

    def batch_mark_stepped(self, local_round: int) -> None:
        """Record that the cohort driver advanced this subroutine's clock."""
        self._local_round = local_round

    # ------------------------------------------------------------------
    # Process hooks for standalone execution
    # ------------------------------------------------------------------
    def transmit(self, round_number: int) -> Optional[SeedFrame]:
        return self.step_transmit(round_number)

    def on_receive(self, round_number: int, frame: Optional[Any]) -> None:
        self.step_receive(round_number, frame)

    # ------------------------------------------------------------------
    # phase mechanics
    # ------------------------------------------------------------------
    def _begin_phase(self, phase: int, global_round: int) -> None:
        self._current_phase = phase
        self._leader_this_phase = False
        if self._status != STATUS_ACTIVE:
            return
        probability = self._election_probs[phase - 1]
        if self.ctx.rng.random() < probability:
            self._status = STATUS_LEADER
            self._leader_this_phase = True
            self._commit(self.process_id, self._initial_seed, global_round)

    def _end_phase(self, phase: int, global_round: int) -> None:
        if self._leader_this_phase:
            self._status = STATUS_INACTIVE
            self._leader_this_phase = False
        if phase == self.params.num_phases and self._status == STATUS_ACTIVE:
            # Default decision at the end of the final phase.
            self._commit(self.process_id, self._initial_seed, global_round)
            self._status = STATUS_INACTIVE

    def _commit(self, owner: Hashable, seed: int, global_round: int) -> None:
        if self._committed is not None:
            return
        self._committed = (owner, seed)
        if self._emit_decides:
            self.emit(
                DecideOutput(
                    vertex=self.vertex,
                    owner=owner,
                    seed=seed,
                    round_number=global_round,
                )
            )

    def __repr__(self) -> str:
        return (
            f"SeedAgreementProcess(vertex={self.vertex!r}, status={self._status}, "
            f"round={self._local_round}/{self.params.total_rounds})"
        )
