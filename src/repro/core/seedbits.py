"""Shared pseudo-random bit streams derived from committed seeds.

In LBAlg every node that committed to the same seed must make the *same*
"shared" random choices during a phase body (participant decisions and the
``b`` probability-selection), while its actual broadcast coin flips remain
private.  :class:`SeedBitStream` realizes the shared part: it deterministically
expands a seed value into a stream of bits, so two streams built from equal
seeds always agree bit-for-bit, and streams built from independently chosen
seeds look independent (Lemmas B.17 / B.18).

The initial κ bits are exactly the committed seed (the paper draws seeds from
``S_κ = {0,1}^κ``); if an execution somehow consumes more than κ bits the
stream keeps going by hashing ``seed || block_index``, which preserves the
"same seed ⇒ same bits" property that the algorithm depends on.

The stream is stored as a single Python integer (MSB-first accumulator) plus a
cursor, so :meth:`consume_int` is a shift-and-mask rather than a list slice
and extension appends 256 bits with one shift -- no per-bit list of ints is
ever materialized.  This is the hot allocation site of every LBAlg body round.
"""

from __future__ import annotations

import hashlib
from typing import List


class SeedBitStream:
    """A deterministic bit stream expanded from an integer seed.

    Parameters
    ----------
    seed:
        The committed seed value, a non-negative integer interpreted as a
        κ-bit string (most significant bit first).
    kappa:
        The nominal seed length in bits.  Values of ``seed`` with more than
        κ significant bits are rejected to catch calculus errors early.
    """

    _BLOCK_BITS = 256  # one SHA-256 digest per extension block

    __slots__ = ("_seed", "_kappa", "_acc", "_total_bits", "_cursor", "_extension_blocks")

    def __init__(self, seed: int, kappa: int) -> None:
        if kappa < 1:
            raise ValueError(f"kappa must be positive, got {kappa}")
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        if seed.bit_length() > kappa:
            raise ValueError(
                f"seed has {seed.bit_length()} bits but the seed domain is only {kappa} bits wide"
            )
        self._seed = seed
        self._kappa = kappa
        # The accumulator holds every generated bit MSB-first: the top κ bits
        # are the seed itself, later extension blocks are appended at the low
        # end.  `_total_bits` is its logical width (leading zeros included).
        self._acc = seed
        self._total_bits = kappa
        self._cursor = 0
        self._extension_blocks = 0

    # ------------------------------------------------------------------
    # consumption
    # ------------------------------------------------------------------
    def consume_int(self, count: int) -> int:
        """Consume ``count`` bits and return them as an integer in [0, 2^count)."""
        if count < 0:
            raise ValueError("cannot consume a negative number of bits")
        end = self._cursor + count
        while end > self._total_bits:
            self._extend()
        self._cursor = end
        return (self._acc >> (self._total_bits - end)) & ((1 << count) - 1)

    def consume_bits(self, count: int) -> List[int]:
        """Consume ``count`` bits and return them as a list of 0/1 ints."""
        value = self.consume_int(count)
        return [(value >> (count - 1 - i)) & 1 for i in range(count)]

    def consume_all_zero(self, count: int) -> bool:
        """Consume ``count`` bits and report whether they were all zero.

        This is the exact form of the participant decision in LBAlg: an event
        of probability ``2^{-count}``.
        """
        return self.consume_int(count) == 0

    def skip(self, count: int) -> None:
        """Advance the cursor ``count`` bits without materializing their value.

        Used by the batched body-round path: when another stream with the same
        seed and cursor has already computed a shared decision, cohort members
        only need their cursors moved in lockstep.  Extension is deferred --
        :meth:`consume_int` extends lazily when the cursor runs past the
        generated bits, and extension blocks are a pure function of the seed,
        so skipped-over bits are identical to consumed ones.
        """
        if count < 0:
            raise ValueError("cannot skip a negative number of bits")
        self._cursor += count

    def consume_uniform_index(self, modulus: int, width: int) -> int:
        """Consume ``width`` bits and map them into ``[0, modulus)``.

        The paper assumes Δ is a power of two so that ``log Δ`` values fit
        exactly in ``log log Δ`` bits.  For general Δ we consume the given
        width and reduce modulo ``modulus``; the induced distribution is
        uniform when ``modulus`` divides ``2^width`` and within a factor of
        two of uniform otherwise, which only perturbs constants.
        """
        if modulus < 1:
            raise ValueError("modulus must be positive")
        return self.consume_int(width) % modulus

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def seed(self) -> int:
        return self._seed

    @property
    def kappa(self) -> int:
        return self._kappa

    @property
    def bits_consumed(self) -> int:
        return self._cursor

    @property
    def exhausted_initial_seed(self) -> bool:
        """True iff consumption went beyond the κ initial seed bits."""
        return self._cursor > self._kappa

    @property
    def extension_blocks_used(self) -> int:
        """How many hash-extension blocks were needed (0 in well-sized runs)."""
        return self._extension_blocks

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _extend(self) -> None:
        """Append one deterministic extension block derived from the seed."""
        self._extension_blocks += 1
        payload = (
            self._seed.to_bytes((self._kappa + 7) // 8 or 1, "big")
            + b"|"
            + str(self._extension_blocks).encode()
        )
        digest = hashlib.sha256(payload).digest()
        self._acc = (self._acc << self._BLOCK_BITS) | int.from_bytes(digest, "big")
        self._total_bits += self._BLOCK_BITS

    def __repr__(self) -> str:
        return (
            f"SeedBitStream(kappa={self._kappa}, consumed={self._cursor}, "
            f"extensions={self._extension_blocks})"
        )
