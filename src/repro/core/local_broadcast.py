"""The LBAlg local broadcast algorithm (Section 4.2).

``LBAlg(ε1)`` partitions rounds into phases of ``Ts + Tprog`` rounds:

* the first ``Ts`` rounds of every phase (the *preamble*) run ``SeedAlg(ε2)``
  as a subroutine -- every node participates regardless of its state -- and
  each node commits to a seed ``s`` from ``S_κ = {0,1}^κ``;
* the remaining ``Tprog`` rounds (the *body*) are where data flows.  A node is
  either in the *receiving* state (just listen; output ``recv(m')`` for every
  new message heard) or the *sending* state.  A sending node, in each body
  round:

  1. consumes ``⌈log(r² log(1/ε2))⌉`` bits from its committed seed; it becomes
     a *participant* iff all of them are zero (probability
     ``≈ 1/(r² log(1/ε2))``) -- all nodes sharing a seed make the same call;
  2. a non-participant listens;
  3. a participant consumes ``log log Δ`` more shared bits to pick
     ``b ∈ [log Δ]``, then flips ``b`` *private* coins and broadcasts its
     message iff they are all zero (probability ``2^{-b}``).

A node that received a ``bcast(m)`` input switches to the sending state at the
next phase boundary, stays there for ``Tack`` full phases, outputs ``ack(m)``
at the end of the last round of the last such phase, and returns to receiving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Set, Tuple

from repro.core.events import AckOutput, RecvOutput
from repro.core.messages import Message
from repro.core.params import LBParams
from repro.core.seed_agreement import SeedAgreementProcess, SeedFrame
from repro.core.seedbits import SeedBitStream
from repro.simulation.process import Process, ProcessContext

STATE_RECEIVING = "receiving"
STATE_SENDING = "sending"


@dataclass(frozen=True, slots=True)
class DataFrame:
    """The frame a sending node broadcasts during body rounds."""

    message: Message


class LocalBroadcastProcess(Process):
    """One node's automaton for ``LBAlg(ε1)``.

    Parameters
    ----------
    ctx:
        The process context (vertex/id, degree bounds, private RNG).
    params:
        The derived :class:`~repro.core.params.LBParams`.
    seed_reuse_phases:
        How many consecutive phases share one seed-agreement run.  The default
        of 1 is the algorithm as written in Section 4.2 (a fresh SeedAlg
        preamble every phase).  Values above 1 implement the paper's remark
        that "in some settings, it might make sense to run the agreement
        protocol less frequently, and generate seeds of sufficient length to
        satisfy the demands of multiple phases": phases whose index is not a
        multiple of the reuse factor skip the preamble (the node just listens
        through those rounds) and keep drawing shared bits from the previously
        committed seed.  Worst-case bounds are unchanged; the average cost of
        the preamble drops by the reuse factor (ablation experiment E12).

    Notes
    -----
    Populations of plain ``LocalBroadcastProcess`` automata sharing one
    parameter set are *batchable*: the simulator steps them through a
    :class:`~repro.core.seed_groups.LocalBroadcastBatchDriver` that computes
    each body round's shared decision once per seed cohort and skips dispatch
    to dormant members entirely, with byte-identical traces (see
    :meth:`batch_group_key`).  Subclasses are stepped per-process.
    """

    __slots__ = (
        "params",
        "seed_reuse_phases",
        "_state",
        "_pending_message",
        "_current_message",
        "_sending_phases_remaining",
        "_received_ids",
        "_seed_subroutine",
        "_sub_pool",
        "_seed_stream",
        "_phase_seed",
        "stats_participant_rounds",
        "stats_broadcast_rounds",
        "stats_body_rounds_sending",
        "stats_max_bits_consumed",
    )

    def __init__(
        self, ctx: ProcessContext, params: LBParams, seed_reuse_phases: int = 1
    ) -> None:
        super().__init__(ctx)
        if seed_reuse_phases < 1:
            raise ValueError("seed_reuse_phases must be at least 1")
        self.params = params
        self.seed_reuse_phases = int(seed_reuse_phases)
        self._state = STATE_RECEIVING
        self._pending_message: Optional[Message] = None
        self._current_message: Optional[Message] = None
        self._sending_phases_remaining = 0
        self._received_ids: Set[Tuple[Hashable, int]] = set()
        self._seed_subroutine: Optional[SeedAgreementProcess] = None
        self._sub_pool: Optional[SeedAgreementProcess] = None
        self._seed_stream: Optional[SeedBitStream] = None
        self._phase_seed: Optional[Tuple[Hashable, int]] = None
        # Statistics exposed for experiments (E5, E10).
        self.stats_participant_rounds = 0
        self.stats_broadcast_rounds = 0
        self.stats_body_rounds_sending = 0
        self.stats_max_bits_consumed = 0

    # ------------------------------------------------------------------
    # public state (read by tests and experiments)
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``"receiving"`` or ``"sending"``."""
        return self._state

    @property
    def current_message(self) -> Optional[Message]:
        """The message being broadcast while in the sending state."""
        return self._current_message

    @property
    def pending_message(self) -> Optional[Message]:
        """A message waiting for the next phase boundary."""
        return self._pending_message

    @property
    def sending_phases_remaining(self) -> int:
        return self._sending_phases_remaining

    @property
    def committed_phase_seed(self) -> Optional[Tuple[Hashable, int]]:
        """The ``(owner, seed)`` committed in the current phase's preamble."""
        return self._phase_seed

    # ------------------------------------------------------------------
    # batch stepping
    # ------------------------------------------------------------------
    def batch_group_key(self) -> Optional[Tuple[str, Any, int]]:
        """Cohort key for the simulator's batch-stepping protocol.

        Only exact ``LocalBroadcastProcess`` instances are batchable -- a
        subclass may override any hook, and the driver would silently bypass
        the override.  Processes sharing parameters and reuse factor land in
        one cohort regardless of their private contexts (the driver never
        touches anything but the member's own state and RNG).
        """
        if type(self) is not LocalBroadcastProcess:
            return None
        return ("lbalg", self.params, self.seed_reuse_phases)

    def make_batch_driver(self):
        from repro.core.seed_groups import LocalBroadcastBatchDriver

        return LocalBroadcastBatchDriver(self.params, self.seed_reuse_phases)

    # ------------------------------------------------------------------
    # environment input
    # ------------------------------------------------------------------
    def on_input(self, round_number: int, inp: Any) -> None:
        if not isinstance(inp, Message):
            raise TypeError(
                f"LBAlg only accepts Message inputs from the environment, got {type(inp).__name__}"
            )
        if self._pending_message is not None or self._current_message is not None:
            # A well-formed environment never does this (it must wait for the
            # ack); fail loudly rather than silently dropping a message.
            raise RuntimeError(
                f"vertex {self.vertex!r} received a bcast input while a previous message "
                "is still outstanding; the environment violates well-formedness"
            )
        self._pending_message = inp

    # ------------------------------------------------------------------
    # round processing
    # ------------------------------------------------------------------
    def transmit(self, round_number: int) -> Optional[Any]:
        if round_number < 1:
            raise ValueError("rounds are 1-based")
        params = self.params
        phase_m1, index = divmod(round_number - 1, params.phase_length)
        offset, in_preamble, _, body_start, _ = params.phase_offset_table[index]

        if offset == 1:
            self._begin_phase(phase_m1 + 1)

        if in_preamble:
            if self._seed_subroutine is None:
                # A reused-seed phase: the preamble is idle listening.
                return None
            return self._seed_subroutine.step_transmit(round_number)

        # Body round.
        if body_start:
            self._begin_body()

        if self._state != STATE_SENDING or self._current_message is None:
            return None

        self.stats_body_rounds_sending += 1
        participant = self._seed_stream.consume_all_zero(params.participant_bits)
        if not participant:
            self._note_bits_consumed()
            return None
        self.stats_participant_rounds += 1
        b_index = self._seed_stream.consume_uniform_index(
            params.log_delta, params.b_selection_bits
        )
        self._note_bits_consumed()
        b = b_index + 1
        # b private coins, broadcast iff all zero: probability 2^{-b}.
        if all(self.rng.random() < 0.5 for _ in range(b)):
            self.stats_broadcast_rounds += 1
            return DataFrame(message=self._current_message)
        return None

    def on_receive(self, round_number: int, frame: Optional[Any]) -> None:
        if round_number < 1:
            raise ValueError("rounds are 1-based")
        params = self.params
        index = (round_number - 1) % params.phase_length
        _, in_preamble, preamble_end, _, phase_end = params.phase_offset_table[index]

        if in_preamble:
            if self._seed_subroutine is not None:
                self._seed_subroutine.step_receive(round_number, frame)
                if preamble_end:
                    self._finish_preamble()
            return

        if isinstance(frame, DataFrame):
            self._handle_data(frame.message, round_number)

        if phase_end:
            self._end_phase(round_number)

    # ------------------------------------------------------------------
    # phase mechanics
    # ------------------------------------------------------------------
    def _begin_phase(self, phase: int) -> None:
        if self._state == STATE_RECEIVING and self._pending_message is not None:
            self._state = STATE_SENDING
            self._current_message = self._pending_message
            self._pending_message = None
            self._sending_phases_remaining = self.params.tack_phases

        reuse_phase = (phase - 1) % self.seed_reuse_phases != 0 and self._phase_seed is not None
        if reuse_phase:
            # Keep the previously committed seed and keep consuming its bit
            # stream; the preamble rounds of this phase are idle listening.
            self._seed_subroutine = None
            return

        # Fresh SeedAlg subroutine state for this phase, silent in the LB
        # trace.  The instance itself is pooled across phases: reinit() makes
        # exactly the RNG draws of a fresh construction (the child context
        # shares this member's RNG and draws nothing itself), so reuse is
        # byte-identical while skipping an allocation + full __init__ per
        # member per phase.
        sub = self._sub_pool
        if sub is None:
            sub = self._sub_pool = SeedAgreementProcess(
                self.ctx.child(), self.params.seed_params, emit_decides=False
            )
        else:
            sub.reinit()
        self._seed_subroutine = sub
        self._seed_stream = None
        self._phase_seed = None

    def _finish_preamble(self) -> None:
        """Capture the committed seed at the end of the preamble."""
        sub = self._seed_subroutine
        if sub is None:
            return
        if not sub.has_committed:
            # SeedAlg always commits by its final phase; if the preamble was
            # truncated (ts shorter than the subroutine, which derive() never
            # produces) fall back to the node's own initial seed.
            self._phase_seed = (self.process_id, sub.initial_seed)
        else:
            self._phase_seed = (sub.committed_owner, sub.committed_seed)

    def _begin_body(self) -> None:
        if self._seed_stream is not None and self._seed_subroutine is None:
            # Reused-seed phase: keep drawing from the existing stream so the
            # shared choices stay synchronized within the seed group.
            return
        if self._phase_seed is None:
            self._finish_preamble()
        _, seed_value = self._phase_seed
        self._seed_stream = SeedBitStream(seed_value, self.params.kappa)

    def _end_phase(self, round_number: int) -> None:
        if self._state != STATE_SENDING:
            return
        self._sending_phases_remaining -= 1
        if self._sending_phases_remaining <= 0:
            message = self._current_message
            self._current_message = None
            self._state = STATE_RECEIVING
            self._sending_phases_remaining = 0
            if message is not None:
                self.emit(
                    AckOutput(vertex=self.vertex, message=message, round_number=round_number)
                )

    # ------------------------------------------------------------------
    # data handling
    # ------------------------------------------------------------------
    def _handle_data(self, message: Message, round_number: int) -> None:
        if message.message_id in self._received_ids:
            return
        self._received_ids.add(message.message_id)
        self.emit(
            RecvOutput(vertex=self.vertex, message=message, round_number=round_number)
        )

    def _note_bits_consumed(self) -> None:
        if self._seed_stream is not None:
            self.stats_max_bits_consumed = max(
                self.stats_max_bits_consumed, self._seed_stream.bits_consumed
            )

    def __repr__(self) -> str:
        return (
            f"LocalBroadcastProcess(vertex={self.vertex!r}, state={self._state}, "
            f"phases_remaining={self._sending_phases_remaining})"
        )


def make_lb_processes(
    graph,
    params: LBParams,
    rng: random.Random,
    r: Optional[float] = None,
    seed_reuse_phases: int = 1,
):
    """Build one :class:`LocalBroadcastProcess` per vertex of ``graph``.

    A convenience used throughout the examples, tests, and benchmarks: derives
    each process's private RNG from the supplied master RNG so whole runs are
    reproducible from a single seed.  ``seed_reuse_phases`` is forwarded to
    every process (see :class:`LocalBroadcastProcess`).
    """
    delta, delta_prime = graph.degree_bounds()
    processes = {}
    for vertex in sorted(graph.vertices, key=repr):
        ctx = ProcessContext(
            vertex=vertex,
            delta=max(delta, params.delta),
            delta_prime=max(delta_prime, params.delta_prime),
            r=r if r is not None else params.r,
            rng=random.Random(rng.getrandbits(64)),
        )
        processes[vertex] = LocalBroadcastProcess(
            ctx, params, seed_reuse_phases=seed_reuse_phases
        )
    return processes
