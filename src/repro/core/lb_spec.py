"""The ``LB(t_ack, t_prog, ε)`` specification checker (Section 4.1).

Deterministic conditions (must hold in every execution):

1. **Timely acknowledgment** -- a ``bcast(m)_u`` input at round ``ρ`` is
   followed by exactly one ``ack(m)_u`` output in rounds ``[ρ, ρ + t_ack]``,
   and those are the only acks.
2. **Validity** -- a ``recv(m)_u`` output at round ``ρ`` requires some
   ``v ∈ N_G'(u)`` actively broadcasting ``m`` at ``ρ``.

Probabilistic conditions (per configuration, estimated empirically across
trials):

3. **Reliability** -- with probability at least 1 − ε, every reliable
   neighbor of the sender outputs ``recv(m)`` before the sender's ``ack(m)``.
4. **Progress** -- partition rounds into windows of ``t_prog``; whenever a
   receiver has a reliable neighbor that is active throughout a window, the
   receiver outputs some ``recv`` during the window with probability at
   least 1 − ε.

:func:`check_lb_execution` evaluates all four on a single trace, reporting the
hard violations of 1-2 and the per-message / per-window outcomes of 3-4 so a
multi-trial driver can estimate error rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.dualgraph.graph import DualGraph
from repro.simulation.metrics import (
    DeliveryRecord,
    ProgressReport,
    delivery_report,
    progress_report,
)
from repro.simulation.trace import ExecutionTrace

Vertex = Hashable


@dataclass
class LBSpecReport:
    """Result of checking one execution against ``LB(t_ack, t_prog, ε)``."""

    tack: int
    tprog: int
    timely_ack_violations: List[str] = field(default_factory=list)
    validity_violations: List[str] = field(default_factory=list)
    deliveries: List[DeliveryRecord] = field(default_factory=list)
    progress: Optional[ProgressReport] = None

    # ------------------------------------------------------------------
    # deterministic conditions
    # ------------------------------------------------------------------
    @property
    def timely_ack_ok(self) -> bool:
        return not self.timely_ack_violations

    @property
    def validity_ok(self) -> bool:
        return not self.validity_violations

    @property
    def deterministic_ok(self) -> bool:
        """Both always-true conditions (timely ack and validity) hold."""
        return self.timely_ack_ok and self.validity_ok

    # ------------------------------------------------------------------
    # probabilistic conditions (per-execution outcomes)
    # ------------------------------------------------------------------
    @property
    def completed_deliveries(self) -> List[DeliveryRecord]:
        """Deliveries whose broadcast was acknowledged within the trace."""
        return [d for d in self.deliveries if d.ack_round is not None]

    @property
    def reliability_failures(self) -> List[DeliveryRecord]:
        """Acknowledged broadcasts that missed at least one reliable neighbor."""
        return [d for d in self.completed_deliveries if not d.fully_delivered]

    @property
    def reliability_failure_rate(self) -> float:
        completed = self.completed_deliveries
        if not completed:
            return 0.0
        return len(self.reliability_failures) / len(completed)

    @property
    def progress_failure_rate(self) -> float:
        if self.progress is None:
            return 0.0
        return self.progress.failure_rate

    @property
    def num_progress_windows(self) -> int:
        if self.progress is None:
            return 0
        return self.progress.num_applicable

    def summary(self) -> Dict[str, float]:
        """A compact dictionary used by benchmark result tables."""
        return {
            "timely_ack_violations": len(self.timely_ack_violations),
            "validity_violations": len(self.validity_violations),
            "completed_broadcasts": len(self.completed_deliveries),
            "reliability_failures": len(self.reliability_failures),
            "reliability_failure_rate": self.reliability_failure_rate,
            "progress_windows": self.num_progress_windows,
            "progress_failure_rate": self.progress_failure_rate,
        }


def check_lb_execution(
    trace: ExecutionTrace,
    graph: DualGraph,
    tack: int,
    tprog: int,
    check_progress: bool = True,
) -> LBSpecReport:
    """Check one execution trace against the local broadcast specification."""
    if tack < tprog or tprog < 1:
        raise ValueError("need t_ack >= t_prog >= 1")
    report = LBSpecReport(tack=tack, tprog=tprog)

    _check_timely_ack(trace, tack, report)
    _check_validity(trace, graph, report)
    report.deliveries = delivery_report(trace, graph)
    if check_progress:
        report.progress = progress_report(trace, graph, window=tprog)
    return report


def _check_timely_ack(trace: ExecutionTrace, tack: int, report: LBSpecReport) -> None:
    acked_ids = {}
    for ack in trace.ack_outputs:
        acked_ids.setdefault(ack.message.message_id, []).append(ack)

    bcast_ids = set()
    for bcast in trace.bcast_inputs:
        mid = bcast.message.message_id
        bcast_ids.add(mid)
        acks = acked_ids.get(mid, [])
        if len(acks) > 1:
            report.timely_ack_violations.append(
                f"message {mid!r} was acknowledged {len(acks)} times"
            )
        deadline = bcast.round_number + tack
        if not acks:
            # Only a violation if the trace ran long enough to see the deadline.
            if trace.num_rounds >= deadline:
                report.timely_ack_violations.append(
                    f"message {mid!r} (bcast at round {bcast.round_number}) was never "
                    f"acknowledged although the deadline (round {deadline}) passed"
                )
        else:
            ack = acks[0]
            if ack.vertex != bcast.vertex:
                report.timely_ack_violations.append(
                    f"message {mid!r} was acknowledged by {ack.vertex!r}, not by its "
                    f"origin {bcast.vertex!r}"
                )
            if not bcast.round_number <= ack.round_number <= deadline:
                report.timely_ack_violations.append(
                    f"message {mid!r} acknowledged at round {ack.round_number}, outside "
                    f"[{bcast.round_number}, {deadline}]"
                )

    for mid, acks in acked_ids.items():
        if mid not in bcast_ids:
            report.timely_ack_violations.append(
                f"ack for message {mid!r} which was never submitted by the environment"
            )


def _check_validity(trace: ExecutionTrace, graph: DualGraph, report: LBSpecReport) -> None:
    for recv in trace.recv_outputs:
        receiver = recv.vertex
        message = recv.message
        round_number = recv.round_number
        neighbors = graph.potential_neighbors(receiver)
        origin_ok = False
        for neighbor in neighbors:
            active = trace.actively_broadcasting(neighbor, round_number)
            if any(m.message_id == message.message_id for m in active):
                origin_ok = True
                break
        if not origin_ok:
            report.validity_violations.append(
                f"vertex {receiver!r} output recv({message.message_id!r}) at round "
                f"{round_number} but no G' neighbor was actively broadcasting it"
            )
