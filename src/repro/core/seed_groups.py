"""Seed-cohort tracking and batched stepping for LBAlg populations.

The automata of Section 4.2 have group-level structure that per-process
stepping cannot exploit:

* every node that committed the same seed makes *identical* shared-bit
  decisions in each body round (the participant test and the ``b``
  selection draw from equal :class:`~repro.core.seedbits.SeedBitStream`
  states), so the shared part of a body round is a per-cohort computation,
  not a per-node one;
* receiving-state nodes are provably silent in body rounds -- they transmit
  nothing and draw nothing -- so they need no per-round dispatch at all;
* the embedded ``SeedAlg`` preambles of one ``LBAlg`` population run in
  lockstep (one subroutine round per preamble round, all started at the same
  phase boundary), so the round-position arithmetic and phase bookkeeping is
  shared across the whole cohort, and only active members (at phase starts)
  and leaders (every round) do any per-member work.

This module packages those observations as the batch group driver protocol of
:class:`~repro.simulation.process.Process` (``batch_group_key`` /
``make_batch_driver``):

* :class:`SeedGroupTracker` memoizes each round's shared body decision per
  ``(seed, cursor)`` cohort, advancing non-representative members' streams
  with a cursor :meth:`~repro.core.seedbits.SeedBitStream.skip`;
* :class:`SeedAgreementCohort` steps a phase's embedded
  :class:`~repro.core.seed_agreement.SeedAgreementProcess` instances as one
  unit;
* :class:`LocalBroadcastBatchDriver` is the engine-facing driver gluing both
  together for a cohort of :class:`~repro.core.local_broadcast.LocalBroadcastProcess`.

The invariant every method here preserves: for a fixed seed, the batched
execution performs exactly the same private RNG draws, emits exactly the same
events, and produces exactly the same per-round frames as per-process
stepping -- the regression tests in ``tests/test_fast_engine.py`` pin this
against both the generic and the PR-1 fast resolution paths.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.local_broadcast import (
    STATE_SENDING,
    DataFrame,
    LocalBroadcastProcess,
)
from repro.core.params import LBParams, SeedParams, _election_probability_table
from repro.core.seed_agreement import STATUS_ACTIVE, STATUS_LEADER, SeedFrame
from repro.core.seedbits import SeedBitStream

Vertex = Hashable

#: Process-wide memo of bulk-decoded cohort schedules, keyed by everything
#: the decode is a function of: ``(seed, start_cursor, kappa,
#: participant_bits, b_width, b_modulus, rounds)``.  A SeedBitStream is a
#: pure function of its seed and kappa, so equal keys decode to equal
#: buffers -- repeated workloads (benchmark repeats, suite trials sharing a
#: master seed) skip the pool parse entirely.  Bounded FIFO like the
#: scheduler delta cache: inserts past the cap evict the oldest entry.
_DECODE_CACHE: Dict[tuple, tuple] = {}
_DECODE_CACHE_MAXSIZE = 4096


class SeedGroupTracker:
    """Per-round memo of the shared body-round decision per seed cohort.

    A body-round decision is a pure function of ``(seed value, cursor
    position)``: members whose streams are in the same state (same committed
    seed, same number of bits consumed so far) must make the same participant
    call and, when participating, select the same ``b``.  The tracker computes
    the decision once per cohort per round -- the first member encountered
    consumes the bits from its own stream -- and every other cohort member
    only advances its cursor.

    ``shared_decisions`` / ``computed_decisions`` count memo hits and misses
    across the tracker's lifetime; experiments and tests use them to verify
    cohort sharing actually happens.

    Contract: :meth:`begin_round` must be called exactly once per body round
    before any :meth:`decision_for` call (cursors advance every round, so a
    stale memo would mis-share); after :meth:`decision_for` returns, the
    member's stream has advanced by ``bits_advanced`` positions regardless of
    whether the decision was computed or shared, which is what keeps the
    member's future draws identical to per-process stepping.
    """

    __slots__ = (
        "_participant_bits",
        "_b_modulus",
        "_b_width",
        "_decisions",
        "computed_decisions",
        "shared_decisions",
    )

    def __init__(self, params: LBParams) -> None:
        self._participant_bits = params.participant_bits
        self._b_modulus = params.log_delta
        self._b_width = params.b_selection_bits
        self._decisions: Dict[Tuple[int, int], Tuple[bool, int, int]] = {}
        self.computed_decisions = 0
        self.shared_decisions = 0

    def begin_round(self) -> None:
        """Forget the previous round's decisions (cursors have moved on)."""
        self._decisions.clear()

    def decision_for(self, stream) -> Tuple[bool, int, int]:
        """The shared decision for a member whose seed stream is ``stream``.

        Returns ``(participant, b, bits_advanced)`` and advances the stream:
        by consuming the bits when this member is the cohort's representative
        this round, by a cursor skip otherwise (skipped-over bits are
        identical by :meth:`SeedBitStream.skip`'s deferred-extension rule).
        """
        key = (stream._seed, stream._cursor)
        decision = self._decisions.get(key)
        if decision is None:
            participant = stream.consume_all_zero(self._participant_bits)
            if participant:
                b = stream.consume_uniform_index(self._b_modulus, self._b_width) + 1
                decision = (True, b, self._participant_bits + self._b_width)
            else:
                decision = (False, 0, self._participant_bits)
            self._decisions[key] = decision
            self.computed_decisions += 1
        else:
            stream.skip(decision[2])
            self.shared_decisions += 1
        return decision


class _SeedCohort:
    """One ``(seed, cursor)`` cohort of sending members for the kernel lane.

    Members are grouped at body start by the exact state of their seed
    streams; within one body they stay in lockstep (identical shared draws
    every round), so the cohort carries everything a round needs in flat
    parallel buffers:

    * ``actors`` -- one ``(rng.random, vertex, frame, member)`` tuple per
      member, precomputed so the participant-round hot loop does no attribute
      lookups (the ``DataFrame`` is value-equal to the per-round instances the
      unbatched path builds, and a member's message is constant for the whole
      body);
    * ``flags`` / ``bs`` / ``cum`` -- the body's remaining shared decisions,
      bulk-decoded into ``array`` buffers in one pass over a shadow stream at
      build time (participant flag, selected ``b``, cumulative bits consumed).
      Only cohorts whose seed is unique among the driver's cohorts get these
      buffers: two cohorts sharing a seed can converge to the same cursor
      mid-body, and that sharing must go through the tracker memo exactly as
      per-member stepping would.  Such cohorts leave ``flags`` as ``None`` and
      are served per round from their representative's live stream.

    Member streams are not touched during the body; the driver applies one
    bulk :meth:`~repro.core.seedbits.SeedBitStream.skip` per member at flush
    time, which is what keeps every future draw byte-identical to per-member
    stepping.
    """

    __slots__ = (
        "rep_stream",
        "start_cursor",
        "members",
        "actors",
        "participant_rounds",
        "flags",
        "bs",
        "cum",
        "active",
    )

    def __init__(self, rep_stream: SeedBitStream) -> None:
        self.rep_stream = rep_stream
        self.start_cursor = rep_stream._cursor
        self.members: List[LocalBroadcastProcess] = []
        self.actors: List[tuple] = []
        self.participant_rounds = 0
        self.flags: Optional[array] = None
        self.bs: Optional[array] = None
        self.cum: Optional[array] = None
        self.active: Optional[List[Tuple[int, int]]] = None

    def bulk_decode(self, params: LBParams, rounds: int) -> None:
        """Decode this body's remaining shared decisions into flat buffers.

        One pass over a *shadow* stream (same seed, skipped to the cohort's
        cursor -- :class:`SeedBitStream` is a pure function of both), so the
        members' own streams stay untouched until flush.  Consumption order
        is exactly the per-round order, so the cumulative-bits buffer gives
        the cursor position after any prefix of the body.  Besides the dense
        per-round buffers the decode collects ``active``, the sparse
        ``(round, b)`` list of participant rounds -- with participation
        probability ``2^-participant_bits`` most rounds are absent, so the
        driver's schedule inversion touches a handful of entries instead of
        every (cohort, round) pair.  Because the whole decode is a pure
        function of ``(seed, cursor, params, rounds)``, results are memoized
        process-wide in :data:`_DECODE_CACHE`.
        """
        key = (
            self.rep_stream._seed,
            self.start_cursor,
            params.kappa,
            params.participant_bits,
            params.b_selection_bits,
            params.log_delta,
            rounds,
        )
        cached = _DECODE_CACHE.get(key)
        if cached is not None:
            self.flags, self.bs, self.cum, self.active = cached
            return
        shadow = SeedBitStream(self.rep_stream._seed, params.kappa)
        shadow.skip(self.start_cursor)
        participant_bits = params.participant_bits
        b_modulus = params.log_delta
        b_width = params.b_selection_bits
        flags = array("B")
        bs = array("B")
        cum = array("L", [0])
        active: List[Tuple[int, int]] = []
        bits = 0
        # One bulk RNG read covers the worst case (every round participates);
        # sequential consume_int calls concatenate MSB-first, so parsing the
        # pool with a descending bit pointer yields exactly the per-round
        # consume_all_zero / consume_uniform_index values.  Over-reading past
        # what the rounds actually use is harmless: the shadow is discarded
        # and extension blocks are a pure function of the seed.
        pool_bits = rounds * (participant_bits + b_width)
        pool = shadow.consume_int(pool_bits)
        pos = pool_bits
        p_mask = (1 << participant_bits) - 1
        b_mask = (1 << b_width) - 1
        for served in range(rounds):
            pos -= participant_bits
            if (pool >> pos) & p_mask == 0:
                pos -= b_width
                b = ((pool >> pos) & b_mask) % b_modulus + 1
                bits += participant_bits + b_width
                active.append((served, b))
            else:
                b = 0
                bits += participant_bits
            flags.append(1 if b else 0)
            bs.append(b)
            cum.append(bits)
        self.flags = flags
        self.bs = bs
        self.cum = cum
        self.active = active
        if len(_DECODE_CACHE) >= _DECODE_CACHE_MAXSIZE:
            del _DECODE_CACHE[next(iter(_DECODE_CACHE))]
        _DECODE_CACHE[key] = (flags, bs, cum, active)


class SeedAgreementCohort:
    """One phase's embedded SeedAlg subroutines, stepped as a unit.

    All subroutines are created at the same phase boundary and advance one
    local round per preamble round, so their round-position arithmetic is
    identical; the cohort computes it once and dispatches only to members
    with per-round work: actives at seed-phase starts (leader election),
    leaders every round (the broadcast draw), and phase-end bookkeeping.
    Inactive members draw nothing in the per-process path, so skipping their
    dispatch entirely preserves RNG draw order.
    """

    __slots__ = ("_sp", "_by_vertex", "_actives", "_leaders", "_probs")

    def __init__(
        self,
        seed_params: SeedParams,
        members: List[LocalBroadcastProcess],
        by_vertex: Dict[Vertex, LocalBroadcastProcess],
    ) -> None:
        self._sp = seed_params
        self._by_vertex = by_vertex
        self._actives: List[LocalBroadcastProcess] = list(members)
        self._leaders: List[LocalBroadcastProcess] = []
        self._probs = _election_probability_table(seed_params.num_phases)

    def transmit_round(self, offset: int, global_round: int, out: Dict[Vertex, Any]) -> None:
        """The cohort's transmissions for preamble offset ``offset`` (1-based)."""
        sp = self._sp
        if offset > sp.total_rounds:
            # A preamble longer than the subroutine (never produced by
            # derive()): stepped-past subroutines stay silent.
            return
        phase, within = divmod(offset - 1, sp.phase_length)
        phase += 1
        within += 1
        if within == 1:
            # The leader election, inlined from batch_begin_phase: one pass
            # both prunes inactive members and runs the phase-start draw, in
            # the exact member (and hence RNG) order of the two-pass form --
            # only still-active members ever draw.
            prob = self._probs[phase - 1]
            actives: List[LocalBroadcastProcess] = []
            leaders = self._leaders = []
            for member in self._actives:
                sub = member._seed_subroutine
                if sub._status != STATUS_ACTIVE:
                    continue
                actives.append(member)
                sub._current_phase = phase
                if sub.ctx.rng.random() < prob:
                    sub._status = STATUS_LEADER
                    sub._leader_this_phase = True
                    sub._commit(sub.ctx.process_id, sub._initial_seed, global_round)
                    leaders.append(member)
                else:
                    sub._leader_this_phase = False
            self._actives = actives
        for member in self._leaders:
            frame = member._seed_subroutine.batch_broadcast_frame()
            if frame is not None:
                out[member.vertex] = frame

    def receive_round(
        self, offset: int, global_round: int, receptions: Dict[Vertex, Any]
    ) -> None:
        """The cohort's reception handling and phase-end bookkeeping."""
        sp = self._sp
        if offset > sp.total_rounds:
            return
        phase, within = divmod(offset - 1, sp.phase_length)
        phase += 1
        within += 1
        if receptions:
            get_member = self._by_vertex.get
            for vertex, frame in receptions.items():
                if type(frame) is not SeedFrame:
                    continue
                member = get_member(vertex)
                if member is None:
                    continue
                sub = member._seed_subroutine
                if sub is not None and sub._status == STATUS_ACTIVE:
                    sub.batch_commit_reception(frame, global_round)
        if within == sp.phase_length:
            for member in self._leaders:
                member._seed_subroutine.batch_end_phase(phase, global_round)
            self._leaders = []
            if phase == sp.num_phases:
                for member in self._actives:
                    sub = member._seed_subroutine
                    if sub._status == STATUS_ACTIVE:
                        sub.batch_end_phase(phase, global_round)


class LocalBroadcastBatchDriver:
    """Batch group driver for a cohort of :class:`LocalBroadcastProcess`.

    Registered by the :class:`~repro.simulation.engine.Simulator` for every
    population of plain ``LocalBroadcastProcess`` automata sharing one
    parameter set and reuse factor (see ``batch_group_key``).  Per round it
    partitions the cohort into *active* members -- sending-state nodes in
    body rounds, live SeedAlg subroutines in preamble rounds -- and *dormant*
    ones, dispatching per-member work only to the active set.  Phase-boundary
    work (state transitions, subroutine creation, stream setup) reuses the
    members' own methods, so the driver cannot drift from the per-process
    semantics there.
    """

    __slots__ = (
        "_params",
        "_reuse",
        "_members",
        "_by_vertex",
        "_tracker",
        "_cohort",
        "_senders",
        "_kernel",
        "_cohorts",
        "_decoded",
        "_tracked",
        "_body_rounds_elapsed",
        "_round_active",
    )

    def __init__(self, params: LBParams, seed_reuse_phases: int) -> None:
        self._params = params
        self._reuse = int(seed_reuse_phases)
        self._members: List[LocalBroadcastProcess] = []
        self._by_vertex: Dict[Vertex, LocalBroadcastProcess] = {}
        self._tracker = SeedGroupTracker(params)
        self._cohort: Optional[SeedAgreementCohort] = None
        self._senders: List[LocalBroadcastProcess] = []
        # Kernel lane state (see enable_kernel): seed cohorts grouped at body
        # start, flushed at phase ends and run boundaries.
        self._kernel = False
        self._cohorts: Optional[List[_SeedCohort]] = None
        self._decoded: List[_SeedCohort] = []
        self._tracked: List[_SeedCohort] = []
        self._round_active: List[List[Tuple["_SeedCohort", int]]] = []
        self._body_rounds_elapsed = 0

    # ------------------------------------------------------------------
    # registration (engine-facing)
    # ------------------------------------------------------------------
    def add_member(self, process: LocalBroadcastProcess) -> None:
        self._members.append(process)
        self._by_vertex[process.vertex] = process

    @property
    def members(self) -> Tuple[LocalBroadcastProcess, ...]:
        return tuple(self._members)

    @property
    def tracker(self) -> SeedGroupTracker:
        """The cohort's shared-decision tracker (exposed for experiments)."""
        return self._tracker

    def enable_kernel(self) -> bool:
        """Switch body rounds to the array-kernel lane (engine-facing opt-in).

        The kernel lane groups the body's senders into ``(seed, cursor)``
        cohorts once per body, bulk-decodes each cohort's shared decisions
        into flat array buffers, and defers member stream advancement and
        statistics to a single bulk flush per cohort -- instead of a
        per-member tracker call every round.  Traces, private RNG draw order,
        member statistics, and the tracker's computed/shared counters all
        stay byte-identical to the unkerneled batched path.  Returns True to
        acknowledge support (the engine duck-types this method).
        """
        self._kernel = True
        return True

    # ------------------------------------------------------------------
    # round stepping (engine-facing)
    # ------------------------------------------------------------------
    def transmit_round(self, round_number: int, out: Dict[Vertex, Any]) -> None:
        """Add the cohort's transmissions for ``round_number`` to ``out``."""
        params = self._params
        phase_m1, index = divmod(round_number - 1, params.phase_length)
        offset, in_preamble, _, body_start, _ = params.phase_offset_table[index]

        if offset == 1:
            self._begin_phase_all(phase_m1 + 1)

        if in_preamble:
            if self._cohort is not None:
                self._cohort.transmit_round(offset, round_number, out)
            return

        if body_start:
            self._begin_body_all()
        if self._kernel:
            # Rounds left in this body (including the current one) bound the
            # bulk decode when cohorts are (re)built this round.
            self._body_transmit_kernel(out, params.phase_length - index)
        else:
            self._body_transmit(out)

    def receive_round(
        self, round_number: int, receptions: Dict[Vertex, Any]
    ) -> None:
        """Consume the round's receptions and run end-of-round bookkeeping."""
        params = self._params
        index = (round_number - 1) % params.phase_length
        offset, in_preamble, preamble_end, _, phase_end = params.phase_offset_table[index]

        if in_preamble:
            if self._cohort is not None:
                self._cohort.receive_round(offset, round_number, receptions)
                if preamble_end:
                    self._finish_preamble_all(offset)
            return

        if receptions:
            by_vertex = self._by_vertex
            for vertex, frame in receptions.items():
                if isinstance(frame, DataFrame):
                    member = by_vertex.get(vertex)
                    if member is not None:
                        member._handle_data(frame.message, round_number)

        if phase_end:
            if self._cohorts is not None:
                self.flush_kernel_state()
            for member in self._senders:
                member._end_phase(round_number)

    def receive_round_counters(
        self, round_number: int, receptions: Dict[Vertex, Any], emitted: List[Any]
    ) -> int:
        """Counters-lane variant of :meth:`receive_round`.

        Behaviorally identical except that data receptions are deduplicated
        inline against each member's received-id set instead of materializing
        a :class:`~repro.core.events.RecvOutput` per novel message -- the
        count of novel receptions is returned so the engine can bump the
        trace's ``recv`` counter in one call.  Phase-end acknowledgments (the
        only other output this cohort ever produces; the embedded SeedAlg
        subroutines are constructed silent) are still materialized and
        appended to ``emitted``, because environments consume them to clear
        their busy state.  Only valid when the engine verified that no
        consumer needs the event objects (``TraceMode.COUNTERS``, base-class
        environment hooks).
        """
        params = self._params
        index = (round_number - 1) % params.phase_length
        offset, in_preamble, preamble_end, _, phase_end = params.phase_offset_table[index]

        if in_preamble:
            if self._cohort is not None:
                self._cohort.receive_round(offset, round_number, receptions)
                if preamble_end:
                    self._finish_preamble_all(offset)
            return 0

        recvs = 0
        if receptions:
            by_vertex = self._by_vertex
            for vertex, frame in receptions.items():
                if isinstance(frame, DataFrame):
                    member = by_vertex.get(vertex)
                    if member is not None:
                        message_id = frame.message.message_id
                        received = member._received_ids
                        if message_id not in received:
                            received.add(message_id)
                            recvs += 1

        if phase_end:
            if self._cohorts is not None:
                self.flush_kernel_state()
            for member in self._senders:
                member._end_phase(round_number)
                if member._pending_outputs:
                    emitted.extend(member.drain_outputs())
        return recvs

    # ------------------------------------------------------------------
    # phase boundaries (delegate to the members' own methods)
    # ------------------------------------------------------------------
    def _begin_phase_all(self, phase: int) -> None:
        if self._cohorts is not None:
            # Defensive: a phase boundary must never see live kernel cohorts
            # (receive_round flushed them at phase end, and the engine
            # flushes at run boundaries), but _begin_phase replaces seed
            # streams, so flush before any member state moves.
            self.flush_kernel_state()
        for member in self._members:
            member._begin_phase(phase)
        live = [m for m in self._members if m._seed_subroutine is not None]
        self._cohort = (
            SeedAgreementCohort(self._params.seed_params, live, self._by_vertex)
            if live
            else None
        )

    def _finish_preamble_all(self, local_rounds: int) -> None:
        for member in self._members:
            sub = member._seed_subroutine
            if sub is not None:
                member._finish_preamble()
                sub.batch_mark_stepped(local_rounds)

    def _begin_body_all(self) -> None:
        senders = []
        for member in self._members:
            member._begin_body()
            if member._state == STATE_SENDING and member._current_message is not None:
                senders.append(member)
        self._senders = senders

    # ------------------------------------------------------------------
    # body rounds (the hot path)
    # ------------------------------------------------------------------
    def _body_transmit(self, out: Dict[Vertex, Any]) -> None:
        tracker = self._tracker
        tracker.begin_round()
        decision_for = tracker.decision_for
        for member in self._senders:
            member.stats_body_rounds_sending += 1
            stream = member._seed_stream
            participant, b, _ = decision_for(stream)
            cursor = stream._cursor
            if cursor > member.stats_max_bits_consumed:
                member.stats_max_bits_consumed = cursor
            if not participant:
                continue
            member.stats_participant_rounds += 1
            # b private coins, broadcast iff all zero -- drawn exactly as the
            # per-process path draws them (short-circuit on the first one).
            rand = member.ctx.rng.random
            for _ in range(b):
                if rand() >= 0.5:
                    break
            else:
                member.stats_broadcast_rounds += 1
                out[member.vertex] = DataFrame(message=member._current_message)

    # ------------------------------------------------------------------
    # body rounds, kernel lane (see enable_kernel)
    # ------------------------------------------------------------------
    def _build_kernel_cohorts(self, rounds_remaining: int) -> List[_SeedCohort]:
        """Group the body's senders into ``(seed, cursor)`` cohorts.

        Cohorts whose seed value is unique within the driver get their shared
        decisions bulk-decoded up front (no other cohort can ever share a
        ``(seed, cursor)`` key with them, so the tracker memo is provably
        never consulted for their keys); cohorts sharing a seed value are
        served per round through the tracker, preserving mid-body cursor
        convergence exactly as per-member stepping does.
        """
        cohorts: Dict[Tuple[Any, int], _SeedCohort] = {}
        seed_counts: Dict[Any, int] = {}
        for member in self._senders:
            stream = member._seed_stream
            key = (stream._seed, stream._cursor)
            cohort = cohorts.get(key)
            if cohort is None:
                cohort = cohorts[key] = _SeedCohort(stream)
                seed = stream._seed
                seed_counts[seed] = seed_counts.get(seed, 0) + 1
            cohort.members.append(member)
            cohort.actors.append(
                (
                    member.ctx.rng.random,
                    member.vertex,
                    DataFrame(message=member._current_message),
                    member,
                )
            )
        built = list(cohorts.values())
        decoded: List[_SeedCohort] = []
        tracked: List[_SeedCohort] = []
        params = self._params
        for cohort in built:
            if seed_counts[cohort.rep_stream._seed] == 1:
                cohort.bulk_decode(params, rounds_remaining)
                decoded.append(cohort)
            else:
                tracked.append(cohort)
        # Invert the decoded schedule: per served round, only the cohorts
        # that actually participate (with their decoded ``b``).  Most body
        # rounds have no participants, so the transmit hot loop iterates a
        # (usually empty) per-round list instead of scanning every cohort's
        # flag buffer each round.
        round_active: List[List[Tuple[_SeedCohort, int]]] = [
            [] for _ in range(rounds_remaining)
        ]
        for cohort in decoded:
            for served, b in cohort.active:
                round_active[served].append((cohort, b))
        self._cohorts = built
        self._decoded = decoded
        self._tracked = tracked
        self._round_active = round_active
        self._body_rounds_elapsed = 0
        return built

    def _body_transmit_kernel(self, out: Dict[Vertex, Any], rounds_remaining: int) -> None:
        """One body round served from the cohort buffers.

        Per round the only per-member work left is the private coin flips of
        participant cohorts (short-circuit draws from each member's own RNG,
        which byte-identity makes irreducibly per-member); everything shared
        is one buffer index (decoded cohorts) or one tracker call (tracked
        cohorts).  Member streams and statistics are settled in bulk by
        :meth:`flush_kernel_state`.
        """
        if self._cohorts is None:
            # (Re)build mid-body after a run-boundary flush: the sender set
            # is fixed for the whole body, so regrouping is lossless.
            self._build_kernel_cohorts(rounds_remaining)
        tracker = self._tracker
        tracker.begin_round()
        served = self._body_rounds_elapsed
        self._body_rounds_elapsed = served + 1

        decoded = self._decoded
        if decoded:
            # Each decoded cohort's key is unique this round (unique seed),
            # so the per-member path would compute each decision exactly once.
            tracker.computed_decisions += len(decoded)
            for cohort, b in self._round_active[served]:
                cohort.participant_rounds += 1
                for rand, vertex, frame, member in cohort.actors:
                    for _ in range(b):
                        if rand() >= 0.5:
                            break
                    else:
                        member.stats_broadcast_rounds += 1
                        out[vertex] = frame

        if self._tracked:
            decision_for = tracker.decision_for
            for cohort in self._tracked:
                participant, b, _ = decision_for(cohort.rep_stream)
                if not participant:
                    continue
                cohort.participant_rounds += 1
                for rand, vertex, frame, member in cohort.actors:
                    for _ in range(b):
                        if rand() >= 0.5:
                            break
                    else:
                        member.stats_broadcast_rounds += 1
                        out[vertex] = frame

    def flush_kernel_state(self) -> None:
        """Settle deferred kernel-lane state (idempotent).

        Applies one bulk cursor :meth:`~repro.core.seedbits.SeedBitStream.skip`
        per member (every future draw then matches per-member stepping
        exactly), credits the per-member statistics the unkerneled loop
        maintains per round, and compensates the tracker's shared-decision
        counter for the per-member memo hits the cohort representative
        absorbed.  Called at phase ends, before regrouping, and by the engine
        at run boundaries, so partially-run bodies resume correctly.
        """
        cohorts = self._cohorts
        if cohorts is None:
            return
        elapsed = self._body_rounds_elapsed
        tracker = self._tracker
        for cohort in cohorts:
            members = cohort.members
            participant_rounds = cohort.participant_rounds
            rep_stream = cohort.rep_stream
            if cohort.flags is not None:
                # Decoded cohort: the members' streams (including the
                # representative's) were never touched; the shadow stream the
                # decode consumed is discarded here.
                bits = cohort.cum[elapsed]
                end_cursor = cohort.start_cursor + bits
                for member in members:
                    if bits:
                        member._seed_stream.skip(bits)
                    member.stats_body_rounds_sending += elapsed
                    member.stats_participant_rounds += participant_rounds
                    if end_cursor > member.stats_max_bits_consumed:
                        member.stats_max_bits_consumed = end_cursor
            else:
                # Tracked cohort: the representative's stream advanced live.
                end_cursor = rep_stream._cursor
                delta = end_cursor - cohort.start_cursor
                for member in members:
                    stream = member._seed_stream
                    if delta and stream is not rep_stream:
                        stream.skip(delta)
                    member.stats_body_rounds_sending += elapsed
                    member.stats_participant_rounds += participant_rounds
                    if end_cursor > member.stats_max_bits_consumed:
                        member.stats_max_bits_consumed = end_cursor
            tracker.shared_decisions += (len(members) - 1) * elapsed
        self._cohorts = None
        self._decoded = []
        self._tracked = []
        self._round_active = []
        self._body_rounds_elapsed = 0
