"""Seed-cohort tracking and batched stepping for LBAlg populations.

The automata of Section 4.2 have group-level structure that per-process
stepping cannot exploit:

* every node that committed the same seed makes *identical* shared-bit
  decisions in each body round (the participant test and the ``b``
  selection draw from equal :class:`~repro.core.seedbits.SeedBitStream`
  states), so the shared part of a body round is a per-cohort computation,
  not a per-node one;
* receiving-state nodes are provably silent in body rounds -- they transmit
  nothing and draw nothing -- so they need no per-round dispatch at all;
* the embedded ``SeedAlg`` preambles of one ``LBAlg`` population run in
  lockstep (one subroutine round per preamble round, all started at the same
  phase boundary), so the round-position arithmetic and phase bookkeeping is
  shared across the whole cohort, and only active members (at phase starts)
  and leaders (every round) do any per-member work.

This module packages those observations as the batch group driver protocol of
:class:`~repro.simulation.process.Process` (``batch_group_key`` /
``make_batch_driver``):

* :class:`SeedGroupTracker` memoizes each round's shared body decision per
  ``(seed, cursor)`` cohort, advancing non-representative members' streams
  with a cursor :meth:`~repro.core.seedbits.SeedBitStream.skip`;
* :class:`SeedAgreementCohort` steps a phase's embedded
  :class:`~repro.core.seed_agreement.SeedAgreementProcess` instances as one
  unit;
* :class:`LocalBroadcastBatchDriver` is the engine-facing driver gluing both
  together for a cohort of :class:`~repro.core.local_broadcast.LocalBroadcastProcess`.

The invariant every method here preserves: for a fixed seed, the batched
execution performs exactly the same private RNG draws, emits exactly the same
events, and produces exactly the same per-round frames as per-process
stepping -- the regression tests in ``tests/test_fast_engine.py`` pin this
against both the generic and the PR-1 fast resolution paths.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.local_broadcast import (
    STATE_SENDING,
    DataFrame,
    LocalBroadcastProcess,
)
from repro.core.params import LBParams, SeedParams
from repro.core.seed_agreement import STATUS_ACTIVE, SeedFrame

Vertex = Hashable


class SeedGroupTracker:
    """Per-round memo of the shared body-round decision per seed cohort.

    A body-round decision is a pure function of ``(seed value, cursor
    position)``: members whose streams are in the same state (same committed
    seed, same number of bits consumed so far) must make the same participant
    call and, when participating, select the same ``b``.  The tracker computes
    the decision once per cohort per round -- the first member encountered
    consumes the bits from its own stream -- and every other cohort member
    only advances its cursor.

    ``shared_decisions`` / ``computed_decisions`` count memo hits and misses
    across the tracker's lifetime; experiments and tests use them to verify
    cohort sharing actually happens.

    Contract: :meth:`begin_round` must be called exactly once per body round
    before any :meth:`decision_for` call (cursors advance every round, so a
    stale memo would mis-share); after :meth:`decision_for` returns, the
    member's stream has advanced by ``bits_advanced`` positions regardless of
    whether the decision was computed or shared, which is what keeps the
    member's future draws identical to per-process stepping.
    """

    __slots__ = (
        "_participant_bits",
        "_b_modulus",
        "_b_width",
        "_decisions",
        "computed_decisions",
        "shared_decisions",
    )

    def __init__(self, params: LBParams) -> None:
        self._participant_bits = params.participant_bits
        self._b_modulus = params.log_delta
        self._b_width = params.b_selection_bits
        self._decisions: Dict[Tuple[int, int], Tuple[bool, int, int]] = {}
        self.computed_decisions = 0
        self.shared_decisions = 0

    def begin_round(self) -> None:
        """Forget the previous round's decisions (cursors have moved on)."""
        self._decisions.clear()

    def decision_for(self, stream) -> Tuple[bool, int, int]:
        """The shared decision for a member whose seed stream is ``stream``.

        Returns ``(participant, b, bits_advanced)`` and advances the stream:
        by consuming the bits when this member is the cohort's representative
        this round, by a cursor skip otherwise (skipped-over bits are
        identical by :meth:`SeedBitStream.skip`'s deferred-extension rule).
        """
        key = (stream._seed, stream._cursor)
        decision = self._decisions.get(key)
        if decision is None:
            participant = stream.consume_all_zero(self._participant_bits)
            if participant:
                b = stream.consume_uniform_index(self._b_modulus, self._b_width) + 1
                decision = (True, b, self._participant_bits + self._b_width)
            else:
                decision = (False, 0, self._participant_bits)
            self._decisions[key] = decision
            self.computed_decisions += 1
        else:
            stream.skip(decision[2])
            self.shared_decisions += 1
        return decision


class SeedAgreementCohort:
    """One phase's embedded SeedAlg subroutines, stepped as a unit.

    All subroutines are created at the same phase boundary and advance one
    local round per preamble round, so their round-position arithmetic is
    identical; the cohort computes it once and dispatches only to members
    with per-round work: actives at seed-phase starts (leader election),
    leaders every round (the broadcast draw), and phase-end bookkeeping.
    Inactive members draw nothing in the per-process path, so skipping their
    dispatch entirely preserves RNG draw order.
    """

    __slots__ = ("_sp", "_by_vertex", "_actives", "_leaders")

    def __init__(
        self,
        seed_params: SeedParams,
        members: List[LocalBroadcastProcess],
        by_vertex: Dict[Vertex, LocalBroadcastProcess],
    ) -> None:
        self._sp = seed_params
        self._by_vertex = by_vertex
        self._actives: List[LocalBroadcastProcess] = list(members)
        self._leaders: List[LocalBroadcastProcess] = []

    def transmit_round(self, offset: int, global_round: int, out: Dict[Vertex, Any]) -> None:
        """The cohort's transmissions for preamble offset ``offset`` (1-based)."""
        sp = self._sp
        if offset > sp.total_rounds:
            # A preamble longer than the subroutine (never produced by
            # derive()): stepped-past subroutines stay silent.
            return
        phase, within = sp.phase_of_round(offset)
        if within == 1:
            self._actives = [
                m for m in self._actives if m._seed_subroutine._status == STATUS_ACTIVE
            ]
            leaders = self._leaders = []
            for member in self._actives:
                if member._seed_subroutine.batch_begin_phase(phase, global_round):
                    leaders.append(member)
        for member in self._leaders:
            frame = member._seed_subroutine.batch_broadcast_frame()
            if frame is not None:
                out[member.vertex] = frame

    def receive_round(
        self, offset: int, global_round: int, receptions: Dict[Vertex, Any]
    ) -> None:
        """The cohort's reception handling and phase-end bookkeeping."""
        sp = self._sp
        if offset > sp.total_rounds:
            return
        phase, within = sp.phase_of_round(offset)
        if receptions:
            by_vertex = self._by_vertex
            for vertex, frame in receptions.items():
                if not isinstance(frame, SeedFrame):
                    continue
                member = by_vertex.get(vertex)
                if member is None:
                    continue
                sub = member._seed_subroutine
                if sub is not None and sub._status == STATUS_ACTIVE:
                    sub.batch_commit_reception(frame, global_round)
        if within == sp.phase_length:
            for member in self._leaders:
                member._seed_subroutine.batch_end_phase(phase, global_round)
            self._leaders = []
            if phase == sp.num_phases:
                for member in self._actives:
                    sub = member._seed_subroutine
                    if sub._status == STATUS_ACTIVE:
                        sub.batch_end_phase(phase, global_round)


class LocalBroadcastBatchDriver:
    """Batch group driver for a cohort of :class:`LocalBroadcastProcess`.

    Registered by the :class:`~repro.simulation.engine.Simulator` for every
    population of plain ``LocalBroadcastProcess`` automata sharing one
    parameter set and reuse factor (see ``batch_group_key``).  Per round it
    partitions the cohort into *active* members -- sending-state nodes in
    body rounds, live SeedAlg subroutines in preamble rounds -- and *dormant*
    ones, dispatching per-member work only to the active set.  Phase-boundary
    work (state transitions, subroutine creation, stream setup) reuses the
    members' own methods, so the driver cannot drift from the per-process
    semantics there.
    """

    __slots__ = (
        "_params",
        "_reuse",
        "_members",
        "_by_vertex",
        "_tracker",
        "_cohort",
        "_senders",
    )

    def __init__(self, params: LBParams, seed_reuse_phases: int) -> None:
        self._params = params
        self._reuse = int(seed_reuse_phases)
        self._members: List[LocalBroadcastProcess] = []
        self._by_vertex: Dict[Vertex, LocalBroadcastProcess] = {}
        self._tracker = SeedGroupTracker(params)
        self._cohort: Optional[SeedAgreementCohort] = None
        self._senders: List[LocalBroadcastProcess] = []

    # ------------------------------------------------------------------
    # registration (engine-facing)
    # ------------------------------------------------------------------
    def add_member(self, process: LocalBroadcastProcess) -> None:
        self._members.append(process)
        self._by_vertex[process.vertex] = process

    @property
    def members(self) -> Tuple[LocalBroadcastProcess, ...]:
        return tuple(self._members)

    @property
    def tracker(self) -> SeedGroupTracker:
        """The cohort's shared-decision tracker (exposed for experiments)."""
        return self._tracker

    # ------------------------------------------------------------------
    # round stepping (engine-facing)
    # ------------------------------------------------------------------
    def transmit_round(self, round_number: int, out: Dict[Vertex, Any]) -> None:
        """Add the cohort's transmissions for ``round_number`` to ``out``."""
        params = self._params
        phase_m1, index = divmod(round_number - 1, params.phase_length)
        offset, in_preamble, _, body_start, _ = params.phase_offset_table[index]

        if offset == 1:
            self._begin_phase_all(phase_m1 + 1)

        if in_preamble:
            if self._cohort is not None:
                self._cohort.transmit_round(offset, round_number, out)
            return

        if body_start:
            self._begin_body_all()
        self._body_transmit(out)

    def receive_round(
        self, round_number: int, receptions: Dict[Vertex, Any]
    ) -> None:
        """Consume the round's receptions and run end-of-round bookkeeping."""
        params = self._params
        index = (round_number - 1) % params.phase_length
        offset, in_preamble, preamble_end, _, phase_end = params.phase_offset_table[index]

        if in_preamble:
            if self._cohort is not None:
                self._cohort.receive_round(offset, round_number, receptions)
                if preamble_end:
                    self._finish_preamble_all(offset)
            return

        if receptions:
            by_vertex = self._by_vertex
            for vertex, frame in receptions.items():
                if isinstance(frame, DataFrame):
                    member = by_vertex.get(vertex)
                    if member is not None:
                        member._handle_data(frame.message, round_number)

        if phase_end:
            for member in self._senders:
                member._end_phase(round_number)

    # ------------------------------------------------------------------
    # phase boundaries (delegate to the members' own methods)
    # ------------------------------------------------------------------
    def _begin_phase_all(self, phase: int) -> None:
        for member in self._members:
            member._begin_phase(phase)
        live = [m for m in self._members if m._seed_subroutine is not None]
        self._cohort = (
            SeedAgreementCohort(self._params.seed_params, live, self._by_vertex)
            if live
            else None
        )

    def _finish_preamble_all(self, local_rounds: int) -> None:
        for member in self._members:
            sub = member._seed_subroutine
            if sub is not None:
                member._finish_preamble()
                sub.batch_mark_stepped(local_rounds)

    def _begin_body_all(self) -> None:
        senders = []
        for member in self._members:
            member._begin_body()
            if member._state == STATE_SENDING and member._current_message is not None:
                senders.append(member)
        self._senders = senders

    # ------------------------------------------------------------------
    # body rounds (the hot path)
    # ------------------------------------------------------------------
    def _body_transmit(self, out: Dict[Vertex, Any]) -> None:
        tracker = self._tracker
        tracker.begin_round()
        decision_for = tracker.decision_for
        for member in self._senders:
            member.stats_body_rounds_sending += 1
            stream = member._seed_stream
            participant, b, _ = decision_for(stream)
            cursor = stream._cursor
            if cursor > member.stats_max_bits_consumed:
                member.stats_max_bits_consumed = cursor
            if not participant:
                continue
            member.stats_participant_rounds += 1
            # b private coins, broadcast iff all zero -- drawn exactly as the
            # per-process path draws them (short-circuit on the first one).
            rand = member.ctx.rng.random
            for _ in range(b):
                if rand() >= 0.5:
                    break
            else:
                member.stats_broadcast_rounds += 1
                out[member.vertex] = DataFrame(message=member._current_message)
