"""Constant calculus of Appendices B.1 and C.1.

The paper's proofs pin down a web of constants (``c1 ... c6`` for the seed
agreement analysis, a second family for the local broadcast analysis) and an
associated chain of error probabilities (``ε2, ε3, ε4`` derived from the
algorithm parameter ``ε1``).  Those constants are chosen for proof
convenience, not tightness -- the literal values (e.g. ``c4 >= 2 * 4^{c_r c3}``)
make simulated executions astronomically long.

We therefore expose two *parameter modes*:

* :attr:`ParamMode.PAPER` -- the literal Appendix formulas.  These are used by
  the unit tests of the calculus and by :mod:`repro.analysis.theory` when
  quoting the paper's predicted shapes; they are never used to drive a
  simulation.
* :attr:`ParamMode.SIMULATION` -- the same functional forms with small leading
  constants.  All experiments run in this mode; EXPERIMENTS.md compares the
  measured scaling *shapes* against the paper-mode formulas.

Constants with an unbounded "sufficiently large" requirement in the paper are
instantiated at their stated lower bound in paper mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum


class ParamMode(Enum):
    """Which constant regime to use when deriving algorithm parameters."""

    PAPER = "paper"
    SIMULATION = "simulation"


def log2_inverse(epsilon: float) -> float:
    """``log2(1/epsilon)`` guarded against the degenerate edges of the range."""
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must lie strictly between 0 and 1, got {epsilon}")
    return math.log2(1.0 / epsilon)


def ceil_log2(value: float) -> int:
    """``ceil(log2(value))`` with a floor of 1 (the paper's logs never vanish)."""
    if value <= 1.0:
        return 1
    return max(1, math.ceil(math.log2(value)))


def _bounded_power(base: float, exponent: float, cap: float = 500.0) -> float:
    """``base ** exponent`` with the exponent clamped to avoid overflow.

    Paper-mode constants produce exponents far beyond float range; clamping
    keeps the calculus usable for shape comparisons without changing which
    side of any inequality the result lands on (the clamp only ever makes an
    already astronomically large value merely huge, or an already negligible
    value merely tiny).
    """
    return base ** max(-cap, min(cap, exponent))


@dataclass(frozen=True)
class SeedConstants:
    """Constants of the SeedAlg analysis (Appendix B.1).

    Attributes
    ----------
    c1:
        Region partition constant of Lemma A.1: at most ``c1 * r^2 * h^2``
        regions lie within ``h`` hops of any region.  For the half-unit grid a
        valid explicit value is 25.
    c2:
        Goodness threshold constant (``P_{x,h} <= c2 * log(1/eps1)`` defines a
        good region); the paper needs ``c2 >= 4``.
    c4:
        Phase length multiplier: each SeedAlg phase has
        ``c4 * log^2(1/eps1)`` rounds.  The paper needs
        ``c4 >= 2 * 4^{c_r c3}``; see :meth:`c4_for_r`.
    """

    c1: float
    c2: float
    c4: float
    mode: ParamMode

    # ------------------------------------------------------------------
    # derived constants (Appendix B.1 definitions)
    # ------------------------------------------------------------------
    @property
    def c3(self) -> float:
        """``c3 = (5/4) c2``."""
        return 1.25 * self.c2

    def cr(self, r: float) -> float:
        """``c_r = c1 * r^2``."""
        return self.c1 * r * r

    def c4_for_r(self, r: float) -> float:
        """The phase-length constant, honoring the paper's lower bound in paper mode.

        In paper mode the requirement ``c4 >= 2 * 4^{c_r c3}`` depends on ``r``
        (through ``c_r``), so the effective constant is the maximum of the
        stored ``c4`` and that bound.  In simulation mode ``c4`` is used as-is.
        """
        if self.mode is ParamMode.SIMULATION:
            return self.c4
        return max(self.c4, 2.0 * _bounded_power(4.0, self.cr(r) * self.c3))

    def c5_for_r(self, r: float) -> float:
        """``c5 = (log2(e)/12) * c4`` with the r-dependent c4."""
        return (math.log2(math.e) / 12.0) * self.c4_for_r(r)

    def c6(self) -> float:
        """``c6 = (1/4)^{c1 c3}``."""
        return _bounded_power(0.25, self.c1 * self.c3)

    # ------------------------------------------------------------------
    # the epsilon chain (Appendix B.1)
    # ------------------------------------------------------------------
    def epsilon2(self, eps1: float) -> float:
        """Chernoff-bound error ``ε2 = ε1^{c2 log2(e)/32} + ε1^{c2 log2(e)/24}``."""
        log2e = math.log2(math.e)
        return _bounded_power(eps1, self.c2 * log2e / 32.0) + _bounded_power(
            eps1, self.c2 * log2e / 24.0
        )

    def epsilon3(self, eps1: float, r: float) -> float:
        """Per-phase transmission failure ``ε3 = ε1^{c5 * c6^{r^2}}``.

        The exponent's double-exponential collapse in ``r`` is the dependence
        the paper's Appendix B.3.2 remark warns about.
        """
        exponent = self.c5_for_r(r) * _bounded_power(self.c6(), r * r)
        return _bounded_power(eps1, exponent)

    def epsilon4(self, eps1: float, r: float) -> float:
        """``ε4 = c_r ε2 + ε3`` -- the per-phase goodness failure bound."""
        return self.cr(r) * self.epsilon2(eps1) + self.epsilon3(eps1, r)

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "SeedConstants":
        """Literal Appendix B.1 constants at their stated lower bounds."""
        return cls(c1=25.0, c2=4.0, c4=2.0, mode=ParamMode.PAPER)

    @classmethod
    def simulation(cls) -> "SeedConstants":
        """Small constants preserving the functional shapes for simulation."""
        return cls(c1=25.0, c2=1.0, c4=2.0, mode=ParamMode.SIMULATION)

    @classmethod
    def for_mode(cls, mode: ParamMode) -> "SeedConstants":
        return cls.paper() if mode is ParamMode.PAPER else cls.simulation()


@dataclass(frozen=True)
class LBConstants:
    """Constants of the LBAlg analysis (Appendix C.1).

    Attributes
    ----------
    phase_c1:
        Leading constant of the body length
        ``Tprog = ceil(phase_c1 * r^2 * log(1/eps1) * log(1/eps2) * log Δ)``.
    recv_c2:
        Leading constant of the per-round receive probability bound of
        Lemma 4.2, ``p_u >= recv_c2 / (r^2 log(1/eps2) log Δ)``.
    ack_scale:
        Leading constant of the number of sending phases
        ``Tack ~ ack_scale * Δ' * ln(2Δ/eps1) / (log(1/eps1) (1 - eps1/2))``.
    """

    phase_c1: float
    recv_c2: float
    ack_scale: float
    mode: ParamMode

    @classmethod
    def paper(cls) -> "LBConstants":
        """Appendix C.1 shape; the 12 in ack_scale is the paper's own factor."""
        return cls(phase_c1=1.0, recv_c2=1.0, ack_scale=12.0, mode=ParamMode.PAPER)

    @classmethod
    def simulation(cls) -> "LBConstants":
        """Scaled-down constants so simulated acknowledgments finish quickly.

        ``ack_scale`` below the paper's 12 trades a slightly higher empirical
        reliability error for far shorter runs; EXPERIMENTS.md reports the
        measured error alongside the target ε so the trade is visible.
        ``phase_c1 = 3`` compensates for the implementation's conservative
        power-of-two participant probability (the all-zero-bits rule rounds
        ``1/(r² log(1/ε2))`` down to the next power of two), keeping the
        per-window progress success above the 1 − ε target.
        """
        return cls(phase_c1=3.0, recv_c2=1.0, ack_scale=1.0, mode=ParamMode.SIMULATION)

    @classmethod
    def for_mode(cls, mode: ParamMode) -> "LBConstants":
        return cls.paper() if mode is ParamMode.PAPER else cls.simulation()
