"""The ``Seed(δ, ε)`` specification checker (Section 3.1).

The specification has two non-probabilistic conditions checked per execution
and two probabilistic conditions checked across executions:

1. **Well-formedness** -- every vertex outputs exactly one ``decide``.
2. **Consistency** -- two decisions naming the same owner name the same seed.
3. **Agreement** -- for each vertex ``u``, the number of distinct owners
   decided in ``N_G'(u) ∪ {u}`` is at most δ; must hold with probability at
   least 1 − ε over executions.
4. **Independence** -- conditioned on the owner mapping, seed values are
   independent and uniform over the seed domain.

:func:`check_seed_execution` evaluates conditions 1-3 on one trace and reports
per-vertex agreement counts so callers can estimate the condition-3 error rate
empirically across many traces.  Condition 4 is distributional;
:func:`owner_seed_pairs` extracts the data that the statistical tests (and the
E1 benchmark) feed into frequency checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.dualgraph.graph import DualGraph
from repro.simulation.trace import ExecutionTrace

Vertex = Hashable


@dataclass
class SeedSpecReport:
    """Result of checking one execution against ``Seed(δ, ε)``.

    Attributes
    ----------
    delta_bound:
        The δ against which agreement was checked.
    well_formedness_violations:
        Human-readable description of vertices with zero or multiple decides.
    consistency_violations:
        Owners that appear with two or more distinct seed values.
    agreement_counts:
        Per-vertex number of distinct owners decided in the closed G'
        neighborhood.
    agreement_violations:
        Vertices whose count exceeds δ.
    """

    delta_bound: int
    well_formedness_violations: List[str] = field(default_factory=list)
    consistency_violations: List[str] = field(default_factory=list)
    agreement_counts: Dict[Vertex, int] = field(default_factory=dict)
    agreement_violations: List[Vertex] = field(default_factory=list)

    @property
    def well_formed(self) -> bool:
        return not self.well_formedness_violations

    @property
    def consistent(self) -> bool:
        return not self.consistency_violations

    @property
    def agreement_ok(self) -> bool:
        return not self.agreement_violations

    @property
    def ok(self) -> bool:
        """All checked (non-probabilistic and per-execution agreement) conditions hold."""
        return self.well_formed and self.consistent and self.agreement_ok

    @property
    def max_agreement_count(self) -> int:
        """The largest neighborhood owner count observed (0 if no decisions)."""
        if not self.agreement_counts:
            return 0
        return max(self.agreement_counts.values())

    def agreement_failure_fraction(self) -> float:
        """Fraction of vertices violating the δ bound in this execution."""
        if not self.agreement_counts:
            return 0.0
        return len(self.agreement_violations) / len(self.agreement_counts)


def check_seed_execution(
    trace: ExecutionTrace,
    graph: DualGraph,
    delta_bound: int,
    restrict_to: Optional[List[Vertex]] = None,
) -> SeedSpecReport:
    """Check one execution trace against the ``Seed(δ, ε)`` conditions 1-3.

    Parameters
    ----------
    delta_bound:
        The δ to check the agreement condition against (typically
        ``SeedParams.delta_bound`` or an empirical target).
    restrict_to:
        Optionally check well-formedness/agreement only for these vertices
        (used when only part of the network runs the algorithm).
    """
    report = SeedSpecReport(delta_bound=delta_bound)
    vertices = list(restrict_to) if restrict_to is not None else sorted(graph.vertices, key=repr)
    decides = trace.decides_by_vertex()

    # 1. Well-formedness: exactly one decide per vertex.
    for u in vertices:
        events = decides.get(u, [])
        if len(events) == 0:
            report.well_formedness_violations.append(f"vertex {u!r} never decided")
        elif len(events) > 1:
            report.well_formedness_violations.append(
                f"vertex {u!r} decided {len(events)} times"
            )

    # 2. Consistency: one seed value per owner.
    seeds_per_owner: Dict[Hashable, set] = {}
    for events in decides.values():
        for ev in events:
            seeds_per_owner.setdefault(ev.owner, set()).add(ev.seed)
    for owner, seeds in sorted(seeds_per_owner.items(), key=lambda kv: repr(kv[0])):
        if len(seeds) > 1:
            report.consistency_violations.append(
                f"owner {owner!r} appears with {len(seeds)} distinct seeds"
            )

    # 3. Agreement: distinct owners in each closed G' neighborhood.
    owners_at: Dict[Vertex, set] = {}
    for vertex, events in decides.items():
        owners_at[vertex] = {ev.owner for ev in events}
    for u in vertices:
        owners = set()
        for v in graph.closed_potential_neighborhood(u):
            owners |= owners_at.get(v, set())
        report.agreement_counts[u] = len(owners)
        if len(owners) > delta_bound:
            report.agreement_violations.append(u)

    return report


def owner_seed_pairs(trace: ExecutionTrace) -> List[Tuple[Hashable, int]]:
    """The distinct ``(owner, seed)`` pairs decided in an execution.

    By the consistency condition each owner maps to one seed; the list is the
    raw material for the independence/uniformity statistics (condition 4):
    across many executions, each owner's seed should look uniform over the
    seed domain and independent across owners.
    """
    pairs = {}
    for ev in trace.decide_outputs:
        pairs.setdefault(ev.owner, ev.seed)
    return sorted(pairs.items(), key=lambda kv: repr(kv[0]))


def decide_latency_rounds(trace: ExecutionTrace) -> Dict[Vertex, int]:
    """Round in which each vertex committed (for the Theorem 3.1 runtime claim)."""
    latencies: Dict[Vertex, int] = {}
    for ev in trace.decide_outputs:
        if ev.vertex not in latencies or ev.round_number < latencies[ev.vertex]:
            latencies[ev.vertex] = ev.round_number
    return latencies
