"""Broadcast messages.

The local broadcast problem (Section 4.1) gives every vertex ``u`` a private
message alphabet ``M_u``; the alphabets are pairwise disjoint and the
environment never submits the same message twice.  We realize this with a
:class:`Message` value object tagged by its origin vertex and a per-origin
sequence number -- ``(origin, sequence)`` is globally unique, which is all the
specification relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Tuple


@dataclass(frozen=True)
class Message:
    """An element of the message alphabet ``M_origin``.

    Attributes
    ----------
    origin:
        The vertex whose alphabet this message belongs to (its original
        broadcaster).
    sequence:
        A per-origin sequence number; ``(origin, sequence)`` is unique.
    payload:
        Arbitrary application content carried by the message.  It plays no
        role in the local broadcast specification but is what upper layers
        (e.g. the abstract MAC applications) actually care about.
    """

    origin: Hashable
    sequence: int
    payload: Any = None

    @property
    def message_id(self) -> Tuple[Hashable, int]:
        """The globally unique identity ``(origin, sequence)``."""
        return (self.origin, self.sequence)

    def __repr__(self) -> str:
        return f"Message(origin={self.origin!r}, seq={self.sequence}, payload={self.payload!r})"


class _MessageCounter:
    """Internal helper handing out per-origin sequence numbers."""

    def __init__(self) -> None:
        self._next: dict = {}

    def next_for(self, origin: Hashable) -> int:
        value = self._next.get(origin, 0)
        self._next[origin] = value + 1
        return value


_GLOBAL_COUNTER = _MessageCounter()


def make_message(origin: Hashable, payload: Any = None, counter: _MessageCounter = None) -> Message:
    """Create a fresh message in ``M_origin`` with a unique sequence number.

    Environments normally use their own private counter (so independent
    simulations are reproducible); the module-level counter is a convenience
    for interactive use and examples.
    """
    if counter is None:
        counter = _GLOBAL_COUNTER
    return Message(origin=origin, sequence=counter.next_for(origin), payload=payload)


def fresh_counter() -> _MessageCounter:
    """A new, private sequence-number counter (one per environment)."""
    return _MessageCounter()
