"""The paper's primary contribution: seed agreement and local broadcast.

Modules
-------
* :mod:`repro.core.messages` / :mod:`repro.core.events` -- the message and
  input/output event vocabulary shared by algorithms, traces and spec
  checkers.
* :mod:`repro.core.constants` / :mod:`repro.core.params` -- the constant and
  parameter calculus of Appendices B.1 and C.1, in both literal *paper* form
  and scaled *simulation* form.
* :mod:`repro.core.seedbits` -- deterministic shared bit streams derived from
  committed seeds.
* :mod:`repro.core.seed_spec` / :mod:`repro.core.seed_agreement` -- the
  ``Seed(δ, ε)`` specification and the ``SeedAlg`` algorithm (Section 3).
* :mod:`repro.core.lb_spec` / :mod:`repro.core.local_broadcast` -- the
  ``LB(t_ack, t_prog, ε)`` specification and the ``LBAlg`` algorithm
  (Section 4).
* :mod:`repro.core.seed_groups` -- seed-cohort tracking and the batched
  stepping drivers that let the simulator advance whole LBAlg populations
  group-wise with byte-identical traces.
"""

from repro.core.messages import Message, make_message
from repro.core.events import (
    AckOutput,
    BcastInput,
    DecideOutput,
    Event,
    RecvOutput,
)
from repro.core.constants import ParamMode, SeedConstants, LBConstants
from repro.core.params import SeedParams, LBParams
from repro.core.seedbits import SeedBitStream
from repro.core.seed_agreement import SeedAgreementProcess
from repro.core.seed_spec import SeedSpecReport, check_seed_execution
from repro.core.local_broadcast import LocalBroadcastProcess
from repro.core.seed_groups import (
    LocalBroadcastBatchDriver,
    SeedAgreementCohort,
    SeedGroupTracker,
)
from repro.core.lb_spec import LBSpecReport, check_lb_execution

__all__ = [
    "Message",
    "make_message",
    "Event",
    "BcastInput",
    "AckOutput",
    "RecvOutput",
    "DecideOutput",
    "ParamMode",
    "SeedConstants",
    "LBConstants",
    "SeedParams",
    "LBParams",
    "SeedBitStream",
    "SeedAgreementProcess",
    "SeedSpecReport",
    "check_seed_execution",
    "LocalBroadcastProcess",
    "LocalBroadcastBatchDriver",
    "SeedAgreementCohort",
    "SeedGroupTracker",
    "LBSpecReport",
    "check_lb_execution",
]
