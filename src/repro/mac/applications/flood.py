"""Multi-hop flooding over the abstract MAC layer.

Global (network-wide) broadcast by flooding is the canonical algorithm built
on the abstract MAC layer: a source hands the layer a token; every node that
hears the token for the first time re-broadcasts it once.  Against a layer
with acknowledgment bound ``f_ack`` the token reaches every node of a
connected reliable graph of diameter ``D`` within roughly ``D · f_ack``
rounds -- which is what the E8 benchmark measures on line and grid networks
in the dual graph model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

from repro.core.params import LBParams
from repro.dualgraph.adversary import LinkScheduler
from repro.dualgraph.graph import DualGraph
from repro.mac.adapter import make_mac_nodes
from repro.mac.spec import MacApi, MacClient
from repro.simulation.engine import Simulator

Vertex = Hashable


@dataclass(frozen=True)
class FloodToken:
    """The payload carried by the flood: an identifier and a hop counter."""

    flood_id: str
    hops: int


class FloodClient(MacClient):
    """Per-node flooding logic.

    The source submits the token at start-up; every other node re-submits it
    (with an incremented hop count) the first time it hears it.  The client
    records when it first received the token and when its own relay was
    acknowledged, which is all the harness needs.
    """

    def __init__(self, vertex: Vertex, is_source: bool, flood_id: str = "flood") -> None:
        self.vertex = vertex
        self.is_source = is_source
        self.flood_id = flood_id
        self.received_round: Optional[int] = None
        self.received_hops: Optional[int] = None
        self.relayed = False
        self.relay_ack_round: Optional[int] = None
        self._api: Optional[MacApi] = None

    def on_mac_start(self, api: MacApi) -> None:
        self._api = api
        if self.is_source:
            self.received_round = 0
            self.received_hops = 0
            self.relayed = True
            api.mac_bcast(FloodToken(flood_id=self.flood_id, hops=0))

    def on_mac_recv(self, payload, round_number: int) -> None:
        if not isinstance(payload, FloodToken) or payload.flood_id != self.flood_id:
            return
        if self.received_round is None:
            self.received_round = round_number
            self.received_hops = payload.hops
        if not self.relayed:
            self.relayed = True
            self._api.mac_bcast(FloodToken(flood_id=self.flood_id, hops=payload.hops + 1))

    def on_mac_ack(self, payload, round_number: int) -> None:
        if isinstance(payload, FloodToken) and payload.flood_id == self.flood_id:
            self.relay_ack_round = round_number


@dataclass
class FloodResult:
    """Outcome of one flood execution."""

    source: Vertex
    rounds_run: int
    receive_rounds: Dict[Vertex, Optional[int]] = field(default_factory=dict)
    receive_hops: Dict[Vertex, Optional[int]] = field(default_factory=dict)

    @property
    def covered(self) -> int:
        """Number of vertices (including the source) that got the token."""
        return sum(1 for rnd in self.receive_rounds.values() if rnd is not None)

    @property
    def coverage(self) -> float:
        """Fraction of vertices reached."""
        if not self.receive_rounds:
            return 0.0
        return self.covered / len(self.receive_rounds)

    @property
    def complete(self) -> bool:
        return self.covered == len(self.receive_rounds)

    @property
    def completion_round(self) -> Optional[int]:
        """The round by which every vertex had the token (None if incomplete)."""
        if not self.complete:
            return None
        return max(rnd for rnd in self.receive_rounds.values())


def run_flood(
    graph: DualGraph,
    params: LBParams,
    source: Vertex,
    scheduler: Optional[LinkScheduler] = None,
    rng: Optional[random.Random] = None,
    max_phases: Optional[int] = None,
    flood_id: str = "flood",
) -> FloodResult:
    """Run a complete flood experiment and return its result.

    Parameters
    ----------
    source:
        The vertex that originates the token.
    scheduler:
        Link scheduler (default: no unreliable edges).
    max_phases:
        Cap on LBAlg phases to simulate; defaults to
        ``(reliable diameter + 2) * (tack_phases + 1)`` which comfortably
        covers a hop-by-hop relay across the network.
    """
    if source not in graph:
        raise KeyError(f"source vertex {source!r} is not in the graph")
    if rng is None:
        rng = random.Random(0)

    clients: Dict[Vertex, FloodClient] = {
        vertex: FloodClient(vertex, is_source=(vertex == source), flood_id=flood_id)
        for vertex in graph.vertices
    }
    nodes = make_mac_nodes(graph, params, lambda v: clients[v], rng)
    simulator = Simulator(graph, nodes, scheduler=scheduler)

    if max_phases is None:
        diameter = graph.reliable_eccentricity(source)
        max_phases = (diameter + 2) * (params.tack_phases + 1)
    max_rounds = max_phases * params.phase_length

    def complete(_trace) -> bool:
        return all(client.received_round is not None for client in clients.values())

    simulator.run_until(complete, max_rounds=max_rounds, check_every=params.phase_length)

    result = FloodResult(source=source, rounds_run=simulator.current_round)
    for vertex, client in clients.items():
        result.receive_rounds[vertex] = client.received_round
        result.receive_hops[vertex] = client.received_hops
    return result
