"""Algorithms written against the abstract MAC layer.

The point of the abstract MAC layer is that algorithms written against it run
unchanged on any implementation of the layer; with LBAlg providing the layer,
they run in the dual graph model.  The applications here are the ones the
paper's related-work section points at:

* :mod:`repro.mac.applications.flood` -- global single-message broadcast by
  flooding (the canonical example);
* :mod:`repro.mac.applications.multi_message` -- multi-message broadcast (k
  sources, every node relays every new token);
* :mod:`repro.mac.applications.neighbor_discovery` -- neighbor discovery via
  one announcement per node.
"""

from repro.mac.applications.flood import FloodClient, FloodResult, run_flood
from repro.mac.applications.multi_message import (
    MultiMessageClient,
    MultiMessageResult,
    Token,
    run_multi_message_broadcast,
)
from repro.mac.applications.neighbor_discovery import (
    Announcement,
    NeighborDiscoveryClient,
    NeighborDiscoveryResult,
    run_neighbor_discovery,
)

__all__ = [
    "FloodClient",
    "FloodResult",
    "run_flood",
    "Token",
    "MultiMessageClient",
    "MultiMessageResult",
    "run_multi_message_broadcast",
    "Announcement",
    "NeighborDiscoveryClient",
    "NeighborDiscoveryResult",
    "run_neighbor_discovery",
]
