"""Multi-message global broadcast over the abstract MAC layer.

The paper highlights multi-message broadcast with abstract MAC layers and
unreliable links (Ghaffari, Kantor, Lynch, Newport PODC 2014) as one of the
results that port to the dual graph model once the layer is implemented.
This module provides the straightforward flood-per-message variant: ``k``
source nodes each inject their own token; every node relays every token it
has not seen before, letting the MAC adapter queue relays while a previous
one is still being acknowledged.

:func:`run_multi_message_broadcast` runs the experiment and reports per-token
coverage and completion rounds.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional

from repro.core.params import LBParams
from repro.dualgraph.adversary import LinkScheduler
from repro.dualgraph.graph import DualGraph
from repro.mac.adapter import make_mac_nodes
from repro.mac.spec import MacApi, MacClient
from repro.simulation.engine import Simulator

Vertex = Hashable


@dataclass(frozen=True)
class Token:
    """One of the k messages being disseminated."""

    token_id: str
    source: Vertex


class MultiMessageClient(MacClient):
    """Relay every token once; the MAC adapter serializes outstanding relays."""

    def __init__(self, vertex: Vertex, own_tokens: Iterable[Token] = ()) -> None:
        self.vertex = vertex
        self.own_tokens: List[Token] = list(own_tokens)
        self.received_round: Dict[str, int] = {}
        self.relayed: set = set()
        self._api: Optional[MacApi] = None

    def on_mac_start(self, api: MacApi) -> None:
        self._api = api
        for token in self.own_tokens:
            self.received_round[token.token_id] = 0
            self.relayed.add(token.token_id)
            api.mac_bcast(token)

    def on_mac_recv(self, payload, round_number: int) -> None:
        if not isinstance(payload, Token):
            return
        if payload.token_id not in self.received_round:
            self.received_round[payload.token_id] = round_number
        if payload.token_id not in self.relayed:
            self.relayed.add(payload.token_id)
            self._api.mac_bcast(payload)


@dataclass
class MultiMessageResult:
    """Outcome of one multi-message broadcast execution."""

    tokens: List[Token]
    rounds_run: int
    receive_rounds: Dict[str, Dict[Vertex, Optional[int]]] = field(default_factory=dict)

    def coverage(self, token_id: str) -> float:
        table = self.receive_rounds[token_id]
        if not table:
            return 0.0
        return sum(1 for rnd in table.values() if rnd is not None) / len(table)

    @property
    def mean_coverage(self) -> float:
        if not self.tokens:
            return 0.0
        return sum(self.coverage(t.token_id) for t in self.tokens) / len(self.tokens)

    @property
    def complete(self) -> bool:
        return all(self.coverage(t.token_id) == 1.0 for t in self.tokens)

    def completion_round(self, token_id: str) -> Optional[int]:
        table = self.receive_rounds[token_id]
        if any(rnd is None for rnd in table.values()):
            return None
        return max(table.values())

    @property
    def overall_completion_round(self) -> Optional[int]:
        rounds = [self.completion_round(t.token_id) for t in self.tokens]
        if any(r is None for r in rounds):
            return None
        return max(rounds) if rounds else None


def run_multi_message_broadcast(
    graph: DualGraph,
    params: LBParams,
    sources: Iterable[Vertex],
    scheduler: Optional[LinkScheduler] = None,
    rng: Optional[random.Random] = None,
    max_phases: Optional[int] = None,
) -> MultiMessageResult:
    """Disseminate one token per source to every vertex of the network."""
    sources = list(sources)
    if not sources:
        raise ValueError("need at least one source")
    for source in sources:
        if source not in graph:
            raise KeyError(f"source vertex {source!r} is not in the graph")
    if rng is None:
        rng = random.Random(0)

    tokens = [Token(token_id=f"token-{source}", source=source) for source in sources]
    tokens_by_source: Dict[Vertex, List[Token]] = {}
    for token in tokens:
        tokens_by_source.setdefault(token.source, []).append(token)

    clients = {
        vertex: MultiMessageClient(vertex, own_tokens=tokens_by_source.get(vertex, ()))
        for vertex in graph.vertices
    }
    nodes = make_mac_nodes(graph, params, lambda v: clients[v], rng)
    simulator = Simulator(graph, nodes, scheduler=scheduler)

    if max_phases is None:
        diameter = max(graph.reliable_eccentricity(source) for source in sources)
        # Each node may have to relay every token sequentially, hence the k factor.
        max_phases = (diameter + 2) * (params.tack_phases + 1) * max(len(tokens), 1)
    max_rounds = max_phases * params.phase_length

    def complete(_trace) -> bool:
        return all(
            len(client.received_round) == len(tokens) for client in clients.values()
        )

    simulator.run_until(complete, max_rounds=max_rounds, check_every=params.phase_length)

    result = MultiMessageResult(tokens=tokens, rounds_run=simulator.current_round)
    for token in tokens:
        result.receive_rounds[token.token_id] = {
            vertex: clients[vertex].received_round.get(token.token_id)
            for vertex in graph.vertices
        }
    return result
