"""Neighbor discovery over the abstract MAC layer.

Neighbor discovery is one of the original applications written against the
abstract MAC layer (Cornejo, Lynch, Viqar, Welch): every node hands the layer
a single announcement carrying its id; the layer's acknowledgment guarantee
then implies that, within ``f_ack`` rounds of a node's announcement, every
reliable neighbor has heard it (with probability ``1 − ε`` each).  Running
the layer over LBAlg therefore gives a neighbor discovery service for the
dual graph model for free.

:func:`run_neighbor_discovery` runs the complete experiment and reports, per
node, which reliable neighbors it discovered and how long the slowest
discovery took.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Optional, Set

from repro.core.params import LBParams
from repro.dualgraph.adversary import LinkScheduler
from repro.dualgraph.graph import DualGraph
from repro.mac.adapter import make_mac_nodes
from repro.mac.spec import MacApi, MacClient
from repro.simulation.engine import Simulator

Vertex = Hashable


@dataclass(frozen=True)
class Announcement:
    """The payload every node broadcasts once: its own identity."""

    vertex: Vertex


class NeighborDiscoveryClient(MacClient):
    """Per-node discovery logic: announce once, remember everyone heard."""

    def __init__(self, vertex: Vertex) -> None:
        self.vertex = vertex
        self.announced_round: Optional[int] = None
        self.discovered: Dict[Vertex, int] = {}

    def on_mac_start(self, api: MacApi) -> None:
        api.mac_bcast(Announcement(vertex=self.vertex))

    def on_mac_recv(self, payload, round_number: int) -> None:
        if isinstance(payload, Announcement) and payload.vertex not in self.discovered:
            self.discovered[payload.vertex] = round_number

    def on_mac_ack(self, payload, round_number: int) -> None:
        if isinstance(payload, Announcement) and payload.vertex == self.vertex:
            self.announced_round = round_number


@dataclass
class NeighborDiscoveryResult:
    """Outcome of one neighbor discovery execution."""

    rounds_run: int
    discovered: Dict[Vertex, Dict[Vertex, int]] = field(default_factory=dict)
    reliable_neighbors: Dict[Vertex, FrozenSet[Vertex]] = field(default_factory=dict)

    def discovery_fraction(self, vertex: Vertex) -> float:
        """Fraction of ``vertex``'s reliable neighbors it discovered."""
        neighbors = self.reliable_neighbors[vertex]
        if not neighbors:
            return 1.0
        found = sum(1 for v in neighbors if v in self.discovered[vertex])
        return found / len(neighbors)

    @property
    def mean_discovery_fraction(self) -> float:
        fractions = [self.discovery_fraction(v) for v in self.discovered]
        return sum(fractions) / len(fractions) if fractions else 0.0

    @property
    def complete(self) -> bool:
        """True iff every node discovered every reliable neighbor."""
        return all(self.discovery_fraction(v) == 1.0 for v in self.discovered)

    @property
    def last_discovery_round(self) -> Optional[int]:
        rounds = [r for table in self.discovered.values() for r in table.values()]
        return max(rounds) if rounds else None

    def false_positives(self, graph: DualGraph) -> Dict[Vertex, Set[Vertex]]:
        """Discovered vertices that are not even G' neighbors (must be empty)."""
        result: Dict[Vertex, Set[Vertex]] = {}
        for vertex, table in self.discovered.items():
            extras = {
                v for v in table if v != vertex and v not in graph.potential_neighbors(vertex)
            }
            if extras:
                result[vertex] = extras
        return result


def run_neighbor_discovery(
    graph: DualGraph,
    params: LBParams,
    scheduler: Optional[LinkScheduler] = None,
    rng: Optional[random.Random] = None,
    phases: Optional[int] = None,
) -> NeighborDiscoveryResult:
    """Run neighbor discovery over the LBAlg-backed MAC layer.

    Parameters
    ----------
    phases:
        How many LBAlg phases to simulate; defaults to one full acknowledgment
        period plus one phase of slack (every announcement is submitted in the
        very first round, so that is enough for every ack to land).
    """
    if rng is None:
        rng = random.Random(0)
    clients = {v: NeighborDiscoveryClient(v) for v in graph.vertices}
    nodes = make_mac_nodes(graph, params, lambda v: clients[v], rng)
    simulator = Simulator(graph, nodes, scheduler=scheduler)
    if phases is None:
        phases = params.tack_phases + 2
    rounds = phases * params.phase_length
    simulator.run(rounds)

    result = NeighborDiscoveryResult(rounds_run=rounds)
    for vertex, client in clients.items():
        result.discovered[vertex] = dict(client.discovered)
        result.reliable_neighbors[vertex] = graph.reliable_neighbors(vertex)
    return result
