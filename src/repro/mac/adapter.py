"""Hosting MAC clients on top of the local broadcast service.

:class:`AbstractMacNode` is a :class:`~repro.simulation.process.Process` that
wraps two things:

* an *inner* broadcast process -- normally a
  :class:`~repro.core.local_broadcast.LocalBroadcastProcess`, but any process
  speaking the ``Message`` / ``AckOutput`` / ``RecvOutput`` vocabulary (the
  baselines do too) can back the layer; and
* a :class:`~repro.mac.spec.MacClient`, the higher-level algorithm.

The adapter translates between the two worlds: client ``mac_bcast`` calls
become ``bcast`` inputs injected into the inner process (queued while a
previous payload is outstanding, to honor the one-outstanding-message rule),
and the inner process's ``recv`` / ``ack`` outputs become client callbacks.
All inner events are also re-emitted into the execution trace so the usual
metrics and spec checkers keep working unchanged.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Callable, Dict, Hashable, Optional

from repro.core.events import AckOutput, BcastInput, RecvOutput
from repro.core.local_broadcast import LocalBroadcastProcess
from repro.core.messages import Message
from repro.core.params import LBParams
from repro.dualgraph.graph import DualGraph
from repro.mac.spec import MacClient
from repro.simulation.process import Process, ProcessContext


class AbstractMacNode(Process):
    """A node hosting a MAC client over an inner broadcast process."""

    def __init__(
        self,
        ctx: ProcessContext,
        inner: Process,
        client: MacClient,
    ) -> None:
        super().__init__(ctx)
        self._inner = inner
        self._client = client
        self._queue: deque = deque()
        self._outstanding: Optional[Message] = None
        self._sequence = 0
        self._current_round = 0

    # ------------------------------------------------------------------
    # MacApi
    # ------------------------------------------------------------------
    def mac_bcast(self, payload: Any) -> bool:
        """Client-facing submission; queues if the layer is busy."""
        self._queue.append(payload)
        return self._outstanding is None and len(self._queue) == 1

    @property
    def inner(self) -> Process:
        """The wrapped broadcast process."""
        return self._inner

    @property
    def client(self) -> MacClient:
        return self._client

    @property
    def outstanding_payload(self) -> Optional[Any]:
        """The payload currently being broadcast (None when idle)."""
        return self._outstanding.payload if self._outstanding else None

    @property
    def queued_payloads(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Process hooks
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._inner.on_start()
        self._client.on_mac_start(self)

    def on_round_start(self, round_number: int) -> None:
        self._current_round = round_number
        self._inner.on_round_start(round_number)
        self._maybe_submit(round_number)

    def on_input(self, round_number: int, inp: Any) -> None:
        # Environments normally do not feed MAC nodes directly, but if one
        # does, treat the input as a client payload submission.
        self.mac_bcast(inp.payload if isinstance(inp, Message) else inp)

    def transmit(self, round_number: int) -> Optional[Any]:
        return self._inner.transmit(round_number)

    def on_receive(self, round_number: int, frame: Optional[Any]) -> None:
        self._inner.on_receive(round_number, frame)

    def on_round_end(self, round_number: int) -> None:
        self._inner.on_round_end(round_number)
        for event in self._inner.drain_outputs():
            self.emit(event)
            if isinstance(event, RecvOutput):
                self._client.on_mac_recv(event.message.payload, round_number)
            elif isinstance(event, AckOutput):
                if (
                    self._outstanding is not None
                    and event.message.message_id == self._outstanding.message_id
                ):
                    self._outstanding = None
                self._client.on_mac_ack(event.message.payload, round_number)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _maybe_submit(self, round_number: int) -> None:
        if self._outstanding is not None or not self._queue:
            return
        payload = self._queue.popleft()
        message = Message(origin=self.vertex, sequence=self._sequence, payload=payload)
        self._sequence += 1
        self._outstanding = message
        self._inner.on_input(round_number, message)
        # Record the submission so traces stay analyzable by the LB checkers.
        self.emit(BcastInput(vertex=self.vertex, message=message, round_number=round_number))


def make_mac_nodes(
    graph: DualGraph,
    params: LBParams,
    client_factory: Callable[[Hashable], MacClient],
    rng: random.Random,
    inner_factory: Optional[Callable[[ProcessContext], Process]] = None,
) -> Dict[Hashable, AbstractMacNode]:
    """Build one :class:`AbstractMacNode` per vertex.

    Parameters
    ----------
    client_factory:
        Maps a vertex to its :class:`MacClient` instance.
    inner_factory:
        Maps a context to the inner broadcast process; defaults to
        ``LocalBroadcastProcess`` with the supplied ``params``.
    """
    delta, delta_prime = graph.degree_bounds()
    if inner_factory is None:
        def inner_factory(ctx: ProcessContext) -> Process:
            return LocalBroadcastProcess(ctx, params)

    nodes: Dict[Hashable, AbstractMacNode] = {}
    for vertex in sorted(graph.vertices, key=repr):
        ctx = ProcessContext(
            vertex=vertex,
            delta=max(delta, params.delta),
            delta_prime=max(delta_prime, params.delta_prime),
            r=params.r,
            rng=random.Random(rng.getrandbits(64)),
        )
        nodes[vertex] = AbstractMacNode(ctx, inner_factory(ctx), client_factory(vertex))
    return nodes
