"""The abstract MAC layer interpretation of the local broadcast service.

The abstract MAC layer (Kuhn, Lynch, Newport) presents a wireless link layer
to higher-level algorithms as three events per node -- ``bcast(m)``,
``ack(m)`` and ``recv(m)`` -- with two timing guarantees, an acknowledgment
bound ``f_ack`` and a progress bound ``f_prog``.  The paper's local broadcast
service provides exactly those events and bounds, so LBAlg can serve as an
implementation of the layer in the dual graph model.

* :mod:`repro.mac.spec` -- the client-facing layer interface
  (:class:`MacClient`, :class:`MacLayerGuarantees`).
* :mod:`repro.mac.adapter` -- :class:`AbstractMacNode`, which hosts an
  arbitrary local-broadcast-capable process (LBAlg or a baseline) and drives
  a :class:`MacClient` with MAC-layer events.
* :mod:`repro.mac.applications` -- algorithms written against the layer; the
  flooding / global single-message broadcast of
  :mod:`repro.mac.applications.flood` is the representative example.
"""

from repro.mac.spec import MacClient, MacLayerGuarantees
from repro.mac.adapter import AbstractMacNode, make_mac_nodes
from repro.mac.applications.flood import FloodClient, FloodResult, run_flood
from repro.mac.applications.multi_message import (
    MultiMessageResult,
    run_multi_message_broadcast,
)
from repro.mac.applications.neighbor_discovery import (
    NeighborDiscoveryResult,
    run_neighbor_discovery,
)

__all__ = [
    "MacClient",
    "MacLayerGuarantees",
    "AbstractMacNode",
    "make_mac_nodes",
    "FloodClient",
    "FloodResult",
    "run_flood",
    "MultiMessageResult",
    "run_multi_message_broadcast",
    "NeighborDiscoveryResult",
    "run_neighbor_discovery",
]
