"""The client-facing abstract MAC layer interface.

A higher-level algorithm interacts with the layer only through events:

* it calls :meth:`MacApi.mac_bcast` to hand the layer a payload;
* the layer later calls :meth:`MacClient.on_mac_ack` when delivery to the
  reliable neighborhood is (probabilistically) complete;
* whenever a neighbor's payload arrives, the layer calls
  :meth:`MacClient.on_mac_recv`.

The quantitative guarantees are captured by :class:`MacLayerGuarantees`,
which for the LBAlg implementation are exactly the ``t_ack`` / ``t_prog`` / ε
of Theorem 4.1.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional, Protocol

from repro.core.params import LBParams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.dualgraph.graph import DualGraph
    from repro.simulation.trace import ExecutionTrace


@dataclass(frozen=True)
class MacLayerGuarantees:
    """The (probabilistic) timing guarantees a MAC layer implementation offers.

    Attributes
    ----------
    f_ack:
        Rounds within which a ``bcast`` is acknowledged (and, with probability
        at least ``1 - epsilon``, delivered to every reliable neighbor).
    f_prog:
        Window length such that a receiver with an actively broadcasting
        reliable neighbor hears *something* within the window, with
        probability at least ``1 - epsilon``.
    epsilon:
        The per-event error bound.
    """

    f_ack: int
    f_prog: int
    epsilon: float

    def __post_init__(self) -> None:
        if self.f_prog < 1 or self.f_ack < self.f_prog:
            raise ValueError("need f_ack >= f_prog >= 1")
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")

    @classmethod
    def from_lb_params(cls, params: LBParams) -> "MacLayerGuarantees":
        """The guarantees the LBAlg-backed layer provides (Theorem 4.1)."""
        return cls(
            f_ack=params.tack_rounds,
            f_prog=params.tprog_rounds,
            epsilon=params.epsilon,
        )


@dataclass
class MacGuaranteeReport:
    """One execution checked against a :class:`MacLayerGuarantees` promise.

    The deterministic half of the promise (every accepted payload is
    acknowledged within ``f_ack`` rounds) yields hard *violations*; the
    probabilistic half (delivery to the reliable neighborhood before the ack,
    progress within ``f_prog`` windows) yields per-event outcomes that a
    multi-trial driver pools into empirical failure rates to compare against
    ``epsilon``.  The scenario metric ``mac_guarantees`` (see
    :mod:`repro.scenarios.metrics`) is exactly this report as a flat row.
    """

    guarantees: MacLayerGuarantees
    ack_deadline_violations: List[str] = field(default_factory=list)
    acked_broadcasts: int = 0
    pending_broadcasts: int = 0
    reliability_failures: int = 0
    progress_windows: int = 0
    progress_failures: int = 0

    @property
    def ack_ok(self) -> bool:
        """No acknowledged-too-late / never-acknowledged violations observed."""
        return not self.ack_deadline_violations

    @property
    def reliability_failure_rate(self) -> float:
        if not self.acked_broadcasts:
            return 0.0
        return self.reliability_failures / self.acked_broadcasts

    @property
    def progress_failure_rate(self) -> float:
        if not self.progress_windows:
            return 0.0
        return self.progress_failures / self.progress_windows

    @property
    def within_epsilon(self) -> bool:
        """Both empirical failure rates sit within the promised ``epsilon``."""
        return (
            self.reliability_failure_rate <= self.guarantees.epsilon
            and self.progress_failure_rate <= self.guarantees.epsilon
        )

    def summary(self) -> Dict[str, float]:
        """The flat record benchmark tables and metric rows consume."""
        return {
            "ack_deadline_violations": len(self.ack_deadline_violations),
            "acked_broadcasts": self.acked_broadcasts,
            "pending_broadcasts": self.pending_broadcasts,
            "reliability_failures": self.reliability_failures,
            "reliability_failure_rate": self.reliability_failure_rate,
            "progress_windows": self.progress_windows,
            "progress_failures": self.progress_failures,
            "progress_failure_rate": self.progress_failure_rate,
        }


def check_mac_guarantees(
    trace: "ExecutionTrace",
    graph: "DualGraph",
    guarantees: MacLayerGuarantees,
    check_progress: bool = True,
) -> MacGuaranteeReport:
    """Check one execution trace against a MAC layer's advertised guarantees.

    This is the abstract-layer counterpart of
    :func:`repro.core.lb_spec.check_lb_execution`: it knows nothing about
    LBAlg's internals, only the ``f_ack`` / ``f_prog`` / ``epsilon`` the layer
    promised.  ``check_progress=True`` evaluates the progress windows through
    :func:`repro.simulation.metrics.progress_report`, which needs a
    ``TraceMode.FULL`` trace; pass ``False`` for events-only traces.
    """
    from repro.simulation.metrics import ack_delays, delivery_report, progress_report

    report = MacGuaranteeReport(guarantees=guarantees)
    for record in ack_delays(trace):
        if record.delay is None:
            report.pending_broadcasts += 1
            deadline = record.bcast_round + guarantees.f_ack
            if trace.num_rounds >= deadline:
                report.ack_deadline_violations.append(
                    f"payload {record.message.payload!r} (bcast at round "
                    f"{record.bcast_round}) missed its ack deadline (round {deadline})"
                )
        elif record.delay > guarantees.f_ack:
            report.ack_deadline_violations.append(
                f"payload {record.message.payload!r} acknowledged after "
                f"{record.delay} rounds (bound {guarantees.f_ack})"
            )
    for record in delivery_report(trace, graph):
        if record.ack_round is None:
            continue
        report.acked_broadcasts += 1
        if not record.fully_delivered:
            report.reliability_failures += 1
    if check_progress:
        progress = progress_report(trace, graph, window=guarantees.f_prog)
        report.progress_windows = progress.num_applicable
        report.progress_failures = len(progress.failures)
    return report


class MacApi(Protocol):
    """The handle a client uses to talk to its node's MAC layer."""

    @property
    def vertex(self) -> Hashable:
        """The vertex this client is running at."""

    def mac_bcast(self, payload: Any) -> bool:
        """Hand a payload to the layer.

        Returns True if the layer accepted it now; False if the layer is busy
        with a previous payload (the adapter queues it and submits it when the
        outstanding one is acknowledged).
        """


class MacClient(ABC):
    """Base class for algorithms written on top of the abstract MAC layer.

    Subclasses override the event hooks they care about.  A client never sees
    rounds, frames, collisions, or link schedules -- only MAC events -- which
    is the whole point of the abstraction.
    """

    def on_mac_start(self, api: MacApi) -> None:
        """Called once before the first round with the node's API handle."""

    def on_mac_recv(self, payload: Any, round_number: int) -> None:
        """A neighbor's payload was delivered at this node."""

    def on_mac_ack(self, payload: Any, round_number: int) -> None:
        """The layer finished broadcasting this node's payload."""
