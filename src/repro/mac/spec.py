"""The client-facing abstract MAC layer interface.

A higher-level algorithm interacts with the layer only through events:

* it calls :meth:`MacApi.mac_bcast` to hand the layer a payload;
* the layer later calls :meth:`MacClient.on_mac_ack` when delivery to the
  reliable neighborhood is (probabilistically) complete;
* whenever a neighbor's payload arrives, the layer calls
  :meth:`MacClient.on_mac_recv`.

The quantitative guarantees are captured by :class:`MacLayerGuarantees`,
which for the LBAlg implementation are exactly the ``t_ack`` / ``t_prog`` / ε
of Theorem 4.1.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Protocol

from repro.core.params import LBParams


@dataclass(frozen=True)
class MacLayerGuarantees:
    """The (probabilistic) timing guarantees a MAC layer implementation offers.

    Attributes
    ----------
    f_ack:
        Rounds within which a ``bcast`` is acknowledged (and, with probability
        at least ``1 - epsilon``, delivered to every reliable neighbor).
    f_prog:
        Window length such that a receiver with an actively broadcasting
        reliable neighbor hears *something* within the window, with
        probability at least ``1 - epsilon``.
    epsilon:
        The per-event error bound.
    """

    f_ack: int
    f_prog: int
    epsilon: float

    def __post_init__(self) -> None:
        if self.f_prog < 1 or self.f_ack < self.f_prog:
            raise ValueError("need f_ack >= f_prog >= 1")
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")

    @classmethod
    def from_lb_params(cls, params: LBParams) -> "MacLayerGuarantees":
        """The guarantees the LBAlg-backed layer provides (Theorem 4.1)."""
        return cls(
            f_ack=params.tack_rounds,
            f_prog=params.tprog_rounds,
            epsilon=params.epsilon,
        )


class MacApi(Protocol):
    """The handle a client uses to talk to its node's MAC layer."""

    @property
    def vertex(self) -> Hashable:
        """The vertex this client is running at."""

    def mac_bcast(self, payload: Any) -> bool:
        """Hand a payload to the layer.

        Returns True if the layer accepted it now; False if the layer is busy
        with a previous payload (the adapter queues it and submits it when the
        outstanding one is acknowledged).
        """


class MacClient(ABC):
    """Base class for algorithms written on top of the abstract MAC layer.

    Subclasses override the event hooks they care about.  A client never sees
    rounds, frames, collisions, or link schedules -- only MAC events -- which
    is the whole point of the abstraction.
    """

    def on_mac_start(self, api: MacApi) -> None:
        """Called once before the first round with the node's API handle."""

    def on_mac_recv(self, payload: Any, round_number: int) -> None:
        """A neighbor's payload was delivered at this node."""

    def on_mac_ack(self, payload: Any, round_number: int) -> None:
        """The layer finished broadcasting this node's payload."""
