"""Multi-trial execution helpers.

The paper's guarantees are probabilistic ("with probability at least 1 - ε"),
so every experiment runs a configuration many times under different random
seeds and estimates empirical error rates.  :func:`run_trials` is the shared
driver: a *trial factory* builds a fresh :class:`~repro.simulation.engine.Simulator`
from a ``random.Random``, the executor runs it, and an optional *evaluator*
reduces each trace to whatever record the experiment cares about.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.simulation.engine import Simulator
from repro.simulation.trace import ExecutionTrace


@dataclass
class TrialResult:
    """The outcome of one trial."""

    trial_index: int
    seed: int
    trace: ExecutionTrace
    simulator: Simulator
    evaluation: Any = None


TrialFactory = Callable[[random.Random], Simulator]
TrialEvaluator = Callable[[Simulator, ExecutionTrace], Any]


def run_trials(
    factory: TrialFactory,
    rounds: int,
    num_trials: int,
    base_seed: int = 0,
    evaluator: Optional[TrialEvaluator] = None,
    keep_traces: bool = True,
) -> List[TrialResult]:
    """Run ``num_trials`` independent simulations.

    Parameters
    ----------
    factory:
        Builds a fresh simulator (graph, processes, scheduler, environment)
        from the trial's private ``random.Random``.  Using the provided RNG
        for every random choice makes the whole experiment reproducible from
        ``base_seed``.
    rounds:
        How many rounds to run each trial.
    num_trials:
        Number of independent trials.
    base_seed:
        Seed of the seed sequence; trial ``i`` uses ``base_seed + i``.
    evaluator:
        Optional reduction of ``(simulator, trace)`` to a small record; stored
        in :attr:`TrialResult.evaluation`.
    keep_traces:
        When false the (potentially large) trace object is dropped after
        evaluation; only the evaluation is kept.  Requires an evaluator.
    """
    if rounds < 0:
        raise ValueError("rounds must be non-negative")
    if num_trials < 1:
        raise ValueError("need at least one trial")
    if not keep_traces and evaluator is None:
        raise ValueError("keep_traces=False requires an evaluator")

    results: List[TrialResult] = []
    for index in range(num_trials):
        seed = base_seed + index
        rng = random.Random(seed)
        simulator = factory(rng)
        trace = simulator.run(rounds)
        evaluation = evaluator(simulator, trace) if evaluator is not None else None
        results.append(
            TrialResult(
                trial_index=index,
                seed=seed,
                trace=trace if keep_traces else None,
                simulator=simulator if keep_traces else None,
                evaluation=evaluation,
            )
        )
    return results


def empirical_failure_rate(results: List[TrialResult], failed: Callable[[TrialResult], bool]) -> float:
    """Fraction of trials judged as failures by the supplied predicate."""
    if not results:
        raise ValueError("no trial results to aggregate")
    failures = sum(1 for result in results if failed(result))
    return failures / len(results)
