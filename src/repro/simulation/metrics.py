"""Metrics computed from execution traces.

These helpers turn a raw :class:`~repro.simulation.trace.ExecutionTrace` plus
its :class:`~repro.dualgraph.graph.DualGraph` into the quantities the paper's
guarantees speak about:

* **acknowledgment delays** -- rounds between a ``bcast(m)_u`` input and the
  matching ``ack(m)_u`` output (Timely Acknowledgment / t_ack),
* **delivery reports** -- which reliable neighbors of the sender produced
  ``recv(m)`` before the ack (Reliability),
* **progress reports** -- for a receiver and a window length t_prog, whether
  the receiver heard *something* in every window during which it had an
  actively-broadcasting reliable neighbor (Progress),
* **seed owner counts** -- for seed agreement runs, the number of unique seed
  owners committed in each closed G' neighborhood (the δ of the Seed spec).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.events import DecideOutput
from repro.core.messages import Message
from repro.dualgraph.graph import DualGraph
from repro.simulation.trace import ExecutionTrace

Vertex = Hashable


# ----------------------------------------------------------------------
# acknowledgment latency
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AckRecord:
    """One bcast input and what became of it."""

    vertex: Vertex
    message: Message
    bcast_round: int
    ack_round: Optional[int]

    @property
    def delay(self) -> Optional[int]:
        """Rounds from bcast to ack, inclusive of the ack round (None if pending)."""
        if self.ack_round is None:
            return None
        return self.ack_round - self.bcast_round


def ack_delays(trace: ExecutionTrace) -> List[AckRecord]:
    """One :class:`AckRecord` per bcast input in the trace."""
    records = []
    for ev in trace.bcast_inputs:
        records.append(
            AckRecord(
                vertex=ev.vertex,
                message=ev.message,
                bcast_round=ev.round_number,
                ack_round=trace.ack_round_for(ev.message),
            )
        )
    return records


# ----------------------------------------------------------------------
# reliability (delivery to reliable neighbors before the ack)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeliveryRecord:
    """Delivery outcome of one broadcast message."""

    message: Message
    sender: Vertex
    bcast_round: int
    ack_round: Optional[int]
    reliable_neighbors: Tuple[Vertex, ...]
    delivered_before_ack: Tuple[Vertex, ...]
    delivered_ever: Tuple[Vertex, ...]

    @property
    def fully_delivered(self) -> bool:
        """True iff every reliable neighbor got the message before the ack."""
        return set(self.delivered_before_ack) == set(self.reliable_neighbors)

    @property
    def delivery_fraction(self) -> float:
        """Fraction of reliable neighbors reached before the ack."""
        if not self.reliable_neighbors:
            return 1.0
        return len(self.delivered_before_ack) / len(self.reliable_neighbors)


def delivery_report(trace: ExecutionTrace, graph: DualGraph) -> List[DeliveryRecord]:
    """One :class:`DeliveryRecord` per acknowledged or pending broadcast."""
    records = []
    for ev in trace.bcast_inputs:
        message = ev.message
        sender = ev.vertex
        neighbors = tuple(sorted(graph.reliable_neighbors(sender), key=repr))
        ack_round = trace.ack_round_for(message)
        receivers = trace.receivers_of(message)
        before_ack = tuple(
            sorted(
                (
                    v
                    for v, rnd in receivers.items()
                    if v in neighbors and (ack_round is None or rnd <= ack_round)
                ),
                key=repr,
            )
        )
        ever = tuple(sorted((v for v in receivers if v in neighbors), key=repr))
        records.append(
            DeliveryRecord(
                message=message,
                sender=sender,
                bcast_round=ev.round_number,
                ack_round=ack_round,
                reliable_neighbors=neighbors,
                delivered_before_ack=before_ack,
                delivered_ever=ever,
            )
        )
    return records


# ----------------------------------------------------------------------
# progress (hearing something while a reliable neighbor is active)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProgressWindow:
    """One (receiver, window) pair relevant to the progress property."""

    vertex: Vertex
    phase_index: int
    start_round: int
    end_round: int
    had_active_neighbor: bool
    received_something: bool

    @property
    def progress_satisfied(self) -> Optional[bool]:
        """True/False when the premise held; None when it did not apply."""
        if not self.had_active_neighbor:
            return None
        return self.received_something


@dataclass
class ProgressReport:
    """Aggregate progress outcomes over a whole trace."""

    windows: List[ProgressWindow] = field(default_factory=list)

    @property
    def applicable(self) -> List[ProgressWindow]:
        return [w for w in self.windows if w.had_active_neighbor]

    @property
    def failures(self) -> List[ProgressWindow]:
        return [w for w in self.applicable if not w.received_something]

    @property
    def failure_rate(self) -> float:
        applicable = self.applicable
        if not applicable:
            return 0.0
        return len(self.failures) / len(applicable)

    @property
    def num_applicable(self) -> int:
        return len(self.applicable)


def progress_report(
    trace: ExecutionTrace,
    graph: DualGraph,
    window: int,
    receivers: Optional[Sequence[Vertex]] = None,
    use_frames: bool = True,
) -> ProgressReport:
    """Evaluate the progress property over fixed windows of ``window`` rounds.

    For each receiver and each window ``[k*window + 1, (k+1)*window]`` fully
    contained in the trace, the window *applies* when the receiver has at
    least one reliable neighbor that is actively broadcasting throughout every
    round of the window; it is *satisfied* when the receiver physically
    received at least one broadcast message during the window.

    Parameters
    ----------
    use_frames:
        When true (default), "received something" means a data frame reception
        was recorded in the trace for that round -- the paper's ``B_u``
        event.  This requires the simulation to run with
        ``TraceMode.FULL``.  When false, the check falls back to ``recv``
        outputs, which undercounts because the service deduplicates repeated
        deliveries of the same message.
    """
    if window < 1:
        raise ValueError("the progress window must be at least one round")
    if receivers is None:
        receivers = sorted(graph.vertices, key=repr)
    report = ProgressReport()
    num_phases = trace.num_rounds // window
    if use_frames:
        all_heard = _data_reception_rounds_all(trace)
        heard_rounds = {v: all_heard.get(v, set()) for v in receivers}
    else:
        heard_rounds = {v: set(trace.recv_rounds_for_vertex(v)) for v in receivers}
    for vertex in receivers:
        neighbors = graph.reliable_neighbors(vertex)
        for phase in range(num_phases):
            start = phase * window + 1
            end = (phase + 1) * window
            active = _has_neighbor_active_throughout(trace, neighbors, start, end)
            heard = any(start <= rnd <= end for rnd in heard_rounds[vertex])
            report.windows.append(
                ProgressWindow(
                    vertex=vertex,
                    phase_index=phase + 1,
                    start_round=start,
                    end_round=end,
                    had_active_neighbor=active,
                    received_something=heard,
                )
            )
    return report


def data_reception_rounds(trace: ExecutionTrace, vertex: Vertex) -> List[int]:
    """Rounds in which ``vertex`` physically received a data (message) frame.

    Frames are duck-typed: anything with a ``message`` attribute counts as a
    data frame (LBAlg's and the baselines' ``DataFrame``), while control
    frames such as SeedAlg's ``(id, seed)`` pairs do not.
    """
    return sorted(_data_reception_rounds_all(trace).get(vertex, set()))


def data_reception_round_sets(trace: ExecutionTrace) -> Dict[Vertex, set]:
    """Bulk form of :func:`data_reception_rounds`: vertex -> round-number set.

    One pass over the recorded receptions, so rating many receivers is linear
    in the trace rather than quadratic.  Vertices that never received a data
    frame are absent from the result.
    """
    return _data_reception_rounds_all(trace)


def _data_reception_rounds_all(trace: ExecutionTrace) -> Dict[Vertex, set]:
    """One pass over the recorded receptions: vertex -> rounds with a data frame."""
    result: Dict[Vertex, set] = {}
    for rnd in range(1, trace.num_rounds + 1):
        for vertex, frame in trace.receptions_in_round(rnd).items():
            if frame is not None and getattr(frame, "message", None) is not None:
                result.setdefault(vertex, set()).add(rnd)
    return result


def _has_neighbor_active_throughout(
    trace: ExecutionTrace, neighbors, start: int, end: int
) -> bool:
    """True iff some vertex in ``neighbors`` is active in every round of [start, end]."""
    for neighbor in neighbors:
        intervals = []
        for ev in trace.bcast_inputs:
            if ev.vertex != neighbor:
                continue
            ack_round = trace.ack_round_for(ev.message)
            intervals.append((ev.round_number, ack_round))
        if _intervals_cover(intervals, start, end):
            return True
    return False


def _intervals_cover(intervals, start: int, end: int) -> bool:
    """True iff the union of [s, e] intervals covers every round in [start, end].

    Open-ended intervals (``e is None``) extend to infinity.  The paper's
    premise is that *some single neighbor* is active throughout the window,
    but a neighbor is allowed to be active with different messages in
    different parts of it (ack then immediately bcast again), hence coverage
    by a union of that neighbor's own intervals.
    """
    if not intervals:
        return False
    needed = start
    for s, e in sorted(intervals, key=lambda it: it[0]):
        if s > needed:
            return False
        top = float("inf") if e is None else e
        if top >= needed:
            needed = int(top) + 1 if top != float("inf") else end + 1
        if needed > end:
            return True
    return needed > end


# ----------------------------------------------------------------------
# seed agreement owner counts
# ----------------------------------------------------------------------
def unique_seed_owner_counts(
    trace: ExecutionTrace, graph: DualGraph
) -> Dict[Vertex, int]:
    """For each vertex ``u``, the number of distinct owners decided in ``N_G'(u) ∪ {u}``.

    This is exactly the quantity bounded by δ in the Seed(δ, ε) agreement
    property.  Vertices with no decide output in their neighborhood map to 0.
    """
    owner_of: Dict[Vertex, List[Hashable]] = {}
    for ev in trace.decide_outputs:
        owner_of.setdefault(ev.vertex, []).append(ev.owner)
    counts: Dict[Vertex, int] = {}
    for u in graph.vertices:
        owners = set()
        for v in graph.closed_potential_neighborhood(u):
            owners.update(owner_of.get(v, ()))
        counts[u] = len(owners)
    return counts


def receive_rate_per_round(
    trace: ExecutionTrace, vertex: Vertex, start_round: int, end_round: int
) -> float:
    """Fraction of rounds in [start_round, end_round] in which ``vertex`` received a frame.

    Uses the recorded per-round receptions (requires ``TraceMode.FULL``).
    This estimates the per-round receive probability of Lemma 4.2.
    """
    if end_round < start_round:
        raise ValueError("end_round must be at least start_round")
    hits = 0
    total = end_round - start_round + 1
    for rnd in range(start_round, end_round + 1):
        if vertex in trace.receptions_in_round(rnd):
            hits += 1
    return hits / total


def receive_rates(
    trace: ExecutionTrace, start_round: int, end_round: int
) -> Dict[Vertex, int]:
    """Per-vertex counts of rounds in [start_round, end_round] with a reception.

    One pass over the recorded rounds -- the bulk form of
    :func:`receive_rate_per_round` (which the ``receive_rate`` scenario metric
    uses so evaluating every vertex is linear in the trace, not quadratic).
    Vertices that never received anything are absent from the result.
    """
    if end_round < start_round:
        raise ValueError("end_round must be at least start_round")
    counts: Dict[Vertex, int] = {}
    for rnd in range(start_round, end_round + 1):
        for vertex in trace.receptions_in_round(rnd):
            counts[vertex] = counts.get(vertex, 0) + 1
    return counts
