"""The process automaton interface.

Section 2 models wireless devices as probabilistic automata, one per graph
vertex.  A process knows its own id, the degree bounds ``Δ`` and ``Δ'``, and
the geographic parameter ``r`` -- but *not* the network size ``n``, the
identity mapping, or the link schedule.  That knowledge boundary is encoded in
:class:`ProcessContext`, which is the only information the simulator hands a
process at construction time.

Concrete algorithms (``SeedAlg``, ``LBAlg``, the baselines, the MAC adapter)
subclass :class:`Process` and implement the per-round hooks.  The simulator
drives them in lock step:

1. :meth:`Process.on_input` for each environment input of the round,
2. :meth:`Process.transmit` -- return a frame to broadcast, or ``None`` to
   listen,
3. :meth:`Process.on_receive` -- the received frame for listeners (``None``
   for silence or collision; transmitters always get ``None`` because a radio
   cannot transmit and receive simultaneously),
4. :meth:`Process.drain_outputs` -- the outputs generated this round.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Hashable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - only needed for type checkers
    from repro.core.events import Event


@dataclass(slots=True)
class ProcessContext:
    """Everything a process is allowed to know at start-up.

    Attributes
    ----------
    vertex:
        The graph vertex this process is assigned to.  (In the paper the
        process knows its *id*; we use the vertex identifier directly as the
        id, which loses no generality because the id assignment is an
        arbitrary injection.)
    process_id:
        The process id from the id space ``I``; defaults to the vertex.
    delta:
        The reliable degree bound ``Δ`` (on ``|N_G(u) ∪ {u}|``).
    delta_prime:
        The potential degree bound ``Δ'`` (on ``|N_G'(u) ∪ {u}|``).
    r:
        The geographic parameter ``r >= 1``.
    rng:
        A private pseudo-random generator for the process's local coin flips.
    """

    vertex: Hashable
    delta: int
    delta_prime: int
    r: float = 2.0
    process_id: Optional[Hashable] = None
    rng: random.Random = field(default_factory=random.Random)

    def __post_init__(self) -> None:
        if self.process_id is None:
            self.process_id = self.vertex
        if self.delta < 1:
            raise ValueError(f"Delta must be at least 1, got {self.delta}")
        if self.delta_prime < self.delta:
            raise ValueError(
                f"Delta' (={self.delta_prime}) cannot be smaller than Delta (={self.delta})"
            )
        if self.r < 1:
            raise ValueError(f"the geographic parameter must satisfy r >= 1, got {self.r}")

    def child(self, **overrides: Any) -> "ProcessContext":
        """A copy of this context for a subroutine automaton.

        By default the child shares everything, including the private RNG --
        a subroutine run by the same physical node draws from the same coin
        sequence (this is what LBAlg's embedded SeedAlg preambles need).
        Pass field overrides (e.g. ``rng=...``) to deviate.
        """
        if not overrides:
            # Plain field copy: ``replace`` re-runs ``__init__`` and
            # ``__post_init__`` validation, which is pure overhead for an
            # already-validated context.  LBAlg creates one child per member
            # per phase, so this sits on the round engine's hot path.
            new = object.__new__(ProcessContext)
            new.vertex = self.vertex
            new.delta = self.delta
            new.delta_prime = self.delta_prime
            new.r = self.r
            new.process_id = self.process_id
            new.rng = self.rng
            return new
        return replace(self, **overrides)


class Process(ABC):
    """Base class for per-vertex algorithm automata."""

    __slots__ = ("ctx", "_pending_outputs")

    def __init__(self, ctx: ProcessContext) -> None:
        self.ctx = ctx
        self._pending_outputs: List["Event"] = []

    # ------------------------------------------------------------------
    # hooks driven by the simulator (override as needed)
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        """Called once before round 1."""

    def on_round_start(self, round_number: int) -> None:
        """Called at the very beginning of each round, before inputs."""

    def on_input(self, round_number: int, inp: Any) -> None:
        """Called once per environment input delivered to this process."""

    @abstractmethod
    def transmit(self, round_number: int) -> Optional[Any]:
        """Return the frame to broadcast this round, or ``None`` to listen."""

    def on_receive(self, round_number: int, frame: Optional[Any]) -> None:
        """Called after the reception step.

        ``frame`` is the received frame if exactly one topology neighbor
        transmitted and this process listened; otherwise ``None`` (silence,
        collision, or this process transmitted).  There is no collision
        detection: the three ``None`` cases are indistinguishable.
        """

    def on_round_end(self, round_number: int) -> None:
        """Called at the end of each round, after receptions."""

    # ------------------------------------------------------------------
    # batch stepping protocol (opt-in; see Simulator)
    # ------------------------------------------------------------------
    def batch_group_key(self) -> Optional[Hashable]:
        """A hashable cohort key, or ``None`` if this process cannot be batched.

        Processes returning the same key are stepped together by a *batch
        group driver* (see :meth:`make_batch_driver`) instead of receiving
        individual :meth:`transmit` / :meth:`on_receive` calls each round.
        The contract a batchable process signs up for: the driver must
        reproduce this process's per-round behavior exactly -- same private
        RNG draw order, same emitted events, same state transitions -- so
        traces stay byte-identical with the per-process path.  The default is
        ``None`` (never batched); subclasses that override behavior-relevant
        hooks must *not* inherit a non-``None`` key, which is why concrete
        implementations gate on ``type(self) is <exact class>``.

        The key must be stable for the process's lifetime (the simulator
        reads it once, at construction) and must encode everything two
        processes need to share per-round decisions -- see
        :meth:`repro.core.local_broadcast.LocalBroadcastProcess.batch_group_key`
        for the canonical implementation (algorithm tag, parameter set, and
        seed reuse factor).
        """
        return None

    def make_batch_driver(self) -> Optional[Any]:
        """Build the driver for this process's cohort (first member only).

        The simulator calls this once per distinct :meth:`batch_group_key`
        and then registers every member via ``driver.add_member(process)``.
        A driver exposes ``transmit_round(round_number, transmissions)`` and
        ``receive_round(round_number, receptions)``; both mutate/consume the
        round-level dicts in place of the per-process hook calls.
        """
        return None

    # ------------------------------------------------------------------
    # output plumbing
    # ------------------------------------------------------------------
    def emit(self, event: "Event") -> None:
        """Queue an output event for the environment / trace."""
        self._pending_outputs.append(event)

    def drain_outputs(self) -> List["Event"]:
        """Return and clear the outputs generated since the last drain."""
        outputs, self._pending_outputs = self._pending_outputs, []
        return outputs

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    @property
    def vertex(self) -> Hashable:
        return self.ctx.vertex

    @property
    def process_id(self) -> Hashable:
        return self.ctx.process_id

    @property
    def rng(self) -> random.Random:
        return self.ctx.rng

    def __repr__(self) -> str:
        return f"{type(self).__name__}(vertex={self.ctx.vertex!r})"


class SilentProcess(Process):
    """A process that never transmits and ignores everything it hears.

    Useful as a placeholder for vertices that do not participate in an
    experiment, and in unit tests of the engine's collision rules.
    """

    __slots__ = ()

    def transmit(self, round_number: int) -> Optional[Any]:
        return None
