"""Synchronous round-based radio network simulator.

The simulator implements the execution model of Section 2 verbatim: in each
round every process first receives environment inputs, then decides whether
to transmit or listen, then receptions are resolved against the round's
communication topology (``G`` plus the link scheduler's chosen unreliable
edges) using the standard radio collision rule -- a listening node receives a
frame iff exactly one of its topology neighbors transmits; there is no
collision detection -- and finally process outputs are handed to the
environment and recorded in the execution trace.
"""

from repro.simulation.process import Process, ProcessContext
from repro.simulation.engine import Simulator
from repro.simulation.environment import (
    Environment,
    NullEnvironment,
    SaturatingEnvironment,
    ScriptedEnvironment,
    SingleShotEnvironment,
    BurstyEnvironment,
)
from repro.simulation.trace import ExecutionTrace, TraceMode
from repro.simulation.metrics import (
    ack_delays,
    delivery_report,
    progress_report,
    unique_seed_owner_counts,
)
from repro.simulation.executor import TrialResult, run_trials

__all__ = [
    "Process",
    "ProcessContext",
    "Simulator",
    "Environment",
    "NullEnvironment",
    "SingleShotEnvironment",
    "SaturatingEnvironment",
    "ScriptedEnvironment",
    "BurstyEnvironment",
    "ExecutionTrace",
    "TraceMode",
    "ack_delays",
    "delivery_report",
    "progress_report",
    "unique_seed_owner_counts",
    "TrialResult",
    "run_trials",
]
