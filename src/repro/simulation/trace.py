"""Execution traces.

An :class:`ExecutionTrace` is the record the simulator produces: every
environment input, every process output, and (optionally) the per-round
transmissions and receptions.  The specification checkers in
:mod:`repro.core.seed_spec` and :mod:`repro.core.lb_spec` and the metric
helpers in :mod:`repro.simulation.metrics` are pure functions of a trace plus
the dual graph, which keeps algorithm code and analysis code fully decoupled.
"""

from __future__ import annotations

import enum
import warnings
from collections import defaultdict
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.core.events import AckOutput, BcastInput, DecideOutput, Event, RecvOutput
from repro.core.messages import Message

Vertex = Hashable


class TraceMode(enum.Enum):
    """How much of an execution the trace retains.

    * ``FULL`` -- events plus per-round transmission/reception frame maps (the
      historical default; required by the spec checkers that inspect frames).
    * ``EVENTS`` -- input/output events only; per-round frame maps are
      dropped.  Equivalent to the legacy ``record_frames=False``.
    * ``COUNTERS`` -- neither events nor frames are stored; only aggregate
      counters (rounds, events by kind, transmissions, receptions) survive.
      The cheapest mode for very long runs where the consumer reads nothing
      but the counters (throughput benchmarks, saturation sweeps).

    All modes maintain the aggregate counters, so code written against
    ``COUNTERS`` keeps working under richer modes.
    """

    FULL = "full"
    EVENTS = "events"
    COUNTERS = "counters"

    @property
    def richness(self) -> int:
        """Total order on retention: ``COUNTERS < EVENTS < FULL``.

        Consumers that need events work under any mode whose richness is at
        least ``EVENTS``'s, and so on -- this is what lets the metric registry
        declare each reducer's *minimum* mode and the scenario runtime pick
        the cheapest mode that satisfies all of them (see
        :func:`repro.scenarios.metrics.required_trace_mode`).
        """
        return _TRACE_MODE_RICHNESS[self.value]

    def covers(self, other: "TraceMode") -> bool:
        """True iff a trace recorded in this mode retains everything ``other`` needs."""
        return self.richness >= other.richness


_TRACE_MODE_RICHNESS = {"counters": 0, "events": 1, "full": 2}


class ExecutionTrace:
    """A recorded execution of the simulator.

    Parameters
    ----------
    record_frames:
        **Deprecated** legacy knob (a ``DeprecationWarning`` is emitted when
        it is passed explicitly): ``False`` was shorthand for
        ``mode=TraceMode.EVENTS``.  Ignored when ``mode`` is given
        explicitly; use ``mode=`` instead.
    mode:
        The :class:`TraceMode` controlling retention (default ``FULL``).
    """

    def __init__(
        self, record_frames: Optional[bool] = None, mode: Optional[TraceMode] = None
    ) -> None:
        if record_frames is not None:
            warnings.warn(
                "ExecutionTrace(record_frames=...) is deprecated; pass "
                "mode=TraceMode.FULL or mode=TraceMode.EVENTS instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if mode is None:
            # Truthiness (not an identity check) so falsy non-bool legacy
            # values like 0 keep mapping to EVENTS, exactly as before the
            # deprecation and as Simulator's shim does.
            if record_frames is None or record_frames:
                mode = TraceMode.FULL
            else:
                mode = TraceMode.EVENTS
        self._mode = mode
        self._record_frames = mode is TraceMode.FULL
        self._record_events = mode is not TraceMode.COUNTERS
        self._events: List[Event] = []
        self._bcasts: List[BcastInput] = []
        self._acks: List[AckOutput] = []
        self._recvs: List[RecvOutput] = []
        self._decides: List[DecideOutput] = []
        self._transmissions: Dict[int, Dict[Vertex, Any]] = {}
        self._receptions: Dict[int, Dict[Vertex, Optional[Any]]] = {}
        self._num_rounds = 0
        self._event_counts: Dict[str, int] = {
            "bcast": 0,
            "ack": 0,
            "recv": 0,
            "decide": 0,
            "other": 0,
        }
        self._num_transmissions = 0
        self._num_receptions = 0

    # ------------------------------------------------------------------
    # recording (called by the simulator)
    # ------------------------------------------------------------------
    def note_round(self, round_number: int) -> None:
        if round_number > self._num_rounds:
            self._num_rounds = round_number

    def record_event(self, event: Event) -> None:
        counts = self._event_counts
        if isinstance(event, BcastInput):
            counts["bcast"] += 1
            if self._record_events:
                self._bcasts.append(event)
        elif isinstance(event, AckOutput):
            counts["ack"] += 1
            if self._record_events:
                self._acks.append(event)
        elif isinstance(event, RecvOutput):
            counts["recv"] += 1
            if self._record_events:
                self._recvs.append(event)
        elif isinstance(event, DecideOutput):
            counts["decide"] += 1
            if self._record_events:
                self._decides.append(event)
        else:
            counts["other"] += 1
        if self._record_events:
            self._events.append(event)

    def count_receptions(self, count: int) -> None:
        """Bump the reception counter without scanning a frame map.

        Used by the engine's counters-only kernel lane, whose resolver
        returns a map that never contains ``None`` values -- the map's length
        IS the round's reception count, so the per-value scan of
        :meth:`record_receptions` is pure overhead there.
        """
        self._num_receptions += count

    def count_recv_outputs(self, count: int) -> None:
        """Bump the ``recv`` event counter without materializing events.

        Used by the engine's counters-only kernel lane, which establishes
        up front that nothing will ever read the event objects
        (``TraceMode.COUNTERS`` plus base-class environment hooks) and so
        skips building one :class:`RecvOutput` per novel reception.
        """
        self._event_counts["recv"] += count

    def record_transmissions(self, round_number: int, frames: Dict[Vertex, Any]) -> None:
        if frames:
            self._num_transmissions += len(frames)
            if self._record_frames:
                self._transmissions[round_number] = dict(frames)

    def record_receptions(self, round_number: int, frames: Dict[Vertex, Optional[Any]]) -> None:
        if self._record_frames:
            received = {v: f for v, f in frames.items() if f is not None}
            if received:
                self._num_receptions += len(received)
                self._receptions[round_number] = received
        else:
            for frame in frames.values():
                if frame is not None:
                    self._num_receptions += 1

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def mode(self) -> TraceMode:
        """The retention mode this trace was recorded under."""
        return self._mode

    @property
    def num_rounds(self) -> int:
        """The number of rounds the simulation ran."""
        return self._num_rounds

    @property
    def event_counts(self) -> Dict[str, int]:
        """Aggregate event counts by kind (maintained in every mode)."""
        return dict(self._event_counts)

    @property
    def num_transmissions(self) -> int:
        """Total frames transmitted across all rounds (every mode)."""
        return self._num_transmissions

    @property
    def num_receptions(self) -> int:
        """Total successful receptions across all rounds (every mode)."""
        return self._num_receptions

    @property
    def events(self) -> Tuple[Event, ...]:
        return tuple(self._events)

    @property
    def bcast_inputs(self) -> Tuple[BcastInput, ...]:
        return tuple(self._bcasts)

    @property
    def ack_outputs(self) -> Tuple[AckOutput, ...]:
        return tuple(self._acks)

    @property
    def recv_outputs(self) -> Tuple[RecvOutput, ...]:
        return tuple(self._recvs)

    @property
    def decide_outputs(self) -> Tuple[DecideOutput, ...]:
        return tuple(self._decides)

    def transmissions_in_round(self, round_number: int) -> Dict[Vertex, Any]:
        """Vertex -> frame transmitted, for one round (empty if none recorded)."""
        return dict(self._transmissions.get(round_number, {}))

    def receptions_in_round(self, round_number: int) -> Dict[Vertex, Any]:
        """Vertex -> frame received, for one round (only successful receptions)."""
        return dict(self._receptions.get(round_number, {}))

    # ------------------------------------------------------------------
    # derived views used by spec checkers and metrics
    # ------------------------------------------------------------------
    def bcasts_by_vertex(self) -> Dict[Vertex, List[BcastInput]]:
        result: Dict[Vertex, List[BcastInput]] = defaultdict(list)
        for ev in self._bcasts:
            result[ev.vertex].append(ev)
        return dict(result)

    def acks_by_vertex(self) -> Dict[Vertex, List[AckOutput]]:
        result: Dict[Vertex, List[AckOutput]] = defaultdict(list)
        for ev in self._acks:
            result[ev.vertex].append(ev)
        return dict(result)

    def recvs_by_vertex(self) -> Dict[Vertex, List[RecvOutput]]:
        result: Dict[Vertex, List[RecvOutput]] = defaultdict(list)
        for ev in self._recvs:
            result[ev.vertex].append(ev)
        return dict(result)

    def decides_by_vertex(self) -> Dict[Vertex, List[DecideOutput]]:
        result: Dict[Vertex, List[DecideOutput]] = defaultdict(list)
        for ev in self._decides:
            result[ev.vertex].append(ev)
        return dict(result)

    def ack_round_for(self, message: Message) -> Optional[int]:
        """The round in which the origin acknowledged ``message`` (or None)."""
        for ev in self._acks:
            if ev.message.message_id == message.message_id:
                return ev.round_number
        return None

    def bcast_round_for(self, message: Message) -> Optional[int]:
        """The round in which ``message`` was handed to its origin (or None)."""
        for ev in self._bcasts:
            if ev.message.message_id == message.message_id:
                return ev.round_number
        return None

    def active_interval(self, message: Message) -> Optional[Tuple[int, Optional[int]]]:
        """The rounds during which ``message`` was actively broadcast.

        Returns ``(start, end)`` where ``start`` is the bcast round and ``end``
        is the ack round (``None`` if never acknowledged).  Per Section 4.1 a
        node is *actively broadcasting* ``m`` in every round of
        ``[start, end]`` -- acks happen at the end of their round, so the ack
        round itself still counts as active.
        """
        start = self.bcast_round_for(message)
        if start is None:
            return None
        return start, self.ack_round_for(message)

    def actively_broadcasting(self, vertex: Vertex, round_number: int) -> List[Message]:
        """All messages ``vertex`` is actively broadcasting in ``round_number``."""
        result = []
        for ev in self._bcasts:
            if ev.vertex != vertex or ev.round_number > round_number:
                continue
            ack_round = self.ack_round_for(ev.message)
            if ack_round is None or ack_round >= round_number:
                result.append(ev.message)
        return result

    def is_active(self, vertex: Vertex, round_number: int) -> bool:
        """True iff ``vertex`` is actively broadcasting some message."""
        return bool(self.actively_broadcasting(vertex, round_number))

    def receivers_of(self, message: Message) -> Dict[Vertex, int]:
        """Vertices that output ``recv(message)`` mapped to the earliest round."""
        result: Dict[Vertex, int] = {}
        for ev in self._recvs:
            if ev.message.message_id == message.message_id:
                if ev.vertex not in result or ev.round_number < result[ev.vertex]:
                    result[ev.vertex] = ev.round_number
        return result

    def recv_rounds_for_vertex(self, vertex: Vertex) -> List[int]:
        """Sorted rounds in which ``vertex`` generated any recv output."""
        return sorted(ev.round_number for ev in self._recvs if ev.vertex == vertex)

    def __repr__(self) -> str:
        return (
            f"ExecutionTrace(rounds={self._num_rounds}, events={len(self._events)}, "
            f"bcasts={len(self._bcasts)}, acks={len(self._acks)}, "
            f"recvs={len(self._recvs)}, decides={len(self._decides)})"
        )
