"""The synchronous round simulator.

:class:`Simulator` executes the model of Section 2:

* rounds are numbered 1, 2, 3, ...;
* in round ``t`` the communication topology ``G_t`` consists of all reliable
  edges plus the unreliable edges chosen by the (oblivious) link scheduler;
* a listening node ``u`` receives a frame from ``v`` iff ``v`` is the *only*
  transmitting node among ``u``'s neighbors in ``G_t``; otherwise ``u``
  receives the null indicator (``None``) -- there is no collision detection;
* transmitting nodes receive nothing;
* the environment delivers inputs before transmissions and consumes outputs
  after receptions.

Reception resolution has three implementations that produce identical
results:

* the **vectorized path** (default for oblivious schedulers) works on flat
  per-round structures over the graph's integer-indexed
  :class:`~repro.dualgraph.graph.TopologyIndex`.  Collision candidates are
  bulk-collected per transmitter neighborhood slice (one C-level ``extend``
  of the precomputed CSR row per transmitter), last-transmitter ids are
  bulk-filled with ``dict.fromkeys`` over the same slices, and the collision
  counters fall out of one C-level ``Counter`` pass over the candidate list.
  Reliable-edge contributions come entirely from the per-transmitter CSR
  slices precomputed once per topology; only unreliable edges consult the
  scheduler, via a per-round scheduled-edge-id *set*
  (:meth:`~repro.dualgraph.adversary.LinkScheduler.unreliable_edge_id_set_for_round`)
  intersected with each transmitter's precomputed incident-id set.  Those
  per-round deltas are shared across trials by the
  :class:`~repro.dualgraph.adversary.SchedulerDeltaCache`, so in sweeps the
  scheduler hashing is paid once per sweep point, not once per trial.
* the **point-query fast path** (``vector_path=False``; the PR-1/PR-2
  resolver) is transmitter-centric with explicit Python loops: each
  transmitter bumps a collision counter on its reliable neighbors via the
  CSR adjacency and point-queries the scheduler
  (:meth:`~repro.dualgraph.adversary.LinkScheduler.unreliable_edge_included`)
  for exactly the unreliable edges incident to transmitters.  It never
  materializes a round's full delta, which makes it the better choice for
  one-shot runs of hash-driven schedulers with very sparse transmission
  patterns, and it doubles as a reference implementation in the vectorized
  path's regression tests.
* the **generic path** asks the scheduler for the round's full topology edge
  set and scans it.  It is kept for adaptive schedulers (whose edge choice
  depends on the round's transmitters) and for schedulers that override
  :meth:`~repro.dualgraph.adversary.LinkScheduler.resolve_topology`, and it
  doubles as the reference implementation in determinism regression tests.

Independently of reception resolution, *process stepping* has two
implementations that also produce identical results:

* **batched stepping** (default): processes exposing a batch group key
  (:meth:`~repro.simulation.process.Process.batch_group_key`) are stepped by
  shared cohort drivers -- one ``transmit_round`` / ``receive_round`` call
  per driver per round instead of two method calls per process -- which lets
  homogeneous populations share per-round decisions and skip dormant members
  entirely.  Ungrouped processes in the same run are stepped per-process.
* **per-process stepping** steps every process individually and doubles as
  the reference implementation in the batching regression tests.

In both stepping modes the ``on_round_start`` / ``on_round_end`` hook loops
only visit processes whose class actually overrides those hooks (detected
once at construction); for hook-free populations the loops vanish.
"""

from __future__ import annotations

import time
import warnings
from collections import Counter
from typing import Any, Dict, Hashable, List, Mapping, Optional

from repro.dualgraph.adversary import LinkScheduler, NoUnreliableScheduler
from repro.dualgraph.graph import DualGraph
from repro.simulation.environment import Environment, NullEnvironment
from repro.simulation.process import Process
from repro.simulation.trace import ExecutionTrace, TraceMode

Vertex = Hashable


class Simulator:
    """Drive a set of processes over a dual graph for a number of rounds.

    Parameters
    ----------
    graph:
        The dual graph network ``(G, G')``.
    processes:
        A mapping from every vertex of the graph to its process automaton.
    scheduler:
        The oblivious link scheduler; defaults to never including unreliable
        edges (topology always equals ``G``).
    environment:
        The input/output environment; defaults to a :class:`NullEnvironment`.
    record_frames:
        **Deprecated** legacy knob (a ``DeprecationWarning`` is emitted when
        it is passed explicitly): ``False`` mapped to
        ``trace_mode=TraceMode.EVENTS`` and ``True`` to ``TraceMode.FULL``.
        Use ``trace_mode=`` instead.
    trace_mode:
        Explicit :class:`TraceMode` (overrides ``record_frames``; default
        ``TraceMode.FULL``).
    fast_path:
        Use the indexed transmitter-centric reception resolvers when the
        scheduler allows it.  Disable to force the generic edge-set resolver
        (used by regression tests and as the "seed engine" benchmark
        baseline); all resolvers produce identical traces.
    vector_path:
        Within the fast path, resolve receptions with the vectorized
        flat-array resolver (see module docstring); requires the scheduler's
        per-round delta set, which the :class:`SchedulerDeltaCache` shares
        across trials.  Disable to fall back to the PR-1/PR-2 point-query
        resolver (which never materializes full deltas); both produce
        identical traces.  Ignored when the fast path itself is off.
    batch_path:
        Step batchable processes through shared cohort drivers (see module
        docstring).  Disable to force per-process stepping for every process
        (used by regression tests and as the "PR-1 fast engine" benchmark
        baseline); both produce identical traces.
    profile:
        Collect per-section wall-clock totals in :attr:`perf_stats`
        (``inputs`` / ``transmit`` / ``resolve`` / ``deliver`` / ``outputs``).
        Off by default; profiling adds a few timer calls per round.
    """

    def __init__(
        self,
        graph: DualGraph,
        processes: Mapping[Vertex, Process],
        scheduler: Optional[LinkScheduler] = None,
        environment: Optional[Environment] = None,
        record_frames: Optional[bool] = None,
        trace_mode: Optional[TraceMode] = None,
        fast_path: bool = True,
        vector_path: bool = True,
        batch_path: bool = True,
        profile: bool = False,
    ) -> None:
        missing = graph.vertices - set(processes)
        if missing:
            raise ValueError(f"no process supplied for vertices: {sorted(map(repr, missing))}")
        extra = set(processes) - graph.vertices
        if extra:
            raise ValueError(f"processes supplied for unknown vertices: {sorted(map(repr, extra))}")
        self._graph = graph
        self._processes: Dict[Vertex, Process] = dict(processes)
        self._scheduler = scheduler if scheduler is not None else NoUnreliableScheduler(graph)
        self._environment = environment if environment is not None else NullEnvironment()
        if record_frames is not None:
            warnings.warn(
                "Simulator(record_frames=...) is deprecated; pass "
                "trace_mode=TraceMode.FULL (record_frames=True) or "
                "trace_mode=TraceMode.EVENTS (record_frames=False) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if trace_mode is None:
                trace_mode = TraceMode.FULL if record_frames else TraceMode.EVENTS
        self._trace = ExecutionTrace(mode=trace_mode)
        self._current_round = 0
        self._started = False
        self.perf_stats: Dict[str, float] = {}
        self._profile = bool(profile)

        self._fast = bool(fast_path) and self._supports_fast_path()
        self._vector = self._fast and bool(vector_path)
        if self._fast:
            self._bind_index()

        # Batch stepping: group processes that expose a cohort key under one
        # driver each; everything else is stepped per-process.  Output drain
        # order must match the per-process engine, so keep the full process
        # list in registration order regardless of grouping.
        self._ordered_processes: List[Process] = list(self._processes.values())
        self._batch_drivers: List[Any] = []
        self._ungrouped: Dict[Vertex, Process] = self._processes
        if batch_path:
            self._build_batch_groups()

        # Hook-override detection: the on_round_start/on_round_end loops are
        # pure overhead for populations that never override them (two full
        # scans per round); visit only actual overriders.
        self._round_start_hooks: List[Process] = [
            p
            for p in self._ordered_processes
            if type(p).on_round_start is not Process.on_round_start
        ]
        self._round_end_hooks: List[Process] = [
            p
            for p in self._ordered_processes
            if type(p).on_round_end is not Process.on_round_end
        ]

    def _build_batch_groups(self) -> None:
        groups: Dict[Any, Any] = {}
        ungrouped: Dict[Vertex, Process] = {}
        for vertex, process in self._processes.items():
            driver = None
            key = process.batch_group_key()
            if key is not None:
                driver = groups.get(key)
                if driver is None:
                    driver = process.make_batch_driver()
                    if driver is not None:
                        groups[key] = driver
            if driver is None:
                ungrouped[vertex] = process
            else:
                driver.add_member(process)
        if groups:
            self._batch_drivers = list(groups.values())
            self._ungrouped = ungrouped

    def _supports_fast_path(self) -> bool:
        scheduler = self._scheduler
        return (
            not scheduler.is_adaptive
            and scheduler.graph is self._graph
            # A scheduler that customizes resolve_topology (beyond the
            # adaptive subclasses) may depend on the transmitter set, which
            # the delta interface cannot express.
            and type(scheduler).resolve_topology is LinkScheduler.resolve_topology
        )

    def _bind_index(self) -> None:
        index = self._graph.topology_index()
        self._index = index
        self._index_version = self._graph.topology_version
        self._idx_of = index.index_of
        self._vertex_of = index.vertices
        self._g_neighbors = index.g_neighbors
        self._u_adjacency = index.unreliable_adjacency
        n = index.n
        self._tx_flags = bytearray(n)
        self._hits = [0] * n
        self._last_sender = [0] * n
        # Vector-path views: per-vertex incident unreliable edge ids (for set
        # intersection with the round's scheduled delta) and eid -> neighbor
        # maps, both precomputed once per topology by the index.
        self._u_incident = index.unreliable_incident_ids
        self._u_neighbor_of = index.unreliable_neighbor_by_eid
        self._has_unreliable = index.num_unreliable_edges > 0

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> DualGraph:
        return self._graph

    @property
    def trace(self) -> ExecutionTrace:
        return self._trace

    @property
    def environment(self) -> Environment:
        return self._environment

    @property
    def scheduler(self) -> LinkScheduler:
        return self._scheduler

    @property
    def current_round(self) -> int:
        """The last completed round (0 before the first round runs)."""
        return self._current_round

    @property
    def uses_fast_path(self) -> bool:
        """Whether receptions are resolved via the indexed fast path."""
        return self._fast

    @property
    def uses_vector_path(self) -> bool:
        """Whether receptions are resolved via the vectorized flat-array path."""
        return self._vector

    @property
    def uses_batch_stepping(self) -> bool:
        """Whether any processes are stepped through batch group drivers."""
        return bool(self._batch_drivers)

    @property
    def batch_drivers(self) -> List[Any]:
        """The registered batch group drivers (empty when none apply)."""
        return list(self._batch_drivers)

    def process_at(self, vertex: Vertex) -> Process:
        """The process automaton assigned to ``vertex``."""
        return self._processes[vertex]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, rounds: int) -> ExecutionTrace:
        """Run ``rounds`` additional rounds and return the trace."""
        if rounds < 0:
            raise ValueError("cannot run a negative number of rounds")
        if not self._started:
            for process in self._processes.values():
                process.on_start()
            self._started = True
        if self._batch_drivers:
            step = (
                self._run_one_round_batched_profiled
                if self._profile
                else self._run_one_round_batched
            )
        else:
            step = self._run_one_round_profiled if self._profile else self._run_one_round
        for _ in range(rounds):
            self._current_round += 1
            step(self._current_round)
        return self._trace

    def run_until(self, predicate, max_rounds: int, check_every: int = 1) -> ExecutionTrace:
        """Run until ``predicate(trace)`` is true or ``max_rounds`` have elapsed.

        The predicate is evaluated every ``check_every`` rounds (and once more
        at the end).  Useful for "run until the flood completes" experiments.
        """
        if max_rounds < 0:
            raise ValueError("max_rounds must be non-negative")
        while self._current_round < max_rounds:
            step = min(check_every, max_rounds - self._current_round)
            self.run(step)
            if predicate(self._trace):
                break
        return self._trace

    # ------------------------------------------------------------------
    # one round of the Section 2 execution model
    # ------------------------------------------------------------------
    def _run_one_round(self, round_number: int) -> None:
        trace = self._trace
        trace.note_round(round_number)
        processes = self._processes

        for process in self._round_start_hooks:
            process.on_round_start(round_number)

        # 1. environment inputs
        inputs = self._environment.inputs_for_round(round_number)
        for vertex, vertex_inputs in inputs.items():
            process = processes[vertex]
            for inp in vertex_inputs:
                process.on_input(round_number, inp)
                trace.record_event(
                    _as_bcast_event(vertex, inp, round_number)
                )

        # 2. transmission decisions
        transmissions: Dict[Vertex, Any] = {}
        for vertex, process in processes.items():
            frame = process.transmit(round_number)
            if frame is not None:
                transmissions[vertex] = frame
        trace.record_transmissions(round_number, transmissions)

        # 3. topology for this round and reception resolution
        receptions = self._resolve_receptions(round_number, transmissions)
        trace.record_receptions(round_number, receptions)
        get_reception = receptions.get
        for vertex, process in processes.items():
            process.on_receive(round_number, get_reception(vertex))

        # 4. outputs
        for process in self._round_end_hooks:
            process.on_round_end(round_number)
        round_outputs = []
        for process in self._ordered_processes:
            if process._pending_outputs:
                for event in process.drain_outputs():
                    trace.record_event(event)
                    round_outputs.append(event)
        self._environment.observe_outputs(round_number, round_outputs)

    def _run_one_round_batched(self, round_number: int) -> None:
        """`_run_one_round` with grouped processes stepped by their drivers.

        Grouped processes get no per-round ``transmit`` / ``on_receive``
        dispatch at all; their drivers add transmissions to, and consume
        receptions from, the same round-level dicts the per-process loops
        use, which is what keeps traces byte-identical across the stepping
        modes (events are drained in registration order either way).
        """
        trace = self._trace
        trace.note_round(round_number)

        for process in self._round_start_hooks:
            process.on_round_start(round_number)

        # 1. environment inputs
        inputs = self._environment.inputs_for_round(round_number)
        if inputs:
            processes = self._processes
            for vertex, vertex_inputs in inputs.items():
                process = processes[vertex]
                for inp in vertex_inputs:
                    process.on_input(round_number, inp)
                    trace.record_event(_as_bcast_event(vertex, inp, round_number))

        # 2. transmission decisions
        transmissions: Dict[Vertex, Any] = {}
        for driver in self._batch_drivers:
            driver.transmit_round(round_number, transmissions)
        for vertex, process in self._ungrouped.items():
            frame = process.transmit(round_number)
            if frame is not None:
                transmissions[vertex] = frame
        trace.record_transmissions(round_number, transmissions)

        # 3. topology for this round and reception resolution
        receptions = self._resolve_receptions(round_number, transmissions)
        trace.record_receptions(round_number, receptions)
        for driver in self._batch_drivers:
            driver.receive_round(round_number, receptions)
        if self._ungrouped:
            get_reception = receptions.get
            for vertex, process in self._ungrouped.items():
                process.on_receive(round_number, get_reception(vertex))

        # 4. outputs
        for process in self._round_end_hooks:
            process.on_round_end(round_number)
        round_outputs = []
        for process in self._ordered_processes:
            if process._pending_outputs:
                for event in process.drain_outputs():
                    trace.record_event(event)
                    round_outputs.append(event)
        self._environment.observe_outputs(round_number, round_outputs)

    def _run_one_round_profiled(self, round_number: int) -> None:
        """`_run_one_round` with per-section wall-clock accounting.

        Kept as a separate copy so the unprofiled hot loop carries no timer
        overhead at all.
        """
        perf = self.perf_stats
        clock = time.perf_counter
        trace = self._trace
        trace.note_round(round_number)
        processes = self._processes

        t0 = clock()
        for process in self._round_start_hooks:
            process.on_round_start(round_number)
        inputs = self._environment.inputs_for_round(round_number)
        for vertex, vertex_inputs in inputs.items():
            process = processes[vertex]
            for inp in vertex_inputs:
                process.on_input(round_number, inp)
                trace.record_event(_as_bcast_event(vertex, inp, round_number))
        t1 = clock()
        perf["inputs"] = perf.get("inputs", 0.0) + (t1 - t0)

        transmissions: Dict[Vertex, Any] = {}
        for vertex, process in processes.items():
            frame = process.transmit(round_number)
            if frame is not None:
                transmissions[vertex] = frame
        trace.record_transmissions(round_number, transmissions)
        t2 = clock()
        perf["transmit"] = perf.get("transmit", 0.0) + (t2 - t1)

        receptions = self._resolve_receptions(round_number, transmissions)
        trace.record_receptions(round_number, receptions)
        t3 = clock()
        perf["resolve"] = perf.get("resolve", 0.0) + (t3 - t2)

        get_reception = receptions.get
        for vertex, process in processes.items():
            process.on_receive(round_number, get_reception(vertex))
        t4 = clock()
        perf["deliver"] = perf.get("deliver", 0.0) + (t4 - t3)

        for process in self._round_end_hooks:
            process.on_round_end(round_number)
        round_outputs = []
        for process in self._ordered_processes:
            if process._pending_outputs:
                for event in process.drain_outputs():
                    trace.record_event(event)
                    round_outputs.append(event)
        self._environment.observe_outputs(round_number, round_outputs)
        t5 = clock()
        perf["outputs"] = perf.get("outputs", 0.0) + (t5 - t4)

    def _run_one_round_batched_profiled(self, round_number: int) -> None:
        """`_run_one_round_batched` with per-section wall-clock accounting."""
        perf = self.perf_stats
        clock = time.perf_counter
        trace = self._trace
        trace.note_round(round_number)

        t0 = clock()
        for process in self._round_start_hooks:
            process.on_round_start(round_number)
        inputs = self._environment.inputs_for_round(round_number)
        if inputs:
            processes = self._processes
            for vertex, vertex_inputs in inputs.items():
                process = processes[vertex]
                for inp in vertex_inputs:
                    process.on_input(round_number, inp)
                    trace.record_event(_as_bcast_event(vertex, inp, round_number))
        t1 = clock()
        perf["inputs"] = perf.get("inputs", 0.0) + (t1 - t0)

        transmissions: Dict[Vertex, Any] = {}
        for driver in self._batch_drivers:
            driver.transmit_round(round_number, transmissions)
        for vertex, process in self._ungrouped.items():
            frame = process.transmit(round_number)
            if frame is not None:
                transmissions[vertex] = frame
        trace.record_transmissions(round_number, transmissions)
        t2 = clock()
        perf["transmit"] = perf.get("transmit", 0.0) + (t2 - t1)

        receptions = self._resolve_receptions(round_number, transmissions)
        trace.record_receptions(round_number, receptions)
        t3 = clock()
        perf["resolve"] = perf.get("resolve", 0.0) + (t3 - t2)

        for driver in self._batch_drivers:
            driver.receive_round(round_number, receptions)
        if self._ungrouped:
            get_reception = receptions.get
            for vertex, process in self._ungrouped.items():
                process.on_receive(round_number, get_reception(vertex))
        t4 = clock()
        perf["deliver"] = perf.get("deliver", 0.0) + (t4 - t3)

        for process in self._round_end_hooks:
            process.on_round_end(round_number)
        round_outputs = []
        for process in self._ordered_processes:
            if process._pending_outputs:
                for event in process.drain_outputs():
                    trace.record_event(event)
                    round_outputs.append(event)
        self._environment.observe_outputs(round_number, round_outputs)
        t5 = clock()
        perf["outputs"] = perf.get("outputs", 0.0) + (t5 - t4)

    # ------------------------------------------------------------------
    # reception resolution
    # ------------------------------------------------------------------
    def _resolve_receptions(
        self, round_number: int, transmissions: Dict[Vertex, Any]
    ) -> Dict[Vertex, Any]:
        """Apply the radio collision rule for one round.

        Returns only the vertices that actually received a frame; silent or
        collided listeners are simply absent (callers use ``.get``).
        """
        if not transmissions:
            return {}
        if self._fast:
            if self._index_version != self._graph.topology_version:
                # The graph was mutated mid-run (dynamic-topology experiment):
                # refresh the index view so edge ids stay in sync with the
                # schedulers, which key their own caches on the same version.
                self._bind_index()
            if self._vector:
                return self._resolve_receptions_vector(round_number, transmissions)
            return self._resolve_receptions_fast(round_number, transmissions)
        return self._resolve_receptions_generic(round_number, transmissions)

    def _resolve_receptions_vector(
        self, round_number: int, transmissions: Dict[Vertex, Any]
    ) -> Dict[Vertex, Any]:
        """The vectorized collision-rule resolver (see module docstring).

        Semantically identical to :meth:`_resolve_receptions_fast`, but the
        per-(transmitter, neighbor) Python work is replaced by bulk C-level
        operations over flat precomputed structures:

        * candidate receivers are collected by extending one list with each
          transmitter's precomputed CSR neighbor slice (reliable edges never
          consult the scheduler);
        * last-transmitter ids are bulk-filled per slice with
          ``dict.fromkeys(slice, transmitter)`` -- unambiguous wherever the
          collision count ends up exactly 1;
        * scheduled unreliable edges come from one frozenset intersection per
          transmitter between the round's delta set and the transmitter's
          precomputed incident-edge-id set;
        * collision counters are one ``Counter`` pass over the candidates.

        First-touch candidate order matches the point-query resolver exactly
        (reliable slices in transmitter order, then scheduled unreliable
        edges in ascending edge id per transmitter), so the receptions dict
        is built in the same insertion order and traces stay byte-identical.
        """
        idx_of = self._idx_of
        vertex_of = self._vertex_of
        rows = self._g_neighbors
        tx = self._tx_flags
        fromkeys = dict.fromkeys

        tx_indices = [idx_of[vertex] for vertex in transmissions]
        for i in tx_indices:
            tx[i] = 1

        touched: List[int] = []
        extend = touched.extend
        sender: Dict[int, int] = {}
        fill = sender.update
        for i in tx_indices:
            row = rows[i]
            if row:
                extend(row)
                fill(fromkeys(row, i))

        if self._has_unreliable:
            scheduled = self._scheduler.unreliable_edge_id_set_for_round(round_number)
            if scheduled:
                incident = self._u_incident
                neighbor_of = self._u_neighbor_of
                for i in tx_indices:
                    hit = scheduled & incident[i]
                    if hit:
                        nbs = neighbor_of[i]
                        js = [nbs[eid] for eid in sorted(hit)]
                        extend(js)
                        fill(fromkeys(js, i))

        receptions: Dict[Vertex, Any] = {}
        if touched:
            for j, count in Counter(touched).items():
                if count == 1 and not tx[j]:
                    receptions[vertex_of[j]] = transmissions[vertex_of[sender[j]]]
        for i in tx_indices:
            tx[i] = 0
        return receptions

    def _resolve_receptions_fast(
        self, round_number: int, transmissions: Dict[Vertex, Any]
    ) -> Dict[Vertex, Any]:
        idx_of = self._idx_of
        vertex_of = self._vertex_of
        g_neighbors = self._g_neighbors
        tx = self._tx_flags
        hits = self._hits
        last_sender = self._last_sender
        touched: List[int] = []

        tx_indices = [idx_of[vertex] for vertex in transmissions]
        for i in tx_indices:
            tx[i] = 1

        # Reliable edges: every transmitter bumps all its G-neighbors.
        for i in tx_indices:
            for j in g_neighbors[i]:
                if not hits[j]:
                    touched.append(j)
                hits[j] += 1
                last_sender[j] = i

        # Unreliable edges: only those incident to a transmitter can carry or
        # spoil a frame, so ask the scheduler about exactly those.  Each
        # (transmitter, incident edge) pair is visited once; an edge between
        # two transmitters is correctly counted at both endpoints.
        u_adjacency = self._u_adjacency
        included = self._scheduler.unreliable_edge_included
        for i in tx_indices:
            for j, eid in u_adjacency[i]:
                if included(eid, round_number):
                    if not hits[j]:
                        touched.append(j)
                    hits[j] += 1
                    last_sender[j] = i

        receptions: Dict[Vertex, Any] = {}
        for j in touched:
            if hits[j] == 1 and not tx[j]:
                receptions[vertex_of[j]] = transmissions[vertex_of[last_sender[j]]]
            hits[j] = 0
        for i in tx_indices:
            tx[i] = 0
        return receptions

    def _resolve_receptions_generic(
        self, round_number: int, transmissions: Dict[Vertex, Any]
    ) -> Dict[Vertex, Any]:
        topology_edges = self._scheduler.resolve_topology(
            round_number, frozenset(transmissions)
        )
        # Build adjacency restricted to edges incident to a transmitter -- the
        # only edges that can possibly carry a frame this round.
        neighbors_of: Dict[Vertex, list] = {}
        for edge in topology_edges:
            a, b = tuple(edge)
            if a in transmissions:
                neighbors_of.setdefault(b, []).append(a)
            if b in transmissions:
                neighbors_of.setdefault(a, []).append(b)

        receptions: Dict[Vertex, Any] = {}
        for vertex, senders in neighbors_of.items():
            if vertex in transmissions:
                # A radio cannot hear while it transmits.
                continue
            if len(senders) == 1:
                receptions[vertex] = transmissions[senders[0]]
        return receptions


def _as_bcast_event(vertex: Vertex, inp: Any, round_number: int):
    """Wrap an environment input as a trace event.

    Environments submit :class:`repro.core.messages.Message` objects; the
    trace records them as :class:`repro.core.events.BcastInput`.  Inputs of
    other types (used by custom environments or upper layers) are recorded
    as-is if they are already events.
    """
    from repro.core.events import BcastInput
    from repro.core.messages import Message

    if isinstance(inp, BcastInput):
        return inp
    if isinstance(inp, Message):
        return BcastInput(vertex=vertex, message=inp, round_number=round_number)
    raise TypeError(
        f"environment inputs must be Message or BcastInput instances, got {type(inp).__name__}"
    )
